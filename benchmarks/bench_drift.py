"""Online replanning under input-distribution drift — survival and cost.

Not a paper artifact: this benchmark exercises the lifecycle controller
(``drift_detection=True``) against the *static-fit* ablation (the same
Mimose planner with an infinite recollect margin, i.e. the initial fit
is trusted forever) across the three non-stationary input scenarios of
:data:`repro.data.datasets.DRIFT_SCENARIOS`:

* **regime-switch** — the size distribution jumps from the lower to the
  upper third of the support at mid-run (corpus swap);
* **curriculum** — a linear ramp from short to long inputs (curriculum
  learning);
* **bucket-rotation** — length buckets served round-robin in blocks
  (sorted-by-length sharding).

Measurement noise with a negative bias corrupts the initial collection
window, so the first fit systematically *under-predicts* — harmless
while inputs stay inside the trained range, fatal once drift pushes
them beyond it.  The recovery ladder is disabled (``max_retries=0``):
survival must come from planning, not from retries.

Shape to expect: the lifecycle run detects the shift (range check +
input-size CUSUM at plan time), diverts drifted inputs to sheltered
collection, refits on clean in-range data and survives; the static-fit
run extrapolates the corrupted fit and hits fatal OOMs in most
scenario×seed cells.  The acceptance bar is a *strictly* higher
OOM-survival rate in at least 2 of the 3 scenarios at equal budget.

``bench_drift_replan_latency`` gates the cost of one online replan
(estimator refit + base-model refit + plan-cache flush + detector
recalibration) in ``perf_baseline.json``.
"""

from __future__ import annotations

from repro.core.adaptive import QuantileTracker, ResidualTracker
from repro.core.collector import ShuttlingCollector
from repro.core.estimator import LightningMemoryEstimator
from repro.core.lifecycle import LifecycleController, LifecycleState
from repro.core.plan_cache import PlanCache
from repro.data.datasets import DRIFT_SCENARIOS
from repro.engine.stats import IterationStats, UnitMeasurement
from repro.experiments.report import render_table
from repro.experiments.runner import run_task
from repro.experiments.tasks import GB, load_task
from repro.tensorsim.faults import FaultPlan

from conftest import run_once, save_result

TASK = "TC-Bert"
ITERATIONS = 60
BUDGET = int(5.0 * GB)
SEEDS = (0, 1)
#: corrupts the initial collection window only: the first fit
#: under-predicts by ~12 %, which extrapolation amplifies after drift
NOISE_SPEC = "noise:sigma=0.03,bias=-0.12,start=1,iters=14"


def drift_rows() -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    for scenario in DRIFT_SCENARIOS:
        for variant, kwargs in (
            ("lifecycle", {"drift_detection": True}),
            ("static-fit", {"static_fit": True}),
        ):
            survived = 0
            ooms = 0
            refits = 0
            drift_events = 0
            total_time = 0.0
            for seed in SEEDS:
                task = load_task(
                    TASK,
                    iterations=ITERATIONS,
                    seed=seed,
                    drift_scenario=scenario,
                )
                result = run_task(
                    task,
                    "mimose",
                    BUDGET,
                    max_iterations=ITERATIONS,
                    faults=FaultPlan.parse(NOISE_SPEC, seed=seed),
                    max_retries=0,
                    **kwargs,
                )
                survived += int(result.succeeded)
                ooms += result.oom_count
                refits += result.refits
                drift_events += result.drift_events
                total_time += result.total_time
            rows.append(
                {
                    "scenario": scenario,
                    "variant": variant,
                    "survival_rate": survived / len(SEEDS),
                    "oom_iterations": ooms,
                    "replans": refits,
                    "drift_events": drift_events,
                    "total_time_s": total_time,
                }
            )
    return rows


def bench_drift_survival(benchmark, results_dir):
    rows = run_once(benchmark, drift_rows)
    text = render_table(
        rows,
        title=(
            f"Drift scenarios [{TASK} @ {BUDGET / GB:.1f} GB, "
            f"{ITERATIONS} iters, seeds {SEEDS}, max_retries=0, "
            f"{NOISE_SPEC}]"
        ),
    )
    save_result(results_dir, "drift", text)
    by_cell = {(r["scenario"], r["variant"]): r for r in rows}
    strict_wins = 0
    for scenario in DRIFT_SCENARIOS:
        life = by_cell[(scenario, "lifecycle")]
        static = by_cell[(scenario, "static-fit")]
        if life["survival_rate"] > static["survival_rate"]:
            strict_wins += 1
        # The lifecycle must actually be replanning, not coasting: every
        # scenario drifts, so every scenario refits at least once.
        assert life["replans"] >= 1, life
        # ...and the online replanning stays affordable: no more than
        # 50 % slower than trusting a stale fit and OOMing.
        assert life["total_time_s"] <= 1.5 * static["total_time_s"], (
            life,
            static,
        )
        # The ablation never replans by construction.
        assert static["replans"] == 0, static
    # Acceptance bar: strictly better OOM survival in >= 2 of 3 scenarios
    # at equal budget.
    assert strict_wins >= 2, rows
    benchmark.extra_info["strict_wins"] = strict_wins


# ---------------------------------------------------------------------------
# Replan latency — the wall-clock cost of one online refit
# ---------------------------------------------------------------------------

_UNITS = 12
_SIZES = (96, 128, 160, 192, 224, 256, 288, 320, 352, 384)


def _collect_stats(iteration: int, size: int) -> IterationStats:
    batch = tuple(
        UnitMeasurement(
            f"block{u}",
            size,
            (4 + u % 3) * 1024 * size + 2 * size * size,
            1e-3,
            2e-3,
        )
        for u in range(_UNITS)
    )
    return IterationStats(
        iteration=iteration,
        input_size=size,
        input_shape=(1, size),
        mode="collect",
        plan_label="collect",
        num_checkpointed=_UNITS,
        fwd_time=2e-3,
        bwd_time=4e-3,
        recompute_time=0.0,
        collect_time=2e-3,
        planning_time=0.0,
        upkeep_time=0.0,
        optimizer_time=1e-3,
        peak_in_use=64 * 1024 * size,
        peak_reserved=80 * 1024 * size,
        end_in_use=1024 * size,
        fragmentation_bytes=0,
        measurements=batch,
    )


def _fitted_controller() -> LifecycleController:
    collector = ShuttlingCollector(min_iterations=10, min_distinct_sizes=4)
    controller = LifecycleController(
        collector=collector,
        estimator=LightningMemoryEstimator(),
        cache=PlanCache(),
        residuals=ResidualTracker(),
        frag_observed=QuantileTracker(),
        drift_detection=True,
    )
    for it, size in enumerate(_SIZES):
        controller.observe(_collect_stats(it, size))
    controller.ensure_fitted()
    assert controller.state is LifecycleState.FITTED
    return controller


def bench_drift_replan_latency(benchmark):
    """One online replan: refit + base refit + flush + recalibration."""

    def setup():
        controller = _fitted_controller()
        # A post-fit sheltered observation on a ready collector is the
        # re-collection refit path — the latency a training iteration
        # actually pays when the lifecycle replans online.
        return (controller, _collect_stats(len(_SIZES), 512)), {}

    def replan(controller: LifecycleController, stats: IterationStats) -> None:
        controller.observe(stats)

    benchmark.pedantic(replan, setup=setup, rounds=20, iterations=1)
    controller = _fitted_controller()
    before = controller.fit_count
    controller.observe(_collect_stats(len(_SIZES), 512))
    assert controller.fit_count == before + 1, "setup path must refit"
