"""Ablations over Mimose's design choices (DESIGN.md §5).

* bucket tolerance (Algorithm 1's ±10 %),
* plan cache on/off and similarity tolerance,
* number of collector iterations vs estimator error,
* greedy vs knapsack scheduling (the paper's pluggable interface).

Each ablation's grid points are independent runs, so they execute through
:func:`repro.experiments.runner.parallel_map` — the workers are
module-level functions taking one picklable config tuple each, and the
results are identical to a serial sweep regardless of ``JOBS``.
"""

import os

from repro.core.plan_cache import PlanCache
from repro.core.planner import MimosePlanner
from repro.core.scheduler import GreedyScheduler, KnapsackScheduler
from repro.engine.executor import TrainingExecutor
from repro.engine.stats import RunResult
from repro.experiments.report import render_table
from repro.experiments.runner import parallel_map
from repro.experiments.tasks import GB, load_task
from repro.planners.base import ModelView

from conftest import run_once, save_result

BUDGET = 4 * GB
JOBS = min(4, os.cpu_count() or 1)


def run_mimose(task, planner):
    model = task.fresh_model()
    planner.setup(ModelView(model))
    ex = TrainingExecutor(model, planner, capacity_bytes=planner.budget_bytes)
    result = RunResult(task.spec.abbr, "mimose", planner.budget_bytes)
    for batch in task.loader:
        result.append(ex.step(batch))
    return result


def _bucket_point(tol):
    task = load_task("TC-Bert", iterations=80, seed=21)
    planner = MimosePlanner(BUDGET, scheduler=GreedyScheduler(tol))
    r = run_mimose(task, planner)
    return {
        "bucket_tolerance": tol,
        "total_time_s": r.total_time,
        "peak_gb": r.peak_in_use / GB,
        "ooms": r.oom_count,
    }


def bench_ablation_bucket_tolerance(benchmark, results_dir):
    def sweep():
        return parallel_map(
            _bucket_point, (0.0, 0.05, 0.10, 0.25, 0.50), jobs=JOBS
        )

    rows = run_once(benchmark, sweep)
    text = render_table(rows, title="Ablation: Algorithm 1 bucket tolerance")
    save_result(results_dir, "ablation_bucket", text)
    assert all(r["ooms"] == 0 for r in rows)
    times = [r["total_time_s"] for r in rows]
    # the choice is not very sensitive (why the paper's 10% works)
    assert max(times) / min(times) < 1.15


def _cache_point(point):
    label, tolerance, max_entries = point
    task = load_task("TC-Bert", iterations=120, seed=22)
    cache = (
        PlanCache(tolerance=tolerance, max_entries=max_entries)
        if max_entries is not None
        else PlanCache(tolerance=tolerance)
    )
    planner = MimosePlanner(BUDGET, cache=cache)
    r = run_mimose(task, planner)
    return {
        "cache": label,
        "hit_rate": planner.cache.hit_rate,
        "plans_generated": planner.plan_count,
        "planning_ms_total": 1e3 * sum(s.planning_time for s in r.iterations),
        "ooms": r.oom_count,
    }


def bench_ablation_plan_cache(benchmark, results_dir):
    def sweep():
        return parallel_map(
            _cache_point,
            (
                ("off", 0.0, 1),
                ("exact-only", 0.0, None),
                ("5% (paper)", 0.05, None),
                ("15%", 0.15, None),
            ),
            jobs=JOBS,
        )

    rows = run_once(benchmark, sweep)
    text = render_table(rows, title="Ablation: plan cache tolerance")
    save_result(results_dir, "ablation_cache", text)
    assert all(r["ooms"] == 0 for r in rows)
    # wider sharing -> fewer generated plans
    assert rows[0]["plans_generated"] >= rows[2]["plans_generated"]
    assert rows[2]["hit_rate"] > rows[1]["hit_rate"] * 0.99


def _collector_point(n):
    from repro.core.estimator import LightningMemoryEstimator
    from repro.experiments.tables import _collect_samples

    task = load_task("TC-Bert", iterations=4 * n, seed=23)
    collector, truth = _collect_samples(task, n)
    est = LightningMemoryEstimator()
    est.fit(collector)
    report = est.evaluate(truth)
    return {
        "collector_iterations": n,
        "error_pct": 100 * report.relative_error,
        "train_time_ms": 1e3 * report.train_time_s,
    }


def bench_ablation_collector_iterations(benchmark, results_dir):
    def sweep():
        return parallel_map(_collector_point, (4, 10, 20, 30), jobs=JOBS)

    rows = run_once(benchmark, sweep)
    text = render_table(
        rows, title="Ablation: sheltered iterations vs estimator error"
    )
    save_result(results_dir, "ablation_collector", text)
    # 10 iterations already reach sub-percent error (paper's choice)
    ten = next(r for r in rows if r["collector_iterations"] == 10)
    assert ten["error_pct"] < 1.0
    # more data never makes it dramatically worse
    assert rows[-1]["error_pct"] < 2.0


def _scheduler_point(name):
    sched = GreedyScheduler() if name == "greedy (Alg.1)" else KnapsackScheduler()
    task = load_task("TC-Bert", iterations=80, seed=24)
    planner = MimosePlanner(BUDGET, scheduler=sched)
    r = run_mimose(task, planner)
    return {
        "scheduler": name,
        "total_time_s": r.total_time,
        "recompute_s": r.time_breakdown()["recompute_time"],
        "planning_ms": 1e3 * r.time_breakdown()["planning_time"],
        "peak_gb": r.peak_in_use / GB,
        "ooms": r.oom_count,
    }


def bench_ablation_scheduler_choice(benchmark, results_dir):
    def sweep():
        return parallel_map(
            _scheduler_point, ("greedy (Alg.1)", "knapsack"), jobs=JOBS
        )

    rows = run_once(benchmark, sweep)
    text = render_table(
        rows, title="Ablation: greedy (Algorithm 1) vs knapsack scheduling"
    )
    save_result(results_dir, "ablation_scheduler", text)
    assert all(r["ooms"] == 0 for r in rows)
    greedy, knap = rows
    # "the greedy algorithm is simple but effective": within a few percent
    # of the optimisation-based alternative
    assert greedy["total_time_s"] <= knap["total_time_s"] * 1.05
