"""Fig 3 — input-size distributions and memory footprint vs input size.

Paper shape to reproduce: the four NLP datasets span wide collated-length
ranges (SWAG 35-141, SQuAD 153-512, GLUE-QQP 30-332, UN_PC 17-460), and
the no-checkpointing GPU memory footprint grows smoothly (at most
quadratically) with input size.
"""

from repro.experiments.figures import fig3_data
from repro.experiments.report import render_table

from conftest import run_once, save_result

GB = 1024**3


def bench_fig3_input_distributions(benchmark, results_dir):
    data = run_once(benchmark, fig3_data, iterations=300)
    rows = []
    for dataset, d in data.items():
        lo, hi = d["length_range"]
        curve = d["memory_curve_bytes"]
        rows.append(
            {
                "dataset": dataset,
                "task": d["task"],
                "len_min": lo,
                "len_max": hi,
                "distinct_lengths": len(d["histogram"]),
                "mem_at_min_gb": curve[0][1] / GB,
                "mem_at_max_gb": curve[-1][1] / GB,
            }
        )
        # the smoothness claim: memory is monotone in input size
        peaks = [p for _, p in curve]
        assert peaks == sorted(peaks), f"{dataset}: memory not monotone"
    text = render_table(rows, title="Fig 3: input-size ranges and memory footprints")
    save_result(results_dir, "fig03_input_dist", text)
    benchmark.extra_info["datasets"] = len(rows)
