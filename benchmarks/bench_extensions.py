"""Extension benchmarks beyond the paper's headline experiments.

* **hybrid swap/recompute** — quantifies §II's dismissal of swapping:
  under input dynamics a Capuchin-style hybrid is fast only because it
  stops honouring the budget, while transfers that cannot finish in time
  silently degrade to keeping tensors resident;
* **adaptive estimator margin** — the paper's stated future work
  (§IV-C): a conformal residual margin replaces most of the fixed
  fragmentation reserve, shown on the content-dependent OD task.
"""

from repro.core.planner import MimosePlanner
from repro.engine.executor import TrainingExecutor
from repro.engine.stats import RunResult
from repro.experiments.report import render_table
from repro.experiments.runner import run_task
from repro.experiments.tasks import GB, load_task
from repro.planners.base import ModelView

from conftest import run_once, save_result


def bench_hybrid_swapping(benchmark, results_dir):
    def sweep():
        task = load_task("TC-Bert", iterations=100, seed=31)
        budget = int(3.5 * GB)
        base = run_task(task, "baseline", 8 * GB)
        rows = []
        for name in ("sublinear", "capuchin", "mimose"):
            r = run_task(task, name, budget)
            rows.append(
                {
                    "planner": name,
                    "normalized_time": r.normalized_time(base),
                    "peak_used_gb": r.peak_in_use / GB,
                    "respects_budget": r.peak_reserved <= budget,
                    "swap_stall_ms": 1e3
                    * sum(s.swap_stall_time for s in r.iterations),
                    "max_swapped_units": max(
                        (s.num_swapped for s in r.iterations), default=0
                    ),
                    "ooms": r.oom_count,
                }
            )
        return rows, budget

    rows, budget = run_once(benchmark, sweep)
    text = render_table(
        rows, title=f"Extension: hybrid swapping vs checkpointing @ {budget / GB:.1f} GB"
    )
    save_result(results_dir, "ext_hybrid_swapping", text)
    by = {r["planner"]: r for r in rows}
    # the hybrid swaps, but only Mimose is both fast and budget-honest
    assert by["capuchin"]["max_swapped_units"] > 0
    assert by["mimose"]["respects_budget"]
    assert not by["capuchin"]["respects_budget"]
    assert by["mimose"]["normalized_time"] < by["sublinear"]["normalized_time"]


def bench_adaptive_margin(benchmark, results_dir):
    def sweep():
        rows = []
        for label, kwargs in (
            ("fixed reserve (10%)", {}),
            (
                "adaptive margin + small reserve",
                {"adaptive_margin": True, "headroom_bytes": 256 * 1024**2},
            ),
        ):
            task = load_task("OD-R50", iterations=60, seed=32)
            lb, _ = task.memory_bounds()
            budget = int(lb * 1.35)
            model = task.fresh_model()
            planner = MimosePlanner(budget, **kwargs)
            planner.setup(ModelView(model))
            ex = TrainingExecutor(model, planner, capacity_bytes=budget)
            result = RunResult(task.spec.abbr, label, budget)
            for batch in task.loader:
                result.append(ex.step(batch))
            rows.append(
                {
                    "configuration": label,
                    "budget_gb": budget / GB,
                    "total_time_s": result.total_time,
                    "peak_gb": result.peak_in_use / GB,
                    "utilisation": result.peak_in_use / budget,
                    "est_margin_pct": 100 * planner.residuals.margin()
                    if planner.adaptive_margin
                    else float("nan"),
                    "frag_reserve_gb": planner.frag_observed.value() / GB
                    if planner.adaptive_margin
                    else float("nan"),
                    "ooms": result.oom_count,
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    text = render_table(
        rows, title="Extension: adaptive estimator margin (OD-R50)"
    )
    save_result(results_dir, "ext_adaptive_margin", text)
    fixed, adaptive = rows
    assert adaptive["ooms"] == 0
    # the learned margin lets Mimose run closer to the budget
    assert adaptive["utilisation"] >= fixed["utilisation"] - 0.02


def bench_amp_mixed_precision(benchmark, results_dir):
    """Extension: fp16 activations halve the memory the planner manages.

    Same TC-Bert stream, same budget: the AMP model trains with little or
    no checkpointing where the fp32 model must recompute heavily.
    """

    def sweep():
        from repro.models.registry import build_model
        from repro.planners.base import ModelView

        budget = int(3.5 * GB)
        rows = []
        for name in ("bert-base", "bert-base-amp"):
            task = load_task("TC-Bert", iterations=80, seed=33)
            model = build_model(name)
            planner = MimosePlanner(budget)
            planner.setup(ModelView(model))
            ex = TrainingExecutor(model, planner, capacity_bytes=budget)
            result = RunResult("TC-Bert", name, budget)
            for batch in task.loader:
                result.append(ex.step(batch))
            responsive = [s for s in result.iterations if s.mode == "normal"]
            rows.append(
                {
                    "model": name,
                    "total_time_s": result.total_time,
                    "recompute_s": result.time_breakdown()["recompute_time"],
                    "mean_ckpt_units": sum(
                        s.num_checkpointed for s in responsive
                    ) / max(len(responsive), 1),
                    "peak_gb": result.peak_in_use / GB,
                    "ooms": result.oom_count,
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    text = render_table(
        rows, title="Extension: fp32 vs AMP under the same 3.5 GB budget"
    )
    save_result(results_dir, "ext_amp", text)
    fp32, amp = rows
    assert amp["ooms"] == fp32["ooms"] == 0
    assert amp["recompute_s"] < fp32["recompute_s"]
    assert amp["mean_ckpt_units"] < fp32["mean_ckpt_units"]


def bench_segment_memory_floor(benchmark, results_dir):
    """Extension: segment-level (Chen et al.) vs per-unit memory floors.

    Scans every balanced segmentation per architecture.  Finding: at
    block granularity, grouping lowers the floor only for *pre-norm*
    blocks (GPT-2), whose internal saved sets are small relative to
    their boundaries; post-norm BERT and the CNNs gain nothing because
    the group-recompute working set eats the boundary savings.
    """

    def sweep():
        from repro.models.base import BatchInput
        from repro.models.registry import build_model
        from repro.planners.analysis import full_checkpoint_peak
        from repro.planners.base import ModelView
        from repro.planners.segmented import minimum_memory_plan
        from repro.tensorsim.dtypes import FLOAT32, INT64

        cases = [
            ("bert-base", (16, 256), INT64),
            ("gpt2-small", (8, 512), INT64),
            ("t5-base", (8, 256), INT64),
            ("resnet50-det", (4, 3, 640, 640), FLOAT32),
            ("swin-tiny", (8, 3, 224, 224), FLOAT32),
        ]
        rows = []
        for name, shape, dtype in cases:
            model = build_model(name)
            view = ModelView(model)
            batch = BatchInput(shape, dtype)
            unit_floor = full_checkpoint_peak(
                view.profiles(batch),
                static_bytes=view.static_memory.total,
                input_nbytes=batch.nbytes,
                checkpointable=view.checkpointable,
            )
            plan, seg_floor = minimum_memory_plan(view, batch)
            rows.append(
                {
                    "model": name,
                    "unit_floor_gb": unit_floor / GB,
                    "segment_floor_gb": seg_floor / GB,
                    "gain_pct": 100 * (1 - seg_floor / unit_floor),
                    "best_segmentation": str(
                        [len(s) for s in plan.segments][:10]
                    ),
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    text = render_table(
        rows, title="Extension: segment-level vs per-unit memory floors"
    )
    save_result(results_dir, "ext_segment_floor", text)
    by = {r["model"]: r for r in rows}
    assert by["gpt2-small"]["gain_pct"] > 1.0  # pre-norm blocks gain
    for name in ("bert-base", "resnet50-det", "swin-tiny"):
        assert by[name]["gain_pct"] >= -1e-9  # never worse than per-unit
