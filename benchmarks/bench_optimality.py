"""Optimality-harness benchmarks: exact-solver tractability and gaps.

``bench_exact_solver_64_units`` pins the branch-and-bound wall time on a
deliberately hard 64-unit instance (tight PCIe link, deep excess, tied
unit sizes) — the tractability claim behind using the exact solver as
the per-cell gap reference.  ``bench_gap_report_registry`` regenerates
the Table I gap column end-to-end (fitted mini-run + every registered
solver) and asserts the harness invariants: the exact solver's own gap
is identically zero, and no solver beats the optimum.
"""

import math

from conftest import run_once, save_result

from repro.solvers import (
    ExactSolver,
    PcieCostModel,
    SolverInput,
    fractional_lower_bound,
    plan_cost,
    plan_feasible,
    solver_names,
)

MB = 1 << 20


def _hard_instance(n: int = 64) -> SolverInput:
    """Tie-heavy pricing instance where swap/recompute genuinely compete."""
    est = {f"enc.{i}": (40 + (i * 29) % 240) * MB for i in range(n)}
    order = {u: i for i, u in enumerate(est)}
    est_time = {u: 2e-4 + 1e-6 * (i % 9) for i, u in enumerate(est)}
    bwd_time = {u: 1.4 * t for u, t in est_time.items()}
    return SolverInput(
        est_bytes=est,
        order=order,
        excess_bytes=int(0.7 * sum(est.values())),
        est_time=est_time,
        bwd_time=bwd_time,
    )


def bench_exact_solver_64_units(benchmark):
    """Exact branch-and-bound at 64 units: tens of milliseconds, pinned.

    The symmetry break over interchangeable units plus the fractional
    completion bound keep the search far from its exponential worst
    case; this pin is what entitles the gap harness to run the exact
    solver per (planner, input-size) cell.
    """
    model = PcieCostModel(pcie_bandwidth=2e9)
    solver = ExactSolver(model)
    inp = _hard_instance(64)
    assignment = benchmark(solver.assign, inp)
    assert plan_feasible(model, assignment, inp)
    exact_cost = plan_cost(model, assignment, inp)
    # The optimum must land between the LP lower bound and any heuristic.
    assert fractional_lower_bound(model, inp) <= exact_cost + 1e-12


def bench_gap_report_registry(benchmark, results_dir):
    """Every registered solver scored against the exact optimum (Table I).

    Asserts the two harness invariants end-to-end: the exact solver's
    own gap is identically zero on every cell, and no solver's gap is
    negative (nothing beats the optimum it is measured against).
    """
    from repro.experiments.optimality import fitted_inputs, gap_report

    def generate():
        inputs = fitted_inputs("TC-Bert", num_sizes=3)
        return inputs, gap_report(solver_names(), inputs)

    inputs, report = run_once(benchmark, generate)
    assert all(g == 0.0 for g in report["exact"].values())
    assert len(report["exact"]) >= 3
    for name, cells in report.items():
        for gap in cells.values():
            assert gap >= 0.0, f"{name} beat the exact optimum"
    lines = [f"sizes: {[s for s, _ in inputs]}"]
    for name in sorted(report):
        cells = ", ".join(
            ("inf" if math.isinf(g) else f"{100 * g:.1f}%")
            for _, g in sorted(report[name].items())
        )
        lines.append(f"{name:12s} {cells}")
    save_result(results_dir, "optimality_gaps", "\n".join(lines))
