"""Table I — the qualitative planner-feature matrix."""

from repro.experiments.report import render_table
from repro.experiments.tables import table1_rows

from conftest import run_once, save_result


def bench_table1_capabilities(benchmark, results_dir):
    rows = run_once(benchmark, table1_rows)
    text = render_table(rows, title="Table I: planner capability matrix")
    save_result(results_dir, "table1_capabilities", text)
    by_name = {r["planner"]: r for r in rows}
    assert by_name["mimose"]["dynamic_input"] and by_name["dtr"]["dynamic_input"]
    assert not by_name["sublinear"]["dynamic_input"]
    # hybrid Mimose keeps input-awareness and gains Capuchin's swapping
    assert by_name["mimose-hybrid"]["swapping"]
    assert by_name["mimose-hybrid"]["dynamic_input"]
    assert not by_name["mimose"]["swapping"]
