"""Shared benchmark utilities.

Every benchmark regenerates one table or figure from the paper, renders
it as paper-style text, and saves the artifact under
``benchmarks/results/`` so the reproduction output survives pytest's
output capture.  Wall-clock timing of the generators themselves is what
pytest-benchmark records (rounds=1 — these are long sweeps, not
micro-kernels).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: pathlib.Path, name: str, text: str) -> None:
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a long-running generator exactly once."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
