"""Table IV — regression-family comparison for the memory estimator.

Paper shape: the quadratic polynomial achieves thousandth-level error
from 10 samples with microsecond-scale prediction; the linear model
underfits (~4 %); SVR/decision trees overfit 10 samples and lag even with
50; XGBoost-style boosting is orders of magnitude slower to train and
predict.
"""

from repro.experiments.report import render_table
from repro.experiments.tables import table4_rows

from conftest import run_once, save_result


def bench_table4_regressors(benchmark, results_dir):
    rows = run_once(benchmark, table4_rows)
    text = render_table(
        rows, title="Table IV: estimator regression models on TC-Bert"
    )
    save_result(results_dir, "table4_regressors", text)
    by_key = {(r["regressor"], r["num_samples"]): r for r in rows}
    poly2 = by_key[("poly2", 10)]
    # the quadratic wins: thousandth-level error
    assert poly2["error_pct"] < 0.5
    # and beats every non-polynomial family at 10 samples
    for name in ("svr", "tree", "gbt"):
        assert by_key[(name, 10)]["error_pct"] > poly2["error_pct"] + 0.5
    # linear underfits the quadratic law
    assert by_key[("poly1", 10)]["error_pct"] > poly2["error_pct"]
    # boosting is by far the slowest to train and predict
    assert by_key[("gbt", 10)]["train_time_ms"] > 50 * poly2["train_time_ms"]
    assert by_key[("gbt", 10)]["predict_latency_us"] > 5 * poly2["predict_latency_us"]
    # polynomial fit and predict stay in the ms / tens-of-us regime
    assert poly2["train_time_ms"] < 50
    assert poly2["predict_latency_us"] < 5000
