#!/usr/bin/env python
"""Compare a pytest-benchmark JSON export against the committed baseline.

Usage::

    python -m pytest benchmarks/bench_micro_latency.py benchmarks/bench_fastpath.py \
        --benchmark-json=bench_out.json
    python benchmarks/check_perf.py bench_out.json

The baseline (``benchmarks/perf_baseline.json``) records reference mean
wall-clock seconds per benchmark.  A benchmark fails the check when its
mean exceeds ``baseline * tolerance``.  The tolerance is deliberately
loose (CI machines vary a lot); the *exact* guards — replay >= 2x with
bit-identical digests, serial == parallel — are asserted inside
``bench_fastpath.py`` itself, so this script only has to catch gross
wall-clock regressions.

Benchmarks missing from the baseline are reported but do not fail (add
them to the baseline when introducing them); baseline entries missing
from the results fail, so the perf suite cannot silently shrink.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

DEFAULT_BASELINE = pathlib.Path(__file__).parent / "perf_baseline.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", type=pathlib.Path,
                        help="pytest-benchmark --benchmark-json output")
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=DEFAULT_BASELINE)
    parser.add_argument(
        "--tolerance", type=float, default=3.0,
        help="fail when mean exceeds baseline * tolerance (default 3.0)",
    )
    parser.add_argument(
        "--min-slack", type=float, default=1e-3,
        help=(
            "absolute seconds always allowed on top of the baseline, so "
            "microsecond-scale benchmarks are not failed by timer noise"
        ),
    )
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())["benchmarks"]
    results = json.loads(args.results.read_text())
    measured = {
        b["name"]: b["stats"]["mean"] for b in results["benchmarks"]
    }

    failures: list[str] = []
    for name, mean in sorted(measured.items()):
        ref = baseline.get(name)
        if ref is None:
            print(f"NEW      {name}: {mean:.4f}s (not in baseline)")
            continue
        limit = max(ref * args.tolerance, ref + args.min_slack)
        status = "OK" if mean <= limit else "REGRESSED"
        print(f"{status:<8} {name}: {mean:.4f}s (baseline {ref:.4f}s, "
              f"limit {limit:.4f}s)")
        if mean > limit:
            failures.append(name)

    missing = sorted(set(baseline) - set(measured))
    for name in missing:
        print(f"MISSING  {name}: in baseline but not measured")
        failures.append(name)

    if failures:
        print(f"\nperf check FAILED: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("\nperf check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
