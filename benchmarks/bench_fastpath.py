"""Hot-path benchmarks: replay cache, compiled templates, parallel sweeps.

Three fast paths were added to the execution engine
(docs/performance.md):

* the **iteration replay cache** — provably-identical steady-state
  iterations are served from recorded stats instead of re-running the
  tensor-level allocator loop;
* the **compiled-template tier** — near-recurrent iterations (same plan,
  *new* input size) are served by evaluating a certified symbolic
  template instead of full simulation;
* the **parallel sweep runner** — grid points run in worker processes,
  byte-identical to the serial sweep.

Both are *pure* optimisations: every benchmark here asserts result
equivalence (via :meth:`RunResult.digest`, which excludes only the
genuinely wall-clock ``planning_time``) alongside the speedup, and that
the never-replay guarantees (REACTIVE mode, fault windows, recovery)
hold.
"""

import os
import time

from repro.engine.executor import TrainingExecutor
from repro.engine.stats import RunResult
from repro.experiments.report import render_table
from repro.experiments.runner import make_planner, sweep
from repro.experiments.tasks import GB, load_task
from repro.planners.base import ModelView
from repro.tensorsim.faults import FaultPlan

from conftest import run_once, save_result

BUDGET = 4 * GB
TASK = "TC-Bert"
#: distinct shapes in the steady-state stream (bucketed-batching regime)
STEADY_SHAPES = 8
#: repetitions of the shape cycle
STEADY_CYCLES = 30


def _steady_stream(task):
    """A cache-hot input stream: a small shape bucket cycled many times.

    This is the steady-state regime of bucketed/sorted NLP batching —
    after warmup every iteration's world recurs, which is exactly the
    case the replay cache exists for.
    """
    bucket = [b for _, b in zip(range(STEADY_SHAPES), task.loader)]
    return bucket * STEADY_CYCLES


def _run_stream(
    task, stream, *, replay, compiled=True, planner_name="mimose", faults=None
):
    model = task.fresh_model()
    planner = make_planner(planner_name, BUDGET, task)
    planner.setup(ModelView(model))
    executor = TrainingExecutor(
        model,
        planner,
        capacity_bytes=BUDGET,
        coalescing=planner.allocator_coalescing,
        replay=replay,
        compiled=compiled,
        faults=faults.build() if faults is not None else None,
    )
    result = RunResult(task.spec.abbr, planner_name, BUDGET)
    start = time.perf_counter()
    for batch in stream:
        result.append(executor.step(batch))
    elapsed = time.perf_counter() - start
    return elapsed, result, executor


def bench_fastpath_replay_speedup(benchmark, results_dir):
    """Steady-state cache-hot run: >= 2x faster, bit-identical results."""

    def scenario():
        task = load_task(TASK, iterations=STEADY_SHAPES, seed=0)
        stream = _steady_stream(task)
        # compiled=False on the replay run keeps this a measurement of
        # the exact-replay tier alone (bench_compiled_sweep_speedup
        # covers the compiled tier).
        t_full, full, _ = _run_stream(task, stream, replay=False)
        t_replay, replayed, executor = _run_stream(
            task, stream, replay=True, compiled=False
        )
        cache = executor.replay
        return {
            "iterations": len(stream),
            "full_s": t_full,
            "replay_s": t_replay,
            "speedup": t_full / t_replay,
            "replay_hits": cache.hits,
            "replay_hit_rate": cache.hit_rate,
            "digest_full": full.digest(),
            "digest_replay": replayed.digest(),
        }

    row = run_once(benchmark, scenario)
    text = render_table(
        [{k: v for k, v in row.items() if not k.startswith("digest")}],
        title="Fast path: iteration replay (steady-state Mimose run)",
    )
    save_result(results_dir, "fastpath_replay", text)
    # equivalence first: replay must change nothing observable
    assert row["digest_replay"] == row["digest_full"]
    assert row["replay_hit_rate"] >= 0.5, row
    assert row["speedup"] >= 2.0, row


#: length of the fig 10-style multi-size stream for the compiled bench
COMPILED_STREAM_N = 8000
#: full-simulation reference window (same stream prefix, no caches)
COMPILED_REF_N = 300


def bench_compiled_sweep_speedup(benchmark, results_dir):
    """Multi-size stream: compiled tier >= 10x full sim, bit-identical.

    The stream is the task loader's natural size distribution (the fig
    10 sweep regime, *not* the bucketed ``_steady_stream``): sizes both
    recur (served by exact replay) and appear fresh (served by the
    compiled tier once a template is certified).  The full-simulation
    per-iteration rate comes from a shorter prefix of the same stream —
    at ~4 ms/iteration an 8000-iteration uncached reference would
    dominate the whole suite's wall clock for no extra information.
    Equivalence is asserted over that shared prefix via rolling digests.
    """

    def scenario():
        task = load_task(TASK, iterations=COMPILED_STREAM_N, seed=0)
        stream = [b for _, b in zip(range(COMPILED_STREAM_N), task.loader)]
        prefix = stream[:COMPILED_REF_N]
        t_full, full, _ = _run_stream(
            task, prefix, replay=False, planner_name="sublinear"
        )
        t_comp, comp, executor = _run_stream(
            task, stream, replay=True, planner_name="sublinear"
        )
        cache = executor.compiled
        full_rate = t_full / len(prefix)
        comp_rate = t_comp / len(stream)
        return {
            "iterations": len(stream),
            "full_ms_per_iter": 1e3 * full_rate,
            "compiled_ms_per_iter": 1e3 * comp_rate,
            "speedup": full_rate / comp_rate,
            "compiled_hits": cache.hits,
            "certifications": cache.certifications,
            "fallbacks": cache.fallbacks,
            "replay_hits": executor.replay.hits,
            "digest_full": full.digest(),
            "digest_compiled_prefix": comp.rolling_digests()[
                COMPILED_REF_N - 1
            ],
        }

    row = run_once(benchmark, scenario)
    text = render_table(
        [{k: v for k, v in row.items() if not k.startswith("digest")}],
        title="Fast path: compiled templates (fig 10-style size sweep)",
    )
    save_result(results_dir, "fastpath_compiled", text)
    # equivalence first: the compiled tier must change nothing observable
    assert row["digest_compiled_prefix"] == row["digest_full"]
    # the compiled tier must actually have served iterations
    assert row["compiled_hits"] > 0, row
    assert row["certifications"] > 0, row
    assert row["speedup"] >= 10.0, row


def bench_fastpath_parallel_sweep(benchmark, results_dir):
    """4-way sweep: byte-identical to serial; faster given >= 4 CPUs."""

    def scenario():
        task = load_task(TASK, iterations=40, seed=0)
        planners = ("sublinear", "mimose")
        budgets = [4 * GB, 5 * GB]
        start = time.perf_counter()
        serial = sweep(task, planners, budgets)
        t_serial = time.perf_counter() - start
        start = time.perf_counter()
        parallel = sweep(task, planners, budgets, jobs=4)
        t_parallel = time.perf_counter() - start
        return {
            "grid_points": len(serial),
            "serial_s": t_serial,
            "parallel_s": t_parallel,
            "speedup": t_serial / t_parallel,
            "digests_serial": [r.digest() for r in serial],
            "digests_parallel": [r.digest() for r in parallel],
        }

    row = run_once(benchmark, scenario)
    text = render_table(
        [{k: v for k, v in row.items() if not k.startswith("digests")}],
        title="Fast path: parallel sweep (4 workers)",
    )
    save_result(results_dir, "fastpath_parallel", text)
    # byte-identical, in order — unconditionally
    assert row["digests_parallel"] == row["digests_serial"]
    # the wall-clock claim needs the cores to exist
    if (os.cpu_count() or 1) >= 4:
        assert row["speedup"] >= 2.0, row


def bench_fastpath_never_replays_reactive(benchmark, results_dir):
    """REACTIVE (DTR) iterations are never served from the replay cache."""

    def scenario():
        task = load_task(TASK, iterations=STEADY_SHAPES, seed=0)
        stream = _steady_stream(task)
        _, result, executor = _run_stream(
            task, stream, replay=True, planner_name="dtr"
        )
        cache = executor.replay
        return {
            "iterations": result.num_iterations,
            "replay_hits": cache.hits,
            "replay_bypasses": cache.bypasses,
        }

    row = run_once(benchmark, scenario)
    text = render_table(
        [row], title="Fast path: REACTIVE mode bypasses the replay cache"
    )
    save_result(results_dir, "fastpath_reactive", text)
    assert row["replay_hits"] == 0
    assert row["replay_bypasses"] == row["iterations"]


def bench_fastpath_faulted_equivalence(benchmark, results_dir):
    """Fault/recovery runs bypass+invalidate replay yet stay equivalent."""

    def scenario():
        faults = FaultPlan.parse(
            "frag:start=60,iters=4,bytes=1G;alloc:start=100,count=1,min=1M",
            seed=11,
        )
        task = load_task(TASK, iterations=STEADY_SHAPES, seed=0)
        stream = _steady_stream(task)
        _, full, _ = _run_stream(task, stream, replay=False, faults=faults)
        _, replayed, executor = _run_stream(
            task, stream, replay=True, faults=faults
        )
        cache = executor.replay
        return {
            "iterations": full.num_iterations,
            "retries": replayed.total_retries,
            "recovered": replayed.recovered_count,
            "replay_hits": cache.hits,
            "bypasses": cache.bypasses,
            "invalidations": cache.invalidations,
            "digest_full": full.digest(),
            "digest_replay": replayed.digest(),
        }

    row = run_once(benchmark, scenario)
    text = render_table(
        [{k: v for k, v in row.items() if not k.startswith("digest")}],
        title="Fast path: fault windows invalidate, results stay identical",
    )
    save_result(results_dir, "fastpath_faulted", text)
    assert row["digest_replay"] == row["digest_full"]
    # the fault window must actually have been hit and invalidated
    assert row["bypasses"] > 0
    assert row["invalidations"] > 0
