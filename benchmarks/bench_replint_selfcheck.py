"""Wall-time gate on the replint self-check — the lint gate stays fast.

The dataflow tier (CFGs, fixpoint solving, interprocedural taint
summaries, call-graph reachability) runs on every ``src`` file in CI;
this benchmark pins its full-repo wall time in ``perf_baseline.json`` so
an accidentally super-linear analysis (a non-memoized CFG rebuild, a
summary fixpoint that re-analyzes the world) fails perf-smoke instead of
quietly doubling every CI run.

The measured unit is the same work ``python -m repro.analysis src``
does — config load, rule construction, both driver passes — minus
process startup and report rendering, which are constant and noisy.
"""

from pathlib import Path

from repro.analysis import rules as _rules  # noqa: F401  (registers rules)
from repro.analysis.config import load_config
from repro.analysis.core import (
    analyze_contexts,
    create_rules,
    discover_files,
    load_contexts,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def _self_check() -> int:
    config = load_config(REPO_ROOT, pyproject=REPO_ROOT / "pyproject.toml")
    rules = create_rules(config.rules)
    files = discover_files([REPO_ROOT / "src"], REPO_ROOT)
    contexts = load_contexts(files, REPO_ROOT)
    findings = analyze_contexts(contexts, rules)
    # the repo ships clean (empty baseline); a finding here means the
    # benchmark is measuring a broken tree, not a slow one
    assert findings == [], [f.location() for f in findings]
    return len(contexts)


def bench_replint_selfcheck(benchmark):
    """Full-repo analysis with every rule, dataflow tier included."""
    n_files = benchmark(_self_check)
    assert n_files > 40  # the sweep actually covered the package
