"""Fig 5 — DTR's overheads and memory overshoot on MC-Roberta.

Paper shape: cost upkeep averages ~26 % of iteration time (up to 40.1 %
at tight budgets); planning overhead grows as budgets tighten (up to
11.9 %); actual memory use (6.7/7/7.5/8 GB) far exceeds the logical
budgets (4.2/4.5/5/5.5 GB) through fragmentation.
"""

from repro.experiments.figures import fig5_data
from repro.experiments.report import render_table

from conftest import run_once, save_result


def bench_fig5_dtr_breakdown(benchmark, results_dir):
    rows = run_once(
        benchmark, fig5_data, budgets_gb=(3.0, 3.5, 4.0, 4.5), iterations=60
    )
    text = render_table(
        rows,
        columns=[
            "budget_gb", "actual_reserved_gb", "peak_in_use_gb",
            "compute_frac", "upkeep_frac", "planning_frac",
            "recompute_frac", "evictions",
        ],
        title="Fig 5: DTR time breakdown and memory overshoot (MC-Roberta)",
    )
    save_result(results_dir, "fig05_dtr_breakdown", text)
    # actual memory exceeds every logical budget (fragmentation)
    for r in rows:
        assert r["actual_reserved_gb"] > r["budget_gb"] * 1.2
        assert 0.05 < r["upkeep_frac"] < 0.5  # double-digit upkeep share
        assert r["oom_iterations"] == 0
    # tighter budgets cause at least as many evictions
    assert rows[0]["evictions"] >= rows[-1]["evictions"]
    benchmark.extra_info["mean_upkeep_frac"] = sum(
        r["upkeep_frac"] for r in rows
    ) / len(rows)
