"""Fig 11 — Mimose memory consumption vs input size per budget.

Paper shape: memory rises with input size until the budget is reached,
then flattens just below it (Mimose reserves 0.5-1 GB against
fragmentation); for small inputs no checkpointing happens at all; similar
input sizes share cached plans, so the curve steps in small segments.
"""

import os

from repro.experiments.figures import fig11_data
from repro.experiments.report import render_table

from conftest import run_once, save_result

GB = 1024**3
JOBS = min(3, os.cpu_count() or 1)


def bench_fig11_memory_consumption(benchmark, results_dir):
    budgets = (3.5, 4.5, 5.5)
    data = run_once(
        benchmark, fig11_data, budgets_gb=budgets, iterations=120, jobs=JOBS
    )
    rows = []
    for budget_gb, iters in data.items():
        responsive = [r for r in iters if r["mode"] == "normal"]
        small = [r for r in responsive if r["num_checkpointed"] == 0]
        planned = [r for r in responsive if r["num_checkpointed"] > 0]
        peak = max(r["peak_bytes"] for r in responsive)
        rows.append(
            {
                "budget_gb": budget_gb,
                "iters": len(iters),
                "no_ckpt_iters": len(small),
                "ckpt_iters": len(planned),
                "max_peak_gb": peak / GB,
                "headroom_gb": budget_gb - peak / GB,
                "ooms": sum(r["oom"] for r in iters),
            }
        )
        assert peak <= budget_gb * GB  # never exceeds the budget
        # memory grows with input size among unplanned (small) iterations
        if len(small) >= 2:
            by_size = sorted(small, key=lambda r: r["input_size"])
            assert by_size[0]["peak_bytes"] <= by_size[-1]["peak_bytes"]
    # at the tightest budget the consumption flattens just below the
    # budget, with the paper's ~0.5-1 GB reserve gap
    assert 0 < rows[0]["headroom_gb"] < 1.5
    # larger budgets need fewer checkpointed iterations
    assert rows[0]["ckpt_iters"] >= rows[-1]["ckpt_iters"]
    text = render_table(
        rows, title="Fig 11: Mimose memory use vs input size (TC-Bert)"
    )
    save_result(results_dir, "fig11_memory_use", text)
