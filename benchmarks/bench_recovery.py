"""Recovery under injected memory pressure — survival rate and slowdown.

Not a paper artifact: this benchmark exercises the OOM recovery ladder
(replan → widen reserve → full checkpoint) against deterministic fault
injection, comparing how each planner family weathers the same pressure:

* **mimose** — plan-based, with the recovery ladder: should survive every
  injected fragmentation spike and pay only a bounded slowdown;
* **mimose/no-recovery** — the same planner with the retry budget set to
  zero, i.e. the pre-recovery executor behaviour: the spike is a fatal
  OOM, which is the survival gap this subsystem exists to close;
* **dtr** — reactive: reacts to pressure by evicting, which often (but
  not always) rides out the spike at a recompute cost;
* **sublinear** — static: whatever its worst-case plan leaves free is all
  the slack it has; a spike larger than that slack would be fatal.

Shape to expect: mimose-with-recovery survives with mean iteration time
within 25 % of its fault-free run; the no-recovery run reports a fatal
OOM under the identical fault plan.
"""

from repro.engine.stats import RunResult
from repro.experiments.report import render_table
from repro.experiments.runner import run_task
from repro.experiments.tasks import GB, load_task
from repro.tensorsim.faults import FaultPlan, FragmentationSpike

from conftest import run_once, save_result

PLANNERS = ("mimose", "dtr", "sublinear")
ITERATIONS = 40
BUDGET = int(3.0 * GB)
FAULTS = FaultPlan(
    seed=7,
    spikes=(
        FragmentationSpike(
            start_iteration=15, num_iterations=4, reserve_bytes=800 * 1024**2
        ),
        FragmentationSpike(
            start_iteration=30, num_iterations=2, reserve_bytes=600 * 1024**2
        ),
    ),
)


def _slowdown(faulted: RunResult, clean: RunResult) -> float:
    if clean.mean_iteration_time() == 0:
        return float("inf")
    return faulted.mean_iteration_time() / clean.mean_iteration_time()


def recovery_rows() -> list[dict[str, object]]:
    task = load_task("TC-Bert", iterations=ITERATIONS)
    rows: list[dict[str, object]] = []
    configs = [(name, 3) for name in PLANNERS]
    # The pre-recovery executor, for the survival gap: identical planner
    # and fault plan, retry budget zero.
    configs.insert(1, ("mimose/no-recovery", 0))
    for label, retries in configs:
        name = label.split("/")[0]
        clean = run_task(
            task, name, BUDGET, max_iterations=ITERATIONS
        )
        faulted = run_task(
            task, name, BUDGET, max_iterations=ITERATIONS, faults=FAULTS,
            max_retries=retries,
        )
        modes = ", ".join(
            f"{m} x{c}" for m, c in sorted(faulted.recovery_modes().items())
        )
        rows.append(
            {
                "planner": label,
                "survived": faulted.succeeded,
                "oom_iterations": faulted.oom_count,
                "retries": faulted.total_retries,
                "recovered": faulted.recovered_count,
                "slowdown": _slowdown(faulted, clean),
                "recovery_modes": modes or "-",
            }
        )
    return rows


def bench_recovery(benchmark, results_dir):
    rows = run_once(benchmark, recovery_rows)
    text = render_table(
        rows,
        title=(
            f"Recovery under faults [TC-Bert @ {BUDGET / GB:.1f} GB, "
            f"{FAULTS.describe()}]"
        ),
    )
    save_result(results_dir, "recovery", text)
    by_planner = {r["planner"]: r for r in rows}
    # Mimose rides out the spikes via the recovery ladder...
    assert by_planner["mimose"]["survived"], by_planner["mimose"]
    assert by_planner["mimose"]["recovered"] >= 1, by_planner["mimose"]
    # ...at a bounded cost (the acceptance bar: within 25 % of fault-free).
    assert by_planner["mimose"]["slowdown"] <= 1.25, by_planner["mimose"]
    # The same pressure is fatal without the ladder — the survival gap
    # the subsystem exists to demonstrate.
    assert not by_planner["mimose/no-recovery"]["survived"], (
        by_planner["mimose/no-recovery"]
    )
    benchmark.extra_info["mimose_slowdown"] = by_planner["mimose"]["slowdown"]
