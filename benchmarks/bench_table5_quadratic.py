"""Table V — the quadratic estimator generalises across all six tasks.

Paper shape: thousandth-level relative error on the NLP tasks from 10
samples; a percent-level error on the OD tasks (whose content-dependent
head is excluded via memory reservation); training in ~1 ms and
prediction in tens of microseconds.
"""

from repro.experiments.report import render_table
from repro.experiments.tables import table5_rows

from conftest import run_once, save_result

NLP = {"MC-Roberta", "TR-T5", "QA-Bert", "TC-Bert"}


def bench_table5_quadratic(benchmark, results_dir):
    rows = run_once(benchmark, table5_rows, num_samples=10)
    text = render_table(
        rows, title="Table V: quadratic estimator across the six tasks"
    )
    save_result(results_dir, "table5_quadratic", text)
    for r in rows:
        if r["task"] in NLP:
            assert r["error_pct"] < 1.0, r  # thousandth-to-sub-percent level
        else:
            assert r["error_pct"] < 5.0, r  # OD tolerates percent level
        assert r["train_time_ms"] < 100
        assert r["predict_latency_us"] < 10_000
