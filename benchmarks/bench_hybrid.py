"""Hybrid (swap+recompute) Mimose vs the Capuchin baseline.

The action-layer refactor made Mimose's excess-covering step pluggable:
``--scheduler hybrid`` runs the same PCIe cost rule Capuchin uses, but
re-priced per input size from the Lightning estimator.  The paper's
input-dynamics argument then predicts a concrete win on a transformer
workload over a slow host link:

* **Capuchin** plans once for the largest measured shape and applies
  that plan to every iteration — it swaps the same units even on small
  inputs whose backward pass cannot hide the transfers, and its stalls
  accumulate across the whole run;
* **hybrid Mimose** re-plans per input size — small inputs have no
  excess and swap nothing, and the swap/recompute split shifts toward
  recompute exactly where transfers stop being hideable.

The benchmark pins that ordering: over a full run, hybrid Mimose's
aggregate swap stall must undercut Capuchin's, while mixing both
actions (some units swapped, some dropped) and respecting the budget
Capuchin overshoots.
"""

from dataclasses import replace

from repro.experiments.report import render_table
from repro.experiments.runner import run_task
from repro.experiments.tasks import GB, load_task
from repro.tensorsim.device import DeviceModel, V100

from conftest import run_once, save_result

TASK = "TC-Bert"
BUDGET = int(2.5 * GB)
ITERATIONS = 40
#: a congested host link (PCIe 3.0 x8-ish) — slow enough that swap-ins
#: are not always hidden by the backward pass, which is where the
#: per-size re-planning pays off
SLOW_PCIE = 6e9


def _run(planner, *, scheduler=None):
    device = DeviceModel(replace(V100, pcie_bandwidth=SLOW_PCIE))
    task = load_task(TASK, iterations=ITERATIONS, seed=0)
    result = run_task(
        task,
        planner,
        BUDGET,
        device=device,
        max_iterations=ITERATIONS,
        scheduler=scheduler,
    )
    return {
        "planner": planner + (f"+{scheduler}" if scheduler else ""),
        "stall_ms": 1e3 * sum(s.swap_stall_time for s in result.iterations),
        "swaps": sum(s.num_swapped for s in result.iterations),
        "drops": sum(s.num_checkpointed for s in result.iterations),
        "peak_reserved_gb": result.peak_reserved / GB,
        "total_s": result.total_time,
        "succeeded": result.succeeded,
    }


def bench_hybrid_mimose_stalls_less_than_capuchin(benchmark, results_dir):
    """Input-aware hybrid planning beats the static hybrid on stalls."""

    def scenario():
        return {
            "capuchin": _run("capuchin"),
            "hybrid": _run("mimose", scheduler="hybrid"),
        }

    rows = run_once(benchmark, scenario)
    capuchin, hybrid = rows["capuchin"], rows["hybrid"]
    text = render_table(
        [capuchin, hybrid],
        title=(
            f"Hybrid planning: {TASK} @ {BUDGET / GB:.1f} GB, "
            f"PCIe {SLOW_PCIE / 1e9:.0f} GB/s"
        ),
    )
    save_result(results_dir, "hybrid_vs_capuchin", text)
    # both complete, but only hybrid Mimose honours the budget
    assert capuchin["succeeded"] and hybrid["succeeded"], rows
    assert hybrid["peak_reserved_gb"] <= BUDGET / GB, rows
    # the hybrid plan genuinely mixes the two actions
    assert hybrid["swaps"] > 0 and hybrid["drops"] > 0, rows
    # the headline: per-size re-planning stalls less than the static plan
    assert hybrid["stall_ms"] < capuchin["stall_ms"], rows
