"""Hybrid (swap+recompute) Mimose vs the Capuchin baseline.

The action-layer refactor made Mimose's excess-covering step pluggable:
``--scheduler hybrid`` runs the same PCIe cost rule Capuchin uses, but
re-priced per input size from the Lightning estimator.  The paper's
input-dynamics argument then predicts a concrete win on a transformer
workload over a slow host link:

* **Capuchin** plans once for the largest measured shape and applies
  that plan to every iteration — it swaps the same units even on small
  inputs whose backward pass cannot hide the transfers, and its stalls
  accumulate across the whole run;
* **hybrid Mimose** re-plans per input size — small inputs have no
  excess and swap nothing, and the swap/recompute split shifts toward
  recompute exactly where transfers stop being hideable.

The benchmark pins that ordering: over a full run, hybrid Mimose's
aggregate swap stall must undercut Capuchin's, while mixing both
actions (some units swapped, some dropped) and respecting the budget
Capuchin overshoots.
"""

from dataclasses import replace

from repro.core.scheduler import predicted_swap_stall
from repro.experiments.report import render_table
from repro.experiments.runner import run_task
from repro.experiments.tasks import GB, load_task
from repro.tensorsim.device import DeviceModel, V100

from conftest import run_once, save_result

TASK = "TC-Bert"
BUDGET = int(2.5 * GB)
ITERATIONS = 40
#: a congested host link (PCIe 3.0 x8-ish) — slow enough that swap-ins
#: are not always hidden by the backward pass, which is where the
#: per-size re-planning pays off
SLOW_PCIE = 6e9


def _run(planner, *, scheduler=None):
    device = DeviceModel(replace(V100, pcie_bandwidth=SLOW_PCIE))
    task = load_task(TASK, iterations=ITERATIONS, seed=0)
    result = run_task(
        task,
        planner,
        BUDGET,
        device=device,
        max_iterations=ITERATIONS,
        scheduler=scheduler,
    )
    return {
        "planner": planner + (f"+{scheduler}" if scheduler else ""),
        "stall_ms": 1e3 * sum(s.swap_stall_time for s in result.iterations),
        "swaps": sum(s.num_swapped for s in result.iterations),
        "drops": sum(s.num_checkpointed for s in result.iterations),
        "peak_reserved_gb": result.peak_reserved / GB,
        "total_s": result.total_time,
        "succeeded": result.succeeded,
    }


def bench_hybrid_mimose_stalls_less_than_capuchin(benchmark, results_dir):
    """Input-aware hybrid planning beats the static hybrid on stalls."""

    def scenario():
        return {
            "capuchin": _run("capuchin"),
            "hybrid": _run("mimose", scheduler="hybrid"),
        }

    rows = run_once(benchmark, scenario)
    capuchin, hybrid = rows["capuchin"], rows["hybrid"]
    text = render_table(
        [capuchin, hybrid],
        title=(
            f"Hybrid planning: {TASK} @ {BUDGET / GB:.1f} GB, "
            f"PCIe {SLOW_PCIE / 1e9:.0f} GB/s"
        ),
    )
    save_result(results_dir, "hybrid_vs_capuchin", text)
    # both complete, but only hybrid Mimose honours the budget
    assert capuchin["succeeded"] and hybrid["succeeded"], rows
    assert hybrid["peak_reserved_gb"] <= BUDGET / GB, rows
    # the hybrid plan genuinely mixes the two actions
    assert hybrid["swaps"] > 0 and hybrid["drops"] > 0, rows
    # the headline: per-size re-planning stalls less than the static plan
    assert hybrid["stall_ms"] < capuchin["stall_ms"], rows


# ------------------------------------------------- pricing calibration

#: host-link grid for the calibration check — the stall/overlap balance
#: shifts with bandwidth, so the measured-vs-ratio gap need not show at
#: every point, only somewhere on the grid
PCIE_GRID = (4e9, 6e9, 8e9)


def _calibration_run(pcie, bwd_ratio=None):
    """One hybrid run; returns predicted vs simulated aggregate stall.

    The prediction re-prices every responsive iteration through the
    planner's own :meth:`scheduler_input` and the run's cost model —
    exactly the quantities the selection loop used (the run OOM-free, so
    post-run planner state equals plan-time state).
    """
    device = DeviceModel(replace(V100, pcie_bandwidth=pcie))
    task = load_task(TASK, iterations=ITERATIONS, seed=0)
    box = []
    result = run_task(
        task,
        "mimose",
        BUDGET,
        device=device,
        max_iterations=ITERATIONS,
        scheduler="hybrid",
        bwd_ratio=bwd_ratio,
        observers=[box.append],
    )
    assert result.succeeded
    planner = box[0].planner
    model = planner.scheduler.cost_model
    predicted = 0.0
    modes = set()
    for s in result.iterations:
        if s.is_collect:
            continue
        inp = planner.scheduler_input(s.input_size)
        modes.add(model.pricing_mode(inp))
        if inp.excess_bytes <= 0:
            continue
        assignment = planner.scheduler.assign(inp)
        predicted += predicted_swap_stall(model, assignment, inp)
    simulated = sum(s.swap_stall_time for s in result.iterations)
    return {
        "pcie_gbps": pcie / 1e9,
        "pricing": "ratio-2x" if bwd_ratio is not None else "measured",
        "modes": ",".join(sorted(modes)),
        "predicted_ms": 1e3 * predicted,
        "simulated_ms": 1e3 * simulated,
        "error_ms": 1e3 * abs(predicted - simulated),
    }


def bench_measured_backwards_calibrate_stall_prediction(
    benchmark, results_dir
):
    """Measured backward pricing predicts simulated stalls better than
    the backward = 2x forward constant on at least one grid point.

    Per-point: the hybrid plan's predicted aggregate swap stall (the
    cost model's own arithmetic over the plans it emitted) is compared
    against the stall the simulation actually charged; the absolute
    error under measured pricing must undercut the 2x-constant error
    strictly somewhere on the bandwidth grid — the miscalibration the
    constant bakes in is real, not a rounding artifact.
    """

    def scenario():
        rows = []
        for pcie in PCIE_GRID:
            rows.append(_calibration_run(pcie))
            rows.append(_calibration_run(pcie, bwd_ratio=2.0))
        return rows

    rows = run_once(benchmark, scenario)
    text = render_table(
        rows,
        title=(
            f"Swap-stall calibration: {TASK} @ {BUDGET / GB:.1f} GB "
            f"(predicted vs simulated, measured pricing vs 2x constant)"
        ),
    )
    save_result(results_dir, "stall_calibration", text)
    by_pcie = {}
    for row in rows:
        by_pcie.setdefault(row["pcie_gbps"], {})[row["pricing"]] = row
    # measured pricing actually engaged (not the ratio fallback)
    assert all(
        pair["measured"]["modes"] == "measured-bwd"
        for pair in by_pcie.values()
    ), rows
    assert all(
        pair["ratio-2x"]["modes"] == "ratio-override"
        for pair in by_pcie.values()
    ), rows
    # the acceptance inequality: strictly better somewhere on the grid
    wins = [
        pcie
        for pcie, pair in by_pcie.items()
        if pair["measured"]["error_ms"] < pair["ratio-2x"]["error_ms"]
    ]
    assert wins, rows
