"""Table III — Mimose overhead breakdown per task.

Paper shape: the collector runs ~10 times per epoch; estimator+scheduler
cost 0.26-1.25 ms per generated plan (well under 1 % of an iteration);
plans are generated only dozens of times per epoch thanks to the cache;
total overhead equals a few iterations' worth of time (3.48 on average).
"""

from repro.experiments.report import render_table
from repro.experiments.tables import table3_rows

from conftest import run_once, save_result


def bench_table3_overhead(benchmark, results_dir):
    rows = run_once(benchmark, table3_rows, iterations=150)
    text = render_table(
        rows,
        columns=[
            "task", "budget_gb", "mean_iter_ms", "collector_ms",
            "collector_iters", "fit_ms", "estimator_scheduler_ms_min",
            "estimator_scheduler_ms_max", "plans_generated",
            "total_overhead_iters", "replay_hit_pct", "compiled_hit_pct",
        ],
        title="Table III: Mimose overhead breakdown (150-iteration epochs)",
    )
    save_result(results_dir, "table3_overhead", text)
    for r in rows:
        # ~10 sheltered iterations, as in the paper
        assert 8 <= r["collector_iters"] <= 20, r
        # Estimator+scheduler stay in the sub-10ms regime per plan.  Two
        # exclusions keep this machine-independent (see table3_rows and
        # docs/performance.md): the one-time estimator fit is reported
        # separately (fit_ms, ungated — wall-clock proportional to model
        # size and host speed), and recovered iterations are skipped
        # (their planning_time carries the simulated cost of the OOM'd
        # attempts, not planner work).  Both used to leak into the max
        # and made this bench flake.
        assert r["estimator_scheduler_ms_max"] < 10.0, r
        assert r["fit_ms"] >= 0.0, r
        # Plans are generated far less often than once per iteration.
        # This is a structural count (plan-cache misses), not the old
        # wall-clock "planning_time > 0.1 ms" threshold.
        assert r["plans_generated"] < 150, r
    # total_overhead also excludes the one-time fit (it is gated here,
    # so keeping the fit in made the bound machine-dependent — the last
    # flake source in this bench).
    mean_overhead = sum(r["total_overhead_iters"] for r in rows) / len(rows)
    # the paper reports 3.48 iterations on average; ours lands in the same
    # few-iterations regime
    assert mean_overhead < 8.0
    benchmark.extra_info["mean_overhead_iters"] = mean_overhead
