"""Fig 9 — peak memory when checkpointing different Bert encoders.

Paper shape: for encoders 1..11 the peak is similar and clearly below the
no-checkpoint peak, but checkpointing the *last* encoder gives almost no
reduction (its recompute happens while everything else is resident) —
the motivation for Algorithm 1's earliest-timestamp preference.
"""

from repro.experiments.figures import fig9_data
from repro.experiments.report import render_table
from repro.models.base import BatchInput
from repro.models.registry import build_model
from repro.planners.analysis import no_checkpoint_peak
from repro.planners.base import ModelView
from repro.tensorsim.dtypes import INT64

from conftest import run_once, save_result

GB = 1024**3


def bench_fig9_encoder_choice(benchmark, results_dir):
    seqlens = (128, 256, 384, 512)
    data = run_once(benchmark, fig9_data, seqlens=seqlens, batch_size=32)

    model = build_model("bert-base")
    view = ModelView(model)
    rows = []
    for seqlen in seqlens:
        batch = BatchInput((32, seqlen), INT64)
        ub = no_checkpoint_peak(
            view.profiles(batch),
            static_bytes=view.static_memory.total,
            input_nbytes=batch.nbytes,
        )
        series = dict(data[seqlen])
        rows.append(
            {
                "seqlen": seqlen,
                "no_ckpt_gb": ub / GB,
                "ckpt_enc0_gb": series[0] / GB,
                "ckpt_enc5_gb": series[5] / GB,
                "ckpt_enc11_gb": series[11] / GB,
                "last_vs_nockpt": series[11] / ub,
            }
        )
        # early encoders help; the last one does not
        assert series[0] < ub
        assert series[11] >= 0.99 * ub
    text = render_table(
        rows, title="Fig 9: peak memory checkpointing encoder k (Bert-base, b=32)"
    )
    save_result(results_dir, "fig09_encoder_choice", text)
