"""Fig 4 — Sublinear's conservatism wastes budget on small inputs.

Paper shape: under a 3 GB budget on TC-Bert, the static worst-case plan
leaves over 1 GB unused on small sequences and costs up to ~35 % in
throughput versus no checkpointing.
"""

from repro.experiments.figures import fig4_data
from repro.experiments.report import render_table

from conftest import run_once, save_result

GB = 1024**3


def bench_fig4_sublinear_waste(benchmark, results_dir):
    data = run_once(benchmark, fig4_data, budget_gb=3.0, iterations=60)
    rows = data["rows"]
    small = [r for r in rows if r["seqlen"] <= 100]
    large = [r for r in rows if r["seqlen"] >= 250]
    summary = [
        {
            "group": "small inputs (len<=100)",
            "count": len(small),
            "mean_unused_gb": sum(r["unused_budget"] for r in small) / max(len(small), 1) / GB,
            "mean_slowdown": sum(r["slowdown"] for r in small) / max(len(small), 1),
        },
        {
            "group": "large inputs (len>=250)",
            "count": len(large),
            "mean_unused_gb": sum(r["unused_budget"] for r in large) / max(len(large), 1) / GB,
            "mean_slowdown": sum(r["slowdown"] for r in large) / max(len(large), 1),
        },
        {
            "group": "all",
            "count": len(rows),
            "mean_unused_gb": sum(r["unused_budget"] for r in rows) / len(rows) / GB,
            "mean_slowdown": data["mean_slowdown"],
        },
    ]
    text = render_table(
        summary,
        title="Fig 4: Sublinear @3GB on TC-Bert — unused budget and slowdown vs baseline",
    )
    text += f"\nmax unused budget: {data['max_unused_budget'] / GB:.2f} GB (paper: ~1.2 GB)"
    save_result(results_dir, "fig04_sublinear_waste", text)
    # the paper's qualitative claims
    assert data["max_unused_budget"] > 0.25 * GB
    assert summary[0]["mean_unused_gb"] > summary[1]["mean_unused_gb"]
    assert data["mean_slowdown"] > 1.05
