"""Micro-benchmarks of the Mimose critical-path components.

These are genuine wall-clock measurements (the same Python work the real
Mimose does on its critical path), so pytest-benchmark's statistics are
meaningful here: estimator fit, per-size prediction, Algorithm 1
scheduling, and cache lookup.
"""

import numpy as np

from repro.core.collector import ShuttlingCollector
from repro.core.estimator import LightningMemoryEstimator
from repro.core.plan_cache import PlanCache
from repro.solvers import (
    GreedyScheduler,
    HybridGreedyScheduler,
    PcieCostModel,
    SolverInput,
)
from repro.engine.stats import UnitMeasurement
from repro.planners.base import CheckpointPlan
from repro.tensorsim.allocator import CachingAllocator

MB = 1 << 20
GB = 1 << 30


def _collector(num_units=12, num_sizes=10):
    c = ShuttlingCollector(min_iterations=1)
    rng = np.random.default_rng(0)
    sizes = rng.integers(1_000, 20_000, num_sizes)
    for s in sizes:
        c.ingest(
            UnitMeasurement(
                f"enc.{u}", int(s), int(0.01 * s * s + 300 * s), 1e-4
            )
            for u in range(num_units)
        )
    return c


def bench_estimator_fit(benchmark):
    """Estimator training: ~1 ms per Table IV."""
    collector = _collector()
    est = LightningMemoryEstimator()
    benchmark(est.fit, collector)


def bench_estimator_predict_all(benchmark):
    """Per-iteration prediction of all 12 units: tens of microseconds."""
    est = LightningMemoryEstimator()
    est.fit(_collector())
    result = benchmark(est.predict_all_bytes, 12_345)
    assert len(result) == 12


def bench_scheduler_greedy(benchmark):
    """Algorithm 1 over 12 units: well under a millisecond."""
    est = {f"enc.{i}": (100 + 3 * i) * MB for i in range(12)}
    order = {u: i for i, u in enumerate(est)}
    inp = SolverInput(est_bytes=est, order=order, excess_bytes=500 * MB)
    chosen = benchmark(GreedyScheduler().schedule, inp)
    assert chosen


def bench_scheduler_hybrid_assign(benchmark):
    """Hybrid swap/recompute pricing over 400 units.

    The window/envelope are hoisted out of the selection loop, so the
    pass is O(n log n) (the size sort) — a few hundred microseconds at
    this unit count, not the quadratic re-pricing it once was.
    """
    n = 400
    est = {f"enc.{i}": (20 + (i * 37) % 300) * MB for i in range(n)}
    order = {u: i for i, u in enumerate(est)}
    est_time = {u: 1e-4 + 5e-7 * i for i, u in enumerate(est)}
    bwd_time = {u: 1.6 * t for u, t in est_time.items()}
    inp = SolverInput(
        est_bytes=est,
        order=order,
        excess_bytes=sum(est.values()) // 2,
        est_time=est_time,
        bwd_time=bwd_time,
    )
    scheduler = HybridGreedyScheduler(PcieCostModel(pcie_bandwidth=12e9))
    assignment = benchmark(scheduler.assign, inp)
    assert assignment.units


def bench_plan_cache_lookup(benchmark):
    """Cache hit path: microseconds (the common responsive-phase case)."""
    cache = PlanCache()
    for s in range(1_000, 65_000, 500):
        cache.put(s, CheckpointPlan(frozenset({"enc.0"}), str(s)))
    result = benchmark(cache.get, 32_000)
    assert result is not None


def bench_allocator_10k_live_blocks(benchmark):
    """malloc/free churn against a heap holding >10k live blocks.

    Long-context transformer iterations keep every per-token activation
    alive until backward, so the allocator's free-list scan runs against
    a densely populated heap.  The scenario pins the steady-state churn
    cost (allocate/free a mid-sized block, plus the fragmentation stats
    the executor reads every iteration) from staying flat as the
    live-block population grows — both the best-fit lookup and the
    largest-block maximum are served by the size-bucketed free index,
    never by a linear scan over >10k blocks.
    """
    rng = np.random.default_rng(0)
    alloc = CachingAllocator(64 * GB)
    live = []
    for i, nbytes in enumerate(rng.integers(16 * 1024, 4 * MB, 14_000)):
        block = alloc.malloc(int(nbytes), owner=f"act.{i}")
        if i % 7 == 6:
            alloc.free(block)
        else:
            live.append(block)
    assert len(live) > 10_000

    def churn():
        for _ in range(32):
            block = alloc.malloc(512 * 1024, owner="churn")
            alloc.free(block)
            alloc.fragmentation_bytes()
            alloc.largest_free_block()

    benchmark(churn)
    assert alloc.stats.num_allocs == alloc.stats.num_frees + len(live)


def bench_end_to_end_plan_generation(benchmark):
    """Estimator + scheduler together — the paper's 0.26-1.25 ms range."""
    est = LightningMemoryEstimator()
    est.fit(_collector())
    scheduler = GreedyScheduler()
    order = {f"enc.{i}": i for i in range(12)}

    def make_plan(size=15_000):
        bytes_ = est.predict_all_bytes(size)
        excess = sum(bytes_.values()) // 2
        return scheduler.schedule(
            SolverInput(est_bytes=bytes_, order=order, excess_bytes=excess)
        )

    plan = benchmark(make_plan)
    assert plan
