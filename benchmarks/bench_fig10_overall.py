"""Fig 10 — overall performance: normalized training time vs budget for
every Table II task under every planner.

Paper shape to reproduce (per panel): Mimose is the fastest planner at
every budget, improving over Sublinear by ~18 % and DTR by ~15 % on
average; all planners approach the baseline as the budget rises; Mimose
and Sublinear respect the budget while DTR (always) and Checkmate/MONeT
(on the OD tasks, where their static graphs cannot follow the input
shapes) exceed it.
"""

import os

import pytest

from repro.experiments.figures import fig10_data
from repro.experiments.report import render_table

from conftest import run_once, save_result

NLP_TASKS = ("MC-Roberta", "TR-T5", "QA-Bert", "TC-Bert")
OD_TASKS = ("OD-R50", "OD-R101")
# parallel grid workers (results are byte-identical to serial; see
# docs/performance.md); capped so laptop CI machines are not oversubscribed
JOBS = min(4, os.cpu_count() or 1)


def _render(data):
    rows = []
    for planner, series in data["series"].items():
        for point in series:
            rows.append(
                {
                    "planner": planner,
                    "budget_gb": point["budget_gb"],
                    "norm_time": point["normalized_time"],
                    "peak_reserved_gb": point["peak_reserved_gb"],
                    "in_budget": point["respects_budget"],
                    "oom": point["oom_iterations"],
                }
            )
    title = (
        f"Fig 10 [{data['task']}]: normalized time vs budget "
        f"(bounds {data['memory_lower_bound_gb']:.2f}-"
        f"{data['memory_upper_bound_gb']:.2f} GB)"
    )
    return rows, render_table(rows, title=title)


def _check_common(data):
    series = data["series"]
    budgets = data["budgets_gb"]
    # Mimose strictly respects the budget and never OOMs
    for point in series["mimose"]:
        assert point["respects_budget"], point
        assert point["oom_iterations"] == 0
    # In the memory-constrained regime (the paper's operating points,
    # lower half of the sweep) Mimose beats both baselines per budget.
    tight = range(max(1, len(budgets) // 2))
    for i in tight:
        t_m = series["mimose"][i]["normalized_time"]
        assert t_m <= series["sublinear"][i]["normalized_time"] * 1.02
        assert t_m <= series["dtr"][i]["normalized_time"] * 1.02
    # Averaged over the sweep, Mimose still wins (collection is a one-off
    # cost that a full epoch amortises further).
    def mean(name):
        return sum(p["normalized_time"] for p in series[name]) / len(budgets)

    assert mean("mimose") <= mean("sublinear") * 1.02
    assert mean("mimose") <= mean("dtr") * 1.02
    # performance improves (or stays flat) as the budget grows
    times = [p["normalized_time"] for p in series["mimose"]]
    assert times[-1] <= times[0] + 0.02


@pytest.mark.parametrize("task", NLP_TASKS)
def bench_fig10_nlp(benchmark, results_dir, task):
    data = run_once(
        benchmark,
        fig10_data,
        task,
        planners=("sublinear", "checkmate", "monet", "dtr", "mimose"),
        iterations=120,
        jobs=JOBS,
    )
    _, text = _render(data)
    save_result(results_dir, f"fig10_{task}", text)
    _check_common(data)
    # DTR overshoots its budget on NLP tasks (fragmentation)
    assert any(not p["respects_budget"] for p in data["series"]["dtr"])


@pytest.mark.parametrize("task", OD_TASKS)
def bench_fig10_od(benchmark, results_dir, task):
    data = run_once(
        benchmark,
        fig10_data,
        task,
        planners=("sublinear", "checkmate", "monet", "dtr", "mimose"),
        iterations=100,
        jobs=JOBS,
    )
    _, text = _render(data)
    save_result(results_dir, f"fig10_{task}", text)
    _check_common(data)
    # §VI-B: on OD only Mimose and Sublinear obey the budget; the static
    # MILP planners (solved for an assumed shape) exceed it.
    for name in ("checkmate", "monet"):
        assert any(
            not p["respects_budget"] for p in data["series"][name]
        ), f"{name} unexpectedly stayed in budget on {task}"
