"""Unit + integration tests for the training executor."""

import pytest

from repro.engine.executor import IterationOOM, TrainingExecutor
from repro.engine.trace import MemoryTimeline
from repro.models.base import BatchInput
from repro.planners.base import (
    CheckpointPlan,
    ExecutionMode,
    ModelView,
    PlanDecision,
)
from repro.planners.none import NoCheckpointPlanner
from repro.tensorsim.dtypes import FLOAT32

from tests.helpers import GB, MB, make_tiny_model


def make_executor(model=None, capacity=4 * GB, **kwargs):
    model = model or make_tiny_model()
    planner = NoCheckpointPlanner(capacity)
    planner.setup(ModelView(model))
    return TrainingExecutor(model, planner, capacity_bytes=capacity, **kwargs)


def batch(rows=32, features=64):
    return BatchInput((rows, features), FLOAT32)


def test_static_memory_allocated_up_front():
    ex = make_executor()
    n = ex.model.param_count()
    assert ex.static_bytes >= 16 * n  # params+grads+adam


def test_budget_below_static_footprint_raises():
    model = make_tiny_model()
    planner = NoCheckpointPlanner(1024)
    planner.setup(ModelView(model))
    with pytest.raises(ValueError, match="static footprint"):
        TrainingExecutor(model, planner, capacity_bytes=1024)


def test_iteration_returns_to_static_memory():
    """No leaks: after each iteration only the static blocks remain."""
    ex = make_executor()
    for _ in range(3):
        stats = ex.run_iteration(batch(), PlanDecision(CheckpointPlan.none()))
        assert not stats.oom
        assert stats.end_in_use == ex.static_bytes
    ex.allocator.check_consistency()


def test_iteration_stats_time_components_positive():
    ex = make_executor()
    stats = ex.run_iteration(batch(), PlanDecision(CheckpointPlan.none()))
    assert stats.fwd_time > 0
    assert stats.bwd_time > 0
    assert stats.optimizer_time > 0
    assert stats.recompute_time == 0
    assert stats.total_time == pytest.approx(
        stats.fwd_time + stats.bwd_time + stats.optimizer_time
        + stats.planning_time + stats.upkeep_time + stats.collect_time
        + stats.recompute_time
    )


def test_checkpointing_reduces_peak_and_adds_recompute():
    model = make_tiny_model(num_units=6, features=256)
    names = [u.name for u in model.units]
    ex = make_executor(model)
    full = ex.run_iteration(batch(512, 256), PlanDecision(CheckpointPlan.none()))
    ckpt = ex.run_iteration(
        batch(512, 256), PlanDecision(CheckpointPlan.of(names, "all"))
    )
    assert ckpt.peak_in_use < full.peak_in_use
    assert ckpt.recompute_time > 0
    assert ckpt.num_checkpointed == 6
    assert ckpt.total_time > full.total_time


def test_more_checkpointing_is_monotone_in_recompute_time():
    model = make_tiny_model(num_units=8, features=128)
    names = [u.name for u in model.units]
    ex = make_executor(model)
    times = []
    for k in (0, 4, 8):
        s = ex.run_iteration(
            batch(256, 128), PlanDecision(CheckpointPlan.of(names[:k], f"k{k}"))
        )
        times.append(s.recompute_time)
    assert times[0] == 0
    assert times[0] < times[1] < times[2]


def test_collect_mode_doubles_forward_and_measures():
    model = make_tiny_model(num_units=4, features=128)
    ex = make_executor(model)
    normal = ex.run_iteration(batch(64, 128), PlanDecision(CheckpointPlan.none()))
    collect = ex.run_iteration(
        batch(64, 128),
        PlanDecision(CheckpointPlan.none(), mode=ExecutionMode.COLLECT),
    )
    assert collect.collect_time == pytest.approx(collect.fwd_time)
    assert len(collect.measurements) == 4
    for m in collect.measurements:
        assert m.saved_bytes > 0
        assert m.fwd_time > 0
        assert m.input_size == 64 * 128
    # sheltered execution keeps the full-checkpoint footprint
    assert collect.peak_in_use < normal.peak_in_use
    assert collect.recompute_time > 0


def test_collect_measurement_matches_profile_saved_bytes():
    model = make_tiny_model(num_units=2, features=64)
    ex = make_executor(model)
    b = batch(32, 64)
    stats = ex.run_iteration(
        b, PlanDecision(CheckpointPlan.none(), mode=ExecutionMode.COLLECT)
    )
    from repro.planners.analysis import unit_saved_bytes

    profiles = {p.module_name: p for p in model.profiles(b)}
    for m in stats.measurements:
        expected = unit_saved_bytes(profiles[m.unit_name])
        # allocator rounding may add up to one alignment quantum per tensor
        assert expected <= m.saved_bytes <= expected + 4096


def test_oom_returns_failed_stats_and_unwinds():
    model = make_tiny_model(num_units=6, features=1024)
    static = model.static_memory().total
    planner = NoCheckpointPlanner(static + 64 * MB)
    planner.setup(ModelView(model))
    ex = TrainingExecutor(model, planner, capacity_bytes=static + 64 * MB)
    stats = ex.run_iteration(
        batch(4096, 1024), PlanDecision(CheckpointPlan.none())
    )
    assert stats.oom
    assert ex.allocator.bytes_in_use == ex.static_bytes  # fully unwound
    ex.allocator.check_consistency()
    # the executor remains usable afterwards
    ok = ex.run_iteration(batch(4, 1024), PlanDecision(CheckpointPlan.none()))
    assert not ok.oom


def test_raise_on_oom_mode():
    model = make_tiny_model(num_units=4, features=1024)
    static = model.static_memory().total
    planner = NoCheckpointPlanner(static + 32 * MB)
    planner.setup(ModelView(model))
    ex = TrainingExecutor(
        model, planner, capacity_bytes=static + 32 * MB, raise_on_oom=True
    )
    with pytest.raises(IterationOOM):
        ex.run_iteration(batch(4096, 1024), PlanDecision(CheckpointPlan.none()))


def test_plan_entries_for_non_checkpointable_units_ignored(bert_model):
    planner = NoCheckpointPlanner(12 * GB)
    view = ModelView(bert_model)
    planner.setup(view)
    ex = TrainingExecutor(bert_model, planner, capacity_bytes=12 * GB)
    from repro.tensorsim.dtypes import INT64

    b = BatchInput((8, 64), INT64)
    s = ex.run_iteration(
        b, PlanDecision(CheckpointPlan.of(["embeddings", "head"], "bad"))
    )
    assert s.num_checkpointed == 0
    assert s.recompute_time == 0


def test_timeline_records_phases():
    timeline = MemoryTimeline()
    model = make_tiny_model(num_units=3)
    planner = NoCheckpointPlanner(4 * GB)
    planner.setup(ModelView(model))
    ex = TrainingExecutor(model, planner, capacity_bytes=4 * GB, timeline=timeline)
    ex.run_iteration(batch(), PlanDecision(CheckpointPlan.none()))
    phases = [p.phase for p in timeline.points]
    assert "fwd:unit.0" in phases
    assert "bwd:unit.2" in phases
    assert timeline.peak_by_iteration()[1] > 0


def test_iteration_times_helper():
    ex = make_executor()
    fwd, bwd = ex.iteration_times(batch())
    assert 0 < fwd < bwd


def test_step_delegates_to_planner():
    model = make_tiny_model()
    planner = NoCheckpointPlanner(4 * GB)
    planner.setup(ModelView(model))
    ex = TrainingExecutor(model, planner, capacity_bytes=4 * GB)
    stats = ex.step(batch())
    assert stats.plan_label == "none"
    assert stats.mode == "normal"


def test_simulated_clock_advances_monotonically():
    ex = make_executor()
    t0 = ex.clock.now
    ex.run_iteration(batch(), PlanDecision(CheckpointPlan.none()))
    t1 = ex.clock.now
    ex.run_iteration(batch(), PlanDecision(CheckpointPlan.none()))
    assert t0 < t1 < ex.clock.now
