"""End-to-end tests for the Mimose planner's two-phase lifecycle."""

import pytest

from repro.core.planner import MimosePlanner
from repro.core.scheduler import KnapsackScheduler
from repro.engine.executor import TrainingExecutor
from repro.models.base import BatchInput
from repro.planners.base import ModelView
from repro.tensorsim.dtypes import FLOAT32

from tests.helpers import GB, MB, make_tiny_model


def make_setup(budget, *, num_units=6, features=512, collect=4, **planner_kw):
    model = make_tiny_model(num_units=num_units, features=features)
    planner = MimosePlanner(
        budget, collect_iterations=collect, headroom_bytes=4 * MB, **planner_kw
    )
    planner.setup(ModelView(model))
    ex = TrainingExecutor(model, planner, capacity_bytes=budget)
    return model, planner, ex


def batches(rows_list, features=512):
    return [BatchInput((r, features), FLOAT32) for r in rows_list]


def test_sheltered_phase_runs_collect_iterations():
    _, planner, ex = make_setup(2 * GB, collect=4)
    modes = [ex.step(b).mode for b in batches([64, 128, 256, 192, 100])]
    assert modes[:4] == ["collect"] * 4
    assert modes[4] == "normal"
    assert planner.estimator.is_fitted
    assert planner.collect_count == 4


def test_small_inputs_get_empty_plans():
    """Memory optimisation is disabled when the input fits (Fig 11)."""
    _, planner, ex = make_setup(4 * GB, collect=4)
    for b in batches([64, 128, 256, 192]):
        ex.step(b)
    stats = ex.step(BatchInput((32, 512), FLOAT32))
    assert stats.num_checkpointed == 0
    assert stats.recompute_time == 0


def test_tight_budget_produces_checkpointing_plans():
    model = make_tiny_model(num_units=6, features=512)
    static = model.static_memory().total
    budget = static + 40 * MB
    planner = MimosePlanner(budget, collect_iterations=4, headroom_bytes=8 * MB)
    planner.setup(ModelView(model))
    ex = TrainingExecutor(model, planner, capacity_bytes=budget)
    rows = [512, 1024, 1536, 768, 1400, 1500]
    results = [ex.step(b) for b in batches(rows)]
    responsive = results[4:]
    assert any(s.num_checkpointed > 0 for s in responsive)
    assert all(not s.oom for s in results)
    assert all(s.peak_in_use <= budget for s in results)


def test_plan_cache_reused_for_repeated_sizes():
    _, planner, ex = make_setup(2 * GB, collect=4)
    for b in batches([64, 128, 256, 192]):
        ex.step(b)
    ex.step(BatchInput((250, 512), FLOAT32))
    misses = planner.cache.misses
    ex.step(BatchInput((250, 512), FLOAT32))
    ex.step(BatchInput((250, 512), FLOAT32))
    assert planner.cache.misses == misses
    assert planner.cache.hits >= 2


def test_similar_sizes_share_plans():
    _, planner, ex = make_setup(2 * GB, collect=4)
    for b in batches([64, 128, 256, 192]):
        ex.step(b)
    ex.step(BatchInput((200, 512), FLOAT32))
    before = planner.plan_count
    ex.step(BatchInput((196, 512), FLOAT32))  # within 5% below
    assert planner.plan_count == before


def test_much_larger_input_triggers_recollection():
    _, planner, ex = make_setup(2 * GB, collect=4)
    for b in batches([64, 128, 256, 192]):
        ex.step(b)
    assert ex.step(BatchInput((128, 512), FLOAT32)).mode == "normal"
    big = ex.step(BatchInput((2048, 512), FLOAT32))
    assert big.mode == "collect"  # beyond the trusted extrapolation range
    # and afterwards the estimator covers the new range
    assert planner.estimator.max_trained_size >= 2048 * 512
    assert ex.step(BatchInput((2000, 512), FLOAT32)).mode == "normal"


def test_oom_widens_headroom_and_clears_cache():
    from repro.planners.base import CheckpointPlan

    _, planner, _ = make_setup(2 * GB, collect=4)
    planner.cache.put(1000, CheckpointPlan.none())
    from repro.engine.stats import IterationStats

    headroom = planner.headroom_bytes
    stats = IterationStats(
        iteration=1, input_size=1000, input_shape=(1, 1000), mode="normal",
        plan_label="mimose", num_checkpointed=0, fwd_time=1, bwd_time=1,
        recompute_time=0, collect_time=0, planning_time=0, upkeep_time=0,
        optimizer_time=0, peak_in_use=0, peak_reserved=0, end_in_use=0,
        fragmentation_bytes=0, oom=True,
    )
    planner.observe(stats)
    assert planner.headroom_bytes == headroom + planner.headroom_step
    assert len(planner.cache) == 0


def test_planning_time_is_charged():
    _, planner, ex = make_setup(2 * GB, collect=4)
    for b in batches([64, 128, 256, 192]):
        ex.step(b)
    stats = ex.step(BatchInput((300, 512), FLOAT32))
    assert stats.planning_time > 0
    # sub-millisecond planning, as Table III reports
    assert stats.planning_time < 0.05


def test_pluggable_scheduler():
    model, planner, ex = make_setup(
        2 * GB, collect=4, scheduler=KnapsackScheduler()
    )
    for b in batches([64, 128, 256, 192]):
        ex.step(b)
    stats = ex.step(BatchInput((256, 512), FLOAT32))
    assert not stats.oom


def test_capabilities_match_table1():
    caps = MimosePlanner.capabilities
    assert caps.dynamic_input
    assert not caps.dynamic_graph
    assert caps.fragmentation_avoidance == "side-effect"
    assert caps.granularity == "block"
    assert caps.plan_timing == "runtime"
    assert caps.search_algorithm == "greedy"
    assert not MimosePlanner.requires_physical_capacity


def test_invalid_headroom():
    with pytest.raises(ValueError):
        MimosePlanner(GB, headroom_bytes=-1)


def test_user_supplied_empty_cache_is_used():
    """Regression: an empty PlanCache is falsy (it defines __len__), so
    `cache or PlanCache()` silently discarded user-supplied caches."""
    from repro.core.plan_cache import PlanCache
    from repro.core.estimator import LightningMemoryEstimator

    cache = PlanCache(tolerance=0.0)
    scheduler = KnapsackScheduler()
    estimator = LightningMemoryEstimator()
    planner = MimosePlanner(
        GB, cache=cache, scheduler=scheduler, estimator=estimator
    )
    assert planner.cache is cache
    assert planner.scheduler is scheduler
    assert planner.estimator is estimator


def test_cache_tolerance_actually_changes_behavior():
    """With the regression fixed, exact-only caching generates far more
    plans than the paper's 5% similarity window on a varied stream."""
    from repro.core.plan_cache import PlanCache

    counts = {}
    for tol in (0.0, 0.05):
        model = make_tiny_model(num_units=6, features=512)
        planner = MimosePlanner(
            2 * GB, collect_iterations=4,
            cache=PlanCache(tolerance=tol), headroom_bytes=4 * MB,
        )
        planner.setup(ModelView(model))
        ex = TrainingExecutor(model, planner, capacity_bytes=2 * GB)
        for rows in (64, 128, 256, 192, 200, 202, 205, 198, 207, 195, 203):
            ex.step(BatchInput((rows, 512), FLOAT32))
        counts[tol] = planner.plan_count
    assert counts[0.0] > counts[0.05]


# -------------------------------------------------- residual feedback (§IV-E)

def test_cache_hits_still_feed_the_residual_tracker():
    """Regression: predictions used to be stored in a per-size dict that
    plan() only wrote on cache *misses*, so every cache-served iteration
    starved the adaptive-margin feedback loop.  The prediction now rides
    on the plan itself, so hits observe too."""
    model = make_tiny_model(num_units=6, features=512)
    static = model.static_memory().total
    budget = static + 40 * MB  # tight: plans predict a positive peak
    planner = MimosePlanner(
        budget, collect_iterations=4, headroom_bytes=8 * MB,
        adaptive_margin=True,
    )
    planner.setup(ModelView(model))
    ex = TrainingExecutor(model, planner, capacity_bytes=budget)
    for b in batches([512, 1024, 1536, 768]):
        ex.step(b)
    ex.step(BatchInput((1400, 512), FLOAT32))  # miss: creates the plan
    hits_before = planner.cache.hits
    obs_before = planner.residuals.num_observations
    for _ in range(3):
        ex.step(BatchInput((1400, 512), FLOAT32))  # pure cache hits
    assert planner.cache.hits == hits_before + 3
    assert planner.residuals.num_observations == obs_before + 3


def test_observe_without_prediction_records_nothing():
    """COLLECT/static iterations carry no prediction; the trackers must
    not be fed fabricated residuals for them."""
    _, planner, _ = make_setup(2 * GB, collect=4)
    from repro.engine.stats import IterationStats

    stats = IterationStats(
        iteration=1, input_size=1000, input_shape=(1, 1000), mode="normal",
        plan_label="mimose", num_checkpointed=0, fwd_time=1, bwd_time=1,
        recompute_time=0, collect_time=0, planning_time=0, upkeep_time=0,
        optimizer_time=0, peak_in_use=100 * MB, peak_reserved=120 * MB,
        end_in_use=0, fragmentation_bytes=0, predicted_peak_bytes=None,
    )
    planner.observe(stats)
    assert planner.residuals.num_observations == 0
    assert planner.frag_observed.num_observations == 0


def test_observe_with_zero_prediction_feeds_frag_tracker_only():
    """A predicted peak of zero is a value, not an absence (the old code's
    falsy `if predicted:` test conflated the two): allocator slack is
    still observable, but a relative residual against zero is not."""
    _, planner, _ = make_setup(2 * GB, collect=4)
    from repro.engine.stats import IterationStats

    stats = IterationStats(
        iteration=1, input_size=1000, input_shape=(1, 1000), mode="normal",
        plan_label="mimose", num_checkpointed=0, fwd_time=1, bwd_time=1,
        recompute_time=0, collect_time=0, planning_time=0, upkeep_time=0,
        optimizer_time=0, peak_in_use=100 * MB, peak_reserved=120 * MB,
        end_in_use=0, fragmentation_bytes=0, predicted_peak_bytes=0,
    )
    planner.observe(stats)
    assert planner.residuals.num_observations == 0
    assert planner.frag_observed.num_observations == 1


def test_refit_discards_stale_predictions_with_the_cache():
    """_fit() clears the plan cache; since predictions travel with the
    cached plans, a refit cannot leave a stale prediction behind to be
    attributed to a later iteration."""
    _, planner, ex = make_setup(2 * GB, collect=4)
    for b in batches([64, 128, 256, 192]):
        ex.step(b)
    ex.step(BatchInput((300, 512), FLOAT32))
    assert len(planner.cache) > 0
    ex.step(BatchInput((2048, 512), FLOAT32))  # triggers recollection+refit
    assert len(planner.cache) == 0
