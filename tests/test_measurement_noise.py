"""Measurement-noise robustness: real profiling jitters, the estimator
must still produce usable predictions (the paper's Table IV/V numbers
come from noisy GPU measurements)."""

import pytest

from repro.core.collector import ShuttlingCollector
from repro.core.estimator import LightningMemoryEstimator
from repro.core.planner import MimosePlanner
from repro.engine.executor import TrainingExecutor
from repro.models.base import BatchInput
from repro.planners.analysis import unit_saved_bytes
from repro.planners.base import CheckpointPlan, ExecutionMode, ModelView, PlanDecision
from repro.planners.none import NoCheckpointPlanner
from repro.tensorsim.dtypes import FLOAT32

from tests.helpers import GB, make_tiny_model


def collect_with_noise(noise, sizes, seed=0, num_units=4):
    model = make_tiny_model(num_units=num_units, features=256)
    planner = NoCheckpointPlanner(8 * GB)
    planner.setup(ModelView(model))
    ex = TrainingExecutor(
        model, planner, capacity_bytes=8 * GB,
        measurement_noise=noise, noise_seed=seed,
    )
    collector = ShuttlingCollector(min_iterations=1, min_distinct_sizes=3)
    for rows in sizes:
        stats = ex.run_iteration(
            BatchInput((rows, 256), FLOAT32),
            PlanDecision(CheckpointPlan.none(), mode=ExecutionMode.COLLECT),
        )
        collector.ingest(stats.measurements)
    return model, collector


SIZES = (64, 128, 256, 384, 512, 640, 768, 896, 1024, 1152)


def test_noise_zero_is_exact():
    model, collector = collect_with_noise(0.0, SIZES)
    profiles = {
        p.module_name: p
        for p in model.profiles(BatchInput((512, 256), FLOAT32))
    }
    for m in collector.samples("unit.0"):
        if m.input_size == 512 * 256:
            truth = unit_saved_bytes(profiles["unit.0"])
            assert truth <= m.saved_bytes <= truth + 4096


def test_noise_perturbs_measurements():
    _, clean = collect_with_noise(0.0, SIZES)
    _, noisy = collect_with_noise(0.05, SIZES)
    clean_vals = [s.saved_bytes for s in clean.samples("unit.0")]
    noisy_vals = [s.saved_bytes for s in noisy.samples("unit.0")]
    assert clean_vals != noisy_vals


def test_noise_is_deterministic_per_seed():
    _, a = collect_with_noise(0.05, SIZES, seed=7)
    _, b = collect_with_noise(0.05, SIZES, seed=7)
    _, c = collect_with_noise(0.05, SIZES, seed=8)
    va = [s.saved_bytes for s in a.samples("unit.1")]
    vb = [s.saved_bytes for s in b.samples("unit.1")]
    vc = [s.saved_bytes for s in c.samples("unit.1")]
    assert va == vb
    assert va != vc


@pytest.mark.parametrize("noise,max_err", [(0.01, 0.02), (0.05, 0.10)])
def test_estimator_degrades_gracefully_with_noise(noise, max_err):
    """Percent-level profiling jitter yields percent-level prediction
    error — least squares averages it out over the samples."""
    model, collector = collect_with_noise(noise, SIZES, seed=3)
    est = LightningMemoryEstimator()
    est.fit(collector)
    probe = BatchInput((700, 256), FLOAT32)
    truth = {
        p.module_name: unit_saved_bytes(p)
        for p in model.profiles(probe)
        if p.module_name.startswith("unit.")
    }
    predicted = sum(est.predict_bytes(u, probe.input_size) for u in truth)
    actual = sum(truth.values())
    assert abs(predicted - actual) / actual < max_err


def test_mimose_stays_in_budget_under_noise():
    """End to end: noisy measurements do not break budget compliance
    (the headroom absorbs them)."""
    model = make_tiny_model(num_units=6, features=512)
    static = model.static_memory().total
    budget = static + 40 * 1024**2
    planner = MimosePlanner(
        budget, collect_iterations=4, headroom_bytes=10 * 1024**2
    )
    planner.setup(ModelView(model))
    ex = TrainingExecutor(
        model, planner, capacity_bytes=budget,
        measurement_noise=0.03, noise_seed=11,
    )
    for rows in (512, 1024, 1536, 768, 1400, 1200, 900):
        stats = ex.step(BatchInput((rows, 512), FLOAT32))
        assert not stats.oom
        assert stats.peak_in_use <= budget


def test_negative_noise_rejected():
    model = make_tiny_model()
    planner = NoCheckpointPlanner(GB)
    planner.setup(ModelView(model))
    with pytest.raises(ValueError):
        TrainingExecutor(
            model, planner, capacity_bytes=GB, measurement_noise=-0.1
        )
