"""Unit + property tests for the workload samplers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.distributions import (
    EmpiricalSampler,
    PowerLawSampler,
    TruncatedNormalSampler,
    UniformSampler,
)


def rng(seed=0):
    return np.random.default_rng(seed)


def test_uniform_support_and_range():
    s = UniformSampler(5, 10)
    draws = s.sample_many(rng(), 500)
    assert min(draws) >= 5 and max(draws) <= 10
    assert set(draws) == set(range(5, 11))  # hits every value
    assert s.support == (5, 10)


def test_uniform_validation():
    with pytest.raises(ValueError):
        UniformSampler(10, 5)
    with pytest.raises(ValueError):
        UniformSampler(0, 5)


def test_truncated_normal_stays_in_bounds():
    s = TruncatedNormalSampler(mean=50, std=30, lo=20, hi=80)
    draws = s.sample_many(rng(), 1000)
    assert min(draws) >= 20 and max(draws) <= 80
    assert 40 < np.mean(draws) < 60


def test_truncated_normal_degenerate_mean_out_of_range():
    s = TruncatedNormalSampler(mean=1000, std=0.001, lo=1, hi=10)
    assert s.sample(rng()) == 10  # clamped fallback


def test_truncated_normal_validation():
    with pytest.raises(ValueError):
        TruncatedNormalSampler(10, 0, 1, 5)
    with pytest.raises(ValueError):
        TruncatedNormalSampler(10, 1, 5, 1)


def test_powerlaw_skews_short():
    s = PowerLawSampler(alpha=2.5, lo=10, hi=1000)
    draws = s.sample_many(rng(), 2000)
    assert min(draws) >= 10 and max(draws) <= 1000
    assert np.median(draws) < 60  # heavy concentration near lo
    assert max(draws) > 200  # but the tail reaches far


def test_powerlaw_alpha_controls_tail():
    light = PowerLawSampler(alpha=4.0, lo=10, hi=1000)
    heavy = PowerLawSampler(alpha=1.5, lo=10, hi=1000)
    assert np.mean(light.sample_many(rng(1), 2000)) < np.mean(
        heavy.sample_many(rng(1), 2000)
    )


def test_powerlaw_validation():
    with pytest.raises(ValueError):
        PowerLawSampler(alpha=1.0, lo=1, hi=10)
    with pytest.raises(ValueError):
        PowerLawSampler(alpha=2.0, lo=10, hi=1)


def test_empirical_sampler_uniform_default():
    s = EmpiricalSampler([3, 7, 11])
    draws = set(s.sample_many(rng(), 300))
    assert draws == {3, 7, 11}
    assert s.support == (3, 11)


def test_empirical_sampler_weights():
    s = EmpiricalSampler([1, 2], weights=[0.99, 0.01])
    draws = s.sample_many(rng(), 500)
    assert draws.count(1) > 400


def test_empirical_validation():
    with pytest.raises(ValueError):
        EmpiricalSampler([])
    with pytest.raises(ValueError):
        EmpiricalSampler([1, 2], weights=[1.0])
    with pytest.raises(ValueError):
        EmpiricalSampler([1, 2], weights=[-1.0, 2.0])


def test_determinism_given_seed():
    s = PowerLawSampler(alpha=2.0, lo=1, hi=100)
    assert s.sample_many(rng(42), 50) == s.sample_many(rng(42), 50)


@settings(max_examples=40, deadline=None)
@given(
    lo=st.integers(1, 100),
    width=st.integers(0, 400),
    alpha=st.floats(1.1, 5.0),
    seed=st.integers(0, 999),
)
def test_property_samplers_respect_support(lo, width, alpha, seed):
    hi = lo + width
    g = rng(seed)
    for s in (
        UniformSampler(lo, hi),
        TruncatedNormalSampler((lo + hi) / 2, max((hi - lo) / 4, 1), lo, hi),
        PowerLawSampler(alpha, lo, hi),
    ):
        for _ in range(20):
            v = s.sample(g)
            assert lo <= v <= hi
