"""The documentation must not rot: every Python block in
docs/walkthrough.md executes, and every example script parses and shows
--help without crashing."""

import pathlib
import re
import subprocess
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[1]


def _python_blocks(markdown: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", markdown, flags=re.DOTALL)


def test_walkthrough_blocks_execute():
    doc = (ROOT / "docs" / "walkthrough.md").read_text()
    blocks = _python_blocks(doc)
    assert len(blocks) >= 5
    namespace: dict[str, object] = {}
    for i, block in enumerate(blocks):
        # shrink the expensive bits so the doc test stays fast
        block = block.replace("iterations=100", "iterations=8")
        block = block.replace('(32, 256)', '(8, 64)')
        block = block.replace(
            '("baseline", "sublinear", "dtr", "mimose")',
            '("baseline", "sublinear")',
        )
        block = block.replace(
            '"mimose", "sublinear"', '"sublinear", "baseline"'
        )
        try:
            exec(compile(block, f"walkthrough-block-{i}", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - explicit failure path
            pytest.fail(f"walkthrough block {i} failed: {exc}\n{block}")


@pytest.mark.parametrize(
    "script",
    sorted(p.name for p in (ROOT / "examples").glob("*.py")),
)
def test_example_scripts_show_help(script):
    proc = subprocess.run(
        [sys.executable, str(ROOT / "examples" / script), "--help"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode == 0, proc.stderr
    assert "usage" in proc.stdout.lower()


def test_examples_exist():
    names = {p.name for p in (ROOT / "examples").glob("*.py")}
    assert {
        "quickstart.py",
        "nlp_finetune.py",
        "object_detection.py",
        "custom_scheduler.py",
        "memory_timeline.py",
        "drift_replanning.py",
    } <= names
