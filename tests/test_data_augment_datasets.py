"""Tests for augmentation simulation and the collating data loader."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.augment import MultiScaleResize, TokenizerSim, pad_and_truncate
from repro.data.datasets import (
    DataLoader,
    available_datasets,
    make_dataset,
)
from repro.tensorsim.dtypes import FLOAT32, INT64


def rng(seed=0):
    return np.random.default_rng(seed)


# ------------------------------------------------------------------ tokenizer

def test_tokenizer_expands_and_adds_specials():
    tok = TokenizerSim(expansion_mean=1.3, expansion_std=0.0, special_tokens=2)
    assert tok.tokenize_length(100, rng()) == 132
    assert tok.tokenize_length(0, rng()) == 2


def test_tokenizer_rejects_negative():
    with pytest.raises(ValueError):
        TokenizerSim().tokenize_length(-1, rng())


# ---------------------------------------------------------------- collation

def test_pad_and_truncate_pads_to_max():
    assert pad_and_truncate([10, 50, 30], 512) == 50


def test_pad_and_truncate_truncates_at_cap():
    assert pad_and_truncate([10, 900], 512) == 512


def test_pad_and_truncate_validation():
    with pytest.raises(ValueError):
        pad_and_truncate([], 512)
    with pytest.raises(ValueError):
        pad_and_truncate([10], 0)


# ------------------------------------------------------------------- resize

def test_multiscale_resize_short_side_in_range():
    resize = MultiScaleResize()
    g = rng(1)
    for _ in range(50):
        h, w = resize.resize(480, 640, g)
        short, long_ = min(h, w), max(h, w)
        assert long_ <= resize.max_long
        assert short <= resize.max_short + 1


def test_multiscale_resize_preserves_aspect_ratio():
    resize = MultiScaleResize()
    h, w = resize.resize(400, 800, rng(2))
    assert w / h == pytest.approx(2.0, rel=0.02)


def test_multiscale_resize_caps_long_side():
    resize = MultiScaleResize()
    g = rng(3)
    for _ in range(50):
        h, w = resize.resize(100, 1000, g)  # extreme 10:1 aspect
        assert max(h, w) <= resize.max_long


def test_multiscale_worst_case():
    assert MultiScaleResize().worst_case() == (800, 1333)


def test_multiscale_validation():
    with pytest.raises(ValueError):
        MultiScaleResize(min_short=800, max_short=480)
    with pytest.raises(ValueError):
        MultiScaleResize(max_long=100)
    with pytest.raises(ValueError):
        MultiScaleResize().resize(0, 10, rng())


# ------------------------------------------------------------------ datasets

def test_all_presets_build():
    names = available_datasets()
    assert names == ["coco", "glue-qqp", "squad", "swag", "un_pc", "webtext"]
    for n in names:
        assert make_dataset(n) is not None
    with pytest.raises(KeyError):
        make_dataset("imagenet")


@pytest.mark.parametrize(
    "name,batch,lo,hi",
    [
        ("swag", 16, 35, 141),
        ("squad", 12, 153, 512),
        ("glue-qqp", 32, 30, 332),
        ("un_pc", 8, 17, 460),
    ],
)
def test_collated_lengths_match_fig3_ranges(name, batch, lo, hi):
    """Collated lengths stay within (and substantially span) the paper's
    Fig 3 ranges."""
    ds = make_dataset(name)
    loader = DataLoader(ds, batch, 300, seed=11)
    lengths = [b.shape[-1] for b in loader]
    assert min(lengths) >= lo * 0.8
    assert max(lengths) <= hi
    assert max(lengths) - min(lengths) > (hi - lo) * 0.4  # real spread


def test_swag_multiple_choice_flattens_batch():
    loader = DataLoader(make_dataset("swag"), 16, 5, seed=0)
    for b in loader:
        assert b.shape[0] == 64  # 16 questions x 4 choices
        assert b.dtype is INT64


def test_coco_batches_are_padded_images():
    loader = DataLoader(make_dataset("coco"), 8, 20, seed=0)
    shapes = [b.shape for b in loader]
    for s in shapes:
        assert s[0] == 8 and s[1] == 3
        assert 480 <= s[2] <= 1333 and 480 <= s[3] <= 1333
    assert len({s[2:] for s in shapes}) > 10  # dimensions vary


def test_loader_is_deterministic_per_seed():
    ds = make_dataset("glue-qqp")
    a = [b.shape for b in DataLoader(ds, 8, 20, seed=5)]
    b = [b.shape for b in DataLoader(ds, 8, 20, seed=5)]
    c = [b.shape for b in DataLoader(ds, 8, 20, seed=6)]
    assert a == b
    assert a != c


def test_peek_does_not_consume_loader_stream():
    loader = DataLoader(make_dataset("swag"), 4, 10, seed=1)
    before = [b.shape for b in loader]
    peeked = loader.peek_sizes(16)
    assert len(peeked) == 16
    assert [b.shape for b in loader] == before


def test_worst_case_batch_dominates_observed():
    for name, batch in [("swag", 16), ("un_pc", 8)]:
        loader = DataLoader(make_dataset(name), batch, 200, seed=2)
        worst = loader.worst_case_batch()
        assert all(b.input_size <= worst.input_size for b in loader)


def test_worst_case_coco_is_square_max():
    loader = DataLoader(make_dataset("coco"), 8, 5, seed=0)
    worst = loader.worst_case_batch()
    assert worst.shape == (8, 3, 1333, 1333)
    assert worst.dtype is FLOAT32


def test_loader_validation():
    ds = make_dataset("swag")
    with pytest.raises(ValueError):
        DataLoader(ds, 0, 10)
    with pytest.raises(ValueError):
        DataLoader(ds, 4, 0)
    assert len(DataLoader(ds, 4, 7)) == 7


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_text_lengths_never_exceed_cap(seed):
    ds = make_dataset("un_pc")
    loader = DataLoader(ds, 8, 10, seed=seed)
    for b in loader:
        assert b.shape[-1] <= ds.max_length
