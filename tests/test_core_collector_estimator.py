"""Tests for the shuttling collector and the lightning memory estimator."""

import pytest

from repro.core.collector import ShuttlingCollector
from repro.core.estimator import LightningMemoryEstimator
from repro.core.estimators import PolynomialRegressor
from repro.engine.stats import UnitMeasurement


def measure(unit, size, mem=None, t=None):
    return UnitMeasurement(unit, size, mem if mem is not None else size * 100, t or 1e-3)


def fill(collector, sizes, units=("a", "b")):
    for s in sizes:
        collector.ingest([measure(u, s) for u in units])


# ------------------------------------------------------------------ collector

def test_collector_readiness_requires_iterations_and_sizes():
    c = ShuttlingCollector(min_iterations=3, min_distinct_sizes=3)
    fill(c, [100, 100])
    assert not c.is_ready()  # 2 iterations, 1 distinct size
    fill(c, [200])
    assert not c.is_ready()  # 3 iterations, only 2 distinct sizes
    fill(c, [300])
    assert c.is_ready()


def test_collector_accumulates_per_unit():
    c = ShuttlingCollector(min_iterations=1)
    fill(c, [10, 20, 30])
    assert c.unit_names() == ["a", "b"]
    assert len(c.samples("a")) == 3
    assert c.samples("missing") == ()
    assert c.max_seen_size == 30
    assert c.distinct_sizes == 3
    assert c.iterations_collected == 3


def test_collector_training_data_layout():
    c = ShuttlingCollector(min_iterations=1)
    fill(c, [10, 20], units=("u",))
    sizes, mems, times, bwd_times = c.training_data()["u"]
    assert sizes == [10, 20]
    assert mems == [1000, 2000]
    assert all(t > 0 for t in times)
    # fill() stamps no backward measurement, so the series is all-zero
    assert bwd_times == [0.0, 0.0]


def test_collector_readiness_is_per_unit():
    # unit "b" appears at a single input size; the union of sizes across
    # units satisfies min_distinct_sizes but "b"'s own fit would be
    # degenerate, so the collector must not report ready.
    c = ShuttlingCollector(min_iterations=1, min_distinct_sizes=3)
    for s in (100, 200, 300, 400):
        c.ingest([measure("a", s)])
    c.ingest([measure("b", 100)])
    assert c.distinct_sizes >= 3  # global union looks healthy
    assert c.distinct_sizes_for("b") == 1
    assert not c.is_ready()
    for s in (200, 300):
        c.ingest([measure("b", s)])
    assert c.is_ready()


def test_collector_empty_ingest_does_not_count():
    c = ShuttlingCollector(min_iterations=1)
    c.ingest([])
    assert c.iterations_collected == 0


def test_collector_clear():
    c = ShuttlingCollector(min_iterations=1)
    fill(c, [10])
    c.clear()
    assert c.iterations_collected == 0
    assert c.unit_names() == []


def test_collector_validation():
    with pytest.raises(ValueError):
        ShuttlingCollector(min_iterations=0)
    with pytest.raises(ValueError):
        ShuttlingCollector(min_distinct_sizes=2)


# ------------------------------------------------------------------ estimator

def quad_mem(size):
    return int(0.002 * size * size + 150 * size + 1_000_000)


def quadratic_collector(sizes=(100, 400, 800, 1500, 2500, 4000, 6000)):
    c = ShuttlingCollector(min_iterations=1)
    for s in sizes:
        c.ingest(
            [
                UnitMeasurement("enc.0", s, quad_mem(s), 1e-4 * s),
                UnitMeasurement("enc.1", s, 2 * quad_mem(s), 2e-4 * s),
            ]
        )
    return c


def test_estimator_fit_and_predict_per_unit():
    est = LightningMemoryEstimator()
    fit_time = est.fit(quadratic_collector())
    assert fit_time > 0
    assert est.is_fitted
    assert est.unit_names() == ["enc.0", "enc.1"]
    for s in (300, 2000, 7000):  # includes extrapolation
        assert est.predict_bytes("enc.0", s) == pytest.approx(quad_mem(s), rel=0.01)
        assert est.predict_bytes("enc.1", s) == pytest.approx(2 * quad_mem(s), rel=0.01)


def test_estimator_predict_all_and_total():
    est = LightningMemoryEstimator()
    est.fit(quadratic_collector())
    per_unit = est.predict_all_bytes(1000)
    assert set(per_unit) == {"enc.0", "enc.1"}
    assert est.total_bytes(1000) == sum(per_unit.values())


def test_estimator_time_model():
    est = LightningMemoryEstimator()
    est.fit(quadratic_collector())
    assert est.predict_time("enc.0", 2000) == pytest.approx(0.2, rel=0.05)


def test_estimator_unknown_unit_raises():
    est = LightningMemoryEstimator()
    est.fit(quadratic_collector())
    with pytest.raises(KeyError):
        est.predict_bytes("enc.99", 100)
    with pytest.raises(KeyError):
        est.predict_time("enc.99", 100)


def test_estimator_requires_samples():
    est = LightningMemoryEstimator()
    with pytest.raises(ValueError):
        est.fit(ShuttlingCollector(min_iterations=1))


def test_estimator_max_trained_size():
    est = LightningMemoryEstimator()
    est.fit(quadratic_collector((100, 500, 900, 4000)))
    assert est.max_trained_size == 4000


def test_estimator_base_model():
    est = LightningMemoryEstimator()
    est.fit(quadratic_collector())
    assert not est.has_base
    with pytest.raises(RuntimeError):
        est.predict_base(100)
    sizes = [100, 1000, 3000, 6000]
    est.fit_base(sizes, [quad_mem(s) * 3 for s in sizes])
    assert est.has_base
    assert est.predict_base(2000) == pytest.approx(3 * quad_mem(2000), rel=0.01)


def test_estimator_predictions_clamped_nonnegative():
    c = ShuttlingCollector(min_iterations=1)
    for s, m in [(10, 1000), (20, 500), (30, 100), (40, 10)]:
        c.ingest([UnitMeasurement("u", s, m, 1e-3)])
    est = LightningMemoryEstimator()
    est.fit(c)
    assert est.predict_bytes("u", 500) >= 0


def test_estimator_evaluate_report():
    est = LightningMemoryEstimator()
    est.fit(quadratic_collector())
    truth = {
        s: {"enc.0": quad_mem(s), "enc.1": 2 * quad_mem(s)}
        for s in (700, 1800, 5000)
    }
    report = est.evaluate(truth)
    assert report.regressor_name == "poly2"
    assert report.num_units == 2
    assert report.num_samples == 3
    assert report.relative_error < 0.01
    assert report.predict_latency_s > 0
    with pytest.raises(ValueError):
        est.evaluate({})


def bwd_collector(sizes=(100, 400, 800, 1500, 2500, 4000, 6000)):
    """Collector whose backward times are NOT 2x the forwards."""
    c = ShuttlingCollector(min_iterations=1)
    for s in sizes:
        c.ingest(
            [
                UnitMeasurement("enc.0", s, quad_mem(s), 1e-4 * s, 1.3e-4 * s),
                UnitMeasurement("enc.1", s, 2 * quad_mem(s), 2e-4 * s, 5.4e-4 * s),
            ]
        )
    return c


def test_estimator_fits_backward_times_when_measured():
    est = LightningMemoryEstimator()
    est.fit(bwd_collector())
    assert est.has_bwd_data
    assert est.predict_bwd_time("enc.0", 2000) == pytest.approx(0.26, rel=0.05)
    assert est.predict_bwd_time("enc.1", 2000) == pytest.approx(1.08, rel=0.05)
    per_unit = est.predict_all_bwd_times(2000)
    assert per_unit == {
        u: est.predict_bwd_time(u, 2000) for u in ("enc.0", "enc.1")
    }


def test_estimator_no_backward_data_means_no_bwd_models():
    # quadratic_collector never stamps bwd_time, so the series is all-zero
    # and fitting a backward model would silently predict 0 -> never swap.
    est = LightningMemoryEstimator()
    est.fit(quadratic_collector())
    assert not est.has_bwd_data
    with pytest.raises(KeyError):
        est.predict_bwd_time("enc.0", 100)
    with pytest.raises(RuntimeError):
        est.predict_all_bwd_times(100)


def test_estimator_bwd_cache_cleared_on_refit():
    est = LightningMemoryEstimator()
    est.fit(bwd_collector())
    before = est.predict_all_bwd_times(2000)
    # refit with scaled backwards; memoised results must not survive
    c = ShuttlingCollector(min_iterations=1)
    for s in (100, 400, 800, 1500):
        c.ingest([UnitMeasurement("enc.0", s, quad_mem(s), 1e-4 * s, 2.6e-4 * s)])
    est.fit(c)
    after = est.predict_all_bwd_times(2000)
    assert after["enc.0"] == pytest.approx(2 * before["enc.0"], rel=0.05)


def test_estimator_custom_factory():
    est = LightningMemoryEstimator(lambda: PolynomialRegressor(1))
    est.fit(quadratic_collector())
    # a linear model on quadratic data misses extrapolation badly
    err = abs(est.predict_bytes("enc.0", 9000) - quad_mem(9000)) / quad_mem(9000)
    assert err > 0.02
