"""Unit tests for TensorSpec and SimTensor."""

import pytest

from repro.tensorsim.allocator import CachingAllocator
from repro.tensorsim.dtypes import FLOAT16, FLOAT32, INT64
from repro.tensorsim.tensor import SimTensor, TensorSpec


def test_numel_and_nbytes():
    spec = TensorSpec((4, 8, 16), FLOAT32)
    assert spec.numel == 512
    assert spec.nbytes == 2048
    assert spec.ndim == 3


def test_scalar_spec():
    spec = TensorSpec((), FLOAT32)
    assert spec.numel == 1
    assert spec.nbytes == 4


def test_dtype_changes_nbytes():
    shape = (10, 10)
    assert TensorSpec(shape, FLOAT16).nbytes == 200
    assert TensorSpec(shape, INT64).nbytes == 800


def test_negative_dim_rejected():
    with pytest.raises(ValueError):
        TensorSpec((4, -1))


def test_with_shape_keeps_dtype():
    spec = TensorSpec((2, 3), INT64)
    other = spec.with_shape((6,))
    assert other.dtype is INT64
    assert other.shape == (6,)


def test_specs_hashable_and_equal():
    a = TensorSpec((2, 3), FLOAT32)
    b = TensorSpec((2, 3), FLOAT32)
    assert a == b
    assert hash(a) == hash(b)
    assert a != TensorSpec((2, 3), FLOAT16)


def test_tensor_ids_unique():
    t1 = SimTensor(TensorSpec((2,)))
    t2 = SimTensor(TensorSpec((2,)))
    assert t1.tensor_id != t2.tensor_id


def test_materialize_and_drop_cycle():
    alloc = CachingAllocator(1 << 24)
    t = SimTensor(TensorSpec((1024,), FLOAT32), "act")
    assert not t.is_materialized
    t.materialize(alloc)
    assert t.is_materialized
    assert alloc.bytes_in_use >= t.nbytes
    t.drop(alloc)
    assert not t.is_materialized
    assert alloc.bytes_in_use == 0


def test_materialize_is_idempotent():
    alloc = CachingAllocator(1 << 24)
    t = SimTensor(TensorSpec((16,), FLOAT32))
    t.materialize(alloc)
    block = t.block
    t.materialize(alloc)
    assert t.block is block
    assert alloc.stats.num_allocs == 1


def test_drop_is_idempotent():
    alloc = CachingAllocator(1 << 24)
    t = SimTensor(TensorSpec((16,), FLOAT32))
    t.materialize(alloc)
    t.drop(alloc)
    t.drop(alloc)  # no double free
    assert alloc.stats.num_frees == 1
