"""Lifecycle controller: state machine, drift detectors, windowed collector,
and the refit invalidation protocol."""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.core.adaptive import QuantileTracker, ResidualTracker
from repro.core.collector import ShuttlingCollector
from repro.core.drift import CusumMonitor, PageHinkleyDetector
from repro.core.estimator import LightningMemoryEstimator
from repro.core.lifecycle import LifecycleController, LifecycleState
from repro.core.plan_cache import PlanCache
from repro.engine.events import (
    DriftDetected,
    EstimatorRefit,
    EventBus,
    LifecycleTransition,
)
from repro.engine.stats import IterationStats, UnitMeasurement

UNITS = ("a", "b")


def collect_stats(iteration: int, size: int) -> IterationStats:
    batch = tuple(
        UnitMeasurement(u, size, size * 1000 + i * 64, 1e-3, 2e-3)
        for i, u in enumerate(UNITS)
    )
    return IterationStats(
        iteration=iteration,
        input_size=size,
        input_shape=(1, size),
        mode="collect",
        plan_label="collect",
        num_checkpointed=len(UNITS),
        fwd_time=1e-3,
        bwd_time=2e-3,
        recompute_time=0.0,
        collect_time=1e-3,
        planning_time=0.0,
        upkeep_time=0.0,
        optimizer_time=1e-4,
        peak_in_use=size * 3000,
        peak_reserved=size * 3200,
        end_in_use=size * 10,
        fragmentation_bytes=0,
        measurements=batch,
    )


def responsive_stats(
    iteration: int, size: int, *, predicted: int, actual: int
) -> IterationStats:
    return IterationStats(
        iteration=iteration,
        input_size=size,
        input_shape=(1, size),
        mode="normal",
        plan_label="plan",
        num_checkpointed=1,
        fwd_time=1e-3,
        bwd_time=2e-3,
        recompute_time=1e-4,
        collect_time=0.0,
        planning_time=0.0,
        upkeep_time=0.0,
        optimizer_time=1e-4,
        peak_in_use=actual,
        peak_reserved=actual + 64,
        end_in_use=size * 10,
        fragmentation_bytes=0,
        predicted_peak_bytes=predicted,
    )


def make_controller(**kwargs) -> LifecycleController:
    collector = ShuttlingCollector(min_iterations=4, min_distinct_sizes=3)
    return LifecycleController(
        collector=collector,
        estimator=LightningMemoryEstimator(),
        cache=PlanCache(),
        residuals=ResidualTracker(),
        frag_observed=QuantileTracker(),
        **kwargs,
    )


def fit_controller(controller: LifecycleController) -> int:
    """Feed the initial collection window and fit; returns next iteration."""
    for it, size in enumerate((10, 20, 30, 40)):
        controller.observe(collect_stats(it, size))
    controller.ensure_fitted()
    return 4


class Recorder:
    def __init__(self):
        self.events = []

    def attach(self, bus: EventBus, *event_types) -> "Recorder":
        for event_type in event_types:
            bus.subscribe(self, event_type)
        return self

    def __call__(self, event) -> None:
        self.events.append(event)

    def of(self, event_type) -> list:
        return [e for e in self.events if isinstance(e, event_type)]


# ---------------------------------------------------------------- detectors


def test_page_hinkley_quiet_on_stable_stream():
    d = PageHinkleyDetector(threshold=0.15, min_observations=4)
    for i in range(200):
        assert not d.update(0.01 if i % 2 else -0.01)


def test_page_hinkley_fires_on_sustained_shift():
    d = PageHinkleyDetector(threshold=0.15, min_observations=4)
    for _ in range(8):
        assert not d.update(0.0)
    fired = False
    for _ in range(10):
        fired = fired or d.update(0.5)
    assert fired
    assert d.statistic > d.threshold


def test_page_hinkley_respects_min_observations():
    d = PageHinkleyDetector(threshold=0.01, min_observations=10)
    for _ in range(5):
        assert not d.update(5.0)  # huge shift, too few observations


def test_page_hinkley_reset():
    d = PageHinkleyDetector(threshold=0.15, min_observations=2)
    for _ in range(4):
        d.update(0.0)
    for _ in range(10):
        d.update(0.5)
    d.reset()
    assert d.num_observations == 0
    assert d.statistic == 0.0
    assert not d.update(0.0)


def test_cusum_silent_until_calibrated():
    m = CusumMonitor(threshold=1.0, min_observations=1)
    for _ in range(50):
        assert not m.update(1e9)
    assert not m.calibrated


def test_cusum_fires_on_mean_shift_both_sides():
    for shifted in (400.0, -200.0):
        m = CusumMonitor(slack=0.5, threshold=3.0, min_observations=2)
        m.calibrate([90.0, 100.0, 110.0, 100.0])
        for _ in range(10):
            assert not m.update(100.0)
        fired = False
        for _ in range(20):
            fired = fired or m.update(shifted)
        assert fired, shifted


def test_cusum_reset_clears_calibration():
    m = CusumMonitor(threshold=1.0, min_observations=1)
    m.calibrate([1.0, 2.0, 3.0])
    assert m.calibrated
    m.reset()
    assert not m.calibrated
    assert not m.update(1e9)


def test_detector_validation():
    with pytest.raises(ValueError):
        PageHinkleyDetector(threshold=0.0)
    with pytest.raises(ValueError):
        PageHinkleyDetector(delta=-1.0)
    with pytest.raises(ValueError):
        CusumMonitor(threshold=-1.0)
    with pytest.raises(ValueError):
        CusumMonitor(slack=-0.1)
    m = CusumMonitor()
    with pytest.raises(ValueError):
        m.calibrate([])


# ------------------------------------------------- collector window/eviction


def ingest_iterations(collector: ShuttlingCollector, sizes) -> None:
    for size in sizes:
        collector.ingest(
            UnitMeasurement(u, size, size * 100, 1e-3) for u in UNITS
        )


def test_collector_clear_resets_all_derived_state():
    c = ShuttlingCollector(min_iterations=3, min_distinct_sizes=3)
    ingest_iterations(c, [10, 20, 30])
    assert c.is_ready()
    c.clear()
    assert not c.is_ready()
    assert c.iterations_collected == 0
    assert c.max_seen_size == 0
    assert c.distinct_sizes == 0
    assert c.unit_names() == []
    assert c.samples("a") == ()
    assert c.window_sizes() == []
    # the cleared collector re-earns readiness from scratch
    ingest_iterations(c, [10, 20, 30])
    assert c.is_ready()


def test_evict_oldest_drops_head_and_rebuilds_derived_state():
    c = ShuttlingCollector(min_iterations=3, min_distinct_sizes=3)
    ingest_iterations(c, [10, 20, 30, 40, 50])
    dropped = c.evict_oldest(keep=2)
    assert dropped == 3
    assert c.iterations_collected == 2
    assert c.window_sizes() == [40, 50]
    assert c.max_seen_size == 50
    assert c.distinct_sizes == 2
    for u in UNITS:
        assert c.distinct_sizes_for(u) == 2
    assert not c.is_ready()  # readiness must be re-earned after eviction
    ingest_iterations(c, [60])
    assert c.is_ready()


def test_evict_oldest_keep_zero_equals_clear():
    c = ShuttlingCollector(min_iterations=3, min_distinct_sizes=3)
    ingest_iterations(c, [10, 20, 30])
    assert c.evict_oldest(keep=0) == 3
    assert c.iterations_collected == 0
    assert c.max_seen_size == 0
    assert not c.is_ready()


def test_windowed_collector_auto_evicts():
    c = ShuttlingCollector(
        min_iterations=3, min_distinct_sizes=3, window_iterations=4
    )
    ingest_iterations(c, [10, 20, 30, 40, 50, 60])
    assert c.iterations_collected == 4
    assert c.window_sizes() == [30, 40, 50, 60]
    assert c.max_seen_size == 60


def test_window_smaller_than_min_iterations_rejected():
    with pytest.raises(ValueError):
        ShuttlingCollector(min_iterations=5, window_iterations=4)


# ----------------------------------------------------------- state machine


def test_initial_collection_to_fitted():
    c = make_controller()
    assert c.state is LifecycleState.COLLECTING
    assert c.needs_collection(10)
    next_it = fit_controller(c)
    assert c.state is LifecycleState.FITTED
    assert c.fit_count == 1
    assert c.refit_count == 0
    assert not c.needs_collection(30)
    c.observe(responsive_stats(next_it, 30, predicted=90_000, actual=90_000))
    assert c.state is LifecycleState.MONITORING


def test_observe_is_idempotent_per_stats_object():
    c = make_controller()
    stats = collect_stats(0, 10)
    c.observe(stats)
    c.observe(stats)  # bus delivery followed by a direct planner call
    assert c.collector.iterations_collected == 1


def test_out_of_range_input_triggers_recollection_and_refit():
    c = make_controller()
    next_it = fit_controller(c)
    assert c.should_recollect(100)  # far beyond max_trained_size * 1.1
    assert c.needs_collection(100)
    c.observe(collect_stats(next_it, 100))
    assert c.fit_count == 2
    assert c.refit_count == 1
    assert c.state is LifecycleState.FITTED


def test_static_fit_never_recollects():
    c = make_controller(recollect_margin=math.inf)
    fit_controller(c)
    assert not c.should_recollect(10**9)
    assert not c.needs_collection(10**9)


def test_residual_drift_walks_the_full_state_cycle():
    bus = EventBus()
    recorder = Recorder()
    invalidations = []
    c = make_controller(
        drift_detection=True,
        residual_detector=PageHinkleyDetector(
            threshold=0.1, min_observations=2
        ),
    )
    c.attach(bus, invalidate=lambda: invalidations.append(True))
    recorder.attach(bus, LifecycleTransition, DriftDetected, EstimatorRefit)
    it = fit_controller(c)
    # healthy monitoring: predictions match reality
    for _ in range(3):
        c.observe(responsive_stats(it, 25, predicted=75_000, actual=75_000))
        it += 1
    assert c.state is LifecycleState.MONITORING
    # the fitted relation breaks: sustained 50 % under-prediction
    while c.state is not LifecycleState.DRIFTED:
        c.observe(responsive_stats(it, 25, predicted=75_000, actual=112_500))
        it += 1
    assert c.drift_events == 1
    drift = recorder.of(DriftDetected)
    assert drift and drift[0].monitor == "residual-page-hinkley"
    # partial re-collection: the stale head is gone, readiness re-earned
    assert c.collector.iterations_collected < c.collector.min_iterations
    assert c.needs_collection(25)
    sizes = iter((50, 60, 70))
    while c.state is LifecycleState.DRIFTED:
        c.observe(collect_stats(it, next(sizes)))
        it += 1
    assert c.state is LifecycleState.FITTED
    assert c.refit_count == 1
    # the refit ran the invalidation protocol through the bound callback
    assert invalidations == [True]
    refits = recorder.of(EstimatorRefit)
    assert refits and refits[-1].invalidated
    # and the machine passed through REFITTING on the way back
    visited = [t.current for t in recorder.of(LifecycleTransition)]
    assert "drifted" in visited and "refitting" in visited
    assert visited[-1] == "fitted"


def test_size_cusum_fires_at_plan_time_within_trained_range():
    c = make_controller(
        drift_detection=True,
        size_monitor=CusumMonitor(
            slack=0.5, threshold=2.0, min_observations=2
        ),
    )
    fit_controller(c)  # calibrates the monitor on window sizes 10..40
    # in-range but persistently at the top of the distribution: the range
    # check stays quiet (38 < 40 * 1.1), the CUSUM must catch the shift
    fired = False
    for _ in range(30):
        if c.needs_collection(38):
            fired = True
            break
    assert fired
    assert c.state is LifecycleState.DRIFTED
    assert c.drift_events == 1


def test_drift_detection_off_keeps_detectors_silent():
    c = make_controller()  # drift_detection=False
    it = fit_controller(c)
    for _ in range(50):
        c.observe(responsive_stats(it, 25, predicted=75_000, actual=150_000))
        it += 1
        assert not c.needs_collection(38)
    assert c.drift_events == 0
    assert c.state is LifecycleState.MONITORING


def test_refit_flushes_plan_cache():
    c = make_controller()
    next_it = fit_controller(c)
    c.cache.put(30, "fake-plan")
    c.observe(collect_stats(next_it, 100))  # out-of-range recollect + refit
    assert c.cache.get(30) is None


def test_oom_stats_do_not_feed_monitors():
    c = make_controller(
        drift_detection=True,
        residual_detector=PageHinkleyDetector(
            threshold=0.1, min_observations=1
        ),
    )
    it = fit_controller(c)
    bad = dataclasses.replace(
        responsive_stats(it, 25, predicted=75_000, actual=200_000), oom=True
    )
    c.observe(bad)
    assert c.residual_detector.num_observations == 0
    assert c.drift_events == 0
