"""Table I: the qualitative capability matrix must match the paper."""

from repro.core.planner import MimosePlanner
from repro.experiments.tables import table1_rows
from repro.planners.checkmate import CheckmatePlanner
from repro.planners.dtr import DTRPlanner
from repro.planners.monet import MonetPlanner
from repro.planners.sublinear import SublinearPlanner


def rows_by_name():
    return {r["planner"]: r for r in table1_rows()}


def test_every_planner_appears():
    names = set(rows_by_name())
    assert {"mimose", "dtr", "sublinear", "checkmate", "monet", "baseline"} <= names


def test_nobody_swaps_everyone_checkpoints():
    rows = rows_by_name()
    for name in ("mimose", "dtr", "sublinear", "checkmate", "monet"):
        assert not rows[name]["swapping"]
        assert rows[name]["checkpointing"]


def test_dynamic_input_column():
    """Paper Table I: only Mimose and DTR handle dynamic input."""
    rows = rows_by_name()
    assert rows["mimose"]["dynamic_input"]
    assert rows["dtr"]["dynamic_input"]
    for name in ("sublinear", "checkmate", "monet"):
        assert not rows[name]["dynamic_input"]


def test_dynamic_graph_column():
    rows = rows_by_name()
    assert rows["dtr"]["dynamic_graph"]
    assert not rows["mimose"]["dynamic_graph"]


def test_fragmentation_avoidance():
    rows = rows_by_name()
    assert rows["mimose"]["frag_avoidance"] == "side-effect"
    assert rows["dtr"]["frag_avoidance"] == "none"


def test_granularity_column():
    rows = rows_by_name()
    assert rows["mimose"]["granularity"] == "block"
    assert rows["dtr"]["granularity"] == "tensor"
    assert rows["sublinear"]["granularity"] == "layer"
    assert rows["checkmate"]["granularity"] == "layer"
    assert rows["monet"]["granularity"] == "tensor"


def test_plan_timing_column():
    rows = rows_by_name()
    assert rows["mimose"]["plan_timing"] == "runtime"
    assert rows["dtr"]["plan_timing"] == "runtime"
    for name in ("sublinear", "checkmate", "monet"):
        assert rows[name]["plan_timing"] == "offline"


def test_search_space_and_algorithm():
    rows = rows_by_name()
    assert rows["mimose"]["search_space"] == "holistic"
    assert rows["dtr"]["search_space"] == "currently traced tensors"
    assert rows["sublinear"]["search_space"] == "segments"
    assert rows["checkmate"]["search_algorithm"] == "MILP+approx."
    assert rows["monet"]["search_algorithm"] == "MILP"
    assert rows["mimose"]["search_algorithm"] == "greedy"


def test_solving_time_ordering():
    """Mimose/DTR/Sublinear solve in sub-seconds; the MILP planners model
    hours of offline solving."""
    assert MimosePlanner(1).solve_time_s == 0.0
    assert DTRPlanner(1).solve_time_s == 0.0
    from repro.models.base import BatchInput
    from repro.tensorsim.dtypes import INT64

    b = BatchInput((1, 16), INT64)
    assert CheckmatePlanner(1, b).solve_time_s >= 3600
    assert MonetPlanner(1, b).solve_time_s >= 8 * 3600
    assert SublinearPlanner(1, b).solve_time_s == 0.0
