"""Tests for the input-size-keyed plan cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plan_cache import PlanCache
from repro.planners.base import CheckpointPlan


def plan(label):
    return CheckpointPlan(frozenset({label}), label)


def test_exact_hit():
    c = PlanCache()
    c.put(1000, plan("a"))
    assert c.get(1000).label == "a"
    assert c.hits == 1 and c.misses == 0


def test_miss_on_empty():
    c = PlanCache()
    assert c.get(1000) is None
    assert c.misses == 1
    assert c.hit_rate == 0.0


def test_similar_size_shares_downward_only():
    c = PlanCache(tolerance=0.05)
    c.put(1000, plan("a"))
    # a slightly smaller request may safely reuse the larger plan
    assert c.get(960).label == "a"
    # a larger request must NOT reuse a smaller plan (budget risk)
    assert c.get(1041) is None


def test_tolerance_boundary():
    c = PlanCache(tolerance=0.05)
    c.put(1000, plan("a"))
    assert c.get(950) is not None  # exactly at 1000*(1-0.05)
    assert c.get(949) is None


def test_nearest_size_at_or_above_is_used():
    c = PlanCache(tolerance=0.10)
    c.put(1000, plan("big"))
    c.put(910, plan("small"))
    # 905 matches both windows; the tighter (smaller) plan wins
    assert c.get(905).label == "small"


def test_put_refreshes_existing():
    c = PlanCache()
    c.put(1000, plan("a"))
    c.put(1000, plan("b"))
    assert len(c) == 1
    assert c.get(1000).label == "b"


def test_lru_eviction():
    c = PlanCache(max_entries=2)
    c.put(100, plan("a"))
    c.put(200, plan("b"))
    c.get(100)  # refresh a
    c.put(300, plan("c"))  # evicts b (least recently used)
    assert c.get(200) is None
    assert c.get(100) is not None
    assert c.get(300) is not None
    assert len(c) == 2


def test_clear_resets_everything():
    c = PlanCache()
    c.put(100, plan("a"))
    c.get(100)
    c.clear()
    assert len(c) == 0
    assert c.hits == 0 and c.misses == 0
    assert c.get(100) is None


def test_validation():
    with pytest.raises(ValueError):
        PlanCache(tolerance=1.0)
    with pytest.raises(ValueError):
        PlanCache(max_entries=0)
    c = PlanCache()
    with pytest.raises(ValueError):
        c.put(0, plan("a"))


def test_hit_rate():
    c = PlanCache()
    c.put(100, plan("a"))
    c.get(100)
    c.get(100)
    c.get(999)
    assert c.hit_rate == pytest.approx(2 / 3)


@settings(max_examples=60, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 10_000), min_size=1, max_size=64),
    probe=st.integers(1, 10_000),
)
def test_property_returned_plan_is_always_safe(sizes, probe):
    """Any plan the cache returns was stored for a size >= (1-tol)^-1 of
    the probe — i.e. plans are never reused upward beyond tolerance."""
    tol = 0.05
    c = PlanCache(tolerance=tol, max_entries=128)
    for s in sizes:
        c.put(s, CheckpointPlan(frozenset(), str(s)))
    got = c.get(probe)
    if got is not None:
        stored_size = int(got.label)
        assert probe >= stored_size * (1 - tol)
        # never serves a plan from a *smaller* stored size than needed,
        # except exact hits
        assert stored_size >= probe or stored_size == probe
