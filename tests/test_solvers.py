"""Solver-registry contract and optimality-harness property suite.

Every registered solver shares one contract (:class:`SolverInput` in,
``ActionAssignment`` out) and one objective (:func:`plan_cost` under a
shared :class:`PcieCostModel`).  The properties here are the ones the
Table I gap column rests on: every solver's plan is budget-feasible,
no solver beats the exact branch-and-bound optimum (gap >= 0), the
exact solver's own gap is identically zero, and the LP relaxation
never exceeds the integral optimum.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import articulation_points
from repro.planners.checkmate import solve_keep_knapsack
from repro.solvers import (
    ExactSolver,
    PcieCostModel,
    Solver,
    SolverInput,
    fractional_lower_bound,
    make_solver,
    plan_cost,
    plan_feasible,
    register_solver,
    solver_class,
    solver_names,
)
from repro.experiments.optimality import relative_gap

MB = 1 << 20
GBPS = 10**9


def make_input(est, excess, est_time=None, bwd_time=None):
    return SolverInput(
        est_bytes=est,
        order={u: i for i, u in enumerate(est)},
        excess_bytes=excess,
        est_time=est_time,
        bwd_time=bwd_time,
    )


# ------------------------------------------------------------------ registry


def test_registry_lists_all_builtin_solvers():
    names = solver_names()
    assert names == tuple(sorted(names))
    for expected in (
        "greedy",
        "knapsack",
        "hybrid",
        "exact",
        "lp",
        "chen-greedy",
        "chen-sqrtn",
        "sublinear",
        "checkmate",
    ):
        assert expected in names


def test_unknown_solver_name_is_a_keyerror_listing_alternatives():
    with pytest.raises(KeyError, match="unknown solver 'nope'"):
        solver_class("nope")
    with pytest.raises(KeyError, match="greedy"):
        make_solver("nope")


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="duplicate solver name"):

        @register_solver
        class Duplicate(Solver):  # noqa: F811 - registration is the point
            name = "greedy"


def test_make_solver_builds_each_registered_solver():
    for name in solver_names():
        solver = make_solver(name)
        assert solver.name == name
        assert isinstance(solver, solver_class(name))


def test_prices_actions_flags_the_cost_model_solvers():
    pricing = {n for n in solver_names() if solver_class(n).prices_actions}
    assert pricing == {"hybrid", "exact", "lp"}
    # the flag is what gates --bwd-ratio: pricing solvers accept it
    for name in pricing:
        solver = make_solver(name, bwd_ratio=3.0)
        assert solver.cost_model is not None


# ----------------------------------------------------------------- properties


@st.composite
def solver_cases(draw):
    """Small instances every solver (incl. exact B&B) must handle."""
    n = draw(st.integers(1, 10))
    est = {f"u{i}": draw(st.integers(1, 256)) * MB for i in range(n)}
    total = sum(est.values())
    excess = draw(st.integers(-MB, total + 64 * MB))
    timed = draw(st.booleans())
    est_time = bwd_time = None
    if timed:
        est_time = {
            u: draw(st.floats(1e-5, 1e-2, allow_nan=False)) for u in est
        }
        bwd_time = {u: 1.5 * t for u, t in est_time.items()}
    return make_input(est, excess, est_time=est_time, bwd_time=bwd_time)


@settings(max_examples=60, deadline=None)
@given(inp=solver_cases())
def test_property_every_solver_is_budget_feasible(inp):
    """Each registered solver's plan covers the excess (or exhausts the
    units) without overflowing the swap envelope."""
    model = PcieCostModel()
    for name in solver_names():
        solver = make_solver(name)
        assignment = solver.assign(inp)
        own_model = solver.cost_model or model
        assert plan_feasible(own_model, assignment, inp), (
            f"{name} produced an infeasible plan"
        )


@settings(max_examples=60, deadline=None)
@given(inp=solver_cases())
def test_property_no_solver_beats_the_exact_optimum(inp):
    """Gap >= 0 for every solver, identically 0 for exact itself —
    priced under one shared cost model, exactly like ``gap_report``.
    The shared model must match the one ``make_solver`` gives the
    pricing solvers (the default), else they optimise a different
    objective than they are scored under."""
    model = PcieCostModel()
    exact_cost = plan_cost(model, ExactSolver(model).assign(inp), inp)
    for name in solver_names():
        assignment = make_solver(name).assign(inp)
        if not plan_feasible(model, assignment, inp):
            continue  # scored inf by the harness, trivially >= 0
        gap = relative_gap(plan_cost(model, assignment, inp), exact_cost)
        assert gap >= 0.0, f"{name} beat the exact optimum (gap {gap})"
        if name == "exact":
            assert gap == 0.0


@settings(max_examples=60, deadline=None)
@given(inp=solver_cases())
def test_property_lp_relaxation_lower_bounds_the_exact_optimum(inp):
    model = PcieCostModel(pcie_bandwidth=GBPS)
    exact_cost = plan_cost(model, ExactSolver(model).assign(inp), inp)
    assert fractional_lower_bound(model, inp) <= exact_cost + 1e-9


def test_relative_gap_convention():
    assert relative_gap(3.0, 2.0) == pytest.approx(0.5)
    assert relative_gap(0.0, 0.0) == 0.0
    assert relative_gap(-1e-15, 0.0) == 0.0
    assert math.isinf(relative_gap(1.0, 0.0))


def test_exact_solver_refuses_oversized_instances():
    solver = ExactSolver(PcieCostModel())
    est = {f"u{i}": MB for i in range(solver.max_units + 1)}
    with pytest.raises(ValueError, match="unit"):
        solver.assign(make_input(est, 10 * MB))


# ----------------------------------------------- checkmate keep-knapsack fix


def test_keep_knapsack_zero_weight_units_are_free_keeps():
    """Sub-quantum regression (mirror of ``KnapsackScheduler``'s): a
    zero-byte unit quantises to weight 0 and must always be kept — the
    old ``max(1, ...)`` floor charged it a phantom MiB, evicting either
    it or a real unit under a tight budget."""
    values = [5.0, 1.0]
    weights = [0, 1 * MB]  # item 0 saves nothing: keeping it is free
    chosen = solve_keep_knapsack(values, weights, capacity=1 * MB)
    assert 0 in chosen  # free keep always taken
    assert 1 in chosen  # the real MiB still fits: nothing was evicted


def test_keep_knapsack_still_rounds_real_weights_up():
    # 1.5 MiB quantises to 2 MiB: both items no longer fit in 3 MiB
    chosen = solve_keep_knapsack(
        [1.0, 1.0], [int(1.5 * MB), int(1.5 * MB)], capacity=3 * MB
    )
    assert len(chosen) == 1


def test_keep_knapsack_empty_and_zero_capacity():
    assert solve_keep_knapsack([], [], 10 * MB) == []
    assert solve_keep_knapsack([1.0], [MB], 0) == []


# -------------------------------------------------------- articulation points


def test_articulation_points_on_a_chain():
    chain = {"a": ["b"], "b": ["c"], "c": ["d"], "d": []}
    assert articulation_points(chain) == frozenset({"b", "c"})


def test_articulation_points_cycle_has_none():
    cycle = {"a": ["b"], "b": ["c"], "c": ["a"]}
    assert articulation_points(cycle) == frozenset()


def test_articulation_points_bridge_between_cycles():
    # two triangles joined at x: x disconnects them
    g = {
        "a": ["b", "x"],
        "b": ["x"],
        "x": ["c"],
        "c": ["d"],
        "d": ["x"],
    }
    assert articulation_points(g) == frozenset({"x"})


def test_articulation_points_handles_missing_reverse_edges():
    # directed-style input: reverse entries repaired internally
    assert articulation_points({"a": ["b"], "b": ["c"]}) == frozenset({"b"})
