"""Unit tests for the module tracer and profile caching."""

import pytest

from repro.graph.module import Module, ProfileContext, Sequential
from repro.graph.ops import Add, Dropout, Linear, Relu
from repro.tensorsim.dtypes import FLOAT32
from repro.tensorsim.tensor import TensorSpec

from tests.helpers import TinyUnit


def test_profile_records_activations_and_costs():
    unit = TinyUnit("u", 8)
    p = unit.profile(TensorSpec((2, 8), FLOAT32))
    assert p.output == TensorSpec((2, 8), FLOAT32)
    # lin1 (transient), gelu (saved), lin2 (transient), relu (saved)
    assert len(p.activations) == 4
    assert [a.saved for a in p.activations] == [False, True, False, True]
    assert p.param_count == 2 * (8 * 8 + 8)
    assert p.fwd_flops > 0
    assert p.bwd_flops > p.fwd_flops  # backward costs more
    assert len(p.op_costs) == 4


def test_profile_cache_returns_same_object():
    unit = TinyUnit("u", 8)
    x = TensorSpec((2, 8), FLOAT32)
    assert unit.profile(x) is unit.profile(x)
    unit.clear_profile_cache()
    assert unit.profile(x) is not None


def test_profile_differs_per_input_spec():
    unit = TinyUnit("u", 8)
    p1 = unit.profile(TensorSpec((2, 8), FLOAT32))
    p2 = unit.profile(TensorSpec((4, 8), FLOAT32))
    assert p1.saved_bytes < p2.saved_bytes


def test_hierarchical_names():
    unit = TinyUnit("blk", 8)
    p = unit.profile(TensorSpec((1, 8), FLOAT32))
    assert all(a.name.startswith("blk/") for a in p.activations)


def test_sequential_composes_children():
    seq = Sequential("seq", [TinyUnit("a", 8), TinyUnit("b", 8)])
    p = seq.profile(TensorSpec((2, 8), FLOAT32))
    assert len(p.activations) == 8
    names = [a.name for a in p.activations]
    assert any("seq/a/" in n for n in names)
    assert any("seq/b/" in n for n in names)


def test_sequential_rejects_duplicates_and_empty():
    with pytest.raises(ValueError):
        Sequential("s", [])
    with pytest.raises(ValueError):
        Sequential("s", [TinyUnit("a", 8), TinyUnit("a", 8)])


def test_module_requires_name():
    with pytest.raises(ValueError):
        TinyUnit("", 8)


def test_saved_and_transient_byte_split():
    unit = TinyUnit("u", 16)
    p = unit.profile(TensorSpec((4, 16), FLOAT32))
    expected_each = 4 * 16 * 4
    assert p.transient_bytes == 2 * expected_each  # the two linear outputs
    assert p.saved_bytes == 2 * expected_each  # gelu + relu outputs
    assert p.total_activation_bytes == 4 * expected_each
    assert len(p.saved_activations()) == 2


class BranchyUnit(Module):
    """Exercises multi-input ops and dropout masks in one trace."""

    def forward(self, ctx: ProfileContext, x: TensorSpec) -> TensorSpec:
        a = ctx.op(Linear(8, 8), x, name="a")
        b = ctx.op(Relu(), a, name="b")
        c = ctx.op(Add(), b, x, name="c")
        return ctx.op(Dropout(0.1), c, name="d")


def test_branchy_module_traces_every_op():
    unit = BranchyUnit("br")
    p = unit.profile(TensorSpec((2, 8), FLOAT32))
    # linear out, relu out, add out, dropout out, dropout mask
    assert len(p.activations) == 5
    kinds = {a.op_kind for a in p.activations}
    assert kinds == {"reduction", "elementwise"}
    assert len(p.op_costs) == 4  # mask is not a kernel


def test_scalar_output_not_recorded():
    from repro.graph.ops import CrossEntropyLoss

    class LossUnit(Module):
        def forward(self, ctx: ProfileContext, x: TensorSpec) -> TensorSpec:
            return ctx.op(CrossEntropyLoss(), x, name="loss")

    p = LossUnit("l").profile(TensorSpec((4, 10), FLOAT32))
    # the scalar loss itself is not an activation; the saved probs are
    assert [a.spec.shape for a in p.activations] == [(4, 10)]
