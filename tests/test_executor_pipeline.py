"""Pipeline-refactor parity and unit tests.

Three layers of protection for the phase-structured executor:

1. **Digest parity** — the full (task, planner, budget, faults) grid in
   ``helpers_digest_grid`` must reproduce the goldens captured from the
   pre-refactor executor (``tests/data/digest_parity.json``) bit for bit,
   serially and under the parallel sweep runner.
2. **Event bus** — subscription-order dispatch, typed filtering,
   unsubscribe semantics and the ``wants()`` hot-path guard.
3. **Strategy dispatch** — mode → strategy registry behaviour, per-call
   instance freshness, and the replay-eligibility flags the executor's
   bypass ladder reads.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.engine.events import (
    EventBus,
    EventCounter,
    IterationStart,
    OomHit,
    TimeCharged,
)
from repro.engine.executor import TrainingExecutor
from repro.engine.stats import RunResult
from repro.engine.strategies import (
    _STRATEGIES,
    CollectStrategy,
    ExecutionStrategy,
    NormalStrategy,
    ReactiveStrategy,
    register_strategy,
    strategy_for,
)
from repro.experiments.runner import run_task, sweep
from repro.experiments.tasks import GB, load_task
from repro.planners.base import CheckpointPlan, ExecutionMode, PlanDecision
from repro.planners.none import NoCheckpointPlanner
from repro.tensorsim.faults import FaultPlan

from tests.helpers import make_tiny_model
from tests.helpers_digest_grid import digest_grid, run_grid_point_result

_DATA = pathlib.Path(__file__).parent / "data"
GOLDENS = json.loads((_DATA / "digest_parity.json").read_text())
STREAM_GOLDENS = json.loads((_DATA / "digest_parity_stream.json").read_text())


# ---------------------------------------------------------------- digest grid


@pytest.mark.parametrize(
    "point", digest_grid(), ids=lambda p: "|".join(str(x) for x in p)
)
def test_digest_matches_seed_golden(point):
    key = "|".join(str(p) for p in point)
    assert key in GOLDENS, f"no golden for {key}; regenerate goldens"
    result = run_grid_point_result(point)
    if result.digest() == GOLDENS[key]:
        return
    # Diverged: use the rolling (per-iteration prefix) digests to name
    # the first iteration whose simulated behaviour changed.
    rolling = result.rolling_digests()
    golden_stream = STREAM_GOLDENS.get(key, [])
    first = next(
        (
            i
            for i, (got, want) in enumerate(zip(rolling, golden_stream))
            if got != want
        ),
        min(len(rolling), len(golden_stream)),
    )
    pytest.fail(
        f"digest mismatch for {key}: first divergent iteration is {first} "
        f"(ran {len(rolling)} iterations, golden has {len(golden_stream)})"
    )


def test_rolling_digests_prefix_run_digest():
    """The last rolling digest IS the run digest; entries are prefixes."""
    result = run_grid_point_result(("TC-Bert", "mimose", 4.0, 12, ""))
    rolling = result.rolling_digests()
    assert len(rolling) == result.num_iterations
    assert rolling[-1] == result.digest()
    truncated = RunResult(
        result.task_name, result.planner_name, result.budget_bytes,
        iterations=result.iterations[:5],
    )
    assert truncated.digest() == rolling[4]
    assert RunResult("t", "p", 1).rolling_digests() == ()


def test_digest_parity_serial_vs_parallel():
    """jobs=N must reproduce the serial digests, in the same order."""
    task = load_task("TC-Bert", iterations=12, seed=0)
    faults = FaultPlan.parse("frag:start=6,iters=2,bytes=512M", seed=3)
    kwargs = dict(
        planner_names=("baseline", "mimose", "dtr"),
        budgets=(int(4.0 * GB),),
        max_iterations=12,
        faults=faults,
    )
    serial = sweep(task, jobs=1, **kwargs)
    parallel = sweep(task, jobs=3, **kwargs)
    assert [r.digest() for r in serial] == [r.digest() for r in parallel]


def test_observers_do_not_perturb_digest():
    """The bus is observe-only: attaching subscribers changes nothing."""
    task = load_task("TC-Bert", iterations=10, seed=0)
    plain = run_task(task, "mimose", int(4 * GB), max_iterations=10)
    task = load_task("TC-Bert", iterations=10, seed=0)
    counter = EventCounter()
    observed = run_task(
        task,
        "mimose",
        int(4 * GB),
        max_iterations=10,
        observers=[lambda ex: counter.attach(ex.events)],
    )
    assert plain.digest() == observed.digest()
    assert counter.counts["IterationStart"] == 10
    assert counter.counts["IterationEnd"] == 10


# ------------------------------------------------------------------ event bus


def _start(i=0):
    return IterationStart(iteration=i, mode="normal", plan_label="p", input_size=1)


def test_subscribers_called_in_subscription_order():
    bus = EventBus()
    calls = []
    bus.subscribe(lambda e: calls.append("a"))
    bus.subscribe(lambda e: calls.append("b"), IterationStart)
    bus.subscribe(lambda e: calls.append("c"))
    bus.emit(_start())
    assert calls == ["a", "b", "c"]


def test_typed_subscription_filters_other_events():
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append, IterationStart, OomHit)
    bus.emit(TimeCharged(component="fwd", seconds=1.0))
    bus.emit(_start(3))
    bus.emit(OomHit(iteration=3, time=0.5))
    assert [type(e).__name__ for e in seen] == ["IterationStart", "OomHit"]


def test_unsubscribe_mid_stream_and_stale_token():
    bus = EventBus()
    calls = []
    tok_a = bus.subscribe(lambda e: calls.append("a"))
    bus.subscribe(lambda e: calls.append("b"))
    bus.emit(_start())
    bus.unsubscribe(tok_a)
    bus.emit(_start())
    bus.unsubscribe(tok_a)  # stale token: no-op, no raise
    bus.emit(_start())
    assert calls == ["a", "b", "b", "b"]
    assert len(bus) == 1


def test_resubscription_moves_handler_to_tail():
    bus = EventBus()
    calls = []

    def a(e):
        calls.append("a")

    tok = bus.subscribe(a)
    bus.subscribe(lambda e: calls.append("b"))
    bus.unsubscribe(tok)
    bus.subscribe(a)  # re-subscribing appends, it does not restore rank
    bus.emit(_start())
    assert calls == ["b", "a"]


def test_wants_reflects_subscriptions():
    bus = EventBus()
    assert not bus.wants(IterationStart)
    tok = bus.subscribe(lambda e: None, IterationStart)
    assert bus.wants(IterationStart)
    assert not bus.wants(OomHit)
    bus.unsubscribe(tok)
    assert not bus.wants(IterationStart)
    # a wildcard subscriber wants everything
    bus.subscribe(lambda e: None)
    assert bus.wants(OomHit)


def test_dispatch_cache_invalidated_by_subscribe():
    bus = EventBus()
    calls = []
    bus.subscribe(lambda e: calls.append("a"), IterationStart)
    bus.emit(_start())  # primes the per-type handler cache
    bus.subscribe(lambda e: calls.append("b"), IterationStart)
    bus.emit(_start())
    assert calls == ["a", "a", "b"]


# ---------------------------------------------------------- strategy dispatch


def _decision(mode):
    return PlanDecision(CheckpointPlan(frozenset(), "t"), mode=mode)


@pytest.mark.parametrize(
    "mode,cls",
    [
        (ExecutionMode.NORMAL, NormalStrategy),
        (ExecutionMode.COLLECT, CollectStrategy),
        (ExecutionMode.REACTIVE, ReactiveStrategy),
    ],
)
def test_strategy_for_maps_modes(mode, cls):
    strategy = strategy_for(_decision(mode))
    assert type(strategy) is cls
    assert strategy.mode is mode


def test_strategy_for_returns_fresh_instances():
    d = _decision(ExecutionMode.REACTIVE)
    assert strategy_for(d) is not strategy_for(d)


def test_replayable_flags():
    assert NormalStrategy.replayable
    assert CollectStrategy.replayable
    assert not ReactiveStrategy.replayable


def test_collect_replay_gated_on_noise_rng():
    model = make_tiny_model()
    planner = NoCheckpointPlanner(budget_bytes=1 * GB)
    quiet = TrainingExecutor(model, planner, capacity_bytes=1 * GB)
    noisy = TrainingExecutor(
        make_tiny_model(),
        NoCheckpointPlanner(budget_bytes=1 * GB),
        capacity_bytes=1 * GB,
        measurement_noise=0.01,
    )
    strategy = CollectStrategy()
    assert strategy.allows_replay(quiet)
    assert not strategy.allows_replay(noisy)
    assert NormalStrategy().allows_replay(noisy)


def test_register_strategy_extends_registry():
    class ShadowStrategy(NormalStrategy):
        pass

    original = _STRATEGIES[ExecutionMode.NORMAL]
    try:
        register_strategy(ShadowStrategy)
        assert type(strategy_for(_decision(ExecutionMode.NORMAL))) is ShadowStrategy
    finally:
        _STRATEGIES[ExecutionMode.NORMAL] = original
    assert type(strategy_for(_decision(ExecutionMode.NORMAL))) is NormalStrategy


def test_strategy_base_is_abstract_over_phases():
    ctx = object()
    base = ExecutionStrategy()
    with pytest.raises(NotImplementedError):
        base.run_forward(ctx)
    with pytest.raises(NotImplementedError):
        base.run_backward(ctx)
