"""Cross-module integration tests: the paper's headline claims, in miniature.

These run the full stack (data -> model -> planner -> executor) on reduced
iteration counts and assert the *shape* of the paper's results rather than
absolute numbers.
"""

import pytest

from repro.experiments.runner import run_task
from repro.experiments.tasks import GB, load_task


@pytest.fixture(scope="module")
def tc_bert_runs():
    """One shared sweep on TC-Bert @ 4 GB for several assertions."""
    task = load_task("TC-Bert", iterations=40, seed=7)
    budget = 4 * GB
    return {
        name: run_task(task, name, budget)
        for name in ("baseline", "sublinear", "dtr", "mimose")
    }, budget


def test_everyone_trains_successfully(tc_bert_runs):
    runs, _ = tc_bert_runs
    for name, r in runs.items():
        assert r.succeeded, f"{name} hit OOM"


def test_mimose_beats_sublinear_and_dtr(tc_bert_runs):
    """The headline: input-aware planning outperforms both static and
    reactive planners under the same budget (~18 % / ~15 % in the paper)."""
    runs, _ = tc_bert_runs
    base = runs["baseline"]
    t_mimose = runs["mimose"].normalized_time(base)
    t_sub = runs["sublinear"].normalized_time(base)
    t_dtr = runs["dtr"].normalized_time(base)
    assert t_mimose < t_sub
    assert t_mimose < t_dtr


def test_budget_compliance_split(tc_bert_runs):
    """Mimose and Sublinear strictly obey the budget; DTR overshoots
    (fragmentation), as §VI-B reports."""
    runs, budget = tc_bert_runs
    assert runs["mimose"].peak_reserved <= budget
    assert runs["sublinear"].peak_reserved <= budget
    assert runs["dtr"].peak_reserved > budget


def test_dtr_pays_cost_upkeep(tc_bert_runs):
    """DTR's metadata maintenance is a double-digit share of iteration
    time (26 % average in Fig 5)."""
    runs, _ = tc_bert_runs
    breakdown = runs["dtr"].time_breakdown()
    upkeep_share = breakdown["upkeep_time"] / runs["dtr"].total_time
    assert 0.05 < upkeep_share < 0.5


def test_mimose_overhead_is_small(tc_bert_runs):
    """Estimator+scheduler are sub-millisecond; collection happens ~10
    times; total overhead is a few iterations' worth (Table III)."""
    runs, _ = tc_bert_runs
    mimose = runs["mimose"]
    collects = [s for s in mimose.iterations if s.mode == "collect"]
    assert 8 <= len(collects) <= 16
    responsive = [s for s in mimose.iterations if s.mode == "normal"]
    for s in responsive:
        assert s.planning_time < 0.01  # well under 10 ms
    mean_iter = mimose.mean_iteration_time()
    overhead_iters = sum(s.overhead_time for s in mimose.iterations) / mean_iter
    assert overhead_iters < len(mimose.iterations) * 0.5


def test_mimose_adapts_plans_to_input_size(tc_bert_runs):
    """Bigger inputs get more checkpointing; small inputs get none."""
    runs, _ = tc_bert_runs
    responsive = [
        s for s in runs["mimose"].iterations if s.mode == "normal"
    ]
    small = [s for s in responsive if s.input_shape[-1] <= 80]
    large = [s for s in responsive if s.input_shape[-1] >= 250]
    if small and large:
        mean_small = sum(s.num_checkpointed for s in small) / len(small)
        mean_large = sum(s.num_checkpointed for s in large) / len(large)
        assert mean_large > mean_small


def test_generous_budget_approaches_baseline():
    """Paper: 2.6 % slowdown at generous budgets.  Collection cost is
    amortised over an epoch, so compare steady-state (responsive)
    iterations against the baseline's matching iterations."""
    task = load_task("TC-Bert", iterations=40, seed=9)
    base = run_task(task, "baseline", 8 * GB)
    mimose = run_task(task, "mimose", int(5.8 * GB))
    pairs = [
        (m, b)
        for m, b in zip(mimose.iterations, base.iterations)
        if m.mode == "normal"
    ]
    t_mimose = sum(m.total_time for m, _ in pairs)
    t_base = sum(b.total_time for _, b in pairs)
    assert t_mimose / t_base < 1.08


def test_sublinear_wastes_budget_on_small_inputs():
    """Fig 4: with the static worst-case plan, a small input leaves a
    large fraction of the budget unused."""
    task = load_task("TC-Bert", iterations=30, seed=3)
    budget = 3 * GB
    sub = run_task(task, "sublinear", budget)
    small_iters = [s for s in sub.iterations if s.input_shape[-1] <= 100]
    assert small_iters, "need small inputs in the stream"
    for s in small_iters:
        unused = budget - s.peak_in_use
        assert unused > 0.25 * budget


def test_mimose_works_on_encoder_decoder_and_cnn():
    """Sanity across architectures: T5 (TR-T5) and ResNet (OD-R50)."""
    t5 = load_task("TR-T5", iterations=16, seed=1)
    r = run_task(t5, "mimose", 6 * GB)
    assert r.succeeded
    od = load_task("OD-R50", iterations=14, seed=1)
    lb, _ = od.memory_bounds()
    r = run_task(od, "mimose", int(lb * 1.2))
    assert r.succeeded
    assert r.peak_reserved <= int(lb * 1.2)
