"""Unit tests for the simulated clock."""

import pytest

from repro.tensorsim.clock import SimClock


def test_starts_at_zero():
    assert SimClock().now == 0.0


def test_custom_start():
    assert SimClock(5.0).now == 5.0


def test_advance_accumulates_and_returns_new_time():
    clock = SimClock()
    assert clock.advance(1.5) == 1.5
    assert clock.advance(0.5) == 2.0
    assert clock.now == 2.0


def test_zero_advance_is_allowed():
    clock = SimClock(1.0)
    clock.advance(0.0)
    assert clock.now == 1.0


def test_negative_advance_rejected():
    clock = SimClock()
    with pytest.raises(ValueError):
        clock.advance(-0.1)


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        SimClock(-1.0)


def test_reset():
    clock = SimClock()
    clock.advance(10.0)
    clock.reset()
    assert clock.now == 0.0
    clock.reset(3.0)
    assert clock.now == 3.0
    with pytest.raises(ValueError):
        clock.reset(-1.0)
