"""Action-layer tests: the per-unit assignment is the plan's identity.

Covers the refactor contract from three sides:

* **round-trip** (property-based) — the legacy set vocabulary
  (``checkpoint_units``/``swap_units``/``segments``) and the canonical
  :class:`ActionAssignment` describe the same plan, whichever one a
  plan is built from;
* **planner parity** — every registered planner's emitted plans
  reconstruct bit-equal from their own derived sets;
* **CLI** — ``repro run --scheduler hybrid`` produces a mixed-action,
  budget-respecting run, and the flag is rejected off Mimose.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.__main__ import main as repro_main
from repro.experiments.runner import (
    PLANNER_NAMES,
    SCHEDULER_NAMES,
    make_scheduler,
    run_task,
)
from repro.experiments.tasks import GB, load_task
from repro.planners.base import (
    ActionAssignment,
    CheckpointPlan,
    MemoryAction,
    ModelView,
)
from repro.planners.segmented import segment_plan

from tests.helpers import make_tiny_model


# ---------------------------------------------------------------- round-trip


@st.composite
def legacy_plan_parts(draw):
    num_units = draw(st.integers(1, 8))
    names = [f"unit.{i}" for i in range(num_units)]
    drop_mask = draw(st.integers(0, (1 << num_units) - 1))
    swap_mask = draw(st.integers(0, (1 << num_units) - 1)) & ~drop_mask
    seg_mask = (
        draw(st.integers(0, (1 << num_units) - 1)) & ~drop_mask & ~swap_mask
    )
    drop = frozenset(n for i, n in enumerate(names) if drop_mask & (1 << i))
    swap = frozenset(n for i, n in enumerate(names) if swap_mask & (1 << i))
    seg_members = [n for i, n in enumerate(names) if seg_mask & (1 << i)]
    cut = draw(st.integers(0, len(seg_members)))
    segments = tuple(
        tuple(part)
        for part in (seg_members[:cut], seg_members[cut:])
        if part
    )
    return drop, swap, segments


@settings(max_examples=100, deadline=None)
@given(parts=legacy_plan_parts())
def test_property_legacy_sets_round_trip_through_assignment(parts):
    drop, swap, segments = parts
    legacy = CheckpointPlan(drop, "prop", swap, segments)
    # the derived views reproduce the constructor inputs
    assert legacy.checkpoint_units == drop
    assert legacy.swap_units == swap
    assert legacy.segments == segments
    # rebuilding from the canonical assignment is the identical plan
    rebuilt = CheckpointPlan.from_assignment(legacy.assignment, "prop")
    assert rebuilt == legacy
    assert hash(rebuilt) == hash(legacy)
    # ... and so is rebuilding from the derived sets
    resets = CheckpointPlan(
        rebuilt.checkpoint_units, "prop", rebuilt.swap_units, rebuilt.segments
    )
    assert resets.assignment == legacy.assignment
    # per-unit dispatch agrees with the set vocabulary everywhere
    seg_units = {u for seg in segments for u in seg}
    for i in range(10):
        name = f"unit.{i}"
        action = legacy.action_for(name)
        if name in drop:
            assert action is MemoryAction.RECOMPUTE
        elif name in swap:
            assert action is MemoryAction.SWAP
        elif name in seg_units:
            assert action is MemoryAction.SEGMENT
        else:
            assert action is MemoryAction.KEEP


@settings(max_examples=100, deadline=None)
@given(parts=legacy_plan_parts())
def test_property_from_sets_round_trips(parts):
    drop, swap, segments = parts
    a = ActionAssignment.from_sets(
        recompute=drop, swap=swap, segments=segments
    )
    assert a.checkpoint_units == drop
    assert a.swap_units == swap
    assert a.segments == segments
    seg_units = {u for seg in segments for u in seg}
    assert a.units == drop | swap | seg_units
    assert a.segment_units == seg_units
    assert ActionAssignment.from_sets(
        recompute=a.checkpoint_units,
        swap=a.swap_units,
        segments=a.segments,
    ) == a


# ------------------------------------------------------------ planner parity


@pytest.mark.parametrize("planner_name", PLANNER_NAMES)
def test_planner_plans_reconstruct_from_derived_sets(planner_name):
    captured: list[CheckpointPlan] = []

    def capture(ex):
        orig = ex.planner.plan

        def wrapped(batch):
            decision = orig(batch)
            captured.append(decision.plan)
            return decision

        ex.planner.plan = wrapped

    task = load_task("TC-Bert", iterations=15, seed=0)
    run_task(
        task,
        planner_name,
        int(4 * GB),
        max_iterations=15,
        observers=[capture],
    )
    assert captured
    for plan in captured:
        rebuilt = CheckpointPlan(
            plan.checkpoint_units,
            plan.label,
            plan.swap_units,
            plan.segments,
            plan.predicted_peak_bytes,
        )
        assert rebuilt == plan
        assert rebuilt.assignment == plan.assignment


def test_segment_plan_round_trips_and_dispatches():
    view = ModelView(make_tiny_model(num_units=6))
    plan = segment_plan(view, 3)
    assert plan.segments
    for seg in plan.segments:
        for unit in seg:
            assert plan.action_for(unit) is MemoryAction.SEGMENT
    rebuilt = CheckpointPlan.from_assignment(plan.assignment, plan.label)
    assert rebuilt == plan
    assert rebuilt.segments == plan.segments


# -------------------------------------------------------------- hybrid CLI


def test_cli_run_scheduler_hybrid_mixes_actions(capsys):
    code = repro_main(
        [
            "run", "--task", "TC-Bert", "--planner", "mimose",
            "--scheduler", "hybrid", "--budget-gb", "2.5",
            "--iterations", "30",
        ]
    )
    assert code == 0
    assert "mimose" in capsys.readouterr().out
    # the same configuration through the API: the plan stream must mix
    # both non-KEEP actions and honour the budget
    task = load_task("TC-Bert", iterations=30, seed=0)
    result = run_task(
        task, "mimose", int(2.5 * GB), max_iterations=30, scheduler="hybrid"
    )
    assert result.succeeded
    assert result.peak_reserved <= int(2.5 * GB)
    assert any(s.num_swapped > 0 for s in result.iterations)
    assert any(s.num_checkpointed > 0 for s in result.iterations)
    assert any(
        s.num_swapped > 0 and s.num_checkpointed > 0
        for s in result.iterations
    )


def test_cli_run_reports_measured_pricing_and_ratio_override(capsys):
    base = [
        "run", "--task", "TC-Bert", "--planner", "mimose",
        "--scheduler", "hybrid", "--budget-gb", "2.5",
        "--iterations", "30",
    ]
    assert repro_main(base) == 0
    assert "swap pricing: measured-bwd" in capsys.readouterr().out
    assert repro_main(base + ["--bwd-ratio", "2.0"]) == 0
    assert "swap pricing: ratio-override" in capsys.readouterr().out


def test_hybrid_pricing_modes_both_run_on_grid_model():
    """Measured vs forced-ratio pricing on a digest-grid model: both runs
    must succeed within budget; the greedy (recompute-only) run from the
    same grid point never swaps."""
    task = load_task("TC-Bert", iterations=30, seed=0)
    measured = run_task(
        task, "mimose", int(2.5 * GB), max_iterations=30, scheduler="hybrid"
    )
    task = load_task("TC-Bert", iterations=30, seed=0)
    ratio = run_task(
        task,
        "mimose",
        int(2.5 * GB),
        max_iterations=30,
        scheduler="hybrid",
        bwd_ratio=2.0,
    )
    task = load_task("TC-Bert", iterations=30, seed=0)
    greedy = run_task(task, "mimose", int(2.5 * GB), max_iterations=30)
    for result in (measured, ratio, greedy):
        assert result.succeeded
        assert result.peak_reserved <= int(2.5 * GB)
    assert all(s.num_swapped == 0 for s in greedy.iterations)
    assert any(s.num_swapped > 0 for s in measured.iterations)
    assert any(s.num_swapped > 0 for s in ratio.iterations)


def test_cli_rejects_bwd_ratio_without_hybrid_scheduler():
    with pytest.raises(SystemExit, match="hybrid"):
        repro_main(
            [
                "run", "--task", "TC-Bert", "--planner", "mimose",
                "--budget-gb", "2.5", "--iterations", "5",
                "--bwd-ratio", "2.0",
            ]
        )
    with pytest.raises(ValueError, match="hybrid"):
        run_task(
            load_task("TC-Bert", iterations=2, seed=0),
            "mimose",
            int(2.5 * GB),
            max_iterations=2,
            bwd_ratio=2.0,
        )


def test_cli_rejects_scheduler_for_non_mimose_planner():
    with pytest.raises(SystemExit, match="mimose"):
        repro_main(
            [
                "run", "--task", "TC-Bert", "--planner", "capuchin",
                "--scheduler", "hybrid", "--budget-gb", "4",
                "--iterations", "5",
            ]
        )


def test_make_scheduler_names():
    for name in SCHEDULER_NAMES:
        assert make_scheduler(name).name == name
    with pytest.raises(KeyError):
        make_scheduler("simulated-annealing")
    with pytest.raises(ValueError, match="mimose"):
        run_task(
            load_task("TC-Bert", iterations=2, seed=0),
            "capuchin",
            int(4 * GB),
            max_iterations=2,
            scheduler="hybrid",
        )
