"""Unit + property tests for the segmented caching allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensorsim.allocator import (
    AllocationError,
    CachingAllocator,
    DEFAULT_ALIGNMENT,
    MEDIUM_SEGMENT,
    OutOfMemoryError,
    SMALL_SEGMENT,
)

MB = 1 << 20


def test_basic_alloc_free_accounting():
    alloc = CachingAllocator(64 * MB)
    b = alloc.malloc(1000)
    assert b.size == 1024  # rounded to 512B alignment
    assert alloc.bytes_in_use == 1024
    alloc.free(b)
    assert alloc.bytes_in_use == 0
    assert alloc.bytes_reserved >= 1024  # segment stays cached
    alloc.check_consistency()


def test_alignment_rounding():
    alloc = CachingAllocator(64 * MB)
    assert alloc.malloc(1).size == DEFAULT_ALIGNMENT
    assert alloc.malloc(DEFAULT_ALIGNMENT).size == DEFAULT_ALIGNMENT
    assert alloc.malloc(DEFAULT_ALIGNMENT + 1).size == 2 * DEFAULT_ALIGNMENT


def test_small_requests_pool_into_one_segment():
    alloc = CachingAllocator(64 * MB)
    for _ in range(16):
        alloc.malloc(4096)
    assert alloc.num_segments() == 1
    assert alloc.bytes_reserved == SMALL_SEGMENT


def test_segment_size_classes():
    alloc = CachingAllocator(1024 * MB)
    alloc.malloc(512 * 1024)  # small -> 2 MiB segment
    assert alloc.bytes_reserved == SMALL_SEGMENT
    alloc.malloc(5 * MB)  # medium -> 20 MiB segment
    assert alloc.bytes_reserved == SMALL_SEGMENT + MEDIUM_SEGMENT
    alloc.malloc(33 * MB)  # large -> dedicated, rounded to 2 MiB
    assert alloc.bytes_reserved == SMALL_SEGMENT + MEDIUM_SEGMENT + 34 * MB


def test_free_block_reuse_best_fit():
    alloc = CachingAllocator(1024 * MB)
    big = alloc.malloc(30 * MB)
    small = alloc.malloc(12 * MB)
    alloc.free(big)
    alloc.free(small)
    reserved = alloc.bytes_reserved
    # a 11 MB request should reuse the 12 MB hole, not the 30 MB one
    b = alloc.malloc(11 * MB)
    assert alloc.bytes_reserved == reserved  # no new segment
    assert b.segment.size == 12 * MB


def test_oom_raised_beyond_capacity():
    alloc = CachingAllocator(8 * MB)
    alloc.malloc(6 * MB)
    with pytest.raises(OutOfMemoryError) as exc:
        alloc.malloc(6 * MB)
    assert exc.value.requested == 6 * MB
    assert alloc.stats.num_oom == 1


def test_tight_fit_segment_when_pooled_size_exceeds_capacity():
    # capacity can hold the request but not the pooled segment size
    alloc = CachingAllocator(3 * MB)
    b = alloc.malloc(512 * 1024)  # pooled would be 2 MiB: fits
    b2 = alloc.malloc(900 * 1024)  # another pooled small fits in same segment
    assert alloc.bytes_reserved <= 3 * MB
    assert b.segment is b2.segment


def test_empty_segment_release_on_pressure():
    alloc = CachingAllocator(8 * MB)
    b = alloc.malloc(5 * MB)
    alloc.free(b)
    # 5 MB (rounded 6 MiB segment) is cached; an 7 MB request cannot fit
    # alongside it, so the free segment must be released and re-reserved.
    big = alloc.malloc(7 * MB)
    assert big.size == 7 * MB
    alloc.check_consistency()


def test_release_cached_returns_bytes():
    alloc = CachingAllocator(64 * MB)
    b = alloc.malloc(4 * MB)
    alloc.free(b)
    released = alloc.release_cached()
    assert released > 0
    assert alloc.bytes_reserved == 0
    assert alloc.bytes_in_use == 0


def test_double_free_rejected():
    alloc = CachingAllocator(64 * MB)
    b = alloc.malloc(1024)
    alloc.free(b)
    with pytest.raises(AllocationError, match="double free"):
        alloc.free(b)


def test_coalescing_merges_neighbours():
    alloc = CachingAllocator(64 * MB)
    blocks = [alloc.malloc(256 * 1024) for _ in range(8)]
    assert alloc.num_segments() == 1
    for b in blocks:
        alloc.free(b)
    # all blocks merged back into one whole-segment free block
    assert len(alloc.free_block_sizes()) == 1
    assert alloc.free_block_sizes()[0] == SMALL_SEGMENT
    alloc.check_consistency()


def test_no_coalescing_keeps_fragments():
    alloc = CachingAllocator(64 * MB, coalescing=False)
    blocks = [alloc.malloc(256 * 1024) for _ in range(8)]
    for b in blocks:
        alloc.free(b)
    assert len(alloc.free_block_sizes()) >= 8


def test_fragmentation_metric():
    alloc = CachingAllocator(1024 * MB)
    keep = []
    for _ in range(10):
        a = alloc.malloc(2 * MB)
        b = alloc.malloc(2 * MB)
        keep.append(b)
        alloc.free(a)
    # free space is scattered in 2 MB holes across dedicated segments
    assert alloc.fragmentation_bytes() > 0
    alloc.check_consistency()


def test_oom_callback_retry():
    held = []

    def evict(requested: int) -> bool:
        if held:
            alloc.free(held.pop())
            return True
        return False

    alloc = CachingAllocator(8 * MB, oom_callback=evict)
    held.append(alloc.malloc(6 * MB))
    b = alloc.malloc(6 * MB)  # succeeds after the callback frees
    assert b.size == 6 * MB


def test_peaks_and_reset():
    alloc = CachingAllocator(64 * MB)
    b = alloc.malloc(10 * MB)
    alloc.free(b)
    assert alloc.stats.peak_in_use == 10 * MB
    alloc.reset_peaks()
    assert alloc.stats.peak_in_use == 0


def test_invalid_construction():
    with pytest.raises(ValueError):
        CachingAllocator(0)
    with pytest.raises(ValueError):
        CachingAllocator(1024, alignment=300)  # not a power of two
    with pytest.raises(ValueError):
        CachingAllocator(1024, alignment=-512)


def test_negative_malloc_rejected():
    alloc = CachingAllocator(64 * MB)
    with pytest.raises(ValueError):
        alloc.malloc(-1)


def test_try_malloc_returns_none_on_oom():
    alloc = CachingAllocator(1 * MB)
    assert alloc.try_malloc(4 * MB) is None
    assert alloc.try_malloc(256 * 1024) is not None


# ---------------------------------------------------------------------------
# Property-based: random alloc/free interleavings keep every invariant
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=1, max_value=4 * MB)),
        min_size=1,
        max_size=120,
    )
)
def test_allocator_invariants_under_random_workload(ops):
    alloc = CachingAllocator(256 * MB)
    live = []
    for is_alloc, size in ops:
        if is_alloc or not live:
            block = alloc.try_malloc(size)
            if block is not None:
                live.append(block)
        else:
            alloc.free(live.pop(len(live) // 2))
    alloc.check_consistency()
    assert alloc.bytes_in_use == sum(b.size for b in live)
    assert alloc.bytes_reserved <= alloc.capacity
    for b in live:
        alloc.free(b)
    alloc.check_consistency()
    assert alloc.bytes_in_use == 0


@settings(max_examples=30, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=MB), min_size=1, max_size=60)
)
def test_free_then_realloc_never_grows_reserved(sizes):
    """Allocating the same multiset of sizes twice reuses the cache."""
    alloc = CachingAllocator(512 * MB)
    first = [alloc.malloc(s) for s in sizes]
    reserved_after_first = alloc.bytes_reserved
    for b in reversed(first):
        alloc.free(b)
    second = [alloc.malloc(s) for s in sizes]
    assert alloc.bytes_reserved == reserved_after_first
    for b in second:
        alloc.free(b)
    alloc.check_consistency()
