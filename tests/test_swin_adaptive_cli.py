"""Tests for the Swin model, the adaptive residual margin, and the CLI."""

import pytest

from repro.core.adaptive import ResidualTracker
from repro.core.planner import MimosePlanner
from repro.engine.executor import TrainingExecutor
from repro.models.base import BatchInput
from repro.models.registry import build_model
from repro.planners.analysis import unit_saved_bytes
from repro.planners.base import ModelView
from repro.tensorsim.dtypes import FLOAT32

from tests.helpers import GB, MB, make_tiny_model


# ---------------------------------------------------------------------- swin

@pytest.fixture(scope="module")
def swin():
    return build_model("swin-tiny")


def test_swin_parameter_count(swin):
    # the real swin-tiny has 28.3 M parameters
    assert abs(swin.param_count() / 1e6 - 28.3) < 1.5


def test_swin_stage_memory_staircase(swin):
    """§IV-D: patch merging halves the memory of each successive stage."""
    profiles = swin.profiles(BatchInput((8, 3, 224, 224), FLOAT32))
    by_name = {p.module_name: p for p in profiles}
    stage_mem = [
        unit_saved_bytes(by_name[f"stage{s}.block0"]) for s in (1, 2, 3, 4)
    ]
    for bigger, smaller in zip(stage_mem, stage_mem[1:]):
        assert smaller == pytest.approx(bigger / 2, rel=0.05)


def test_swin_blocks_are_checkpointable(swin):
    names = [u.name for u in swin.checkpointable_units()]
    assert len(names) == sum((2, 2, 6, 2))
    assert all(".block" in n for n in names)


def test_swin_window_attention_is_linear_not_quadratic(swin):
    """Window attention memory grows ~linearly with image pixels."""
    m1 = sum(
        unit_saved_bytes(p)
        for p in swin.profiles(BatchInput((2, 3, 224, 224), FLOAT32))
    )
    m2 = sum(
        unit_saved_bytes(p)
        for p in swin.profiles(BatchInput((2, 3, 448, 448), FLOAT32))
    )
    ratio = m2 / m1  # 4x the pixels
    assert 3.0 < ratio < 5.0  # linear-ish, not the 16x a quadratic law gives


def test_swin_trains_under_budget(swin):
    planner = MimosePlanner(3 * GB, collect_iterations=4)
    planner.setup(ModelView(swin))
    ex = TrainingExecutor(swin, planner, capacity_bytes=3 * GB)
    for hw in (192, 224, 256, 288, 256, 224):
        stats = ex.step(BatchInput((8, 3, hw, hw), FLOAT32))
        assert not stats.oom


# ------------------------------------------------------------- adaptive margin

def test_tracker_initial_margin():
    t = ResidualTracker(initial_margin=0.05)
    assert t.margin() == 0.05
    assert t.num_observations == 0


def test_tracker_quantile_of_overshoots():
    t = ResidualTracker(quantile=0.95)
    for _ in range(19):
        t.record(100, 100)  # no overshoot
    t.record(100, 110)  # one 10% overshoot
    assert t.margin() == pytest.approx(0.10)


def test_tracker_ignores_underprediction_of_observation():
    t = ResidualTracker()
    t.record(100, 50)  # actual far below prediction
    assert t.margin() == 0.0


def test_tracker_sliding_window():
    t = ResidualTracker(window=4)
    t.record(100, 200)  # huge overshoot
    for _ in range(4):
        t.record(100, 100)
    assert t.margin() == 0.0  # the outlier aged out


def test_tracker_validation():
    with pytest.raises(ValueError):
        ResidualTracker(window=0)
    with pytest.raises(ValueError):
        ResidualTracker(quantile=0.0)
    with pytest.raises(ValueError):
        ResidualTracker(initial_margin=-1.0)
    t = ResidualTracker()
    with pytest.raises(ValueError):
        t.record(0, 10)


def test_tracker_clear():
    t = ResidualTracker()
    t.record(100, 150)
    t.clear()
    assert t.num_observations == 0


def test_adaptive_planner_records_residuals():
    model = make_tiny_model(num_units=6, features=512)
    planner = MimosePlanner(
        2 * GB, collect_iterations=4, adaptive_margin=True, headroom_bytes=4 * MB
    )
    planner.setup(ModelView(model))
    ex = TrainingExecutor(model, planner, capacity_bytes=2 * GB)
    for rows in (64, 128, 256, 192, 200, 210, 220):
        ex.step(BatchInput((rows, 512), FLOAT32))
    assert planner.residuals.num_observations >= 2


def test_adaptive_margin_inflates_predictions():
    model = make_tiny_model(num_units=6, features=512)
    static = model.static_memory().total
    budget = static + 40 * MB
    plain = MimosePlanner(
        budget, collect_iterations=4, headroom_bytes=4 * MB
    )
    adaptive = MimosePlanner(
        budget, collect_iterations=4, headroom_bytes=4 * MB, adaptive_margin=True
    )
    for planner in (plain, adaptive):
        planner.setup(ModelView(model))
        ex = TrainingExecutor(model, planner, capacity_bytes=budget)
        for rows in (512, 1024, 1536, 768):
            ex.step(BatchInput((rows, 512), FLOAT32))
    # with the initial 2% safety margin the adaptive planner predicts a
    # larger footprint and therefore checkpoints at least as much
    p_plain = plain._make_plan(1400 * 512)
    p_adaptive = adaptive._make_plan(1400 * 512)
    assert len(p_adaptive.checkpoint_units) >= len(p_plain.checkpoint_units)


# ----------------------------------------------------------------------- cli

def test_cli_list(capsys):
    from repro.__main__ import main

    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "TC-Bert" in out and "mimose" in out and "swin-tiny" in out


def test_cli_run_small(capsys):
    from repro.__main__ import main

    code = main(
        [
            "run", "--task", "TC-Bert", "--planner", "sublinear",
            "--budget-gb", "4", "--iterations", "4",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "sublinear" in out


def test_cli_table1(capsys):
    from repro.__main__ import main

    assert main(["table", "1"]) == 0
    assert "capuchin" in capsys.readouterr().out


def test_cli_rejects_unknown_command():
    from repro.__main__ import main

    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_cli_bounds(capsys):
    from repro.__main__ import main

    assert main(["bounds"]) == 0
    out = capsys.readouterr().out
    assert "lower_gb" in out and "OD-R101" in out


def test_cli_sweep_small(capsys):
    from repro.__main__ import main

    code = main(
        [
            "sweep", "--task", "TC-Bert", "--planners", "baseline,sublinear",
            "--points", "2", "--iterations", "3",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "sublinear" in out and "budget_gb" in out


def test_cli_run_respects_iteration_cap(capsys):
    """Regression: the planner run ignored --iterations (only the baseline
    was capped), so normalized_time compared runs of different lengths."""
    from repro.__main__ import main

    assert main(
        [
            "run", "--task", "TC-Bert", "--planner", "mimose",
            "--budget-gb", "4", "--iterations", "5",
        ]
    ) == 0
    out = capsys.readouterr().out
    row = next(line for line in out.splitlines() if "mimose" in line)
    assert "| 5 " in row or "| 5" in row.replace("  ", " ")


def test_cli_run_with_faults_reports_recovery(capsys):
    from repro.__main__ import main

    code = main(
        [
            "run", "--task", "TC-Bert", "--planner", "mimose",
            "--budget-gb", "3", "--iterations", "20",
            "--faults", "frag:start=15,iters=2,bytes=800M",
        ]
    )
    assert code == 0  # survived via the recovery ladder
    out = capsys.readouterr().out
    assert "faults:" in out and "frag 800MB" in out
    assert "retries" in out and "recovered" in out


def test_cli_run_rejects_bad_fault_spec():
    from repro.__main__ import main

    with pytest.raises(SystemExit, match="unknown fault kind"):
        main(
            [
                "run", "--task", "TC-Bert", "--planner", "mimose",
                "--budget-gb", "4", "--iterations", "2",
                "--faults", "quake:start=1",
            ]
        )


def test_cli_run_rejects_negative_max_retries(capsys):
    from repro.__main__ import main

    with pytest.raises(SystemExit):
        main(
            [
                "run", "--task", "TC-Bert", "--planner", "mimose",
                "--budget-gb", "4", "--iterations", "2",
                "--max-retries", "-1",
            ]
        )
    assert "non-negative" in capsys.readouterr().err
