"""The digest-parity grid shared by the golden generator and the test
suite (``tests/test_executor_pipeline.py``).

Each grid point is ``(task, planner, budget_gb, iterations, fault_spec)``
with ``fault_spec`` an empty string for fault-free runs.  The grid covers
every planner (hence NORMAL, COLLECT and REACTIVE execution), two tasks,
two budgets for the plan-based planners, and faulted runs for the
planners whose fault reaction differs (Mimose recovers, DTR evicts,
Sublinear dies or survives on margin).
"""

from __future__ import annotations

from repro.engine.stats import RunResult
from repro.experiments.runner import run_task
from repro.experiments.tasks import GB, load_task
from repro.tensorsim.faults import FaultPlan

GridPoint = tuple[str, str, float, int, str]

_FAULTS = "frag:start=8,iters=2,bytes=512M;alloc:start=14,count=1,min=1M"


def digest_grid() -> list[GridPoint]:
    points: list[GridPoint] = []
    for task in ("TC-Bert", "QA-Bert"):
        for planner in (
            "baseline", "sublinear", "checkmate", "monet",
            "dtr", "capuchin", "mimose",
        ):
            budgets = (4.0, 6.0) if task == "TC-Bert" else (5.0,)
            if planner == "baseline":
                budgets = budgets[:1]
            for budget in budgets:
                points.append((task, planner, budget, 25, ""))
    # Faulted runs: recovery ladder (mimose), reactive eviction under
    # injected failures (dtr), and a static planner hit mid-run.
    for planner in ("mimose", "dtr", "sublinear"):
        points.append(("TC-Bert", planner, 4.0, 25, _FAULTS))
    return points


def near_recurrence_grid() -> list[GridPoint]:
    """The compiled-template parity grid (docs/performance.md).

    Near-recurrence is the fig 10 sweep regime: the loader's natural
    size stream keeps producing *unseen* input sizes under a recurring
    plan signature, so after the first certification the compiled tier
    (not exact replay) serves the new sizes.  Longer runs than the
    replay grid so certification happens early enough to matter; every
    plan-based planner is covered (DTR is REACTIVE and legitimately
    bypasses both cache tiers), plus a faulted point to pin the
    bypass/invalidate interaction.
    """
    points: list[GridPoint] = []
    for planner in (
        "baseline", "sublinear", "checkmate", "monet", "capuchin", "mimose",
    ):
        points.append(("TC-Bert", planner, 4.0, 60, ""))
    points.append(("QA-Bert", "sublinear", 5.0, 60, ""))
    points.append(("TC-Bert", "mimose", 4.0, 60, _FAULTS))
    return points


def run_grid_point_result(
    point: GridPoint, *, seed: int = 0, compiled: bool = True
) -> RunResult:
    task_name, planner, budget_gb, iterations, fault_spec = point
    task = load_task(task_name, iterations=iterations, seed=seed)
    faults = (
        FaultPlan.parse(fault_spec, seed=3) if fault_spec else None
    )
    return run_task(
        task,
        planner,
        int(budget_gb * GB),
        max_iterations=iterations,
        faults=faults,
        compiled=compiled,
    )


def run_grid_point(point: GridPoint, *, seed: int = 0) -> str:
    return run_grid_point_result(point, seed=seed).digest()
