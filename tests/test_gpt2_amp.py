"""Tests for the GPT-2 extension model, the LM task, and AMP support."""

import pytest

from repro.experiments.runner import run_task
from repro.experiments.tasks import GB, load_task
from repro.models.base import BatchInput
from repro.models.registry import build_model
from repro.planners.analysis import unit_saved_bytes
from repro.tensorsim.dtypes import FLOAT16, INT64


@pytest.fixture(scope="module")
def gpt2():
    return build_model("gpt2-small")


# ---------------------------------------------------------------------- gpt2

def test_gpt2_parameter_count(gpt2):
    # the real gpt2-small has 124 M parameters
    assert abs(gpt2.param_count() / 1e6 - 124) < 3


def test_gpt2_structure(gpt2):
    names = gpt2.unit_names()
    assert names[0] == "embeddings" and names[-1] == "lm_head"
    assert sum(n.startswith("block.") for n in names) == 12
    assert len(gpt2.checkpointable_units()) == 12


def test_gpt2_logits_shape(gpt2):
    profiles = gpt2.profiles(BatchInput((4, 64), INT64))
    assert profiles[-1].output.shape == (4, 64, 50257)


def test_gpt2_attention_memory_quadratic(gpt2):
    """Causal masking does not change the materialised score size."""
    block = gpt2.units[1]
    m = {}
    for length in (128, 256, 512):
        spec = BatchInput((4, length), INT64).spec.with_shape((4, length, 768))
        m[length] = unit_saved_bytes(block.profile(spec))
    assert m[256] > 2 * m[128]
    assert m[512] > 2 * m[256]


def test_lm_gpt2_task_runs_under_budget():
    task = load_task("LM-GPT2", iterations=14, seed=4)
    lb, ub = task.memory_bounds()
    assert lb < ub
    r = run_task(task, "mimose", int(lb * 1.3))
    assert r.succeeded
    assert r.peak_reserved <= int(lb * 1.3)


def test_webtext_lengths_heavy_tailed():
    task = load_task("LM-GPT2", iterations=200, seed=0)
    lengths = [b.shape[-1] for b in task.loader]
    assert min(lengths) < 150
    assert max(lengths) > 500
    assert max(lengths) <= 1024


# ----------------------------------------------------------------------- amp

def test_amp_halves_activation_bytes():
    fp32 = build_model("bert-base")
    amp = build_model("bert-base-amp")
    b = BatchInput((16, 128), INT64)
    s32 = sum(unit_saved_bytes(p) for p in fp32.profiles(b))
    s16 = sum(unit_saved_bytes(p) for p in amp.profiles(b))
    # ~half, diluted by dtype-independent dropout masks
    assert 0.45 < s16 / s32 < 0.65


def test_amp_activation_dtype_propagates():
    amp = build_model("bert-base-amp")
    profiles = amp.profiles(BatchInput((2, 16), INT64))
    enc = profiles[1]
    float_acts = [a for a in enc.activations if a.spec.dtype.is_floating]
    assert float_acts
    assert all(a.spec.dtype is FLOAT16 for a in float_acts)


def test_amp_static_memory_recipe():
    fp32 = build_model("roberta-base")
    amp = build_model("roberta-base-amp")
    n = fp32.param_count()
    s32 = fp32.static_memory()
    s16 = amp.static_memory()
    assert s32.param_bytes == 4 * n
    assert s16.param_bytes == 6 * n  # fp32 master + fp16 copy
    assert s16.grad_bytes == 2 * n
    assert s32.optimizer_bytes == s16.optimizer_bytes == 8 * n


def test_amp_param_count_unchanged():
    assert (
        build_model("bert-base").param_count()
        == build_model("bert-base-amp").param_count()
    )


def test_amp_trains_under_smaller_budget():
    """An fp16 model fits a budget its fp32 twin cannot."""
    from repro.engine.executor import TrainingExecutor
    from repro.planners.base import CheckpointPlan, ModelView, PlanDecision
    from repro.planners.none import NoCheckpointPlanner

    budget = int(3.9 * GB)  # between the amp (3.5 GB) and fp32 (5 GB) peaks
    b = BatchInput((32, 256), INT64)
    results = {}
    for name in ("bert-base", "bert-base-amp"):
        model = build_model(name)
        planner = NoCheckpointPlanner(budget)
        planner.setup(ModelView(model))
        ex = TrainingExecutor(model, planner, capacity_bytes=budget)
        results[name] = ex.run_iteration(b, PlanDecision(CheckpointPlan.none()))
    assert results["bert-base"].oom
    assert not results["bert-base-amp"].oom