"""Property-based tests of the executor: no leaks, no double-frees, and
consistent accounting under arbitrary plans (drop + swap mixes), input
sizes, and repeated iterations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.executor import TrainingExecutor
from repro.models.base import BatchInput
from repro.planners.base import CheckpointPlan, ModelView, PlanDecision
from repro.planners.base import ExecutionMode
from repro.planners.none import NoCheckpointPlanner
from repro.tensorsim.dtypes import FLOAT32

from tests.helpers import GB, make_tiny_model


@st.composite
def plans_and_batches(draw):
    num_units = draw(st.integers(2, 6))
    names = [f"unit.{i}" for i in range(num_units)]
    drop_mask = draw(st.integers(0, (1 << num_units) - 1))
    swap_mask = draw(st.integers(0, (1 << num_units) - 1)) & ~drop_mask
    drop = frozenset(n for i, n in enumerate(names) if drop_mask & (1 << i))
    swap = frozenset(n for i, n in enumerate(names) if swap_mask & (1 << i))
    rows = draw(st.integers(1, 512))
    mode = draw(st.sampled_from([ExecutionMode.NORMAL, ExecutionMode.COLLECT]))
    return num_units, CheckpointPlan(drop, "prop", swap), rows, mode


@settings(max_examples=60, deadline=None)
@given(case=plans_and_batches())
def test_property_no_leaks_any_plan(case):
    num_units, plan, rows, mode = case
    model = make_tiny_model(num_units=num_units, features=128)
    planner = NoCheckpointPlanner(4 * GB)
    planner.setup(ModelView(model))
    ex = TrainingExecutor(model, planner, capacity_bytes=4 * GB)
    for _ in range(2):
        stats = ex.run_iteration(
            BatchInput((rows, 128), FLOAT32), PlanDecision(plan, mode=mode)
        )
        assert not stats.oom
        assert stats.end_in_use == ex.static_bytes
        assert stats.peak_in_use >= ex.static_bytes
    ex.allocator.check_consistency()


@settings(max_examples=30, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 1024), min_size=1, max_size=8),
    drop_all=st.booleans(),
)
def test_property_no_leaks_across_varying_batches(sizes, drop_all):
    """Repeated iterations with changing shapes always return the
    allocator to exactly the static footprint."""
    model = make_tiny_model(num_units=4, features=128)
    planner = NoCheckpointPlanner(8 * GB)
    planner.setup(ModelView(model))
    ex = TrainingExecutor(model, planner, capacity_bytes=8 * GB)
    names = [u.name for u in model.units]
    plan = CheckpointPlan.of(names if drop_all else [], "p")
    for rows in sizes:
        stats = ex.run_iteration(
            BatchInput((rows, 128), FLOAT32), PlanDecision(plan)
        )
        assert stats.end_in_use == ex.static_bytes
    ex.allocator.check_consistency()


@settings(max_examples=30, deadline=None)
@given(case=plans_and_batches())
def test_property_time_components_are_consistent(case):
    num_units, plan, rows, mode = case
    model = make_tiny_model(num_units=num_units, features=128)
    planner = NoCheckpointPlanner(4 * GB)
    planner.setup(ModelView(model))
    ex = TrainingExecutor(model, planner, capacity_bytes=4 * GB)
    t0 = ex.clock.now
    stats = ex.run_iteration(
        BatchInput((rows, 128), FLOAT32), PlanDecision(plan, mode=mode)
    )
    # the simulated clock advanced by exactly the reported total
    # (up to float summation-order rounding)
    assert abs((ex.clock.now - t0) - stats.total_time) < 1e-12
    assert stats.total_time > 0
    assert stats.fwd_time > 0 and stats.bwd_time > 0
    if mode is ExecutionMode.NORMAL and len(plan) == 0:
        assert stats.recompute_time == 0


@settings(max_examples=20, deadline=None)
@given(case=plans_and_batches(), seed=st.integers(0, 3))
def test_property_same_inputs_same_results(case, seed):
    """The simulation is deterministic: identical runs produce identical
    stats (the reproducibility guarantee every experiment relies on)."""
    num_units, plan, rows, mode = case

    def run():
        model = make_tiny_model(num_units=num_units, features=128)
        planner = NoCheckpointPlanner(4 * GB)
        planner.setup(ModelView(model))
        ex = TrainingExecutor(model, planner, capacity_bytes=4 * GB)
        s = ex.run_iteration(
            BatchInput((rows, 128), FLOAT32), PlanDecision(plan, mode=mode)
        )
        return (
            s.peak_in_use, s.fwd_time, s.bwd_time, s.recompute_time,
            s.total_time, s.num_checkpointed,
        )

    assert run() == run()
