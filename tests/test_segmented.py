"""Tests for segment-level checkpointing (plan, executor, predictor,
planner) — the Chen et al. √n semantics extension."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.executor import TrainingExecutor
from repro.models.base import BatchInput
from repro.models.registry import build_model
from repro.planners.analysis import (
    full_checkpoint_peak,
    predict_peak_bytes,
    no_checkpoint_peak,
)
from repro.planners.base import CheckpointPlan, ModelView, PlanDecision
from repro.planners.none import NoCheckpointPlanner
from repro.planners.segmented import (
    SegmentedSublinearPlanner,
    balanced_segments,
    checkpointable_runs,
    minimum_memory_plan,
    segment_plan,
)
from repro.tensorsim.dtypes import FLOAT32, INT64

from tests.helpers import GB, make_tiny_model

ALIGNMENT_SLACK = 64 * 1024


def executed_peak(model, batch, plan):
    planner = NoCheckpointPlanner(64 * GB)
    planner.setup(ModelView(model))
    ex = TrainingExecutor(model, planner, capacity_bytes=64 * GB)
    stats = ex.run_iteration(batch, PlanDecision(plan))
    assert not stats.oom
    assert stats.end_in_use == ex.static_bytes  # no leaks either
    return stats.peak_in_use


# ------------------------------------------------------------------ plan type

def test_plan_rejects_unit_in_segment_and_drop_set():
    with pytest.raises(ValueError, match="conflicting"):
        CheckpointPlan(frozenset({"a"}), "x", frozenset(), (("a", "b"),))
    with pytest.raises(ValueError, match="conflicting"):
        CheckpointPlan(frozenset(), "x", frozenset(), (("a",), ("a",)))
    with pytest.raises(ValueError, match="non-empty"):
        CheckpointPlan(frozenset(), "x", frozenset(), ((),))


def test_segment_units_property():
    plan = CheckpointPlan(frozenset(), "x", frozenset(), (("a", "b"), ("c",)))
    assert plan.segment_units == {"a", "b", "c"}


# ------------------------------------------------------------------ executor

def test_executor_validates_segments(tiny_model):
    planner = NoCheckpointPlanner(4 * GB)
    planner.setup(ModelView(tiny_model))
    ex = TrainingExecutor(tiny_model, planner, capacity_bytes=4 * GB)
    batch = BatchInput((8, 64), FLOAT32)
    bad_nonconsecutive = CheckpointPlan(
        frozenset(), "x", frozenset(), (("unit.0", "unit.2"),)
    )
    with pytest.raises(ValueError, match="consecutive"):
        ex.run_iteration(batch, PlanDecision(bad_nonconsecutive))
    with pytest.raises(ValueError, match="unknown unit"):
        ex.run_iteration(
            batch,
            PlanDecision(CheckpointPlan(frozenset(), "x", frozenset(), (("nope",),))),
        )


def test_segmenting_everything_recovers_no_checkpoint_peak(bert_model):
    """One segment over all encoders: backward replays everything at once,
    so the peak approaches the no-checkpoint peak (only transiency and
    embeddings/head differences remain)."""
    view = ModelView(bert_model)
    batch = BatchInput((16, 256), INT64)
    profiles = view.profiles(batch)
    one_seg = CheckpointPlan(
        frozenset(), "one", frozenset(),
        (tuple(f"encoder.{i}" for i in range(12)),),
    )
    peak_seg = predict_peak_bytes(
        profiles, one_seg,
        static_bytes=view.static_memory.total, input_nbytes=batch.nbytes,
        checkpointable=view.checkpointable,
    )
    ub = no_checkpoint_peak(
        profiles, static_bytes=view.static_memory.total, input_nbytes=batch.nbytes
    )
    assert peak_seg >= 0.9 * ub


def test_segment_floor_never_exceeds_per_unit_floor(bert_model):
    """The k-scan includes k = n (one unit per segment), which is exactly
    per-unit checkpointing, so the segment floor can never be worse."""
    view = ModelView(bert_model)
    batch = BatchInput((16, 256), INT64)
    profiles = view.profiles(batch)
    per_unit_floor = full_checkpoint_peak(
        profiles, static_bytes=view.static_memory.total,
        input_nbytes=batch.nbytes, checkpointable=view.checkpointable,
    )
    _, seg_floor = minimum_memory_plan(view, batch)
    assert seg_floor <= per_unit_floor


def test_segmentation_helps_pre_norm_architectures():
    """An empirical finding of this reproduction: grouping only beats the
    per-unit floor when a unit's *internal* saved set is small relative
    to its boundary — true for pre-norm blocks (GPT-2, whose residual
    Add saves nothing), not for post-norm BERT, where the group-recompute
    working set cancels the boundary savings."""
    gpt2 = build_model("gpt2-small")
    view = ModelView(gpt2)
    batch = BatchInput((8, 512), INT64)
    unit_floor = full_checkpoint_peak(
        view.profiles(batch),
        static_bytes=view.static_memory.total,
        input_nbytes=batch.nbytes,
        checkpointable=view.checkpointable,
    )
    plan, seg_floor = minimum_memory_plan(view, batch)
    assert seg_floor < unit_floor * 0.99
    assert any(len(s) > 1 for s in plan.segments)

    bert_view = ModelView(build_model("bert-base"))
    bert_batch = BatchInput((16, 256), INT64)
    bert_unit = full_checkpoint_peak(
        bert_view.profiles(bert_batch),
        static_bytes=bert_view.static_memory.total,
        input_nbytes=bert_batch.nbytes,
        checkpointable=bert_view.checkpointable,
    )
    _, bert_seg = minimum_memory_plan(bert_view, bert_batch)
    assert bert_seg == bert_unit  # no grouping gain on post-norm blocks


@pytest.mark.parametrize(
    "segs",
    [
        ((0, 4), (4, 8), (8, 12)),
        ((0, 12),),
        ((2, 5), (7, 12)),
        ((0, 1), (1, 2), (2, 3)),
    ],
)
def test_predictor_matches_executor_with_segments(bert_model, segs):
    view = ModelView(bert_model)
    batch = BatchInput((16, 192), INT64)
    plan = CheckpointPlan(
        frozenset(), "seg", frozenset(),
        tuple(tuple(f"encoder.{i}" for i in range(a, b)) for a, b in segs),
    )
    pred = predict_peak_bytes(
        view.profiles(batch), plan,
        static_bytes=view.static_memory.total, input_nbytes=batch.nbytes,
        checkpointable=view.checkpointable,
    )
    model = build_model("bert-base")
    real = executed_peak(model, batch, plan)
    assert abs(pred - real) <= ALIGNMENT_SLACK


def test_mixed_segments_and_unit_drops(bert_model):
    view = ModelView(bert_model)
    batch = BatchInput((16, 192), INT64)
    plan = CheckpointPlan(
        frozenset({"encoder.8", "encoder.10"}), "mix", frozenset(),
        (tuple(f"encoder.{i}" for i in range(0, 4)),),
    )
    pred = predict_peak_bytes(
        view.profiles(batch), plan,
        static_bytes=view.static_memory.total, input_nbytes=batch.nbytes,
        checkpointable=view.checkpointable,
    )
    real = executed_peak(build_model("bert-base"), batch, plan)
    assert abs(pred - real) <= ALIGNMENT_SLACK


@settings(max_examples=20, deadline=None)
@given(
    num_units=st.integers(3, 6),
    cut=st.integers(1, 5),
    rows=st.integers(8, 128),
)
def test_property_segment_plans_never_leak(num_units, cut, rows):
    cut = min(cut, num_units - 1)
    model = make_tiny_model(num_units=num_units, features=128)
    names = [u.name for u in model.units]
    plan = CheckpointPlan(
        frozenset(), "p", frozenset(),
        (tuple(names[:cut]), tuple(names[cut:])),
    )
    batch = BatchInput((rows, 128), FLOAT32)
    pred = predict_peak_bytes(
        ModelView(model).profiles(batch), plan,
        static_bytes=model.static_memory().total, input_nbytes=batch.nbytes,
        checkpointable=frozenset(names),
    )
    real = executed_peak(model, batch, plan)
    assert abs(pred - real) <= ALIGNMENT_SLACK


# ----------------------------------------------------------------- utilities

def test_checkpointable_runs_respect_gaps():
    model = build_model("swin-tiny")  # merges interrupt the block runs
    runs = checkpointable_runs(ModelView(model))
    assert [len(r) for r in runs] == [2, 2, 6, 2]


def test_balanced_segments_shapes():
    runs = [[f"u{i}" for i in range(7)]]
    segs = balanced_segments(runs, 3)
    assert [len(s) for s in segs] == [3, 2, 2]
    assert [n for s in segs for n in s] == runs[0]
    assert balanced_segments([[]], 2) == ()
    with pytest.raises(ValueError):
        balanced_segments(runs, 0)


def test_balanced_segments_more_k_than_units():
    runs = [["a", "b"]]
    segs = balanced_segments(runs, 10)
    assert segs == (("a",), ("b",))


# ------------------------------------------------------------------- planner

def test_segmented_planner_prefers_per_unit_when_it_fits(bert_model):
    view = ModelView(bert_model)
    batch = BatchInput((16, 256), INT64)
    p = SegmentedSublinearPlanner(5 * GB, worst_case_batch=batch)
    p.setup(view)
    decision = p.plan(batch)
    assert not decision.plan.segments  # per-unit plan was enough


def test_segmented_planner_extends_below_per_unit_floor():
    """On GPT-2, a budget below the per-unit floor still trains thanks to
    the segment fallback."""
    model = build_model("gpt2-small")
    view = ModelView(model)
    batch = BatchInput((8, 512), INT64)
    per_unit_floor = full_checkpoint_peak(
        view.profiles(batch),
        static_bytes=view.static_memory.total,
        input_nbytes=batch.nbytes,
        checkpointable=view.checkpointable,
    )
    budget = int(per_unit_floor * 0.995) + SegmentedSublinearPlanner.FRAG_RESERVE
    planner = SegmentedSublinearPlanner(budget, worst_case_batch=batch)
    planner.setup(view)
    plan = planner.plan(batch).plan
    assert plan.segments  # fell back to segment checkpointing
    executor_model = build_model("gpt2-small")
    p2 = SegmentedSublinearPlanner(budget, worst_case_batch=batch)
    p2.setup(ModelView(executor_model))
    ex = TrainingExecutor(executor_model, p2, capacity_bytes=budget)
    stats = ex.step(batch)
    assert not stats.oom
    assert stats.peak_in_use <= budget
