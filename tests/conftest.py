"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.models.base import SegmentedModel
from repro.models.registry import build_model

from tests.helpers import make_tiny_model


@pytest.fixture
def tiny_model() -> SegmentedModel:
    return make_tiny_model()


@pytest.fixture(scope="session")
def bert_model() -> SegmentedModel:
    return build_model("bert-base")


@pytest.fixture(scope="session")
def resnet50_model() -> SegmentedModel:
    return build_model("resnet50-det")
