"""Unit tests for the dtype registry."""

import pytest

from repro.tensorsim.dtypes import (
    BOOL,
    DType,
    FLOAT16,
    FLOAT32,
    FLOAT64,
    INT32,
    INT64,
    dtype_by_name,
    register_dtype,
)


def test_builtin_itemsizes():
    assert FLOAT16.itemsize == 2
    assert FLOAT32.itemsize == 4
    assert FLOAT64.itemsize == 8
    assert INT32.itemsize == 4
    assert INT64.itemsize == 8
    assert BOOL.itemsize == 1


def test_floating_flags():
    assert FLOAT32.is_floating
    assert FLOAT16.is_floating
    assert not INT64.is_floating
    assert not BOOL.is_floating


def test_lookup_by_name():
    assert dtype_by_name("float32") is FLOAT32
    assert dtype_by_name("int64") is INT64


def test_lookup_unknown_name_raises():
    with pytest.raises(KeyError, match="unknown dtype"):
        dtype_by_name("bfloat99")


def test_register_custom_dtype_and_idempotency():
    custom = DType("testtype8", 1, is_floating=False)
    assert register_dtype(custom) is custom
    assert dtype_by_name("testtype8") == custom
    # re-registering the identical dtype is fine
    register_dtype(DType("testtype8", 1, is_floating=False))


def test_register_conflicting_dtype_raises():
    register_dtype(DType("conflict16", 2))
    with pytest.raises(ValueError, match="already registered"):
        register_dtype(DType("conflict16", 4))


def test_nonpositive_itemsize_rejected():
    with pytest.raises(ValueError):
        DType("bad", 0)
    with pytest.raises(ValueError):
        DType("bad", -4)


def test_str_is_name():
    assert str(FLOAT32) == "float32"
