"""Tests for OOM recovery: the planner's escalation ladder and the
executor's retry loop, including the fault-plan acceptance scenario."""


from repro.core.planner import MimosePlanner
from repro.engine.executor import TrainingExecutor
from repro.engine.stats import IterationStats, RunResult
from repro.models.base import BatchInput
from repro.planners.base import ModelView
from repro.planners.sublinear import SublinearPlanner
from repro.tensorsim.dtypes import FLOAT32
from repro.tensorsim.faults import FaultPlan, FragmentationSpike

from tests.helpers import GB, MB, make_tiny_model

ROWS = [512, 1024, 1536, 768, 1400, 1500, 1450, 1480, 1500, 1400]


def run_tiny(*, spike_mb=0, max_retries=3):
    """The acceptance scenario, miniaturised: a tight budget, a spike in
    the responsive phase, and the recovery ladder in between."""
    model = make_tiny_model(num_units=6, features=512)
    budget = model.static_memory().total + 60 * MB
    planner = MimosePlanner(
        budget, collect_iterations=4, headroom_bytes=8 * MB,
        headroom_step=8 * MB,
    )
    planner.setup(ModelView(model))
    faults = None
    if spike_mb:
        faults = FaultPlan(seed=3, spikes=(
            FragmentationSpike(start_iteration=7, num_iterations=2,
                               reserve_bytes=spike_mb * MB),
        ))
    ex = TrainingExecutor(
        model, planner, capacity_bytes=budget, faults=faults,
        max_recovery_retries=max_retries,
    )
    result = RunResult("tiny", planner.name, budget)
    for rows in ROWS:
        result.append(ex.step(BatchInput((rows, 512), FLOAT32)))
    return planner, result


# ------------------------------------------------------------ executor ladder

def test_seed_behaviour_spike_is_fatal_without_recovery():
    _, result = run_tiny(spike_mb=20, max_retries=0)
    assert result.oom_count >= 1
    assert not result.succeeded
    assert result.total_retries == 0


def test_recovery_survives_the_same_spike():
    planner, result = run_tiny(spike_mb=20, max_retries=3)
    assert result.succeeded
    assert result.oom_count == 0
    assert result.recovered_count >= 1
    assert result.total_retries >= 1
    assert planner.recovery_attempts >= 1
    # every recovered iteration names the rung that saved it
    for s in result.iterations:
        if s.retries:
            assert s.recovery_mode in (
                "replan", "widen-reserve", "full-checkpoint"
            )
            assert s.recovered


def test_recovery_reaches_the_full_checkpoint_rung():
    _, result = run_tiny(spike_mb=20, max_retries=3)
    assert "full-checkpoint" in result.recovery_modes()


def test_recovery_charges_wasted_attempts_to_planning_time():
    _, clean = run_tiny(spike_mb=0)
    _, result = run_tiny(spike_mb=20, max_retries=3)
    recovered = [s for s in result.iterations if s.retries]
    assert recovered
    # the failed attempts' wall-clock rides on the surviving attempt
    mean_clean_planning = sum(
        s.planning_time for s in clean.iterations
    ) / len(clean.iterations)
    assert all(s.planning_time > mean_clean_planning for s in recovered)


def test_recovery_keeps_iteration_numbering_dense():
    _, result = run_tiny(spike_mb=20, max_retries=3)
    assert [s.iteration for s in result.iterations] == list(
        range(1, len(ROWS) + 1)
    )


def test_exhausted_ladder_reports_the_oom():
    """A spike too large even for the full-checkpoint floor: the ladder
    runs out of rungs and the iteration stays failed."""
    _, result = run_tiny(spike_mb=30, max_retries=3)
    assert result.oom_count >= 1
    assert not result.succeeded
    failed = next(s for s in result.iterations if s.oom)
    assert failed.retries == 3
    assert not failed.recovered


def test_recovery_slowdown_is_bounded():
    """Recovery must not blow up the mean iteration time.  This tiny
    scenario replays 2 of 10 iterations through the full ladder — a far
    larger recovery tax than a real run pays — so the bound here is
    loose; the acceptance criterion proper (within 25 % of fault-free at
    TC-Bert scale) is asserted by benchmarks/bench_recovery.py."""
    _, clean = run_tiny(spike_mb=0)
    _, faulted = run_tiny(spike_mb=20, max_retries=3)
    assert faulted.mean_iteration_time() <= 1.5 * clean.mean_iteration_time()


def test_recovery_requires_planner_support():
    """Planners without a ladder (static baselines) are never retried."""
    model = make_tiny_model(num_units=6, features=512)
    budget = model.static_memory().total + 40 * MB
    planner = SublinearPlanner(
        budget, worst_case_batch=BatchInput((1536, 512), FLOAT32)
    )
    planner.setup(ModelView(model))
    faults = FaultPlan(spikes=(
        FragmentationSpike(start_iteration=2, num_iterations=1,
                           reserve_bytes=50 * MB),
    ))
    ex = TrainingExecutor(
        model, planner, capacity_bytes=budget, faults=faults,
        max_recovery_retries=3,
    )
    result = RunResult("tiny", planner.name, budget)
    for rows in ROWS[:3]:
        result.append(ex.step(BatchInput((rows, 512), FLOAT32)))
    assert result.oom_count >= 1
    assert result.total_retries == 0


# ------------------------------------------------------------- planner ladder

def _fitted_planner():
    model = make_tiny_model(num_units=6, features=512)
    budget = model.static_memory().total + 60 * MB
    planner = MimosePlanner(
        budget, collect_iterations=4, headroom_bytes=8 * MB,
        headroom_step=8 * MB,
    )
    planner.setup(ModelView(model))
    ex = TrainingExecutor(model, planner, capacity_bytes=budget)
    for rows in ROWS[:5]:
        ex.step(BatchInput((rows, 512), FLOAT32))
    assert planner.estimator.is_fitted
    return planner


def _failed_stats():
    return IterationStats(
        iteration=6, input_size=1500 * 512, input_shape=(1500, 512),
        mode="normal", plan_label="mimose", num_checkpointed=0,
        fwd_time=0.0, bwd_time=0.0, recompute_time=0.0, collect_time=0.0,
        planning_time=0.0, upkeep_time=0.0, optimizer_time=0.0,
        peak_in_use=0, peak_reserved=0, end_in_use=0,
        fragmentation_bytes=0, oom=True,
    )


def test_ladder_rung0_replans_and_clears_cache():
    planner = _fitted_planner()
    batch = BatchInput((1500, 512), FLOAT32)
    planner.plan(batch)  # populate the cache for this size
    assert len(planner.cache) > 0
    decision = planner.recover(batch, _failed_stats(), 0)
    assert decision is not None
    assert decision.recovery_mode == "replan"
    # the replacement plan is cached for the retried size only
    assert len(planner.cache) == 1


def test_ladder_rung1_widens_the_reserve():
    planner = _fitted_planner()
    before = planner.headroom_bytes
    decision = planner.recover(
        BatchInput((1500, 512), FLOAT32), _failed_stats(), 1
    )
    assert decision is not None
    assert decision.recovery_mode == "widen-reserve"
    assert planner.headroom_bytes == before + planner.headroom_step


def test_ladder_rung2_checkpoints_everything():
    planner = _fitted_planner()
    decision = planner.recover(
        BatchInput((1500, 512), FLOAT32), _failed_stats(), 2
    )
    assert decision is not None
    assert decision.recovery_mode == "full-checkpoint"
    assert decision.plan.checkpoint_units == frozenset(planner._order)


def test_ladder_exhausts_after_rung2():
    planner = _fitted_planner()
    assert planner.recover(
        BatchInput((1500, 512), FLOAT32), _failed_stats(), 3
    ) is None


def test_unfitted_planner_goes_straight_to_full_checkpoint():
    model = make_tiny_model(num_units=6, features=512)
    planner = MimosePlanner(int(2 * GB), collect_iterations=4)
    planner.setup(ModelView(model))
    decision = planner.recover(
        BatchInput((512, 512), FLOAT32), _failed_stats(), 0
    )
    assert decision is not None
    assert decision.recovery_mode == "full-checkpoint"
