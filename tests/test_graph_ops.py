"""Unit + property tests for operator shape inference and cost models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.ops import (
    Add,
    AdaptiveAvgPool2d,
    BatchMatMul,
    BatchNorm2d,
    Concat,
    Conv2d,
    CrossEntropyLoss,
    Dropout,
    Embedding,
    Gelu,
    LayerNorm,
    Linear,
    MaxPool2d,
    Mul,
    Relu,
    Reshape,
    Scale,
    ShapeError,
    Softmax,
    Tanh,
    Transpose,
)
from repro.tensorsim.dtypes import BOOL, FLOAT32, INT64
from repro.tensorsim.tensor import TensorSpec


def spec(*shape, dtype=FLOAT32):
    return TensorSpec(tuple(shape), dtype)


# ------------------------------------------------------------- elementwise

def test_relu_preserves_shape_and_saves_output():
    p = Relu().profile(spec(4, 8))
    assert p.output == spec(4, 8)
    assert p.saves_output
    assert p.saved == (spec(4, 8),)


def test_gelu_tanh_save_output():
    for op in (Gelu(), Tanh()):
        p = op.profile(spec(3, 5))
        assert p.saves_output
        assert p.flops > 0


def test_add_requires_same_shape():
    p = Add().profile(spec(2, 2), spec(2, 2))
    assert p.output == spec(2, 2)
    assert p.saved == ()
    with pytest.raises(ShapeError):
        Add().profile(spec(2, 2), spec(2, 3))


def test_mul_shape_check():
    with pytest.raises(ShapeError):
        Mul().profile(spec(2), spec(3))


def test_scale_costs_nothing_extra():
    p = Scale(0.125).profile(spec(10,))
    assert p.output == spec(10,)
    assert not p.saves_output


def test_dropout_saves_byte_mask():
    p = Dropout(0.1).profile(spec(4, 4))
    assert p.output == spec(4, 4)
    masks = [s for s in p.saved if s.dtype is BOOL]
    assert masks == [TensorSpec((4, 4), BOOL)]


def test_dropout_invalid_probability():
    with pytest.raises(ValueError):
        Dropout(1.0)
    with pytest.raises(ValueError):
        Dropout(-0.1)


# ----------------------------------------------------- normalisation / softmax

def test_softmax_saves_output():
    p = Softmax().profile(spec(2, 8, 8))
    assert p.saves_output


def test_layernorm_params_and_check():
    p = LayerNorm(16).profile(spec(4, 16))
    assert p.param_count == 32
    with pytest.raises(ShapeError):
        LayerNorm(16).profile(spec(4, 8))


def test_batchnorm_requires_4d_and_channel_match():
    p = BatchNorm2d(8).profile(spec(2, 8, 4, 4))
    assert p.param_count == 16
    with pytest.raises(ShapeError):
        BatchNorm2d(8).profile(spec(2, 8, 4))
    with pytest.raises(ShapeError):
        BatchNorm2d(8).profile(spec(2, 4, 4, 4))


# ---------------------------------------------------------------- reductions

def test_linear_shapes_params_flops():
    op = Linear(64, 128)
    p = op.profile(spec(10, 64))
    assert p.output == spec(10, 128)
    assert p.param_count == 64 * 128 + 128
    assert p.flops == 2 * 10 * 64 * 128
    assert p.bwd_flops == 2 * p.flops


def test_linear_no_bias():
    assert Linear(4, 4, bias=False).profile(spec(1, 4)).param_count == 16


def test_linear_shape_mismatch():
    with pytest.raises(ShapeError):
        Linear(64, 128).profile(spec(10, 32))


def test_linear_invalid_features():
    with pytest.raises(ValueError):
        Linear(0, 4)


def test_batchmatmul_plain_and_transposed():
    a, b = spec(2, 3, 4, 8), spec(2, 3, 8, 5)
    p = BatchMatMul().profile(a, b)
    assert p.output == spec(2, 3, 4, 5)
    assert p.flops == 2 * 6 * 4 * 5 * 8
    bt = spec(2, 3, 5, 8)
    pt = BatchMatMul(transpose_b=True).profile(a, bt)
    assert pt.output == spec(2, 3, 4, 5)


def test_batchmatmul_errors():
    with pytest.raises(ShapeError):
        BatchMatMul().profile(spec(4), spec(4))
    with pytest.raises(ShapeError):
        BatchMatMul().profile(spec(2, 4, 8), spec(3, 8, 2))
    with pytest.raises(ShapeError):
        BatchMatMul().profile(spec(2, 4, 8), spec(2, 7, 2))


def test_conv2d_output_shape_and_params():
    op = Conv2d(3, 64, kernel_size=7, stride=2, padding=3)
    p = op.profile(spec(2, 3, 224, 224))
    assert p.output == spec(2, 64, 112, 112)
    assert p.param_count == 3 * 64 * 49


def test_conv2d_collapsed_output_rejected():
    with pytest.raises(ShapeError):
        Conv2d(3, 8, kernel_size=7).profile(spec(1, 3, 4, 4))


def test_conv2d_channel_mismatch():
    with pytest.raises(ShapeError):
        Conv2d(3, 8).profile(spec(1, 4, 32, 32))


def test_maxpool_saves_indices():
    p = MaxPool2d(kernel_size=3, stride=2, padding=1).profile(spec(2, 8, 16, 16))
    assert p.output == spec(2, 8, 8, 8)
    assert p.saved[0].dtype is INT64


# -------------------------------------------------------------- fixed output

def test_adaptive_avgpool_fixed_output():
    op = AdaptiveAvgPool2d((1, 1))
    for hw in (7, 14, 29):
        p = op.profile(spec(2, 16, hw, hw))
        assert p.output == spec(2, 16, 1, 1)


# ------------------------------------------------------------- lookup / view

def test_embedding_shape_and_params():
    op = Embedding(1000, 64)
    p = op.profile(spec(4, 7, dtype=INT64))
    assert p.output == spec(4, 7, 64)
    assert p.param_count == 64000


def test_embedding_rejects_float_ids():
    with pytest.raises(ShapeError):
        Embedding(10, 4).profile(spec(4, 7))


def test_reshape_wildcard_and_checks():
    p = Reshape((2, -1)).profile(spec(4, 3))
    assert p.output == spec(2, 6)
    with pytest.raises(ShapeError):
        Reshape((-1, -1)).profile(spec(4,))
    with pytest.raises(ShapeError):
        Reshape((5,)).profile(spec(4,))
    with pytest.raises(ShapeError):
        Reshape((3, -1)).profile(spec(4,))


def test_transpose_swaps_axes():
    p = Transpose(1, 2).profile(spec(2, 3, 4))
    assert p.output == spec(2, 4, 3)
    with pytest.raises(ShapeError):
        Transpose(5, 6).profile(spec(2, 3))


def test_views_cost_nothing():
    for p in (
        Reshape((6,)).profile(spec(2, 3)),
        Transpose(0, 1).profile(spec(2, 3)),
    ):
        assert p.flops == 0
        assert p.saved == ()


def test_concat_shapes():
    p = Concat(axis=1).profile(spec(2, 3), spec(2, 5))
    assert p.output == spec(2, 8)
    with pytest.raises(ShapeError):
        Concat(axis=1).profile(spec(2, 3), spec(3, 5))
    with pytest.raises(ShapeError):
        Concat().profile()


def test_cross_entropy_scalar_output_saves_probs():
    p = CrossEntropyLoss().profile(spec(8, 10))
    assert p.output.shape == ()
    assert p.saved == (spec(8, 10),)
    with pytest.raises(ShapeError):
        CrossEntropyLoss().profile(spec(8))


# --------------------------------------------------------------- properties

@settings(max_examples=50, deadline=None)
@given(
    rows=st.integers(1, 64),
    fin=st.integers(1, 96),
    fout=st.integers(1, 96),
)
def test_linear_flops_scale_linearly(rows, fin, fout):
    p = Linear(fin, fout).profile(spec(rows, fin))
    assert p.flops == 2.0 * rows * fin * fout
    assert p.output.numel == rows * fout


@settings(max_examples=50, deadline=None)
@given(
    b=st.integers(1, 4),
    c=st.integers(1, 8),
    h=st.integers(8, 64),
    k=st.sampled_from([1, 3, 5]),
    s=st.sampled_from([1, 2]),
)
def test_conv_output_never_larger_than_padded_input(b, c, h, k, s):
    pad = k // 2
    op = Conv2d(c, c, kernel_size=k, stride=s, padding=pad)
    p = op.profile(spec(b, c, h, h))
    oh = p.output.shape[2]
    assert 1 <= oh <= h
    if s == 1:
        assert oh == h  # same-padding convolution preserves size


@settings(max_examples=40, deadline=None)
@given(
    shape=st.lists(st.integers(1, 8), min_size=1, max_size=4).map(tuple)
)
def test_elementwise_ops_preserve_numel(shape):
    x = TensorSpec(shape, FLOAT32)
    for op in (Relu(), Gelu(), Tanh(), Softmax(), Dropout(0.1), Scale(2.0)):
        assert op.profile(x).output.numel == x.numel
