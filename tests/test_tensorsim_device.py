"""Unit tests for the roofline device model."""

import pytest

from repro.tensorsim.device import DeviceModel, DevicePreset, TOY, V100


def test_v100_constants():
    assert V100.memory_capacity == 16 * 1024**3
    assert V100.peak_flops > 1e13


def test_kernel_time_has_launch_floor():
    dev = DeviceModel(V100)
    assert dev.kernel_time(0, 0) == V100.launch_overhead


def test_compute_bound_kernel():
    dev = DeviceModel(TOY)
    # enormous flops, no bytes: time is dominated by compute
    t = dev.kernel_time(1e12, 0)
    expected = 1e12 / (TOY.peak_flops * TOY.compute_efficiency)
    assert t == pytest.approx(TOY.launch_overhead + expected)


def test_bandwidth_bound_kernel():
    dev = DeviceModel(TOY)
    t = dev.kernel_time(0, 1e9)
    expected = 1e9 / (TOY.mem_bandwidth * TOY.bandwidth_efficiency)
    assert t == pytest.approx(TOY.launch_overhead + expected)


def test_roofline_takes_max_not_sum():
    dev = DeviceModel(TOY)
    t_both = dev.kernel_time(1e12, 1e9)
    t_compute = dev.kernel_time(1e12, 0)
    assert t_both == pytest.approx(t_compute)  # compute dominates here


def test_monotone_in_flops_and_bytes():
    dev = DeviceModel()
    assert dev.kernel_time(2e12, 0) > dev.kernel_time(1e12, 0)
    assert dev.kernel_time(0, 2e9) > dev.kernel_time(0, 1e9)


def test_negative_costs_rejected():
    dev = DeviceModel()
    with pytest.raises(ValueError):
        dev.kernel_time(-1, 0)
    with pytest.raises(ValueError):
        dev.kernel_time(0, -1)
    with pytest.raises(ValueError):
        dev.transfer_time(-5)


def test_transfer_time_pcie_is_slow():
    """The paper dismisses swapping because PCIe ~12 GB/s << HBM ~900 GB/s."""
    dev = DeviceModel(V100)
    nbytes = 1 << 30
    assert dev.transfer_time(nbytes) > 10 * dev.kernel_time(0, nbytes)


def test_custom_preset():
    preset = DevicePreset(
        name="X",
        peak_flops=1e12,
        mem_bandwidth=1e11,
        launch_overhead=0.0,
        memory_capacity=1024,
        compute_efficiency=1.0,
        bandwidth_efficiency=1.0,
    )
    dev = DeviceModel(preset)
    assert dev.kernel_time(1e12, 0) == pytest.approx(1.0)
    assert dev.memory_capacity == 1024
