"""Tests for Algorithm 1 (greedy bucketed scheduler) and the knapsack alternative."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import (
    GreedyScheduler,
    KnapsackScheduler,
    SchedulerInput,
)

MB = 1 << 20


def inp(est, excess, order=None, est_time=None):
    order = order or {u: i for i, u in enumerate(est)}
    return SchedulerInput(est_bytes=est, order=order, excess_bytes=excess, est_time=est_time)


def test_no_excess_returns_empty():
    s = GreedyScheduler()
    assert s.schedule(inp({"a": 10 * MB}, 0)) == frozenset()
    assert s.schedule(inp({"a": 10 * MB}, -5)) == frozenset()


def test_selection_covers_excess():
    s = GreedyScheduler()
    est = {f"u{i}": 100 * MB for i in range(12)}
    chosen = s.schedule(inp(est, 350 * MB))
    assert sum(est[u] for u in chosen) >= 350 * MB
    assert len(chosen) == 4  # minimal count for equal sizes


def test_prefers_earliest_timestamp_within_bucket():
    s = GreedyScheduler()
    est = {f"u{i}": 100 * MB for i in range(12)}
    chosen = s.schedule(inp(est, 250 * MB))
    # equal sizes = one bucket; earliest units picked first
    assert chosen == frozenset({"u0", "u1", "u2"})


def test_nearest_size_above_excess_is_selected():
    """Algorithm 1 line 19: pick the layer closest above the excess."""
    s = GreedyScheduler()
    est = {"big": 400 * MB, "mid": 150 * MB, "small": 60 * MB}
    chosen = s.schedule(inp(est, 100 * MB))
    assert chosen == frozenset({"mid"})  # not 'big': mid is nearest above


def test_nearest_above_not_fooled_by_earlier_smaller_bucket_member():
    """Regression: inside the tightest covering bucket, the earliest
    member may be up to bucket_tolerance *smaller* than the excess;
    picking it would violate "nearest above" and force an extra drop."""
    s = GreedyScheduler(bucket_tolerance=0.10)
    est = {"early": 91 * MB, "late": 100 * MB}  # one bucket (within 10 %)
    order = {"early": 0, "late": 1}
    chosen = s.schedule(inp(est, 95 * MB, order=order))
    assert chosen == frozenset({"late"})  # early (91 MB) cannot cover 95 MB


def test_nearest_above_still_prefers_earliest_among_covering_members():
    s = GreedyScheduler(bucket_tolerance=0.10)
    est = {"a": 100 * MB, "b": 97 * MB, "c": 93 * MB}
    order = {"a": 2, "b": 0, "c": 1}
    chosen = s.schedule(inp(est, 95 * MB, order=order))
    # b and a both cover; b is earlier. c (93 MB) does not qualify.
    assert chosen == frozenset({"b"})


def test_largest_first_when_nothing_covers_alone():
    """Algorithm 1 line 17: fall back to the largest activation."""
    s = GreedyScheduler()
    est = {"a": 80 * MB, "b": 60 * MB, "c": 50 * MB}
    chosen = s.schedule(inp(est, 120 * MB))
    assert "a" in chosen
    assert sum(est[u] for u in chosen) >= 120 * MB


def test_excess_beyond_everything_drops_all():
    s = GreedyScheduler()
    est = {"a": 10 * MB, "b": 10 * MB}
    chosen = s.schedule(inp(est, 500 * MB))
    assert chosen == frozenset(est)


def test_buckets_group_within_tolerance():
    s = GreedyScheduler(bucket_tolerance=0.10)
    est = {
        "a": 100 * MB, "b": 95 * MB, "c": 91 * MB,  # one bucket (within 10%)
        "d": 50 * MB, "e": 47 * MB,  # second bucket
        "f": 10 * MB,  # third
    }
    buckets = s.build_buckets(inp(est, 1))
    assert [sorted(b) for b in buckets] == [["a", "b", "c"], ["d", "e"], ["f"]]


def test_buckets_sorted_desc_and_by_timestamp_inside():
    s = GreedyScheduler()
    est = {"late": 100 * MB, "early": 98 * MB}
    order = {"late": 5, "early": 1}
    buckets = s.build_buckets(inp(est, 1, order=order))
    assert buckets == [["early", "late"]]


def test_zero_tolerance_gives_singleton_buckets():
    s = GreedyScheduler(bucket_tolerance=0.0)
    est = {"a": 100 * MB, "b": 100 * MB - 1, "c": 50 * MB}
    buckets = s.build_buckets(inp(est, 1))
    assert len(buckets) == 3


def test_invalid_tolerance():
    with pytest.raises(ValueError):
        GreedyScheduler(bucket_tolerance=1.0)
    with pytest.raises(ValueError):
        GreedyScheduler(bucket_tolerance=-0.1)


# ------------------------------------------------------------------ knapsack

def test_knapsack_covers_excess_minimising_time():
    s = KnapsackScheduler()
    est = {"a": 100 * MB, "b": 100 * MB, "c": 200 * MB}
    times = {"a": 1.0, "b": 1.0, "c": 0.5}
    chosen = s.schedule(inp(est, 150 * MB, est_time=times))
    assert chosen == frozenset({"c"})  # covers 150MB at half the time


def test_knapsack_no_excess():
    assert KnapsackScheduler().schedule(inp({"a": MB}, 0)) == frozenset()


def test_knapsack_insufficient_capacity_drops_all():
    s = KnapsackScheduler()
    est = {"a": 2 * MB, "b": 2 * MB}
    assert s.schedule(inp(est, 100 * MB)) == frozenset(est)


# --------------------------------------------------------------- properties

@st.composite
def scheduler_cases(draw):
    n = draw(st.integers(2, 16))
    est = {
        f"u{i}": draw(st.integers(1, 512)) * MB for i in range(n)
    }
    total = sum(est.values())
    excess = draw(st.integers(1, max(total, 2)))
    return est, excess


@settings(max_examples=80, deadline=None)
@given(case=scheduler_cases())
def test_property_greedy_always_covers_or_exhausts(case):
    est, excess = case
    chosen = GreedyScheduler().schedule(inp(est, excess))
    dropped = sum(est[u] for u in chosen)
    if dropped < excess:
        assert chosen == frozenset(est)  # exhausted everything
    else:
        assert dropped >= excess


@settings(max_examples=60, deadline=None)
@given(case=scheduler_cases())
def test_property_greedy_selection_is_not_wasteful(case):
    """Removing the last-picked unit must leave the excess uncovered
    (the greedy loop stops as soon as coverage is reached)."""
    est, excess = case
    chosen = GreedyScheduler().schedule(inp(est, excess))
    dropped = sum(est[u] for u in chosen)
    if dropped >= excess and chosen:
        # Every pick was needed when it was made, so the selection minus
        # its largest member cannot cover the excess.
        largest = max(chosen, key=lambda u: est[u])
        assert dropped - est[largest] < excess


@settings(max_examples=60, deadline=None)
@given(case=scheduler_cases())
def test_property_knapsack_coverage(case):
    est, excess = case
    chosen = KnapsackScheduler().schedule(inp(est, excess))
    dropped = sum(est[u] for u in chosen)
    assert dropped >= min(excess, sum(est.values()))


@st.composite
def tie_heavy_cases(draw):
    """Many units sharing a handful of sizes: buckets full of exact ties,
    the regime where bucket ordering and DP backtracking are easiest to
    get wrong."""
    sizes = draw(
        st.lists(st.integers(1, 8), min_size=1, max_size=3, unique=True)
    )
    n = draw(st.integers(3, 20))
    est = {
        f"u{i}": draw(st.sampled_from(sizes)) * 64 * MB for i in range(n)
    }
    total = sum(est.values())
    excess = draw(st.integers(1, total + 64 * MB))
    return est, excess


@settings(max_examples=80, deadline=None)
@given(case=tie_heavy_cases())
@pytest.mark.parametrize(
    "scheduler", [GreedyScheduler(), KnapsackScheduler()], ids=lambda s: s.name
)
def test_property_coverage_on_tie_heavy_inputs(scheduler, case):
    """Both schedulers: the chosen set covers the excess, or — when even
    everything falls short — is the whole unit set."""
    est, excess = case
    chosen = scheduler.schedule(inp(est, excess))
    dropped = sum(est[u] for u in chosen)
    if dropped < excess:
        assert chosen == frozenset(est)
    assert dropped >= min(excess, sum(est.values()))
