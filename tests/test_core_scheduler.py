"""Tests for Algorithm 1 (greedy bucketed scheduler) and the knapsack alternative."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import (
    GreedyScheduler,
    HybridGreedyScheduler,
    KnapsackScheduler,
    PcieCostModel,
    SchedulerInput,
    predicted_swap_stall,
)

MB = 1 << 20


def inp(est, excess, order=None, est_time=None, bwd_time=None):
    order = order or {u: i for i, u in enumerate(est)}
    return SchedulerInput(
        est_bytes=est,
        order=order,
        excess_bytes=excess,
        est_time=est_time,
        bwd_time=bwd_time,
    )


def test_no_excess_returns_empty():
    s = GreedyScheduler()
    assert s.schedule(inp({"a": 10 * MB}, 0)) == frozenset()
    assert s.schedule(inp({"a": 10 * MB}, -5)) == frozenset()


def test_selection_covers_excess():
    s = GreedyScheduler()
    est = {f"u{i}": 100 * MB for i in range(12)}
    chosen = s.schedule(inp(est, 350 * MB))
    assert sum(est[u] for u in chosen) >= 350 * MB
    assert len(chosen) == 4  # minimal count for equal sizes


def test_prefers_earliest_timestamp_within_bucket():
    s = GreedyScheduler()
    est = {f"u{i}": 100 * MB for i in range(12)}
    chosen = s.schedule(inp(est, 250 * MB))
    # equal sizes = one bucket; earliest units picked first
    assert chosen == frozenset({"u0", "u1", "u2"})


def test_nearest_size_above_excess_is_selected():
    """Algorithm 1 line 19: pick the layer closest above the excess."""
    s = GreedyScheduler()
    est = {"big": 400 * MB, "mid": 150 * MB, "small": 60 * MB}
    chosen = s.schedule(inp(est, 100 * MB))
    assert chosen == frozenset({"mid"})  # not 'big': mid is nearest above


def test_nearest_above_not_fooled_by_earlier_smaller_bucket_member():
    """Regression: inside the tightest covering bucket, the earliest
    member may be up to bucket_tolerance *smaller* than the excess;
    picking it would violate "nearest above" and force an extra drop."""
    s = GreedyScheduler(bucket_tolerance=0.10)
    est = {"early": 91 * MB, "late": 100 * MB}  # one bucket (within 10 %)
    order = {"early": 0, "late": 1}
    chosen = s.schedule(inp(est, 95 * MB, order=order))
    assert chosen == frozenset({"late"})  # early (91 MB) cannot cover 95 MB


def test_nearest_above_still_prefers_earliest_among_covering_members():
    s = GreedyScheduler(bucket_tolerance=0.10)
    est = {"a": 100 * MB, "b": 97 * MB, "c": 93 * MB}
    order = {"a": 2, "b": 0, "c": 1}
    chosen = s.schedule(inp(est, 95 * MB, order=order))
    # b and a both cover; b is earlier. c (93 MB) does not qualify.
    assert chosen == frozenset({"b"})


def test_largest_first_when_nothing_covers_alone():
    """Algorithm 1 line 17: fall back to the largest activation."""
    s = GreedyScheduler()
    est = {"a": 80 * MB, "b": 60 * MB, "c": 50 * MB}
    chosen = s.schedule(inp(est, 120 * MB))
    assert "a" in chosen
    assert sum(est[u] for u in chosen) >= 120 * MB


def test_excess_beyond_everything_drops_all():
    s = GreedyScheduler()
    est = {"a": 10 * MB, "b": 10 * MB}
    chosen = s.schedule(inp(est, 500 * MB))
    assert chosen == frozenset(est)


def test_buckets_group_within_tolerance():
    s = GreedyScheduler(bucket_tolerance=0.10)
    est = {
        "a": 100 * MB, "b": 95 * MB, "c": 91 * MB,  # one bucket (within 10%)
        "d": 50 * MB, "e": 47 * MB,  # second bucket
        "f": 10 * MB,  # third
    }
    buckets = s.build_buckets(inp(est, 1))
    assert [sorted(b) for b in buckets] == [["a", "b", "c"], ["d", "e"], ["f"]]


def test_buckets_sorted_desc_and_by_timestamp_inside():
    s = GreedyScheduler()
    est = {"late": 100 * MB, "early": 98 * MB}
    order = {"late": 5, "early": 1}
    buckets = s.build_buckets(inp(est, 1, order=order))
    assert buckets == [["early", "late"]]


def test_zero_tolerance_gives_singleton_buckets():
    s = GreedyScheduler(bucket_tolerance=0.0)
    est = {"a": 100 * MB, "b": 100 * MB - 1, "c": 50 * MB}
    buckets = s.build_buckets(inp(est, 1))
    assert len(buckets) == 3


def test_invalid_tolerance():
    with pytest.raises(ValueError):
        GreedyScheduler(bucket_tolerance=1.0)
    with pytest.raises(ValueError):
        GreedyScheduler(bucket_tolerance=-0.1)


# ------------------------------------------------------------------ knapsack

def test_knapsack_covers_excess_minimising_time():
    s = KnapsackScheduler()
    est = {"a": 100 * MB, "b": 100 * MB, "c": 200 * MB}
    times = {"a": 1.0, "b": 1.0, "c": 0.5}
    chosen = s.schedule(inp(est, 150 * MB, est_time=times))
    assert chosen == frozenset({"c"})  # covers 150MB at half the time


def test_knapsack_no_excess():
    assert KnapsackScheduler().schedule(inp({"a": MB}, 0)) == frozenset()


def test_knapsack_insufficient_capacity_drops_all():
    s = KnapsackScheduler()
    est = {"a": 2 * MB, "b": 2 * MB}
    assert s.schedule(inp(est, 100 * MB)) == frozenset(est)


def test_knapsack_sub_quantum_unit_cannot_cover_excess():
    """Regression: with ``max(1, bytes // QUANTUM)`` a 10-byte unit counted
    as a full MiB, so the DP declared a 1 MiB excess covered by dropping
    only ``tiny`` — freeing 10 real bytes.  Rounding down (and excluding
    zero-quantum units) forces a selection whose real bytes reach the
    excess."""
    s = KnapsackScheduler()
    est = {"tiny": 10, "big": 2 * MB}
    times = {"tiny": 0.001, "big": 1.0}  # the DP would love to pick tiny
    chosen = s.schedule(inp(est, 1 * MB, est_time=times))
    assert sum(est[u] for u in chosen) >= 1 * MB
    assert "big" in chosen


def test_knapsack_all_sub_quantum_falls_back_to_drop_all():
    s = KnapsackScheduler()
    est = {"a": 10, "b": 300_000, "c": 500_000}
    chosen = s.schedule(inp(est, 600_000))
    # nothing reaches a quantum, so coverage cannot be guaranteed; the
    # falls-short fallback drops everything (sub-quantum units included)
    assert chosen == frozenset(est)


# ------------------------------------------------------------- cost model

GBPS = 10**9


def timed_inp(excess=100 * MB, bwd_time=None):
    est = {"a": 120 * MB, "b": 80 * MB}
    est_time = {"a": 0.1, "b": 0.3}
    return inp(est, excess, est_time=est_time, bwd_time=bwd_time)


def test_overlap_window_prefers_measured_backwards():
    model = PcieCostModel(pcie_bandwidth=GBPS)
    measured = timed_inp(bwd_time={"a": 0.3, "b": 0.5})
    assert model.overlap_window(measured) == pytest.approx(0.4)
    assert model.pricing_mode(measured) == "measured-bwd"


def test_overlap_window_ratio_fallback_without_backwards():
    model = PcieCostModel(pcie_bandwidth=GBPS)
    unmeasured = timed_inp()
    # DEFAULT_BWD_RATIO x mean forward = 2.0 x 0.2
    assert model.overlap_window(unmeasured) == pytest.approx(0.4)
    assert model.pricing_mode(unmeasured) == "ratio-fallback"


def test_overlap_window_explicit_ratio_overrides_measured():
    model = PcieCostModel(pcie_bandwidth=GBPS, bwd_ratio=3.0)
    measured = timed_inp(bwd_time={"a": 9.0, "b": 9.0})
    # the override wins even though measured backwards are present
    assert model.overlap_window(measured) == pytest.approx(3.0 * 0.2)
    assert model.pricing_mode(measured) == "ratio-override"


def test_untimed_input_never_swaps():
    model = PcieCostModel(pcie_bandwidth=GBPS)
    untimed = inp({"a": 120 * MB, "b": 80 * MB}, 100 * MB)
    assert model.recompute_cost("a", untimed) == 0.0
    assert model.overlap_window(untimed) == 0.0
    assert model.pricing_mode(untimed) == "untimed"
    assignment = HybridGreedyScheduler(model).assign(untimed)
    assert assignment.swap_units == frozenset()
    assert assignment.checkpoint_units  # excess still covered by recompute


def test_hybrid_assignment_differs_between_pricing_modes():
    """The folk 2x constant claims a wide overlap window, so transfers
    look free and the hybrid swaps; the measured backwards here are much
    shorter, so the same units are recomputed instead."""
    measured = timed_inp(bwd_time={"a": 0.001, "b": 0.001})
    by_measured = HybridGreedyScheduler(
        PcieCostModel(pcie_bandwidth=GBPS)
    ).assign(measured)
    by_ratio = HybridGreedyScheduler(
        PcieCostModel(pcie_bandwidth=GBPS, bwd_ratio=2.0)
    ).assign(measured)
    assert by_ratio.swap_units  # window 0.4 s hides the ~0.13 s transfers
    assert not by_measured.swap_units  # window 1 ms hides nothing
    assert by_measured != by_ratio
    # either way the excess is covered
    est = measured.est_bytes
    for assignment in (by_measured, by_ratio):
        assert sum(est[u] for u in assignment.units) >= measured.excess_bytes


def test_hybrid_and_greedy_agree_when_swapping_never_pays():
    measured = timed_inp(bwd_time={"a": 0.0, "b": 0.0})
    hybrid = HybridGreedyScheduler(PcieCostModel(pcie_bandwidth=GBPS))
    assignment = hybrid.assign(measured)
    assert not assignment.swap_units
    # recompute-only view covers like the greedy contract requires
    covered = sum(measured.est_bytes[u] for u in assignment.checkpoint_units)
    assert covered >= measured.excess_bytes


def test_predicted_swap_stall_matches_loop_pricing():
    model = PcieCostModel(pcie_bandwidth=GBPS, bwd_ratio=2.0)
    measured = timed_inp()
    assignment = HybridGreedyScheduler(model).assign(measured)
    window = model.overlap_window(measured)
    expect = sum(
        max(0.0, model.transfer_time(measured.est_bytes[u]) - window)
        for u in assignment.swap_units
    )
    assert predicted_swap_stall(model, assignment, measured) == expect
    # empty assignment -> no stall
    empty = HybridGreedyScheduler(model).assign(timed_inp(excess=0))
    assert predicted_swap_stall(model, empty, measured) == 0.0


# --------------------------------------------------------------- properties

@st.composite
def scheduler_cases(draw):
    n = draw(st.integers(2, 16))
    est = {
        f"u{i}": draw(st.integers(1, 512)) * MB for i in range(n)
    }
    total = sum(est.values())
    excess = draw(st.integers(1, max(total, 2)))
    return est, excess


@settings(max_examples=80, deadline=None)
@given(case=scheduler_cases())
def test_property_greedy_always_covers_or_exhausts(case):
    est, excess = case
    chosen = GreedyScheduler().schedule(inp(est, excess))
    dropped = sum(est[u] for u in chosen)
    if dropped < excess:
        assert chosen == frozenset(est)  # exhausted everything
    else:
        assert dropped >= excess


@settings(max_examples=60, deadline=None)
@given(case=scheduler_cases())
def test_property_greedy_selection_is_not_wasteful(case):
    """Removing the last-picked unit must leave the excess uncovered
    (the greedy loop stops as soon as coverage is reached)."""
    est, excess = case
    chosen = GreedyScheduler().schedule(inp(est, excess))
    dropped = sum(est[u] for u in chosen)
    if dropped >= excess and chosen:
        # Every pick was needed when it was made, so the selection minus
        # its largest member cannot cover the excess.
        largest = max(chosen, key=lambda u: est[u])
        assert dropped - est[largest] < excess


@settings(max_examples=60, deadline=None)
@given(case=scheduler_cases())
def test_property_knapsack_coverage(case):
    est, excess = case
    chosen = KnapsackScheduler().schedule(inp(est, excess))
    dropped = sum(est[u] for u in chosen)
    assert dropped >= min(excess, sum(est.values()))


@st.composite
def tie_heavy_cases(draw):
    """Many units sharing a handful of sizes: buckets full of exact ties,
    the regime where bucket ordering and DP backtracking are easiest to
    get wrong."""
    sizes = draw(
        st.lists(st.integers(1, 8), min_size=1, max_size=3, unique=True)
    )
    n = draw(st.integers(3, 20))
    est = {
        f"u{i}": draw(st.sampled_from(sizes)) * 64 * MB for i in range(n)
    }
    total = sum(est.values())
    excess = draw(st.integers(1, total + 64 * MB))
    return est, excess


@settings(max_examples=80, deadline=None)
@given(case=tie_heavy_cases())
@pytest.mark.parametrize(
    "scheduler", [GreedyScheduler(), KnapsackScheduler()], ids=lambda s: s.name
)
def test_property_coverage_on_tie_heavy_inputs(scheduler, case):
    """Both schedulers: the chosen set covers the excess, or — when even
    everything falls short — is the whole unit set."""
    est, excess = case
    chosen = scheduler.schedule(inp(est, excess))
    dropped = sum(est[u] for u in chosen)
    if dropped < excess:
        assert chosen == frozenset(est)
    assert dropped >= min(excess, sum(est.values()))
