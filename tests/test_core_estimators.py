"""Unit + property tests for the regression model zoo (Table IV families)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimators import (
    DecisionTreeRegressor,
    GradientBoostedTrees,
    NotFittedError,
    PolynomialRegressor,
    SupportVectorRegressor,
    available_regressors,
    make_regressor,
)


def quad(x, a=3.0, b=2000.0, c=5e5):
    return a * np.asarray(x, dtype=float) ** 2 + b * np.asarray(x, dtype=float) + c


XS = [100, 500, 900, 1500, 2200, 3000, 4200, 5100, 6400, 8000]


def test_factory_lists_all_families():
    names = available_regressors()
    assert names == ["gbt", "poly1", "poly2", "poly3", "svr", "tree"]
    for n in names:
        assert make_regressor(n) is not None
    with pytest.raises(KeyError):
        make_regressor("mlp")


def test_predict_before_fit_raises():
    for r in (
        PolynomialRegressor(2),
        SupportVectorRegressor(),
        DecisionTreeRegressor(),
        GradientBoostedTrees(n_estimators=5),
    ):
        with pytest.raises(NotFittedError):
            r.predict(1.0)


def test_quadratic_recovers_exact_polynomial():
    ys = quad(XS)
    model = PolynomialRegressor(2).fit(XS, ys)
    for x in (250, 1200, 7000, 9500):  # includes extrapolation
        assert model.predict(x) == pytest.approx(quad(x), rel=1e-6)


def test_linear_model_underfits_quadratic():
    ys = quad(XS)
    lin = PolynomialRegressor(1).fit(XS, ys)
    err = abs(lin.predict(8000) - quad(8000)) / quad(8000)
    assert err > 0.01  # the Table IV poly1 gap


def test_cubic_also_fits_quadratic():
    ys = quad(XS)
    model = PolynomialRegressor(3).fit(XS, ys)
    assert model.predict(4000) == pytest.approx(quad(4000), rel=1e-5)


def test_degree_clamped_to_sample_count():
    model = PolynomialRegressor(3).fit([1.0, 2.0], [1.0, 2.0])
    assert model.predict(3.0) == pytest.approx(3.0)


def test_invalid_degree():
    with pytest.raises(ValueError):
        PolynomialRegressor(0)
    with pytest.raises(ValueError):
        PolynomialRegressor(9)


def test_tree_is_piecewise_constant_and_cannot_extrapolate():
    ys = quad(XS)
    tree = DecisionTreeRegressor().fit(XS, ys)
    # inside the range it memorises training points
    assert tree.predict(100) == pytest.approx(quad(100), rel=1e-9)
    # beyond the range the prediction saturates at a leaf value
    assert tree.predict(20000) == tree.predict(8000)
    assert abs(tree.predict(20000) - quad(20000)) / quad(20000) > 0.5


def test_tree_interpolation_error_exceeds_quadratic():
    ys = quad(XS)
    tree = DecisionTreeRegressor().fit(XS, ys)
    poly = PolynomialRegressor(2).fit(XS, ys)
    x = 1900.0  # between training points
    tree_err = abs(tree.predict(x) - quad(x))
    poly_err = abs(poly.predict(x) - quad(x))
    assert tree_err > poly_err * 10


def test_svr_fits_but_extrapolates_poorly():
    ys = quad(XS)
    svr = SupportVectorRegressor().fit(XS, ys)
    inside = abs(svr.predict(XS[3]) - quad(XS[3])) / quad(XS[3])
    outside = abs(svr.predict(16000) - quad(16000)) / quad(16000)
    assert inside < 0.05
    assert outside > 0.25


def test_gbt_reduces_training_residual():
    ys = quad(XS)
    few = GradientBoostedTrees(n_estimators=3).fit(XS, ys)
    many = GradientBoostedTrees(n_estimators=200).fit(XS, ys)
    err_few = sum(abs(few.predict(x) - y) for x, y in zip(XS, ys))
    err_many = sum(abs(many.predict(x) - y) for x, y in zip(XS, ys))
    assert err_many < err_few


def test_gbt_hyperparameter_validation():
    with pytest.raises(ValueError):
        GradientBoostedTrees(n_estimators=0)
    with pytest.raises(ValueError):
        GradientBoostedTrees(learning_rate=0.0)


def test_fit_validation_errors():
    r = PolynomialRegressor(2)
    with pytest.raises(ValueError):
        r.fit([], [])
    with pytest.raises(ValueError):
        r.fit([1, 2], [1])


def test_predict_many():
    model = PolynomialRegressor(1).fit([0, 1], [0, 2])
    np.testing.assert_allclose(model.predict_many([0, 1, 2]), [0, 2, 4], atol=1e-9)


# --------------------------------------------------------------- properties

@settings(max_examples=40, deadline=None)
@given(
    a=st.floats(0.1, 10),
    b=st.floats(0, 1e4),
    c=st.floats(0, 1e6),
)
def test_property_quadratic_recovery(a, b, c):
    """poly2 recovers any planted quadratic from 10 exact samples."""
    xs = np.linspace(50, 9000, 10)
    ys = a * xs**2 + b * xs + c
    model = PolynomialRegressor(2).fit(xs, ys)
    x = 4321.0
    truth = a * x**2 + b * x + c
    assert model.predict(x) == pytest.approx(truth, rel=1e-4, abs=1.0)


@settings(max_examples=30, deadline=None)
@given(
    xs=st.lists(
        st.floats(1, 1e5, allow_nan=False), min_size=3, max_size=30, unique=True
    )
)
def test_property_constant_function_fit_by_all(xs):
    """Every family can at least represent a constant."""
    ys = [7777.0] * len(xs)
    for name in available_regressors():
        model = make_regressor(name)
        if name == "gbt":
            model.n_estimators = 10
        model.fit(xs, ys)
        assert model.predict(float(xs[0])) == pytest.approx(7777.0, rel=0.01)
