"""Tests for the data-parallel extension."""

import pytest

from repro.data.datasets import DataLoader, make_dataset
from repro.engine.ddp import DataParallelExecutor
from repro.models.base import BatchInput
from repro.models.registry import build_model
from repro.core.planner import MimosePlanner
from repro.planners.none import NoCheckpointPlanner
from repro.tensorsim.dtypes import FLOAT32

from tests.helpers import GB, make_tiny_model


def tiny_ddp(world_size=4, budget=2 * GB, planner=None):
    return DataParallelExecutor(
        lambda: make_tiny_model(num_units=4, features=256),
        planner or (lambda rank: NoCheckpointPlanner(budget)),
        world_size,
        capacity_bytes=budget,
    )


def batches(rows_list, features=256):
    return [BatchInput((r, features), FLOAT32) for r in rows_list]


def test_step_time_is_gated_by_straggler():
    ddp = tiny_ddp()
    stats = ddp.step(batches([64, 64, 1024, 64]))
    assert stats.straggler_rank == 2
    slowest = stats.per_rank[2].total_time
    assert stats.step_time == pytest.approx(
        slowest + stats.exposed_allreduce
    )
    assert stats.step_time >= max(s.total_time for s in stats.per_rank)
    assert stats.imbalance > 1.5  # heavily imbalanced batch sizes


def test_balanced_batches_have_low_imbalance():
    ddp = tiny_ddp()
    stats = ddp.step(batches([256, 256, 256, 256]))
    assert stats.imbalance == pytest.approx(1.0, abs=1e-6)


def test_allreduce_ring_cost_model():
    ddp = tiny_ddp(world_size=4)
    grad_bytes = ddp.executors[0].model.static_memory().grad_bytes
    expected = 2 * (3 / 4) * grad_bytes / ddp.link_bandwidth
    assert ddp.allreduce_time() == pytest.approx(expected)
    single = tiny_ddp(world_size=1)
    assert single.allreduce_time() == 0.0


def test_allreduce_overlap_hides_under_backward():
    full = DataParallelExecutor(
        lambda: make_tiny_model(num_units=4, features=256),
        lambda rank: NoCheckpointPlanner(2 * GB),
        2,
        capacity_bytes=2 * GB,
        overlap_fraction=1.0,
    )
    none = DataParallelExecutor(
        lambda: make_tiny_model(num_units=4, features=256),
        lambda rank: NoCheckpointPlanner(2 * GB),
        2,
        capacity_bytes=2 * GB,
        overlap_fraction=0.0,
    )
    b = batches([256, 256])[:2]
    s_full = full.step(b)
    s_none = none.step(b)
    assert s_none.exposed_allreduce >= s_full.exposed_allreduce
    assert s_none.step_time >= s_full.step_time


def test_ranks_have_independent_memory_and_planners():
    ddp = tiny_ddp()
    allocators = {id(ex.allocator) for ex in ddp.executors}
    planners = {id(ex.planner) for ex in ddp.executors}
    assert len(allocators) == len(planners) == 4


def test_validation():
    with pytest.raises(ValueError):
        tiny_ddp(world_size=0)
    with pytest.raises(ValueError):
        DataParallelExecutor(
            lambda: make_tiny_model(), lambda r: NoCheckpointPlanner(GB), 2,
            capacity_bytes=GB, overlap_fraction=1.5,
        )
    ddp = tiny_ddp(world_size=2)
    with pytest.raises(ValueError, match="need 2 batches"):
        ddp.step(batches([64]))


def test_mimose_under_ddp_trains_within_budget():
    """Each rank runs its own Mimose instance over its own length stream;
    every rank respects the per-rank budget."""
    world = 2
    budget = int(3.5 * GB)
    ddp = DataParallelExecutor(
        lambda: build_model("bert-base"),
        lambda rank: MimosePlanner(budget, collect_iterations=6),
        world,
        capacity_bytes=budget,
    )
    loaders = [
        DataLoader(make_dataset("glue-qqp"), 32, 20, seed=100 + r)
        for r in range(world)
    ]
    mean_imbalance = 0.0
    for step_batches in zip(*loaders):
        stats = ddp.step(list(step_batches))
        assert not stats.oom
        for s in stats.per_rank:
            assert s.peak_in_use <= budget
        mean_imbalance += stats.imbalance
    mean_imbalance /= ddp.steps
    # independent length streams really do produce stragglers
    assert mean_imbalance > 1.02
    assert ddp.mean_step_time > 0


def test_subscribe_all_attaches_one_observer_per_rank():
    from repro.engine.events import IterationStart

    ddp = tiny_ddp(world_size=3)
    per_rank_counts = {0: 0, 1: 0, 2: 0}

    def factory(rank):
        def handler(event):
            if isinstance(event, IterationStart):
                per_rank_counts[rank] += 1
        return handler

    tokens = ddp.subscribe_all(factory)
    assert len(tokens) == 3
    ddp.step(batches([64, 64, 64]))
    ddp.step(batches([64, 64, 64]))
    assert per_rank_counts == {0: 2, 1: 2, 2: 2}
    for bus, token in tokens:
        bus.unsubscribe(token)
    ddp.step(batches([64, 64, 64]))
    assert per_rank_counts == {0: 2, 1: 2, 2: 2}
