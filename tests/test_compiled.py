"""Tests for the compiled-template tier (``engine/compiled.py``).

The contract under test: the compiled tier is a *pure* optimisation for
near-recurrent iterations (same certified world class, unseen input
size).  Every served iteration must be bit-identical to full simulation
(``RunResult.digest`` excludes only the wall-clock ``planning_time``),
and every situation the eligibility proof does not cover — fault
windows, recovery, timeline recording, structural drift — must fall
back to full simulation.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.executor import TrainingExecutor
from repro.engine.stats import RunResult, summarize_runs
from repro.experiments.runner import make_planner, run_task
from repro.experiments.tasks import GB, load_task
from repro.planners.base import ModelView
from repro.tensorsim.faults import FaultPlan

from tests.helpers_digest_grid import near_recurrence_grid, run_grid_point_result


def _run(task, planner_name, budget, *, compiled, stream=None, faults=None,
         max_retries=3):
    model = task.fresh_model()
    planner = make_planner(planner_name, budget, task)
    planner.setup(ModelView(model))
    executor = TrainingExecutor(
        model,
        planner,
        capacity_bytes=(
            budget if not planner.requires_physical_capacity else 32 * GB
        ),
        coalescing=planner.allocator_coalescing,
        replay=True,
        compiled=compiled,
        faults=faults.build() if faults is not None else None,
        max_recovery_retries=max_retries,
    )
    result = RunResult(task.spec.abbr, planner_name, budget)
    for batch in (stream if stream is not None else task.loader):
        result.append(executor.step(batch))
    if executor.compiled is not None:  # run_task does this fill post-run
        result.compiled_hits = executor.compiled.hits
        result.compiled_misses = executor.compiled.misses
    return result, executor


# ------------------------------------------------------- digest parity grid


@pytest.mark.parametrize(
    "point", near_recurrence_grid(),
    ids=lambda p: "|".join(str(x) for x in p),
)
def test_near_recurrence_digest_parity(point):
    """Compiled on/off produce identical digests on the sweep-style grid."""
    with_compiled = run_grid_point_result(point, compiled=True)
    without = run_grid_point_result(point, compiled=False)
    assert with_compiled.digest() == without.digest()


def test_compiled_tier_actually_serves_unseen_sizes():
    """On a long natural size stream the compiled tier gets real hits."""
    task = load_task("TC-Bert", iterations=120, seed=0)
    result, executor = _run(task, "sublinear", 4 * GB, compiled=True)
    cache = executor.compiled
    assert cache.certifications > 0
    assert cache.hits > 0
    # a compiled hit happens only after an exact-replay miss, i.e. at an
    # input size whose exact world was never simulated before
    assert result.compiled_hits == cache.hits
    assert result.compiled_misses == cache.misses
    assert 0.0 < result.compiled_hit_rate <= 1.0
    assert summarize_runs([result])[0]["compiled_hit_rate"] == (
        result.compiled_hit_rate
    )


# ------------------------------------------------- property: stats equality


_PLANNER_SCHEDULERS = [
    ("baseline", None), ("sublinear", None), ("checkmate", None),
    ("monet", None), ("dtr", None), ("capuchin", None),
    ("mimose", None), ("mimose", "hybrid"),
]


@settings(max_examples=10, deadline=None)
@given(
    combo=st.sampled_from(_PLANNER_SCHEDULERS),
    seed=st.integers(min_value=0, max_value=50),
)
def test_compiled_stats_equal_simulated_property(combo, seed):
    """Per-iteration stats match full simulation for every planner and
    scheduler at whatever (unseen) sizes the drawn seed's loader emits.
    """
    planner, scheduler = combo
    task = load_task("TC-Bert", iterations=30, seed=seed)
    budget = 4 * GB
    kwargs = dict(max_iterations=30, scheduler=scheduler)
    with_compiled = run_task(task, planner, budget, compiled=True, **kwargs)
    without = run_task(task, planner, budget, compiled=False, **kwargs)
    assert len(with_compiled.iterations) == len(without.iterations)
    for a, b in zip(with_compiled.iterations, without.iterations):
        assert replace(a, planning_time=0.0) == replace(b, planning_time=0.0)


# ---------------------------------------------------- never-serve fallbacks


def test_fault_window_bypasses_compiled_tier():
    """Iterations inside a fault window bypass + invalidate the compiled
    cache exactly as they do the replay cache, and stay bit-identical."""
    faults = FaultPlan.parse("frag:start=20,iters=3,bytes=1G", seed=3)
    task = load_task("TC-Bert", iterations=8, seed=0)
    stream = [b for b in task.loader] * 10
    with_compiled, executor = _run(
        task, "mimose", 4 * GB, compiled=True, stream=stream, faults=faults
    )
    without, _ = _run(
        task, "mimose", 4 * GB, compiled=False, stream=stream, faults=faults
    )
    assert with_compiled.digest() == without.digest()
    assert executor.compiled.bypasses > 0
    assert executor.compiled.invalidations > 0


def test_recovery_rung_invalidates_compiled_cache():
    """An iteration rescued by the recovery ladder must not be served
    from (and must invalidate) the compiled cache."""
    faults = FaultPlan.parse("alloc:start=14,count=1,min=1M", seed=3)
    task = load_task("TC-Bert", iterations=8, seed=0)
    stream = [b for b in task.loader] * 6
    with_compiled, executor = _run(
        task, "mimose", 4 * GB, compiled=True, stream=stream, faults=faults
    )
    without, _ = _run(
        task, "mimose", 4 * GB, compiled=False, stream=stream, faults=faults
    )
    assert with_compiled.total_retries > 0  # the ladder actually ran
    assert with_compiled.digest() == without.digest()
    assert executor.compiled.invalidations > 0


def test_structural_drift_falls_back_and_deletes_template():
    """A template whose fingerprint no longer matches the world is
    dropped ("stale"), the iteration falls back to full simulation, and
    results stay identical to a never-compiled run."""
    task = load_task("TC-Bert", iterations=120, seed=0)
    stream = [b for b in task.loader]
    model = task.fresh_model()
    planner = make_planner("sublinear", 4 * GB, task)
    planner.setup(ModelView(model))
    executor = TrainingExecutor(
        model, planner, capacity_bytes=4 * GB,
        coalescing=planner.allocator_coalescing,
    )
    cache = executor.compiled
    result = RunResult(task.spec.abbr, "sublinear", 4 * GB)
    tampered = False
    fallbacks_before = None
    for batch in stream:
        result.append(executor.step(batch))
        if not tampered and cache.certifications > 0:
            # Simulate structural drift: the stored record structure no
            # longer describes what the strategy would save.
            key, template = next(iter(cache._templates.items()))
            template.record_struct = ((),) * len(template.record_struct)
            template._size_ctx.clear()
            fallbacks_before = cache.fallbacks
            tampered = True
    assert tampered, "no template was ever certified"
    assert cache.fallbacks > fallbacks_before
    # the drifted template was deleted (possibly re-certified afresh
    # later, which is fine — the tampered object must be gone)
    assert all(
        t.record_struct != ((),) * len(t.record_struct) or not t.record_struct
        for t in cache._templates.values()
    )
    without, _ = _run(task, "sublinear", 4 * GB, compiled=False, stream=stream)
    assert result.digest() == without.digest()


def test_reactive_mode_never_compiled():
    """REACTIVE (DTR) iterations carry no ReplayKey: both tiers bypass."""
    task = load_task("TC-Bert", iterations=8, seed=0)
    stream = [b for b in task.loader] * 5
    _, executor = _run(task, "dtr", 5 * GB, compiled=True, stream=stream)
    assert executor.compiled.hits == 0
    assert executor.compiled.certifications == 0
    assert executor.compiled.bypasses == len(stream)


def test_compiled_disabled_flag():
    """``compiled=False`` (the CLI's --no-compiled) removes the tier."""
    task = load_task("TC-Bert", iterations=6, seed=0)
    model = task.fresh_model()
    planner = make_planner("sublinear", 4 * GB, task)
    planner.setup(ModelView(model))
    executor = TrainingExecutor(
        model, planner, capacity_bytes=4 * GB, compiled=False
    )
    assert executor.compiled is None
    assert executor.replay is not None  # exact replay is independent
    # and without replay there is nothing to promote into, so the
    # compiled tier is off too
    executor2 = TrainingExecutor(
        model, planner, capacity_bytes=4 * GB, replay=False
    )
    assert executor2.compiled is None
