"""Tests for the static baselines: Sublinear, Checkmate, MONeT."""

import pytest

from repro.models.base import BatchInput
from repro.planners.analysis import predict_peak_bytes
from repro.planners.base import ModelView
from repro.planners.checkmate import CheckmatePlanner, solve_keep_knapsack
from repro.planners.monet import MonetPlanner
from repro.planners.none import NoCheckpointPlanner
from repro.planners.sublinear import SublinearPlanner, evenly_spaced_keep
from repro.tensorsim.dtypes import FLOAT32, INT64

from tests.helpers import GB


def worst(rows=64, length=256):
    return BatchInput((rows, length), INT64)


# ------------------------------------------------------------------ sublinear

def test_evenly_spaced_keep_bounds():
    names = [f"u{i}" for i in range(12)]
    assert evenly_spaced_keep(names, 0) == frozenset()
    assert evenly_spaced_keep(names, 12) == frozenset(names)
    kept = evenly_spaced_keep(names, 4)
    assert len(kept) == 4
    # spread out: indices roughly 1, 4, 7, 10
    idx = sorted(int(n[1:]) for n in kept)
    assert idx[0] < 3 and idx[-1] > 8


def test_evenly_spaced_keep_more_than_available():
    assert evenly_spaced_keep(["a"], 5) == frozenset(["a"])


def test_sublinear_plan_is_static_across_inputs(bert_model):
    view = ModelView(bert_model)
    planner = SublinearPlanner(4 * GB, worst_case_batch=worst(32, 300))
    planner.setup(view)
    d1 = planner.plan(BatchInput((32, 60), INT64))
    d2 = planner.plan(BatchInput((32, 300), INT64))
    assert d1.plan.checkpoint_units == d2.plan.checkpoint_units


def test_sublinear_respects_budget_at_worst_case(bert_model):
    view = ModelView(bert_model)
    budget = 4 * GB
    w = worst(32, 300)
    planner = SublinearPlanner(budget, worst_case_batch=w)
    planner.setup(view)
    peak = predict_peak_bytes(
        view.profiles(w),
        planner.plan(w).plan,
        static_bytes=view.static_memory.total,
        input_nbytes=w.nbytes,
        checkpointable=view.checkpointable,
    )
    assert peak <= budget


def test_sublinear_keeps_more_with_bigger_budget(bert_model):
    view = ModelView(bert_model)
    w = worst(32, 300)
    drops = []
    for budget in (3 * GB, 4 * GB, 5 * GB):
        p = SublinearPlanner(budget, worst_case_batch=w)
        p.setup(view)
        drops.append(len(p.plan(w).plan))
    assert drops[0] >= drops[1] >= drops[2]


def test_sublinear_plan_before_setup_raises():
    p = SublinearPlanner(GB, worst_case_batch=worst())
    with pytest.raises(RuntimeError):
        p.plan(worst())


# ------------------------------------------------------------------- knapsack

def test_knapsack_picks_best_value_subset():
    # capacity 3 MiB; items (value, weight MiB): (10,2) (7,1) (5,1)
    values = [10.0, 7.0, 5.0]
    weights = [2 << 20, 1 << 20, 1 << 20]
    chosen = solve_keep_knapsack(values, weights, 3 << 20)
    assert sorted(chosen) == [0, 1]  # value 17 beats (7+5)=12


def test_knapsack_empty_and_zero_capacity():
    assert solve_keep_knapsack([], [], 10) == []
    assert solve_keep_knapsack([1.0], [100], 0) == []


def test_knapsack_all_fit():
    chosen = solve_keep_knapsack([1.0, 2.0], [1 << 20, 1 << 20], 64 << 20)
    assert sorted(chosen) == [0, 1]


def test_knapsack_respects_capacity():
    values = [5.0, 4.0, 3.0, 2.0]
    weights = [4 << 20, 3 << 20, 2 << 20, 1 << 20]
    chosen = solve_keep_knapsack(values, weights, 5 << 20)
    assert sum(weights[i] for i in chosen) <= 5 << 20


# ------------------------------------------------------------------ checkmate

def test_checkmate_beats_or_matches_sublinear_recompute(bert_model):
    """Optimal static plan drops no more forward work than the heuristic."""
    view = ModelView(bert_model)
    w = worst(32, 300)
    budget = 4 * GB
    sub = SublinearPlanner(budget, worst_case_batch=w)
    sub.setup(view)
    cm = CheckmatePlanner(budget, assumed_batch=w)
    cm.setup(view)
    profiles = {p.module_name: p for p in view.profiles(w)}

    def recompute_flops(plan):
        return sum(profiles[n].fwd_flops for n in plan.checkpoint_units)

    assert recompute_flops(cm.plan(w).plan) <= recompute_flops(sub.plan(w).plan)


def test_checkmate_respects_budget_at_assumed_shape(bert_model):
    view = ModelView(bert_model)
    w = worst(32, 300)
    budget = 4 * GB
    cm = CheckmatePlanner(budget, assumed_batch=w)
    cm.setup(view)
    peak = predict_peak_bytes(
        view.profiles(w),
        cm.plan(w).plan,
        static_bytes=view.static_memory.total,
        input_nbytes=w.nbytes,
        checkpointable=view.checkpointable,
    )
    assert peak <= budget


def test_checkmate_overshoots_on_larger_than_assumed_inputs(bert_model):
    """The static-graph failure mode: inputs beyond the assumption blow
    through the budget (the Fig 10 OD annotations)."""
    view = ModelView(bert_model)
    assumed = BatchInput((32, 100), INT64)
    budget = 3 * GB
    cm = CheckmatePlanner(budget, assumed_batch=assumed)
    cm.setup(view)
    big = BatchInput((32, 332), INT64)
    peak = predict_peak_bytes(
        view.profiles(big),
        cm.plan(big).plan,
        static_bytes=view.static_memory.total,
        input_nbytes=big.nbytes,
        checkpointable=view.checkpointable,
    )
    assert peak > budget


def test_checkmate_tight_budget_falls_back_to_all(bert_model):
    view = ModelView(bert_model)
    w = worst(32, 300)
    cm = CheckmatePlanner(int(2.6 * GB), assumed_batch=w)
    cm.setup(view)
    assert len(cm.plan(w).plan) == len(view.checkpointable)


# ---------------------------------------------------------------------- monet

def test_monet_budget_slightly_looser_than_checkmate(bert_model):
    view = ModelView(bert_model)
    w = worst(32, 300)
    budget = 4 * GB
    cm = CheckmatePlanner(budget, assumed_batch=w)
    cm.setup(view)
    mo = MonetPlanner(budget, assumed_batch=w)
    mo.setup(view)
    # joint op selection => MONeT drops at most as much as Checkmate
    assert len(mo.plan(w).plan) <= len(cm.plan(w).plan)
    assert mo.plan(w).plan.label == "monet"
    assert mo.budget_bytes == budget  # the loosening is internal only


def test_monet_models_long_solve_time():
    mo = MonetPlanner(4 * GB, assumed_batch=worst())
    assert mo.solve_time_s >= 8 * 3600


# ------------------------------------------------------------------- baseline

def test_baseline_never_checkpoints(tiny_model):
    view = ModelView(tiny_model)
    p = NoCheckpointPlanner(GB)
    p.setup(view)
    d = p.plan(BatchInput((8, 64), FLOAT32))
    assert len(d.plan) == 0
    assert p.requires_physical_capacity


def test_planner_rejects_nonpositive_budget():
    with pytest.raises(ValueError):
        NoCheckpointPlanner(0)
