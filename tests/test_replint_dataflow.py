"""replint dataflow-tier suite: CFG construction, lattice fixpoints,
call-graph resolution, the four semantic rules on bad/good fixtures, and
mutation tests that inject the historical bug classes into copies of the
real engine files and assert the rule reports the exact file:line."""

from __future__ import annotations

import ast
import json
from pathlib import Path

import pytest

from repro.analysis import Finding, analyze_sources, create_rules
from repro.analysis.cli import main as replint_main
from repro.analysis.core import FileContext
from repro.analysis.dataflow.callgraph import CallGraph, module_name
from repro.analysis.dataflow.cfg import (
    build_cfg,
    dominators,
    iter_scopes,
    own_exprs,
    shallow_walk,
)
from repro.analysis.dataflow.lattice import (
    Unit,
    join_units,
    solve_forward,
    units_conflict,
)
from repro.analysis.dataflow.taint import SourceDetector, TaintEngine

REPO_ROOT = Path(__file__).resolve().parents[1]


def rule_ids(findings: list[Finding]) -> set[str]:
    return {f.rule for f in findings}


def only(rule_id: str):
    return create_rules(select=[rule_id])


def fn_cfg(src: str):
    """CFG of the first function in ``src``."""
    tree = ast.parse(src)
    fn = next(
        n for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)
    )
    return build_cfg(fn)


def edge_labels(cfg) -> set[str]:
    return {
        lbl
        for block in cfg.blocks
        for _, lbl in block.succs
        if lbl is not None
    }


# ---------------------------------------------------------------------------
# CFG construction
# ---------------------------------------------------------------------------


def test_cfg_if_else_branches_and_merge():
    cfg = fn_cfg(
        "def f(x):\n"
        "    if x:\n"
        "        a = 1\n"
        "    else:\n"
        "        a = 2\n"
        "    return a\n"
    )
    assert {"true", "false"} <= edge_labels(cfg)
    branch = next(
        b for b in cfg.reachable() if isinstance(b.terminator, ast.If)
    )
    arms = [succ for succ, _ in branch.succs]
    assert len(arms) == 2
    # both arms are fresh single-predecessor blocks that re-merge
    merges = {succ.id for arm in arms for succ, _ in arm.succs}
    assert len(merges) == 1
    for arm in arms:
        assert arm.preds == [branch]


def test_cfg_while_loop_has_back_edge():
    cfg = fn_cfg(
        "def f(n):\n"
        "    i = 0\n"
        "    while i < n:\n"
        "        i += 1\n"
        "    return i\n"
    )
    header = next(
        b for b in cfg.reachable() if isinstance(b.terminator, ast.While)
    )
    body = next(succ for succ, lbl in header.succs if lbl == "true")
    assert any(succ.id == header.id for succ, _ in body.succs)
    assert any(lbl == "false" for _, lbl in header.succs)


def test_cfg_while_true_has_no_false_edge():
    cfg = fn_cfg(
        "def f():\n"
        "    while True:\n"
        "        work()\n"
    )
    header = next(
        b for b in cfg.reachable() if isinstance(b.terminator, ast.While)
    )
    assert all(lbl != "false" for _, lbl in header.succs)


def test_cfg_try_except_handler_edges():
    cfg = fn_cfg(
        "def f():\n"
        "    try:\n"
        "        a = risky()\n"
        "        b = also_risky()\n"
        "    except ValueError:\n"
        "        b = 0\n"
        "    return b\n"
    )
    exc_edges = [
        (block, succ)
        for block in cfg.reachable()
        for succ, lbl in block.succs
        if lbl == "exc"
    ]
    # each top-level try statement gets its own edge into the handler,
    # so the handler is never dominated by a later try-body statement
    assert len(exc_edges) >= 2
    handler_ids = {succ.id for _, succ in exc_edges}
    assert len(handler_ids) == 1


def test_cfg_code_after_return_is_unreachable():
    cfg = fn_cfg(
        "def f():\n"
        "    return 1\n"
        "    x = dead()\n"
    )
    reachable_stmts = [
        s for b in cfg.reachable() for s in b.stmts
    ]
    assert not any(isinstance(s, ast.Assign) for s in reachable_stmts)


def test_cfg_nested_def_body_stays_out_of_enclosing_scope():
    cfg = fn_cfg(
        "def f():\n"
        "    def g():\n"
        "        inner = 1\n"
        "    return g\n"
    )
    for block in cfg.reachable():
        for stmt in block.stmts:
            for node in shallow_walk(stmt):
                assert not (
                    isinstance(node, ast.Assign)
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id == "inner"
                )


def test_dominators_branch_arms_do_not_dominate_merge():
    cfg = fn_cfg(
        "def f(x):\n"
        "    if x:\n"
        "        a = 1\n"
        "    else:\n"
        "        a = 2\n"
        "    return a\n"
    )
    dom = dominators(cfg)
    branch = next(
        b for b in cfg.reachable() if isinstance(b.terminator, ast.If)
    )
    arms = [succ for succ, _ in branch.succs]
    merge = arms[0].succs[0][0]
    assert branch.id in dom[merge.id]
    for arm in arms:
        assert arm.id not in dom[merge.id]
        assert branch.id in dom[arm.id]


def test_own_exprs_excludes_nested_statement_bodies():
    stmt = ast.parse(
        "if cond(x):\n"
        "    nested(y)\n"
    ).body[0]
    flat = [
        n
        for e in own_exprs(stmt)
        for n in shallow_walk(e)
        if isinstance(n, ast.Call)
    ]
    names = {c.func.id for c in flat}
    assert names == {"cond"}


# ---------------------------------------------------------------------------
# Lattice / fixpoint
# ---------------------------------------------------------------------------


def taint_envs(src: str):
    ctx = FileContext("m.py", src)
    fn = next(
        n for n in ast.walk(ctx.tree) if isinstance(n, ast.FunctionDef)
    )
    cfg = build_cfg(fn)
    engine = TaintEngine(SourceDetector(ctx))
    return cfg, engine, solve_forward(cfg, engine)


def test_taint_fixpoint_terminates_on_loop_and_unions():
    cfg, engine, envs = taint_envs(
        "import time\n"
        "def f(n):\n"
        "    acc = 0\n"
        "    for _ in range(n):\n"
        "        acc = acc + time.perf_counter()\n"
        "    return acc\n"
    )
    exit_env = envs[cfg.exit.id]
    assert exit_env.get("acc"), "loop-carried taint must reach the exit"
    assert engine.return_taint, "return value is tainted"


def test_taint_join_is_union_across_branches():
    cfg, engine, envs = taint_envs(
        "import time\n"
        "def f(x):\n"
        "    if x:\n"
        "        t = time.time()\n"
        "    else:\n"
        "        t = 0\n"
        "    return t\n"
    )
    exit_env = envs[cfg.exit.id]
    kinds = {s.kind for s in exit_env.get("t", frozenset())}
    assert kinds == {"wall-clock"}


def test_taint_clean_reassignment_kills():
    cfg, engine, envs = taint_envs(
        "import time\n"
        "def f():\n"
        "    t = time.perf_counter()\n"
        "    t = 0\n"
        "    return t\n"
    )
    assert not engine.return_taint


def test_unit_join_and_conflicts():
    assert join_units(Unit.BYTES, Unit.BYTES) is Unit.BYTES
    assert join_units(Unit.BYTES, Unit.MS) is None
    assert units_conflict(Unit.BYTES, Unit.MS)
    assert units_conflict(Unit.MS, Unit.SECONDS)
    assert not units_conflict(Unit.COUNT, Unit.BYTES)
    assert not units_conflict(None, Unit.BYTES)
    assert not units_conflict(Unit.GB, Unit.GB)


# ---------------------------------------------------------------------------
# Call graph
# ---------------------------------------------------------------------------


def build_graph(sources: dict[str, str]) -> CallGraph:
    graph = CallGraph()
    for rel, src in sources.items():
        graph.add_file(FileContext(rel, src))
    graph.resolve()
    return graph


def test_callgraph_bare_name_and_from_import():
    graph = build_graph(
        {
            "src/pkg/util.py": "def helper():\n    return 1\n",
            "src/pkg/app.py": (
                "from pkg.util import helper\n"
                "def run():\n"
                "    local()\n"
                "    return helper()\n"
                "def local():\n"
                "    return 2\n"
            ),
        }
    )
    run = graph.functions["pkg.app:run"]
    assert run.callees == {"pkg.app:local", "pkg.util:helper"}
    assert graph.callers_of("pkg.util:helper") == {"pkg.app:run"}


def test_callgraph_self_method_and_base_class():
    graph = build_graph(
        {
            "src/pkg/base.py": (
                "class Base:\n"
                "    def shared(self):\n"
                "        return 0\n"
            ),
            "src/pkg/sub.py": (
                "from pkg.base import Base\n"
                "class Child(Base):\n"
                "    def go(self):\n"
                "        return self.shared()\n"
            ),
        }
    )
    go = graph.functions["pkg.sub:Child.go"]
    assert "pkg.base:Base.shared" in go.callees


def test_callgraph_receiver_name_heuristic():
    graph = build_graph(
        {
            "src/pkg/est.py": (
                "class CostEstimator:\n"
                "    def fit(self, data):\n"
                "        return data\n"
            ),
            "src/pkg/use.py": (
                "class Runner:\n"
                "    def refit(self):\n"
                "        self.estimator.fit(None)\n"
            ),
        }
    )
    refit = graph.functions["pkg.use:Runner.refit"]
    assert "pkg.est:CostEstimator.fit" in refit.callees


def test_callgraph_short_receivers_do_not_fan_out():
    graph = build_graph(
        {
            "src/pkg/a.py": (
                "class Anything:\n"
                "    def get(self, k):\n"
                "        return k\n"
            ),
            "src/pkg/b.py": (
                "def use(d):\n"
                "    return d.get(1)\n"
            ),
        }
    )
    assert graph.functions["pkg.b:use"].callees == set()


def test_callgraph_reachability_is_transitive():
    graph = build_graph(
        {
            "src/pkg/m.py": (
                "def a():\n    b()\n"
                "def b():\n    c()\n"
                "def c():\n    pass\n"
                "def unrelated():\n    pass\n"
            )
        }
    )
    reach = graph.reachable_from(["pkg.m:a"])
    assert {"pkg.m:a", "pkg.m:b", "pkg.m:c"} <= reach
    assert "pkg.m:unrelated" not in reach


def test_module_name_strips_src_and_init():
    assert module_name("src/repro/core/planner.py") == "repro.core.planner"
    assert module_name("src/repro/engine/__init__.py") == "repro.engine"


# ---------------------------------------------------------------------------
# determinism-taint fixtures
# ---------------------------------------------------------------------------


def test_determinism_flags_flow_through_temporaries():
    src = (
        "import time\n"
        "def finalize():\n"
        "    t0 = time.perf_counter()\n"
        "    elapsed = time.perf_counter() - t0\n"
        "    stat = elapsed\n"
        "    return IterationStats(optimizer_time=stat)\n"
    )
    findings = analyze_sources({"m.py": src}, rules=only("determinism-taint"))
    assert [f.line for f in findings] == [6]
    assert "time.perf_counter" in findings[0].message


def test_determinism_allows_planning_time_field():
    src = (
        "import time\n"
        "def finalize():\n"
        "    t = time.perf_counter()\n"
        "    return IterationStats(planning_time=t, fwd_time=0.0)\n"
    )
    assert (
        analyze_sources({"m.py": src}, rules=only("determinism-taint")) == []
    )


def test_determinism_flags_tainted_emit_payload():
    src = (
        "import random\n"
        "def publish(bus):\n"
        "    jitter = random.random()\n"
        "    bus.emit(SwapIn(0, 'u', jitter, 0.0))\n"
    )
    findings = analyze_sources({"m.py": src}, rules=only("determinism-taint"))
    assert [f.line for f in findings] == [4]


def test_determinism_interprocedural_return_summary_across_files():
    sources = {
        "src/pkg/timing.py": (
            "import time\n"
            "def elapsed(start):\n"
            "    return time.perf_counter() - start\n"
        ),
        "src/pkg/report.py": (
            "from pkg.timing import elapsed\n"
            "def finalize(start):\n"
            "    wall = elapsed(start)\n"
            "    return RunResult(total_time=wall)\n"
        ),
    }
    findings = analyze_sources(sources, rules=only("determinism-taint"))
    assert [(f.path, f.line) for f in findings] == [("src/pkg/report.py", 4)]


def test_determinism_clean_branch_stays_clean():
    src = (
        "def finalize(comp):\n"
        "    return IterationStats(fwd_time=comp['fwd'], oom=False)\n"
    )
    assert (
        analyze_sources({"m.py": src}, rules=only("determinism-taint")) == []
    )


# ---------------------------------------------------------------------------
# unit-flow fixtures
# ---------------------------------------------------------------------------


def test_unit_flow_flags_mix_through_temporary():
    src = (
        "def headroom(step_ms, alloc_bytes):\n"
        "    window = step_ms\n"
        "    return window + alloc_bytes\n"
    )
    findings = analyze_sources({"m.py": src}, rules=only("unit-flow"))
    assert [f.line for f in findings] == [3]


def test_unit_flow_conversion_neutralizes():
    src = (
        "GB = 1024 ** 3\n"
        "def headroom(budget_gb, alloc_bytes):\n"
        "    budget = budget_gb * GB\n"
        "    return budget + alloc_bytes\n"
    )
    assert analyze_sources({"m.py": src}, rules=only("unit-flow")) == []


def test_unit_flow_flags_comparison_of_different_units():
    src = (
        "def over(limit_mb, used_bytes):\n"
        "    cap = limit_mb\n"
        "    return used_bytes > cap\n"
    )
    findings = analyze_sources({"m.py": src}, rules=only("unit-flow"))
    assert [f.line for f in findings] == [3]


def test_unit_flow_counts_are_dimensionless():
    src = (
        "def total(num_blocks, block_bytes, pad_bytes):\n"
        "    used = num_blocks * block_bytes\n"
        "    return used + pad_bytes\n"
    )
    assert analyze_sources({"m.py": src}, rules=only("unit-flow")) == []


# ---------------------------------------------------------------------------
# guard-dominance fixtures
# ---------------------------------------------------------------------------


def test_guard_dominance_rejects_laundered_guard():
    src = (
        "def alloc(bus, tensor):\n"
        "    checked = bus.wants(TensorAlloc)\n"
        "    if tensor.large or checked:\n"
        "        bus.emit(TensorAlloc(tensor.name))\n"
    )
    findings = analyze_sources({"m.py": src}, rules=only("guard-dominance"))
    assert [f.line for f in findings] == [4]


def test_guard_dominance_accepts_early_return_guard():
    src = (
        "def alloc(bus, tensor):\n"
        "    if not bus.wants(TensorAlloc):\n"
        "        return\n"
        "    bus.emit(TensorAlloc(tensor.name))\n"
    )
    assert analyze_sources({"m.py": src}, rules=only("guard-dominance")) == []


def test_guard_dominance_accepts_and_conjunct():
    src = (
        "def alloc(bus, tensor):\n"
        "    if tensor.large and bus.wants(SwapIn):\n"
        "        bus.emit(SwapIn(tensor.name))\n"
    )
    assert analyze_sources({"m.py": src}, rules=only("guard-dominance")) == []


def test_guard_dominance_rejects_or_guard():
    src = (
        "def alloc(bus, tensor):\n"
        "    if tensor.large or bus.wants(SwapIn):\n"
        "        bus.emit(SwapIn(tensor.name))\n"
    )
    findings = analyze_sources({"m.py": src}, rules=only("guard-dominance"))
    assert [f.line for f in findings] == [3]


# ---------------------------------------------------------------------------
# invalidation-reachability fixtures
# ---------------------------------------------------------------------------


def test_invalidation_flags_fit_without_flush():
    src = (
        "class Controller:\n"
        "    def refit(self):\n"
        "        self.estimator.fit(self.collector)\n"
    )
    findings = analyze_sources(
        {"m.py": src}, rules=only("invalidation-reachability")
    )
    assert [f.line for f in findings] == [3]


def test_invalidation_accepts_flush_on_same_path():
    src = (
        "class Controller:\n"
        "    def refit(self):\n"
        "        self.estimator.fit(self.collector)\n"
        "        self.cache.clear()\n"
    )
    assert (
        analyze_sources({"m.py": src}, rules=only("invalidation-reachability"))
        == []
    )


def test_invalidation_accepts_flush_through_helper():
    src = (
        "class Controller:\n"
        "    def refit(self):\n"
        "        self.estimator.fit(self.collector)\n"
        "        self._after()\n"
        "    def _after(self):\n"
        "        self.plan_cache.flush()\n"
    )
    assert (
        analyze_sources({"m.py": src}, rules=only("invalidation-reachability"))
        == []
    )


# ---------------------------------------------------------------------------
# mutation tests: inject the bug classes into copies of the real files
# ---------------------------------------------------------------------------


def mutate(source: str, old: str, new: str, count: int = 1) -> str:
    assert source.count(old) >= count, f"mutation anchor missing: {old!r}"
    return source.replace(old, new, count)


def line_of(source: str, needle: str, occurrence: int = 1) -> int:
    seen = 0
    for i, line in enumerate(source.splitlines(), 1):
        if needle in line:
            seen += 1
            if seen == occurrence:
                return i
    raise AssertionError(f"{needle!r} not found")


def test_mutation_wallclock_leak_into_strategies_copy():
    original = (REPO_ROOT / "src/repro/engine/strategies.py").read_text()
    mutated = mutate(
        original,
        "from __future__ import annotations\n",
        "from __future__ import annotations\n\nimport time\n",
    )
    mutated = mutate(
        mutated,
        "        return IterationStats(\n",
        "        leak = time.perf_counter()\n"
        "        return IterationStats(\n",
    )
    mutated = mutate(
        mutated,
        'optimizer_time=comp["optimizer"],',
        "optimizer_time=leak,",
    )
    findings = analyze_sources(
        {"src/repro/engine/strategies.py": mutated},
        rules=only("determinism-taint"),
    )
    sink_line = line_of(mutated, "return IterationStats(")
    assert [(f.path, f.line) for f in findings] == [
        ("src/repro/engine/strategies.py", sink_line)
    ]
    assert "time.perf_counter" in findings[0].message
    # the unmutated file is clean under the same rule
    assert (
        analyze_sources(
            {"src/repro/engine/strategies.py": original},
            rules=only("determinism-taint"),
        )
        == []
    )


def test_mutation_unit_mix_in_allocator_copy():
    original = (REPO_ROOT / "src/repro/tensorsim/allocator.py").read_text()
    mutated = original + (
        "\n\n"
        "def _mutated_pressure(pool_bytes, window_ms):\n"
        "    slack = window_ms\n"
        "    return pool_bytes - slack\n"
    )
    findings = analyze_sources(
        {"src/repro/tensorsim/allocator.py": mutated},
        rules=only("unit-flow"),
    )
    bad_line = line_of(mutated, "return pool_bytes - slack")
    assert [(f.path, f.line) for f in findings] == [
        ("src/repro/tensorsim/allocator.py", bad_line)
    ]
    assert (
        analyze_sources(
            {"src/repro/tensorsim/allocator.py": original},
            rules=only("unit-flow"),
        )
        == []
    )


def test_mutation_unguarded_hot_path_emit_in_strategies_copy():
    original = (REPO_ROOT / "src/repro/engine/strategies.py").read_text()
    mutated = mutate(
        original,
        "if ctx.bus.wants(TensorAlloc):",
        "if True:",
    )
    findings = analyze_sources(
        {"src/repro/engine/strategies.py": mutated},
        rules=only("guard-dominance"),
    )
    guard_line = line_of(mutated, "if True:")
    lines = mutated.splitlines()
    emit_line = next(
        i
        for i in range(guard_line + 1, len(lines) + 1)
        if "ctx.bus.emit(" in lines[i - 1]
    )
    assert [(f.path, f.line) for f in findings] == [
        ("src/repro/engine/strategies.py", emit_line)
    ]
    assert "TensorAlloc" in findings[0].message
    assert (
        analyze_sources(
            {"src/repro/engine/strategies.py": original},
            rules=only("guard-dominance"),
        )
        == []
    )


def test_mutation_refit_without_invalidation_via_cli(tmp_path, monkeypatch, capsys):
    """The lifecycle mutation, driven end-to-end through the CLI."""
    original = (REPO_ROOT / "src/repro/core/lifecycle.py").read_text()
    mutated = mutate(original, "self.cache.clear()", "pass")
    mutated = mutate(mutated, "self._invalidate()", "pass")
    (tmp_path / "lifecycle.py").write_text(mutated)
    monkeypatch.chdir(tmp_path)
    rc = replint_main(
        ["lifecycle.py", "--select", "invalidation-reachability",
         "--format", "json"]
    )
    report = json.loads(capsys.readouterr().out)
    assert rc == 1
    locations = {
        (f["path"], f["line"]) for f in report["findings"]
    }
    fit_line = line_of(mutated, "self.estimator.fit(")
    assert ("lifecycle.py", fit_line) in locations
    assert all(
        f["rule"] == "invalidation-reachability"
        for f in report["findings"]
    )


def test_unmutated_lifecycle_is_clean_via_cli(tmp_path, monkeypatch, capsys):
    original = (REPO_ROOT / "src/repro/core/lifecycle.py").read_text()
    (tmp_path / "lifecycle.py").write_text(original)
    monkeypatch.chdir(tmp_path)
    rc = replint_main(
        ["lifecycle.py", "--select", "invalidation-reachability",
         "--format", "json"]
    )
    report = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert report["findings"] == []


# ---------------------------------------------------------------------------
# SARIF output
# ---------------------------------------------------------------------------


def test_sarif_output_shape(tmp_path, monkeypatch, capsys):
    (tmp_path / "m.py").write_text(
        "import time\nt = time.time()\n"
    )
    monkeypatch.chdir(tmp_path)
    rc = replint_main(
        ["m.py", "--select", "wall-clock", "--format", "sarif"]
    )
    sarif = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    assert run["tool"]["driver"]["name"] == "replint"
    result = run["results"][0]
    assert result["ruleId"] == "wall-clock"
    loc = result["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "m.py"
    assert loc["region"]["startLine"] == 2
    rule_ids_listed = {
        r["id"] for r in run["tool"]["driver"]["rules"]
    }
    assert "wall-clock" in rule_ids_listed
    assert result["ruleIndex"] == sorted(rule_ids_listed).index("wall-clock")


def test_scope_iteration_covers_nested_functions():
    tree = ast.parse(
        "def outer():\n"
        "    def inner():\n"
        "        pass\n"
    )
    names = [
        getattr(s, "name", "<module>") for s in iter_scopes(tree)
    ]
    assert names == ["<module>", "outer", "inner"]
