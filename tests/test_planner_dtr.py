"""Tests for the DTR reactive planner."""

import pytest

from repro.engine.executor import TrainingExecutor
from repro.models.base import BatchInput
from repro.planners.base import EvictableGroup, ExecutionMode, ModelView
from repro.planners.dtr import DTRPlanner
from repro.tensorsim.dtypes import FLOAT32

from tests.helpers import GB, MB, make_tiny_model


def group(name, nbytes, cost, last, tensors=4):
    return EvictableGroup(name, nbytes, cost, last, tensors)


def test_plan_is_reactive_and_empty():
    p = DTRPlanner(GB)
    d = p.plan(BatchInput((8, 64), FLOAT32))
    assert d.mode is ExecutionMode.REACTIVE
    assert len(d.plan) == 0


def test_h_value_prefers_cheap_large_stale():
    now = 10.0
    cheap_large_stale = group("a", nbytes=100 * MB, cost=0.001, last=1.0)
    costly_small_fresh = group("b", nbytes=1 * MB, cost=0.1, last=9.9)
    assert cheap_large_stale.h_value(now) < costly_small_fresh.h_value(now)


def test_on_oom_picks_min_h_victim():
    p = DTRPlanner(GB)
    pool = {
        "a": group("a", 100 * MB, 0.001, 1.0),
        "b": group("b", 1 * MB, 0.1, 9.9),
        "c": group("c", 50 * MB, 0.05, 5.0),
    }
    victim, search_time = p.on_oom(10 * MB, pool, now=10.0)
    assert victim == "a"
    assert search_time > 0
    assert p.oom_events == 1


def test_on_oom_empty_pool_gives_up():
    p = DTRPlanner(GB)
    victim, search_time = p.on_oom(10 * MB, {}, now=1.0)
    assert victim is None
    assert search_time > 0


def test_search_time_scales_with_tracked_tensors():
    p = DTRPlanner(GB)
    small_pool = {"a": group("a", MB, 0.1, 0.0, tensors=2)}
    big_pool = {
        f"u{i}": group(f"u{i}", MB, 0.1, 0.0, tensors=20) for i in range(10)
    }
    _, t_small = p.on_oom(MB, small_pool, now=1.0)
    _, t_big = p.on_oom(MB, big_pool, now=1.0)
    assert t_big > 10 * t_small


def test_dtr_evicts_to_stay_within_logical_budget():
    model = make_tiny_model(num_units=8, features=512)
    static = model.static_memory().total
    activations_budget = 24 * MB
    budget = static + activations_budget
    planner = DTRPlanner(budget, upkeep_time_per_tensor=0.0)
    planner.setup(ModelView(model))
    ex = TrainingExecutor(model, planner, capacity_bytes=4 * GB)
    stats = ex.step(BatchInput((1024, 512), FLOAT32))
    assert not stats.oom
    assert stats.evictions > 0
    assert stats.peak_in_use <= budget + MB  # logical budget held
    assert stats.recompute_time > 0  # evicted units were rematerialised


def test_dtr_without_pressure_never_evicts():
    model = make_tiny_model(num_units=4, features=64)
    planner = DTRPlanner(4 * GB)
    planner.setup(ModelView(model))
    ex = TrainingExecutor(model, planner, capacity_bytes=4 * GB)
    stats = ex.step(BatchInput((16, 64), FLOAT32))
    assert stats.evictions == 0
    assert stats.recompute_time == 0
    assert stats.upkeep_time > 0  # cost upkeep exists even with no drops


def test_dtr_oom_when_pool_exhausted():
    """If evicting everything still cannot fit, the iteration fails."""
    model = make_tiny_model(num_units=2, features=512)
    static = model.static_memory().total
    planner = DTRPlanner(static + 2 * MB)
    planner.setup(ModelView(model))
    ex = TrainingExecutor(model, planner, capacity_bytes=static + 2 * MB)
    stats = ex.step(BatchInput((4096, 512), FLOAT32))
    assert stats.oom


def test_non_reactive_planner_on_oom_raises(tiny_model):
    from repro.planners.none import NoCheckpointPlanner

    p = NoCheckpointPlanner(GB)
    with pytest.raises(NotImplementedError):
        p.on_oom(1, {}, 0.0)
