"""Shared test helpers: tiny synthetic models for fast unit tests."""

from __future__ import annotations

from repro.graph.module import Module, ProfileContext
from repro.graph.ops import Gelu, Linear, Relu
from repro.models.base import SegmentedModel
from repro.tensorsim.dtypes import FLOAT32
from repro.tensorsim.tensor import TensorSpec

GB = 1024**3
MB = 1024**2


class TinyUnit(Module):
    """A two-layer MLP block.

    Saves one genuinely *internal* activation (the first GELU) besides its
    output boundary, so checkpointing it actually reclaims memory — the
    shape a transformer FFN has.  Activation memory is linear in input
    size.
    """

    def __init__(self, name: str, features: int, *, checkpointable: bool = True) -> None:
        super().__init__(name, checkpointable=checkpointable)
        self.features = features

    def forward(self, ctx: ProfileContext, x: TensorSpec) -> TensorSpec:
        h = ctx.op(Linear(self.features, self.features), x, name="lin1")
        h = ctx.op(Gelu(), h, name="act1")
        h = ctx.op(Linear(self.features, self.features), h, name="lin2")
        h = ctx.op(Relu(), h, name="act2")
        return h


def make_tiny_model(
    num_units: int = 4, features: int = 64, name: str = "tiny"
) -> SegmentedModel:
    """A small chain of checkpointable Linear+GELU units on float input."""
    units = [TinyUnit(f"unit.{i}", features) for i in range(num_units)]
    return SegmentedModel(
        name, units, input_dtype=FLOAT32, probe_shape=(1, features)
    )
