"""replint fixture suite: every rule fires on a seeded violation, stays
quiet on the idiomatic version, and the repo itself is clean (modulo the
committed baseline) — the self-check that backs the CI gate."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    BaselineEntry,
    Finding,
    Rule,
    analyze_sources,
    apply_baseline,
    create_rules,
    load_baseline,
    register_rule,
    registered_rules,
    write_baseline,
)
from repro.analysis.cli import main as replint_main
from repro.analysis.config import _parse_minimal_toml
from repro.analysis.core import ConfigError

REPO_ROOT = Path(__file__).resolve().parents[1]


def rule_ids(findings: list[Finding]) -> set[str]:
    return {f.rule for f in findings}


# ---------------------------------------------------------------------------
# rng-discipline
# ---------------------------------------------------------------------------


def test_rng_rule_flags_stdlib_random():
    findings = analyze_sources(
        {"m.py": "import random\nx = random.random()\n"}
    )
    assert "rng-discipline" in rule_ids(findings)


def test_rng_rule_flags_legacy_numpy_global():
    findings = analyze_sources(
        {"m.py": "import numpy as np\nx = np.random.uniform(0, 1)\n"}
    )
    assert "rng-discipline" in rule_ids(findings)


def test_rng_rule_flags_unseeded_default_rng():
    findings = analyze_sources(
        {"m.py": "import numpy as np\nrng = np.random.default_rng()\n"}
    )
    assert "rng-discipline" in rule_ids(findings)


def test_rng_rule_allows_seeded_generator_threading():
    clean = (
        "import numpy as np\n"
        "def sample(rng: np.random.Generator) -> int:\n"
        "    return int(rng.integers(0, 10))\n"
        "rng = np.random.default_rng(42)\n"
    )
    assert analyze_sources({"m.py": clean}) == []


# ---------------------------------------------------------------------------
# wall-clock
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "snippet",
    [
        "import time\nt = time.time()\n",
        "import time\nt = time.perf_counter()\n",
        "from time import perf_counter\nt = perf_counter()\n",
        "import datetime\nt = datetime.datetime.now()\n",
    ],
)
def test_wallclock_rule_flags_host_time(snippet):
    assert rule_ids(analyze_sources({"m.py": snippet})) == {"wall-clock"}


def test_wallclock_backward_stopwatch_stays_on_simulated_clock():
    """The COLLECT backward "stopwatch" in ``CollectStrategy`` times units
    off the simulated clock charge, never host time — so the strategies
    module must pass the wall-clock rule WITHOUT being allowlisted, and
    the pyproject allow list must not quietly grow to include it."""
    strategies = REPO_ROOT / "src/repro/engine/strategies.py"
    source = strategies.read_text()
    assert "BackwardMeasured" in source  # the stopwatch site exists
    rules = create_rules(select=["wall-clock"])
    findings = analyze_sources(
        {"src/repro/engine/strategies.py": source}, rules
    )
    assert findings == []
    config = _parse_minimal_toml((REPO_ROOT / "pyproject.toml").read_text())
    allow = (
        config["tool"]["replint"]["rules"]["wall-clock"]["allow"]
    )
    assert "src/repro/engine/strategies.py" not in allow
    # the sanctioned genuine-overhead stopwatch sites are still exempt
    assert "src/repro/core/estimator.py" in allow
    assert "src/repro/core/planner.py" in allow


def test_wallclock_rule_allows_simulated_clock_and_allowlisted_files():
    clean = "def charge(clock, dt):\n    return clock.now + dt\n"
    assert analyze_sources({"m.py": clean}) == []
    # an allow glob exempts the sanctioned stopwatch site
    rules = create_rules(
        {"wall-clock": {"allow": ["pkg/estimator.py"]}},
        select=["wall-clock"],
    )
    hot = "import time\nstart = time.perf_counter()\n"
    assert analyze_sources({"pkg/estimator.py": hot}, rules) == []
    rules = create_rules(select=["wall-clock"])
    assert analyze_sources({"pkg/estimator.py": hot}, rules) != []


# ---------------------------------------------------------------------------
# mode-branching
# ---------------------------------------------------------------------------


def test_mode_rule_flags_enum_comparison_and_match():
    bad_compare = (
        "from repro.planners.base import ExecutionMode\n"
        "def f(decision):\n"
        "    if decision.mode == ExecutionMode.COLLECT:\n"
        "        return 1\n"
    )
    assert "mode-branching" in rule_ids(analyze_sources({"m.py": bad_compare}))
    bad_match = (
        "from repro.planners.base import ExecutionMode\n"
        "def f(decision):\n"
        "    match decision.mode:\n"
        "        case ExecutionMode.NORMAL:\n"
        "            return 0\n"
    )
    assert "mode-branching" in rule_ids(analyze_sources({"m.py": bad_match}))


def test_mode_rule_flags_string_mode_comparison():
    bad = "def f(stats):\n    return stats.mode == 'collect'\n"
    assert "mode-branching" in rule_ids(analyze_sources({"m.py": bad}))


def test_mode_rule_allows_construction_and_registry_dispatch():
    clean = (
        "from repro.planners.base import ExecutionMode, PlanDecision\n"
        "def f(plan, registry, decision):\n"
        "    d = PlanDecision(plan, mode=ExecutionMode.COLLECT)\n"
        "    cls = registry[decision.mode]\n"
        "    return d, cls, decision.mode.value\n"
    )
    assert analyze_sources({"m.py": clean}) == []


# ---------------------------------------------------------------------------
# event-bus-protocol
# ---------------------------------------------------------------------------


def test_eventbus_rule_requires_frozen_slots_dataclass_cross_file():
    sources = {
        "events.py": (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class UnitDone:\n"
            "    unit: str\n"
        ),
        "publisher.py": "def go(bus):\n    bus.emit(UnitDone('u'))\n",
    }
    findings = analyze_sources(sources)
    assert [f.path for f in findings] == ["events.py", "events.py"]
    assert rule_ids(findings) == {"event-bus-protocol"}

    sources["events.py"] = (
        "from dataclasses import dataclass\n"
        "@dataclass(frozen=True, slots=True)\n"
        "class UnitDone:\n"
        "    unit: str\n"
    )
    assert analyze_sources(sources) == []


def test_eventbus_rule_requires_callable_observers():
    bad = (
        "class Peeker:\n"
        "    def attach(self, bus):\n"
        "        return bus.subscribe(self)\n"
    )
    findings = analyze_sources({"m.py": bad})
    assert rule_ids(findings) == {"event-bus-protocol"}
    good = bad + "    def __call__(self, event):\n        pass\n"
    assert analyze_sources({"m.py": good}) == []


def test_guard_dominance_requires_wants_guard_on_hot_events():
    """The v1 lexical guard check moved to the dataflow ``guard-dominance``
    rule; the simple guarded/unguarded shapes still behave identically."""
    bad = (
        "def alloc(bus, t):\n"
        "    bus.emit(TensorAlloc(0, t.nbytes, t.name, 0.0))\n"
    )
    findings = analyze_sources({"m.py": bad})
    assert "guard-dominance" in rule_ids(findings)
    good = (
        "def alloc(bus, t):\n"
        "    if bus.wants(TensorAlloc):\n"
        "        bus.emit(TensorAlloc(0, t.nbytes, t.name, 0.0))\n"
    )
    # TensorAlloc itself is defined elsewhere; only the guard is checked
    assert analyze_sources({"m.py": good}) == []


# ---------------------------------------------------------------------------
# plan-membership
# ---------------------------------------------------------------------------


def test_plan_membership_rule_flags_unit_set_probes():
    bad_checkpoint = (
        "def f(plan, unit):\n"
        "    return unit.name in plan.checkpoint_units\n"
    )
    assert rule_ids(analyze_sources({"m.py": bad_checkpoint})) == {
        "plan-membership"
    }
    bad_swap = (
        "def f(decision, name):\n"
        "    if name not in decision.plan.swap_units:\n"
        "        return None\n"
    )
    assert rule_ids(analyze_sources({"m.py": bad_swap})) == {
        "plan-membership"
    }


def test_plan_membership_rule_allows_action_dispatch_and_set_reads():
    clean = (
        "def f(plan, unit, other):\n"
        "    action = plan.assignment.action_for(unit.name)\n"
        "    dropped = len(plan.checkpoint_units)\n"
        "    order = sorted(plan.swap_units)\n"
        "    both = plan.checkpoint_units | plan.swap_units\n"
        "    return action, dropped, order, both, unit in other\n"
    )
    assert analyze_sources({"m.py": clean}) == []


def test_plan_membership_rule_respects_allow_globs():
    bad = (
        "def f(plan, unit):\n"
        "    return unit in plan.swap_units\n"
    )
    rules = create_rules(
        {"plan-membership": {"allow": ["src/repro/planners/*"]}},
        select=["plan-membership"],
    )
    assert analyze_sources({"src/repro/planners/x.py": bad}, rules) == []
    assert analyze_sources({"src/repro/engine/x.py": bad}, rules) != []


# ---------------------------------------------------------------------------
# lifecycle-protocol
# ---------------------------------------------------------------------------


def test_lifecycle_rule_flags_direct_estimator_fit():
    bad = (
        "def refit(self, collector):\n"
        "    self.estimator.fit(collector)\n"
    )
    assert "lifecycle-protocol" in rule_ids(analyze_sources({"m.py": bad}))


def test_lifecycle_rule_flags_estimator_fit_base():
    bad = (
        "def refit(estimator, sizes, peaks):\n"
        "    estimator.fit_base(sizes, peaks)\n"
    )
    assert "lifecycle-protocol" in rule_ids(analyze_sources({"m.py": bad}))


def test_lifecycle_rule_flags_collector_resets():
    for call in ("self.collector.clear()", "collector.evict_oldest(keep=2)"):
        bad = f"def reset(self, collector):\n    {call}\n"
        assert "lifecycle-protocol" in rule_ids(
            analyze_sources({"m.py": bad})
        ), call


def test_lifecycle_rule_allows_unrelated_fit_and_clear():
    good = (
        "def f(tree, xs, ys, seen, cache):\n"
        "    tree.fit(xs, ys)\n"       # regressor internals
        "    seen.clear()\n"           # plain containers
        "    cache.clear()\n"          # the plan cache is not a collector
    )
    assert "lifecycle-protocol" not in rule_ids(
        analyze_sources({"m.py": good})
    )


def test_lifecycle_rule_respects_allow_globs():
    bad = "def f(self, c):\n    self.estimator.fit(c)\n"
    rules = create_rules(
        {"lifecycle-protocol": {"allow": ["src/repro/core/lifecycle.py"]}},
        select=["lifecycle-protocol"],
    )
    assert analyze_sources({"src/repro/core/lifecycle.py": bad}, rules) == []
    assert analyze_sources({"src/repro/planners/x.py": bad}, rules) != []


# ---------------------------------------------------------------------------
# unit-flow (formerly byte-units)
# ---------------------------------------------------------------------------


def test_units_rule_flags_mixed_comparison_and_arithmetic():
    bad_cmp = (
        "def fits(budget_gb, peak_bytes):\n"
        "    return peak_bytes < budget_gb\n"
    )
    assert rule_ids(analyze_sources({"m.py": bad_cmp})) == {"unit-flow"}
    bad_sum = (
        "def headroom(budget_bytes, reserve_gb):\n"
        "    return budget_bytes - reserve_gb\n"
    )
    assert rule_ids(analyze_sources({"m.py": bad_sum})) == {"unit-flow"}


def test_units_rule_allows_explicit_conversions():
    clean = (
        "GB = 1024 ** 3\n"
        "def fits(budget_gb, peak_bytes, extra_bytes):\n"
        "    budget_bytes = int(budget_gb * GB)\n"
        "    frac = peak_bytes / (1024 ** 3)\n"
        "    total = peak_bytes + extra_bytes\n"
        "    pad = budget_bytes + GB\n"
        "    return peak_bytes < budget_bytes, frac, total, pad\n"
    )
    assert analyze_sources({"m.py": clean}) == []


# ---------------------------------------------------------------------------
# suppression layers: pragma, severity, baseline
# ---------------------------------------------------------------------------


def test_inline_pragma_suppresses_one_line():
    src = (
        "import time\n"
        "a = time.time()  # replint: ignore[wall-clock]\n"
        "b = time.time()\n"
    )
    findings = analyze_sources({"m.py": src})
    # the import itself is not flagged, only the calls; one is ignored
    assert [f.line for f in findings] == [3]


def test_severity_warning_and_off():
    rules = create_rules(
        {"wall-clock": {"severity": "warning"}}, select=["wall-clock"]
    )
    findings = analyze_sources(
        {"m.py": "import time\nt = time.time()\n"}, rules
    )
    assert findings and all(f.severity == "warning" for f in findings)
    assert "wall-clock" not in {
        r.id for r in create_rules({"wall-clock": {"severity": "off"}})
    }
    with pytest.raises(ConfigError):
        create_rules({"wall-clock": {"severity": "loud"}})
    with pytest.raises(ConfigError):
        create_rules({"no-such-rule": {}})


def test_baseline_roundtrip(tmp_path):
    findings = analyze_sources({"m.py": "import time\nt = time.time()\n"})
    assert findings
    path = tmp_path / "baseline.json"
    write_baseline(path, findings)
    entries = load_baseline(path)
    assert all(e.justification == "TODO: justify" for e in entries)
    result = apply_baseline(findings, entries)
    assert result.fresh == [] and len(result.suppressed) == len(findings)
    # a justification survives regeneration; fixed findings go stale
    blessed = [
        BaselineEntry(e.rule, e.path, e.code, e.count, "measured on purpose")
        for e in entries
    ]
    write_baseline(path, findings, previous=blessed)
    assert load_baseline(path)[0].justification == "measured on purpose"
    stale = apply_baseline([], blessed)
    assert [e.code for e in stale.stale] == [blessed[0].code]


# ---------------------------------------------------------------------------
# registry & config plumbing
# ---------------------------------------------------------------------------


def test_register_rule_mirrors_register_strategy():
    @register_rule
    class NoTodoRule(Rule):
        id = "no-todo-test-rule"
        summary = "test-only"

        def check(self, ctx):
            for lineno, line in enumerate(ctx.lines, 1):
                if "TODO" in line:
                    yield Finding(
                        self.id, ctx.relpath, lineno, 1,
                        "todo found", self.severity, ctx.code_at(lineno),
                    )

    try:
        assert "no-todo-test-rule" in registered_rules()
        rules = create_rules(select=["no-todo-test-rule"])
        findings = analyze_sources({"m.py": "x = 1  # TODO: later\n"}, rules)
        assert rule_ids(findings) == {"no-todo-test-rule"}
    finally:
        from repro.analysis.core import _RULES

        _RULES.pop("no-todo-test-rule", None)


def test_minimal_toml_parser_matches_tomllib_on_repo_config():
    tomllib = pytest.importorskip("tomllib")
    text = (REPO_ROOT / "pyproject.toml").read_text()
    expected = tomllib.loads(text).get("tool", {}).get("replint", {})
    actual = _parse_minimal_toml(text).get("tool", {}).get("replint", {})
    assert actual == expected


def test_minimal_toml_parser_multiline_arrays():
    text = (
        "[tool.replint.rules.guard-dominance]\n"
        "guarded-events = [\n"
        "    # hot-path per-tensor events\n"
        '    "TensorAlloc",\n'
        '    "SwapIn",\n'
        "\n"
        '    "ReplayHit",\n'
        "]\n"
        "severity = \"error\"\n"
    )
    table = _parse_minimal_toml(text)["tool"]["replint"]["rules"][
        "guard-dominance"
    ]
    assert table["guarded-events"] == ["TensorAlloc", "SwapIn", "ReplayHit"]
    assert table["severity"] == "error"


# ---------------------------------------------------------------------------
# CLI gate
# ---------------------------------------------------------------------------


def test_cli_gate_rejects_seeded_violation(tmp_path, monkeypatch, capsys):
    (tmp_path / "bad.py").write_text("import time\nt = time.time()\n")
    monkeypatch.chdir(tmp_path)
    code = replint_main(["bad.py", "--format", "json", "--no-baseline"])
    report = json.loads(capsys.readouterr().out)
    assert code == 1
    assert report["summary"]["errors"] == 1
    assert report["findings"][0]["rule"] == "wall-clock"
    # baselining the finding turns the gate green again
    assert replint_main(["bad.py", "--update-baseline",
                         "--baseline", "bl.json"]) == 0
    assert replint_main(["bad.py", "--baseline", "bl.json"]) == 0


def test_cli_self_check_repo_is_clean(monkeypatch):
    """`python -m repro.analysis src` exits 0 on the repo (mod baseline)."""
    monkeypatch.chdir(REPO_ROOT)
    assert replint_main(["src"]) == 0
