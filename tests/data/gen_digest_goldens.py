#!/usr/bin/env python3
"""Regenerate the digest-parity goldens.

Two files are produced:

* ``tests/data/digest_parity.json`` — run-level ``RunResult.digest``
  per grid point;
* ``tests/data/digest_parity_stream.json`` — per-iteration
  ``RunResult.rolling_digests`` per grid point, so a parity failure can
  name the first divergent iteration instead of only "digests differ".

The goldens pin behaviour for a grid of (task, planner, budget, faults)
runs.  They were captured from the pre-refactor seed executor and must
stay bit-identical across any behaviour-preserving refactor of the
execution engine.  Only regenerate them for an *intentional* behaviour
change, and say so in the commit message.

Usage::

    PYTHONPATH=src python tests/data/gen_digest_goldens.py
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1]))

from helpers_digest_grid import digest_grid, run_grid_point_result  # covered by per-file E402 ignore

OUT = pathlib.Path(__file__).parent / "digest_parity.json"
OUT_STREAM = pathlib.Path(__file__).parent / "digest_parity_stream.json"


def main() -> None:
    goldens = {}
    streams = {}
    for point in digest_grid():
        key = "|".join(str(p) for p in point)
        result = run_grid_point_result(point)
        goldens[key] = result.digest()
        streams[key] = list(result.rolling_digests())
        print(f"{key}: {goldens[key]}")
    OUT.write_text(json.dumps(goldens, indent=2, sort_keys=True) + "\n")
    OUT_STREAM.write_text(
        json.dumps(streams, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {len(goldens)} goldens to {OUT} (+ streams to {OUT_STREAM})")


if __name__ == "__main__":
    main()
