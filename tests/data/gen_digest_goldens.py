#!/usr/bin/env python3
"""Regenerate the digest-parity goldens (tests/data/digest_parity.json).

The goldens pin ``RunResult.digest`` for a grid of (task, planner,
budget, faults) runs.  They were captured from the pre-refactor seed
executor and must stay bit-identical across any behaviour-preserving
refactor of the execution engine.  Only regenerate them for an
*intentional* behaviour change, and say so in the commit message.

Usage::

    PYTHONPATH=src python tests/data/gen_digest_goldens.py
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1]))

from helpers_digest_grid import digest_grid, run_grid_point  # covered by per-file E402 ignore

OUT = pathlib.Path(__file__).parent / "digest_parity.json"


def main() -> None:
    goldens = {}
    for point in digest_grid():
        key = "|".join(str(p) for p in point)
        goldens[key] = run_grid_point(point)
        print(f"{key}: {goldens[key]}")
    OUT.write_text(json.dumps(goldens, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(goldens)} goldens to {OUT}")


if __name__ == "__main__":
    main()
