"""Unit tests for the model zoo: parameter counts, shapes, memory laws."""

import pytest

from repro.models.base import BatchInput, SegmentedModel, StaticMemory
from repro.models.registry import available_models, build_model
from repro.models.resnet import build_resnet50_det, build_resnet101_det
from repro.models.t5 import build_t5_base
from repro.tensorsim.dtypes import FLOAT32, INT64

from tests.helpers import make_tiny_model


# ------------------------------------------------------------- param counts

@pytest.mark.parametrize(
    "name,expected_m,tol",
    [
        ("bert-base", 110, 2),  # paper: 110 M
        ("roberta-base", 125, 2),  # paper: 125 M
        ("t5-base", 220, 5),  # paper: 220 M
    ],
)
def test_nlp_parameter_counts_match_paper(name, expected_m, tol):
    model = build_model(name)
    millions = model.param_count() / 1e6
    assert abs(millions - expected_m) <= tol, f"{name}: {millions:.1f}M"


def test_resnet_backbone_depth_ordering():
    r50 = build_resnet50_det()
    r101 = build_resnet101_det()
    assert r101.param_count() > r50.param_count()
    # 16 bottlenecks + stem + head vs 33 bottlenecks + stem + head
    assert len(r50.units) == 18
    assert len(r101.units) == 35


def test_registry_lists_and_builds():
    names = available_models()
    assert "bert-base" in names and "resnet101-det" in names
    for n in names:
        assert isinstance(build_model(n), SegmentedModel)
    with pytest.raises(KeyError, match="unknown model"):
        build_model("gpt-17")


# ----------------------------------------------------------------- structure

def test_bert_units_are_checkpointable_encoders(bert_model):
    ckpt = [u.name for u in bert_model.checkpointable_units()]
    assert ckpt == [f"encoder.{i}" for i in range(12)]
    assert bert_model.units[0].name == "embeddings"
    assert bert_model.units[-1].name == "head"


def test_bert_profile_chain_shapes(bert_model):
    batch = BatchInput((4, 32), INT64)
    profiles = bert_model.profiles(batch)
    assert profiles[0].output.shape == (4, 32, 768)
    for p in profiles[1:-1]:
        assert p.output.shape == (4, 32, 768)
    assert profiles[-1].output.shape == (4, 2)  # classifier logits


def test_bert_rejects_float_input(bert_model):
    with pytest.raises(ValueError, match="integer"):
        bert_model.profiles(BatchInput((4, 32), FLOAT32))


def test_t5_has_encoder_and_decoder_stacks():
    t5 = build_t5_base()
    names = t5.unit_names()
    assert sum(n.startswith("enc.") for n in names) == 12
    assert sum(n.startswith("dec.") for n in names) == 12
    profiles = t5.profiles(BatchInput((2, 16), INT64))
    assert profiles[-1].output.shape == (2, 16, 32128)


def test_t5_decoder_has_more_activations_than_encoder():
    """The decoder adds cross-attention, so it pins more memory."""
    t5 = build_t5_base()
    profiles = t5.profiles(BatchInput((2, 64), INT64))
    by_name = {p.module_name: p for p in profiles}
    assert by_name["dec.0"].saved_bytes > by_name["enc.0"].saved_bytes


def test_resnet_spatial_downsampling(resnet50_model):
    batch = BatchInput((2, 3, 256, 256), FLOAT32)
    profiles = resnet50_model.profiles(batch)
    by_name = {p.module_name: p for p in profiles}
    assert by_name["stem"].output.shape == (2, 64, 64, 64)
    assert by_name["layer1.0"].output.shape == (2, 256, 64, 64)
    assert by_name["layer2.0"].output.shape == (2, 512, 32, 32)
    assert by_name["layer4.2"].output.shape == (2, 2048, 8, 8)


def test_detection_head_reserves_memory(resnet50_model):
    static = resnet50_model.static_memory()
    assert static.workspace_bytes == int(1.5 * 1024**3)


# -------------------------------------------------------------- memory model

def test_attention_memory_is_quadratic_in_seqlen(bert_model):
    """§IV-C: the seqlen x seqlen score tensors make encoder activation
    memory quadratic in input size — the basis for the quadratic fit."""
    enc = bert_model.units[1]
    mems = {}
    for length in (64, 128, 256):
        p = enc.profile(BatchInput((8, length), INT64).spec.with_shape((8, length, 768)))
        mems[length] = p.saved_bytes
    # quadratic growth: doubling seqlen more than doubles memory
    assert mems[128] > 2 * mems[64]
    assert mems[256] > 2 * mems[128]
    # ... but stays below the pure-quadratic 4x (linear terms dilute it)
    assert mems[256] < 4 * mems[128]


def test_static_memory_adam_vs_sgd(tiny_model):
    adam = tiny_model.static_memory(optimizer="adam")
    sgd = tiny_model.static_memory(optimizer="sgd")
    n = tiny_model.param_count()
    assert adam.param_bytes == sgd.param_bytes == 4 * n
    assert adam.optimizer_bytes == 8 * n
    assert sgd.optimizer_bytes == 4 * n
    assert adam.total > sgd.total
    with pytest.raises(ValueError):
        tiny_model.static_memory(optimizer="adagrad")


def test_static_memory_total():
    sm = StaticMemory(10, 10, 20, 5)
    assert sm.total == 45


def test_batch_input_properties():
    b = BatchInput((4, 32), INT64)
    assert b.input_size == 128
    assert b.nbytes == 1024
    assert b.spec.shape == (4, 32)


def test_segmented_model_rejects_bad_construction():
    units = make_tiny_model(2).units
    with pytest.raises(ValueError):
        SegmentedModel("m", [])
    with pytest.raises(ValueError):
        SegmentedModel("m", [units[0], units[0]])


def test_param_count_is_cached_and_stable(tiny_model):
    first = tiny_model.param_count()
    assert tiny_model.param_count() == first


def test_clear_caches(bert_model):
    bert_model.profiles(BatchInput((2, 16), INT64))
    bert_model.clear_caches()
    # still works after clearing
    assert bert_model.profiles(BatchInput((2, 16), INT64))
