"""Tests for the swap execution path and the Capuchin hybrid planner."""

import pytest

from repro.engine.executor import TrainingExecutor
from repro.models.base import BatchInput
from repro.planners.base import (
    CheckpointPlan,
    ModelView,
    PlanDecision,
)
from repro.planners.capuchin import CapuchinPlanner
from repro.planners.none import NoCheckpointPlanner
from repro.tensorsim.dtypes import FLOAT32
from repro.tensorsim.device import DeviceModel, DevicePreset

from tests.helpers import GB, MB, make_tiny_model


def swap_plan(names, swap):
    return CheckpointPlan(frozenset(names), "hybrid", frozenset(swap))


def make_executor(model, device=None, capacity=8 * GB):
    planner = NoCheckpointPlanner(capacity)
    planner.setup(ModelView(model))
    return TrainingExecutor(model, planner, device=device, capacity_bytes=capacity)


#: a host link slow enough that a unit's swap-in cannot hide under one
#: unit's backward, yet fast enough for early swap-outs to finish during
#: the forward pass — the configuration that produces genuine stalls
SLOW_LINK = DevicePreset(
    name="slowlink",
    peak_flops=15.7e12,
    mem_bandwidth=900e9,
    launch_overhead=5e-6,
    memory_capacity=8 * GB,
    pcie_bandwidth=2.5e9,
)


def test_plan_rejects_overlapping_sets():
    with pytest.raises(ValueError, match="both dropped and swapped"):
        CheckpointPlan(frozenset({"a"}), "x", frozenset({"a"}))


def test_swapped_unit_stalls_when_link_is_slow():
    """Swap out only the first unit: its transfer finishes during the
    remaining forward, but the swap-in (issued one unit of lookahead
    before its backward) is slower than that window — a stall."""
    model = make_tiny_model(num_units=6, features=512)
    ex = make_executor(model, device=DeviceModel(SLOW_LINK))
    batch = BatchInput((2048, 512), FLOAT32)
    names = [u.name for u in model.units]
    plain = ex.run_iteration(batch, PlanDecision(CheckpointPlan.none()))
    swapped = ex.run_iteration(
        batch, PlanDecision(swap_plan([], [names[0]]))
    )
    assert swapped.num_swapped == 1
    assert not swapped.oom
    assert swapped.swap_stall_time > 0
    assert swapped.total_time > plain.total_time
    # no leaks
    assert swapped.end_in_use == ex.static_bytes


def test_swap_reduces_peak_when_transfers_complete():
    """With a fast link and slow compute, swap-outs complete during the
    forward pass and the peak drops like checkpointing."""
    fast_link = DevicePreset(
        name="fastlink",
        peak_flops=1e10,  # slow compute: plenty of time to transfer
        mem_bandwidth=1e9,
        launch_overhead=1e-6,
        memory_capacity=8 * GB,
    )
    model = make_tiny_model(num_units=8, features=512)
    ex = make_executor(model, device=DeviceModel(fast_link))
    batch = BatchInput((1024, 512), FLOAT32)
    names = [u.name for u in model.units]
    plain = ex.run_iteration(batch, PlanDecision(CheckpointPlan.none()))
    swapped = ex.run_iteration(
        batch, PlanDecision(swap_plan([], names[:-1]))
    )
    assert swapped.peak_in_use < plain.peak_in_use
    assert swapped.recompute_time == 0  # swap is not recompute
    assert swapped.end_in_use == ex.static_bytes


def test_mixed_drop_and_swap_plan():
    model = make_tiny_model(num_units=6, features=256)
    ex = make_executor(model)
    batch = BatchInput((512, 256), FLOAT32)
    names = [u.name for u in model.units]
    stats = ex.run_iteration(
        batch, PlanDecision(swap_plan(names[:3], names[3:5]))
    )
    assert stats.num_checkpointed == 3
    assert stats.num_swapped == 2
    assert stats.recompute_time > 0
    assert not stats.oom
    assert stats.end_in_use == ex.static_bytes


def test_cancelled_swapout_keeps_unit_resident():
    """If backward arrives before the swap-out finished, the unit never
    left GPU memory and needs neither stall nor reallocation."""
    model = make_tiny_model(num_units=2, features=256)
    ex = make_executor(model, device=DeviceModel(SLOW_LINK))
    batch = BatchInput((64, 256), FLOAT32)
    names = [u.name for u in model.units]
    stats = ex.run_iteration(batch, PlanDecision(swap_plan([], [names[-1]])))
    # the last unit's backward starts immediately after forward: with the
    # instant-compute device its transfer cannot have completed
    assert stats.num_swapped == 1
    assert not stats.oom
    assert stats.end_in_use == ex.static_bytes


# ------------------------------------------------------------------ capuchin

def test_capuchin_plans_on_first_batch_and_grows():
    model = make_tiny_model(num_units=6, features=512)
    planner = CapuchinPlanner(model.static_memory().total + 16 * MB)
    planner.setup(ModelView(model))
    small = BatchInput((128, 512), FLOAT32)
    big = BatchInput((1024, 512), FLOAT32)
    d1 = planner.plan(small)
    assert planner.planned_for_size == small.input_size
    d2 = planner.plan(big)  # larger input forces a re-plan
    assert planner.planned_for_size == big.input_size
    d3 = planner.plan(small)  # smaller input reuses the big plan
    assert d3.plan is d2.plan
    assert len(d2.plan.checkpoint_units | d2.plan.swap_units) >= len(
        d1.plan.checkpoint_units | d1.plan.swap_units
    )


def test_capuchin_respects_budget_for_planned_size():
    model = make_tiny_model(num_units=8, features=512)
    static = model.static_memory().total
    budget = static + 24 * MB
    planner = CapuchinPlanner(budget)
    planner.setup(ModelView(model))
    ex = TrainingExecutor(model, planner, capacity_bytes=4 * GB)
    batch = BatchInput((1024, 512), FLOAT32)
    stats = ex.step(batch)
    assert not stats.oom
    total_actions = stats.num_checkpointed + stats.num_swapped
    assert total_actions > 0


def test_capuchin_capabilities_row():
    caps = CapuchinPlanner.capabilities
    assert caps.swapping and caps.checkpointing
    assert not caps.dynamic_input
    assert caps.plan_timing == "runtime"


def test_capuchin_under_unlimited_budget_is_noop():
    model = make_tiny_model()
    planner = CapuchinPlanner(64 * GB)
    planner.setup(ModelView(model))
    d = planner.plan(BatchInput((64, 64), FLOAT32))
    assert not d.plan.checkpoint_units and not d.plan.swap_units
