"""Tests for the post-run analysis/export utilities."""

import csv
import io
import json

import pytest

from repro.engine.stats import IterationStats, RunResult
from repro.experiments.analysis import (
    check_paper_shape,
    compare_runs,
    improvement_over,
    iterations_to_csv,
    run_to_json,
)

GB = 1024**3


def make_run(planner, budget=4 * GB, iter_time=1.0, n=3, oom=0):
    r = RunResult("T", planner, budget)
    for i in range(1, n + 1):
        r.append(
            IterationStats(
                iteration=i, input_size=100 * i, input_shape=(4, 25 * i),
                mode="normal", plan_label=planner, num_checkpointed=2,
                fwd_time=iter_time * 0.3, bwd_time=iter_time * 0.55,
                recompute_time=iter_time * 0.1, collect_time=0.0,
                planning_time=iter_time * 0.02, upkeep_time=0.0,
                optimizer_time=iter_time * 0.03,
                peak_in_use=2 * GB, peak_reserved=int(2.2 * GB),
                end_in_use=GB, fragmentation_bytes=0,
                oom=bool(oom and i <= oom),
            )
        )
    return r


def test_compare_runs_normalises_against_baseline():
    base = make_run("baseline", iter_time=1.0)
    slow = make_run("sublinear", iter_time=1.3)
    rows = compare_runs([base, slow])
    by = {r["planner"]: r for r in rows}
    assert by["baseline"]["normalized_time"] == pytest.approx(1.0)
    assert by["sublinear"]["normalized_time"] == pytest.approx(1.3)
    assert by["sublinear"]["budget_utilisation"] == pytest.approx(0.5)
    assert by["sublinear"]["succeeded"]


def test_compare_runs_requires_baseline():
    with pytest.raises(ValueError, match="no run named"):
        compare_runs([make_run("mimose")])


def test_improvement_over_matched_budgets():
    runs = [
        make_run("mimose", budget=3 * GB, iter_time=1.0),
        make_run("sublinear", budget=3 * GB, iter_time=1.2),
        make_run("mimose", budget=4 * GB, iter_time=1.0),
        make_run("sublinear", budget=4 * GB, iter_time=1.1),
    ]
    imp = improvement_over(runs, "mimose", "sublinear")
    assert imp == pytest.approx((0.2 + 0.1) / 2)


def test_improvement_over_no_match_raises():
    with pytest.raises(ValueError):
        improvement_over([make_run("mimose")], "mimose", "dtr")


def test_iterations_to_csv_roundtrip():
    run = make_run("mimose", n=4)
    text = iterations_to_csv(run)
    rows = list(csv.DictReader(io.StringIO(text)))
    assert len(rows) == 4
    assert rows[0]["plan_label"] == "mimose"
    assert int(rows[2]["input_size"]) == 300
    assert rows[0]["oom"] == "False"


def test_run_to_json_roundtrip():
    run = make_run("dtr", n=2, oom=1)
    payload = json.loads(run_to_json(run))
    assert payload["planner"] == "dtr"
    assert payload["succeeded"] is False
    assert len(payload["iterations"]) == 2
    assert payload["iterations"][0]["oom"] is True


def point(t, respects=True, oom=0, budget=4.0):
    return {
        "budget_gb": budget,
        "normalized_time": t,
        "respects_budget": respects,
        "oom_iterations": oom,
    }


def test_check_paper_shape_accepts_good_series():
    series = {
        "mimose": [point(1.2), point(1.1)],
        "sublinear": [point(1.3), point(1.2)],
        "dtr": [point(1.4), point(1.3)],
    }
    assert check_paper_shape(series) == []


def test_check_paper_shape_flags_budget_violation():
    series = {
        "mimose": [point(1.2, respects=False)],
        "sublinear": [point(1.3)],
    }
    problems = check_paper_shape(series)
    assert any("exceeded the budget" in p for p in problems)


def test_check_paper_shape_flags_losses():
    series = {
        "mimose": [point(1.5), point(1.5)],
        "sublinear": [point(1.1), point(1.1)],
    }
    problems = check_paper_shape(series)
    assert any("beats sublinear" in p for p in problems)


def test_check_paper_shape_flags_non_monotone():
    series = {"mimose": [point(1.1), point(1.3)]}
    problems = check_paper_shape(series)
    assert any("does not improve" in p for p in problems)


def test_check_paper_shape_requires_mimose():
    assert check_paper_shape({}) == ["no mimose series present"]
