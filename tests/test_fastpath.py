"""Tests for the hot-path machinery: iteration replay cache, vectorized
estimator, parallel sweeps, and their equivalence guarantees.

The contract under test everywhere: the fast paths are *pure*
optimisations.  Replayed iterations and parallel sweeps must be
bit-identical to full simulation (``RunResult.digest`` excludes only the
genuinely wall-clock ``planning_time``), and the never-replay rules
(REACTIVE mode, fault windows, recovery) must hold unconditionally.
"""

import numpy as np
import pytest

from repro.core.estimator import LightningMemoryEstimator
from repro.core.estimators import DecisionTreeRegressor
from repro.engine.executor import TrainingExecutor
from repro.engine.stats import IterationStats, RunResult, summarize_runs
from repro.engine.trace import MemoryTimeline
from repro.experiments.runner import (
    derive_fault_seed,
    make_planner,
    parallel_map,
    run_task,
    sweep,
)
from repro.experiments.tasks import GB, load_task
from repro.planners.base import ModelView
from repro.tensorsim.faults import FaultPlan


def _run(task, planner_name, budget, *, replay, timeline=None, faults=None,
         max_retries=3):
    model = task.fresh_model()
    planner = make_planner(planner_name, budget, task)
    planner.setup(ModelView(model))
    executor = TrainingExecutor(
        model,
        planner,
        capacity_bytes=(
            budget
            if not planner.requires_physical_capacity
            else 32 * GB
        ),
        coalescing=planner.allocator_coalescing,
        timeline=timeline,
        replay=replay,
        faults=faults.build() if faults is not None else None,
        max_recovery_retries=max_retries,
    )
    result = RunResult(task.spec.abbr, planner_name, budget)
    for batch in task.loader:
        result.append(executor.step(batch))
    return result, executor


# ------------------------------------------------------------ replay cache


@pytest.mark.parametrize("task_abbr,planner_name,budget_gb", [
    ("TC-Bert", "mimose", 4.0),
    ("TC-Bert", "mimose", 6.0),
    ("QA-Bert", "mimose", 5.0),
    ("TC-Bert", "sublinear", 4.0),
])
@pytest.mark.parametrize("seed", [0, 7])
def test_replay_equivalence(task_abbr, planner_name, budget_gb, seed):
    """Replay on/off produce identical stats (planning_time excluded)."""
    task = load_task(task_abbr, iterations=40, seed=seed)
    budget = int(budget_gb * GB)
    full, _ = _run(task, planner_name, budget, replay=False)
    replayed, executor = _run(task, planner_name, budget, replay=True)
    assert replayed.digest() == full.digest()
    assert executor.replay is not None
    # per-iteration spot checks beyond the digest
    for a, b in zip(full.iterations, replayed.iterations):
        assert a.peak_in_use == b.peak_in_use
        assert a.total_time - a.planning_time == pytest.approx(
            b.total_time - b.planning_time
        )


def test_replay_equivalence_timeline():
    """Replayed iterations re-emit identical memory-timeline samples."""
    task = load_task("TC-Bert", iterations=40, seed=0)
    budget = 4 * GB
    tl_full, tl_replay = MemoryTimeline(), MemoryTimeline()
    _run(task, "mimose", budget, replay=False, timeline=tl_full)
    _, executor = _run(task, "mimose", budget, replay=True, timeline=tl_replay)
    assert executor.replay.hits > 0  # the fast path actually ran
    # absolute times accumulate wall-clock planning_time and are not
    # comparable between runs; everything else must match exactly
    def shape(tl):
        return [
            (p.iteration, p.phase, p.bytes_in_use, p.bytes_reserved)
            for p in tl.points
        ]

    assert shape(tl_replay) == shape(tl_full)
    assert tl_replay.peak_by_iteration() == tl_full.peak_by_iteration()


def test_replay_gets_hits_on_recurring_shapes():
    """A cycled shape bucket converges to a high replay hit rate."""
    task = load_task("TC-Bert", iterations=6, seed=0)
    stream = [b for b in task.loader] * 20
    model = task.fresh_model()
    planner = make_planner("mimose", 5 * GB, task)
    planner.setup(ModelView(model))
    executor = TrainingExecutor(model, planner, capacity_bytes=5 * GB)
    for batch in stream:
        executor.step(batch)
    assert executor.replay.hit_rate > 0.5


def test_reactive_mode_never_replayed():
    task = load_task("TC-Bert", iterations=8, seed=0)
    stream = [b for b in task.loader] * 5
    model = task.fresh_model()
    planner = make_planner("dtr", 5 * GB, task)
    planner.setup(ModelView(model))
    executor = TrainingExecutor(
        model, planner, capacity_bytes=32 * GB,
        coalescing=planner.allocator_coalescing,
    )
    for batch in stream:
        executor.step(batch)
    assert executor.replay.hits == 0
    assert executor.replay.bypasses == len(stream)


def test_fault_windows_bypass_and_invalidate():
    faults = FaultPlan.parse("frag:start=20,iters=3,bytes=1G", seed=3)
    task = load_task("TC-Bert", iterations=8, seed=0)
    stream = [b for b in task.loader] * 10
    budget = 4 * GB

    def run(replay):
        model = task.fresh_model()
        planner = make_planner("mimose", budget, task)
        planner.setup(ModelView(model))
        executor = TrainingExecutor(
            model, planner, capacity_bytes=budget, replay=replay,
            faults=faults.build(),
        )
        result = RunResult(task.spec.abbr, "mimose", budget)
        for batch in stream:
            result.append(executor.step(batch))
        return result, executor

    full, _ = run(False)
    replayed, executor = run(True)
    assert replayed.digest() == full.digest()
    assert executor.replay.bypasses > 0
    assert executor.replay.invalidations > 0


def test_replay_disabled():
    task = load_task("TC-Bert", iterations=6, seed=0)
    model = task.fresh_model()
    planner = make_planner("mimose", 5 * GB, task)
    planner.setup(ModelView(model))
    executor = TrainingExecutor(
        model, planner, capacity_bytes=5 * GB, replay=False
    )
    for batch in task.loader:
        executor.step(batch)
    assert executor.replay is None


# ------------------------------------------------------- recovery bugfix


def test_recovery_full_checkpoint_clears_plan_cache():
    """Rung 2 must drop the cached plan that just failed (regression).

    Before the fix, the failed rung-1 plan survived in the cache, so the
    next iteration of the same size was served the failing plan again.
    """
    task = load_task("TC-Bert", iterations=40, seed=0)
    budget = 6 * GB
    result, _ = _run(task, "mimose", budget, replay=False)
    assert result.succeeded

    # Rebuild a fitted planner with cached plans, then drive rung 2.
    model = task.fresh_model()
    planner = make_planner("mimose", budget, task)
    planner.setup(ModelView(model))
    executor = TrainingExecutor(model, planner, capacity_bytes=budget)
    for batch in task.loader:
        executor.step(batch)
    assert len(planner.cache) > 0
    failed = result.iterations[-1]
    batch = task.worst_case
    decision = planner.recover(batch, failed, 2)
    assert decision is not None
    assert decision.recovery_mode == "full-checkpoint"
    assert len(planner.cache) == 0


# -------------------------------------------------------- parallel sweeps


def test_parallel_sweep_matches_serial():
    task = load_task("TC-Bert", iterations=20, seed=0)
    grid = (["baseline", "sublinear", "mimose"], [4 * GB, 5 * GB])
    serial = sweep(task, *grid)
    parallel = sweep(task, *grid, jobs=2)
    assert [
        (r.planner_name, r.budget_bytes) for r in parallel
    ] == [(r.planner_name, r.budget_bytes) for r in serial]
    assert [r.digest() for r in parallel] == [r.digest() for r in serial]


def test_parallel_sweep_matches_serial_with_faults():
    faults = FaultPlan.parse(
        "frag:start=10,iters=2,bytes=512M;noise:bias=-0.02", seed=9
    )
    task = load_task("TC-Bert", iterations=20, seed=0)
    serial = sweep(task, ["mimose"], [4 * GB, 5 * GB], faults=faults)
    parallel = sweep(task, ["mimose"], [4 * GB, 5 * GB], faults=faults, jobs=2)
    assert [r.digest() for r in parallel] == [r.digest() for r in serial]


def test_derive_fault_seed_stable():
    a = derive_fault_seed(0, "TC-Bert", "mimose", 4 * GB)
    assert a == derive_fault_seed(0, "TC-Bert", "mimose", 4 * GB)
    # distinct grid points get distinct streams
    assert a != derive_fault_seed(0, "TC-Bert", "mimose", 5 * GB)
    assert a != derive_fault_seed(0, "TC-Bert", "sublinear", 4 * GB)
    assert a != derive_fault_seed(1, "TC-Bert", "mimose", 4 * GB)


def test_parallel_map_serial_fallback():
    assert parallel_map(abs, [-1, -2, -3], jobs=1) == [1, 2, 3]
    assert parallel_map(abs, [-5], jobs=8) == [5]


# ------------------------------------------------------------- estimator


class _FakeCollector:
    def __init__(self, data):
        self._data = data

    def training_data(self):
        return self._data


def _fake_data(num_units=20, seed=0):
    rng = np.random.default_rng(seed)
    data = {}
    for i in range(num_units):
        n = int(rng.integers(2, 12))
        sizes = sorted(int(s) for s in rng.integers(100, 50_000, size=n))
        bytes_ = [s * s * (i + 1) * 1e-3 + float(rng.normal()) for s in sizes]
        times = [s * (i + 1) * 1e-7 for s in sizes]
        bwd_times = [1.7 * t + 1e-6 for t in times]
        data[f"u{i}"] = (sizes, bytes_, times, bwd_times)
    return data


def test_vectorized_predictions_match_per_unit_models():
    est = LightningMemoryEstimator()
    est.fit(_FakeCollector(_fake_data()))
    assert est._mem_stack is not None  # fast path engaged
    for size in (7, 50, 1_234, 49_999, 80_000):
        expect_b = {
            n: max(0, int(m.predict(size))) for n, m in est._mem_models.items()
        }
        expect_t = {
            n: max(0.0, float(m.predict(size)))
            for n, m in est._time_models.items()
        }
        assert est.predict_all_bytes(size) == expect_b
        assert est.predict_all_times(size) == expect_t
        # key order is part of the contract (scheduler tie-breaking)
        assert list(est.predict_all_bytes(size)) == list(expect_b)


def test_vectorized_fallback_for_non_polynomial_regressors():
    est = LightningMemoryEstimator(regressor_factory=DecisionTreeRegressor)
    est.fit(_FakeCollector(_fake_data(num_units=5)))
    assert est._mem_stack is None
    expect = {
        n: max(0, int(m.predict(1_234))) for n, m in est._mem_models.items()
    }
    assert est.predict_all_bytes(1_234) == expect


def test_batch_prediction_matches_single_size_calls():
    """evaluate_many / predict_all_bytes_many are bitwise identical to
    the one-size-at-a-time paths, cached and uncached."""
    est = LightningMemoryEstimator()
    est.fit(_FakeCollector(_fake_data()))
    sizes = [7, 50, 1_234, 49_999, 80_000]
    # stacked Horner: batch grid column == scalar evaluation, bitwise
    grid = est._mem_stack.evaluate_many(np.array(sizes))
    for col, size in enumerate(sizes):
        assert np.array_equal(grid[:, col], est._mem_stack.evaluate(size))
    # warm one size so the batch path mixes cached and uncached entries
    est.predict_all_bytes(1_234)
    batch = est.predict_all_bytes_many(sizes)
    assert set(batch) == set(sizes)
    for size in sizes:
        assert batch[size] == est.predict_all_bytes(size)
    # returned dicts are fresh (caller mutation must not poison the memo)
    batch[7]["u0"] = -1
    assert est.predict_all_bytes(7)["u0"] != -1


def test_batch_prediction_fallback_for_non_polynomial_regressors():
    est = LightningMemoryEstimator(regressor_factory=DecisionTreeRegressor)
    est.fit(_FakeCollector(_fake_data(num_units=5)))
    assert est._mem_stack is None
    batch = est.predict_all_bytes_many([100, 2_000])
    assert batch[100] == est.predict_all_bytes(100)
    assert batch[2_000] == est.predict_all_bytes(2_000)


def test_prediction_memoization_isolated_and_cleared_on_refit():
    est = LightningMemoryEstimator()
    est.fit(_FakeCollector(_fake_data(seed=1)))
    first = est.predict_all_bytes(2_000)
    first["u0"] = -123  # caller mutation must not poison the memo
    assert est.predict_all_bytes(2_000)["u0"] != -123
    before = est.predict_all_bytes(3_000)
    est.fit(_FakeCollector(_fake_data(seed=2)))
    after = est.predict_all_bytes(3_000)
    assert after != before  # stale memo would have returned `before`


# ---------------------------------------------------------- observability


def test_run_result_exposes_cache_effectiveness():
    task = load_task("TC-Bert", iterations=40, seed=0)
    result = run_task(task, "mimose", 5 * GB)
    assert result.plan_cache_hits + result.plan_cache_misses > 0
    assert result.replay_hits + result.replay_misses > 0
    assert 0.0 <= result.plan_cache_hit_rate <= 1.0
    assert 0.0 <= result.replay_hit_rate <= 1.0
    rows = summarize_runs([result])
    assert "plan_cache_hit_rate" in rows[0]
    assert "replay_hit_rate" in rows[0]


def test_digest_ignores_planning_time_only():
    base = IterationStats(
        iteration=1, input_size=10, input_shape=(2, 5), mode="normal",
        plan_label="p", num_checkpointed=0, fwd_time=1.0, bwd_time=2.0,
        recompute_time=0.0, collect_time=0.0, planning_time=0.5,
        upkeep_time=0.0, optimizer_time=0.1, peak_in_use=100,
        peak_reserved=120, end_in_use=10, fragmentation_bytes=0,
    )
    from dataclasses import replace

    r1 = RunResult("t", "p", 1)
    r2 = RunResult("t", "p", 1)
    r3 = RunResult("t", "p", 1)
    r1.append(base)
    r2.append(replace(base, planning_time=9.9))
    r3.append(replace(base, fwd_time=9.9))
    assert r1.digest() == r2.digest()
    assert r1.digest() != r3.digest()
