"""Tests for the experiment harness: tasks, runner, and stats aggregation."""

import pytest

from repro.engine.stats import IterationStats, RunResult, summarize_runs
from repro.experiments.runner import PLANNER_NAMES, make_planner, run_task, sweep
from repro.experiments.tasks import GB, TASKS, load_task


def small_task(abbr="TC-Bert", iterations=6):
    return load_task(abbr, iterations=iterations, seed=0, calibration_samples=40)


# --------------------------------------------------------------------- tasks

def test_table2_tasks_registered():
    assert {
        "MC-Roberta", "TR-T5", "QA-Bert", "TC-Bert", "OD-R50", "OD-R101"
    } <= set(TASKS)
    assert "LM-GPT2" in TASKS  # extension task
    assert TASKS["TC-Bert"].batch_size == 32
    assert TASKS["OD-R101"].batch_size == 6
    assert not TASKS["OD-R50"].static_plan_for_worst_case


def test_load_task_unknown():
    with pytest.raises(KeyError):
        load_task("XY-GPT")


def test_task_context_pieces():
    task = small_task()
    assert task.spec.model == "bert-base"
    assert len(task.loader) == 6
    assert task.worst_case.shape == (32, 332)
    assert len(task.calibration) == 40
    p50 = task.percentile_batch(0.5)
    p95 = task.percentile_batch(0.95)
    assert p50.input_size <= p95.input_size <= task.worst_case.input_size
    with pytest.raises(ValueError):
        task.percentile_batch(1.5)


def test_memory_bounds_and_budgets():
    task = small_task()
    lb, ub = task.memory_bounds()
    assert 0 < lb < ub
    budgets = task.default_budgets(4)
    assert len(budgets) == 4
    assert budgets == sorted(budgets)
    assert budgets[0] >= lb
    assert budgets[-1] <= ub
    assert len(task.default_budgets(1)) == 1


def test_assumed_static_batch_policy():
    nlp = small_task("TC-Bert")
    assert nlp.assumed_static_batch().input_size == nlp.worst_case.input_size
    od = load_task("OD-R50", iterations=2, calibration_samples=20)
    assert od.assumed_static_batch().input_size < od.worst_case.input_size


# -------------------------------------------------------------------- runner

def test_make_planner_all_names():
    task = small_task()
    for name in PLANNER_NAMES:
        p = make_planner(name, 4 * GB, task)
        assert p.name == name
    with pytest.raises(KeyError):
        make_planner("zero", GB, task)


def test_run_task_produces_result():
    task = small_task()
    r = run_task(task, "baseline", 6 * GB)
    assert r.num_iterations == 6
    assert r.succeeded
    assert r.total_time > 0
    assert r.peak_in_use > 0


def test_run_task_max_iterations():
    task = small_task()
    r = run_task(task, "baseline", 6 * GB, max_iterations=3)
    assert r.num_iterations == 3


def test_sweep_runs_baseline_once():
    task = small_task(iterations=3)
    results = sweep(task, ["baseline", "sublinear"], [4 * GB, 5 * GB])
    names = [(r.planner_name, r.budget_bytes) for r in results]
    assert names.count(("baseline", 4 * GB)) == 1
    assert ("sublinear", 4 * GB) in names and ("sublinear", 5 * GB) in names


def test_planner_capacity_contract():
    """Plan-based planners run inside the budget; reactive/static-overshoot
    ones get physical capacity."""
    task = small_task(iterations=4)
    budget = 4 * GB
    mim = run_task(task, "mimose", budget)
    assert mim.peak_reserved <= budget
    dtr = run_task(task, "dtr", budget)
    assert dtr.peak_in_use <= budget + (1 << 20)


# --------------------------------------------------------------------- stats

def make_stats(i=1, **kw):
    base = dict(
        iteration=i, input_size=100, input_shape=(4, 25), mode="normal",
        plan_label="x", num_checkpointed=0, fwd_time=1.0, bwd_time=2.0,
        recompute_time=0.5, collect_time=0.0, planning_time=0.1,
        upkeep_time=0.2, optimizer_time=0.2, peak_in_use=100, peak_reserved=120,
        end_in_use=10, fragmentation_bytes=0,
    )
    base.update(kw)
    return IterationStats(**base)


def test_iteration_stats_totals():
    s = make_stats()
    assert s.total_time == pytest.approx(4.0)
    assert s.compute_time == pytest.approx(3.2)
    assert s.overhead_time == pytest.approx(0.8)


def test_run_result_aggregation():
    r = RunResult("t", "p", 1000)
    r.append(make_stats(1, peak_in_use=50))
    r.append(make_stats(2, peak_in_use=80, oom=True))
    assert r.num_iterations == 2
    assert r.peak_in_use == 80
    assert r.oom_count == 1
    assert not r.succeeded
    assert r.mean_iteration_time() == pytest.approx(4.0)
    assert r.time_breakdown()["fwd_time"] == pytest.approx(2.0)
    assert 0 < r.overhead_fraction() < 1


def test_run_result_normalization():
    a = RunResult("t", "a", 1)
    b = RunResult("t", "b", 1)
    a.append(make_stats(1))
    b.append(make_stats(1, fwd_time=3.0))
    assert b.normalized_time(a) > 1.0
    empty = RunResult("t", "c", 1)
    with pytest.raises(ValueError):
        a.normalized_time(empty)


def test_summarize_runs():
    r = RunResult("t", "p", 2 * GB)
    r.append(make_stats())
    rows = summarize_runs([r])
    assert rows[0]["task"] == "t"
    assert rows[0]["budget_gb"] == pytest.approx(2.0)
    assert rows[0]["succeeded"]
