"""Deeper architectural tests for the model zoo: per-op structure, cost
scaling, and the exact shapes the paper's analysis (§IV-C) relies on."""

import pytest

from repro.models.base import BatchInput
from repro.models.bert import BertConfig, BertEncoderLayer
from repro.models.registry import build_model
from repro.models.resnet import Bottleneck, ResNetStem
from repro.models.t5 import T5Config, T5DecoderLayer, T5EncoderLayer
from repro.planners.analysis import (
    boundary_bytes,
    unit_saved_bytes,
    unit_transient_bytes,
)
from repro.tensorsim.dtypes import FLOAT32
from repro.tensorsim.tensor import TensorSpec


def hidden_spec(b, length, dim=768):
    return TensorSpec((b, length, dim), FLOAT32)


# ----------------------------------------------------------------- bert parts

def test_encoder_activation_inventory():
    """The encoder pins exactly the tensors §IV-C enumerates: softmax
    probabilities (quadratic), dropout masks, GELU output, LayerNorm
    outputs, plus the per-op saved set."""
    enc = BertEncoderLayer(BertConfig(), 0)
    p = enc.profile(hidden_spec(2, 64))
    saved = [a for a in p.activations if a.saved]
    names = " ".join(a.name for a in saved)
    assert "softmax" in names
    assert "gelu" in names
    assert "ln" in names
    # dropout masks present (attention, attention-out, ffn)
    masks = [a for a in saved if a.spec.dtype.itemsize == 1]
    assert len(masks) == 3


def test_encoder_quadratic_term_is_the_score_tensor():
    enc = BertEncoderLayer(BertConfig(), 0)
    p = enc.profile(hidden_spec(1, 128))
    quad = [a for a in p.activations if a.spec.shape[-2:] == (128, 128)]
    assert quad, "expected seqlen x seqlen tensors"
    # scores (transient), softmax probs (saved), attn dropout mask+output
    assert any(a.saved for a in quad)
    assert any(not a.saved for a in quad)


def test_encoder_flops_quadratic_in_seqlen():
    enc = BertEncoderLayer(BertConfig(), 0)
    f = {}
    for length in (128, 256, 512):
        f[length] = enc.profile(hidden_spec(1, length)).fwd_flops
    # linear layers dominate at short lengths; attention pushes the ratio
    # beyond pure-linear scaling as length doubles
    assert f[256] / f[128] > 2.0
    assert f[512] / f[256] > f[256] / f[128]


def test_encoder_memory_linear_in_batch():
    enc = BertEncoderLayer(BertConfig(), 0)
    m1 = unit_saved_bytes(enc.profile(hidden_spec(4, 128)))
    m2 = unit_saved_bytes(enc.profile(hidden_spec(8, 128)))
    assert m2 == pytest.approx(2 * m1, rel=1e-6)


# ------------------------------------------------------------------- t5 parts

def test_t5_cross_attention_doubles_score_tensors():
    cfg = T5Config()
    enc = T5EncoderLayer(cfg, 0)
    dec = T5DecoderLayer(cfg, 0)
    x = hidden_spec(2, 64)
    enc_quads = [
        a for a in enc.profile(x).activations if a.spec.shape[-2:] == (64, 64)
    ]
    dec_quads = [
        a for a in dec.profile(x).activations if a.spec.shape[-2:] == (64, 64)
    ]
    assert len(dec_quads) == 2 * len(enc_quads)


def test_t5_bias_free_linears():
    cfg = T5Config()
    enc = T5EncoderLayer(cfg, 0)
    p = enc.profile(hidden_spec(1, 8))
    # 4 attention projections + 2 ffn, all bias-free, plus 2 layernorms
    h, f = cfg.hidden_size, cfg.ff_size
    expected = 4 * h * h + h * f + f * h + 2 * 2 * h
    assert p.param_count == expected


# --------------------------------------------------------------- resnet parts

def test_stem_downsamples_four_x():
    stem = ResNetStem()
    p = stem.profile(TensorSpec((2, 3, 224, 224), FLOAT32))
    assert p.output.shape == (2, 64, 56, 56)


def test_bottleneck_projection_only_when_needed():
    plain = Bottleneck("b", 256, 64, stride=1)
    assert not plain.has_projection
    strided = Bottleneck("b", 256, 128, stride=2)
    assert strided.has_projection
    first = Bottleneck("b", 64, 64, stride=1)  # channel change 64 -> 256
    assert first.has_projection


def test_bottleneck_shapes_and_params():
    blk = Bottleneck("b", 256, 64)
    p = blk.profile(TensorSpec((1, 256, 56, 56), FLOAT32))
    assert p.output.shape == (1, 256, 56, 56)
    conv_params = 256 * 64 + 64 * 64 * 9 + 64 * 256
    bn_params = 2 * (64 + 64 + 256)
    assert p.param_count == conv_params + bn_params


def test_bottleneck_memory_halves_with_stride():
    blk1 = Bottleneck("a", 256, 128, stride=1)
    blk2 = Bottleneck("b", 256, 128, stride=2)
    x = TensorSpec((1, 256, 56, 56), FLOAT32)
    assert unit_saved_bytes(blk2.profile(x)) < unit_saved_bytes(blk1.profile(x))


def test_resnet_boundary_dominance():
    """In CNNs the inter-unit boundaries are comparable to internals —
    the reason full checkpointing saves less than on transformers."""
    model = build_model("resnet50-det")
    profiles = model.profiles(BatchInput((2, 3, 512, 512), FLOAT32))
    by_name = {p.module_name: p for p in profiles}
    blk = by_name["layer1.0"]
    assert boundary_bytes(blk) > 0.1 * unit_saved_bytes(blk)


# ------------------------------------------------------------------ uniform

@pytest.mark.parametrize(
    "name", ["bert-base", "roberta-base", "t5-base", "gpt2-small", "swin-tiny"]
)
def test_every_unit_has_positive_cost(name):
    model = build_model(name)
    batch = model.probe_batch()
    for p in model.profiles(batch):
        assert p.fwd_flops > 0, p.module_name
        assert p.bwd_flops > 0, p.module_name
        assert p.output.numel > 0


@pytest.mark.parametrize(
    "name", ["bert-base", "t5-base", "resnet50-det", "swin-tiny", "gpt2-small"]
)
def test_transients_exist_everywhere(name):
    """Every architecture has forward-only working tensors — the memory
    the pipeline-liveness model (executor + predictor) must agree on."""
    model = build_model(name)
    batch = model.probe_batch()
    total_transient = sum(
        unit_transient_bytes(p) for p in model.profiles(batch)
    )
    assert total_transient > 0
