"""The analytic peak predictor must mirror the executor exactly."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.executor import TrainingExecutor
from repro.models.base import BatchInput
from repro.planners.analysis import (
    boundary_bytes,
    full_checkpoint_peak,
    no_checkpoint_peak,
    predict_peak_bytes,
    unit_saved_bytes,
    unit_transient_bytes,
)
from repro.planners.base import CheckpointPlan, ModelView, PlanDecision
from repro.planners.none import NoCheckpointPlanner
from repro.tensorsim.dtypes import FLOAT32, INT64

from tests.helpers import GB, make_tiny_model

#: max divergence allowed: allocator alignment rounding only
ALIGNMENT_SLACK = 64 * 1024


def executed_peak(model, batch, plan, capacity=64 * GB):
    planner = NoCheckpointPlanner(capacity)
    view = ModelView(model)
    planner.setup(view)
    ex = TrainingExecutor(model, planner, capacity_bytes=capacity)
    stats = ex.run_iteration(batch, PlanDecision(plan))
    assert not stats.oom
    return stats.peak_in_use


def predicted_peak(model, batch, plan):
    view = ModelView(model)
    return predict_peak_bytes(
        view.profiles(batch),
        plan,
        static_bytes=view.static_memory.total,
        input_nbytes=batch.nbytes,
        checkpointable=view.checkpointable,
    )


def test_no_checkpoint_prediction_matches_executor_tiny():
    model = make_tiny_model(num_units=5, features=256)
    b = BatchInput((128, 256), FLOAT32)
    assert abs(
        predicted_peak(model, b, CheckpointPlan.none())
        - executed_peak(model, b, CheckpointPlan.none())
    ) <= ALIGNMENT_SLACK


def test_full_checkpoint_prediction_matches_executor_tiny():
    model = make_tiny_model(num_units=5, features=256)
    names = [u.name for u in model.units]
    b = BatchInput((128, 256), FLOAT32)
    plan = CheckpointPlan.of(names, "all")
    assert abs(
        predicted_peak(model, b, plan) - executed_peak(model, b, plan)
    ) <= ALIGNMENT_SLACK


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_plans_match_executor_on_bert(bert_model, seed):
    rng = random.Random(seed)
    view = ModelView(bert_model)
    names = sorted(view.checkpointable)
    drop = frozenset(rng.sample(names, rng.randint(0, len(names))))
    plan = CheckpointPlan(drop, "rnd")
    b = BatchInput((16, 128), INT64)
    pred = predicted_peak(bert_model, b, plan)
    real = executed_peak(bert_model, b, plan)
    assert abs(pred - real) <= ALIGNMENT_SLACK


def test_bounds_bracket_every_plan(bert_model):
    view = ModelView(bert_model)
    b = BatchInput((16, 128), INT64)
    profiles = view.profiles(b)
    static = view.static_memory.total
    lb = full_checkpoint_peak(
        profiles, static_bytes=static, input_nbytes=b.nbytes,
        checkpointable=view.checkpointable,
    )
    ub = no_checkpoint_peak(profiles, static_bytes=static, input_nbytes=b.nbytes)
    assert lb < ub
    rng = random.Random(7)
    names = sorted(view.checkpointable)
    for _ in range(5):
        drop = frozenset(rng.sample(names, rng.randint(0, len(names))))
        peak = predict_peak_bytes(
            profiles, CheckpointPlan(drop, "x"),
            static_bytes=static, input_nbytes=b.nbytes,
            checkpointable=view.checkpointable,
        )
        assert lb <= peak  # nothing beats full checkpointing
        # a single-unit recompute window can exceed the no-ckpt peak
        # slightly (transients replayed on top of residents), Fig 9
        assert peak <= ub * 1.05


def test_checkpointing_last_unit_barely_helps(bert_model):
    """Fig 9's observation, as an invariant."""
    view = ModelView(bert_model)
    b = BatchInput((32, 256), INT64)
    profiles = view.profiles(b)
    static = view.static_memory.total
    first = predict_peak_bytes(
        profiles, CheckpointPlan.of(["encoder.0"], "f"),
        static_bytes=static, input_nbytes=b.nbytes,
        checkpointable=view.checkpointable,
    )
    last = predict_peak_bytes(
        profiles, CheckpointPlan.of(["encoder.11"], "l"),
        static_bytes=static, input_nbytes=b.nbytes,
        checkpointable=view.checkpointable,
    )
    ub = no_checkpoint_peak(profiles, static_bytes=static, input_nbytes=b.nbytes)
    assert first < ub  # early checkpoint reduces the peak
    assert last >= ub * 0.99  # the last one does not


def test_unit_byte_helpers(bert_model):
    b = BatchInput((8, 64), INT64)
    enc = bert_model.profiles(b)[1]
    assert unit_saved_bytes(enc) > 0
    assert unit_transient_bytes(enc) > 0
    assert boundary_bytes(enc) == 8 * 64 * 768 * 4


def test_more_checkpointing_never_increases_forward_peak():
    """Peaks are monotone when dropping a prefix of units."""
    model = make_tiny_model(num_units=6, features=512)
    names = [u.name for u in model.units]
    b = BatchInput((256, 512), FLOAT32)
    peaks = [
        predicted_peak(model, b, CheckpointPlan.of(names[:k], f"k{k}"))
        for k in range(len(names) + 1)
    ]
    for a, c in zip(peaks, peaks[1:]):
        assert c <= a + 1


@settings(max_examples=25, deadline=None)
@given(
    num_units=st.integers(2, 6),
    rows=st.integers(4, 64),
    drop_mask=st.integers(0, 63),
)
def test_property_predictor_equals_executor_on_tiny_models(
    num_units, rows, drop_mask
):
    model = make_tiny_model(num_units=num_units, features=128)
    names = [u.name for u in model.units]
    drop = frozenset(n for i, n in enumerate(names) if drop_mask & (1 << i))
    plan = CheckpointPlan(drop, "prop")
    b = BatchInput((rows, 128), FLOAT32)
    assert abs(
        predicted_peak(model, b, plan) - executed_peak(model, b, plan)
    ) <= ALIGNMENT_SLACK
