"""Tests for the deterministic fault-injection layer (tensorsim.faults)."""

import pytest

from repro.core.planner import MimosePlanner
from repro.engine.executor import TrainingExecutor
from repro.models.base import BatchInput
from repro.planners.base import ModelView
from repro.planners.none import NoCheckpointPlanner
from repro.tensorsim.dtypes import FLOAT32
from repro.tensorsim.faults import (
    FaultInjector,
    FaultPlan,
    FragmentationSpike,
    MispredictionNoise,
    TransientAllocFailures,
    parse_size,
)

from tests.helpers import GB, MB, make_tiny_model


# --------------------------------------------------------------- spec parsing

def test_parse_size_suffixes():
    assert parse_size("4096") == 4096
    assert parse_size("2K") == 2048
    assert parse_size("1.5M") == int(1.5 * MB)
    assert parse_size("1G") == GB
    assert parse_size("512MB") == 512 * MB
    with pytest.raises(ValueError):
        parse_size("banana")


def test_parse_full_spec():
    plan = FaultPlan.parse(
        "frag:start=20,iters=3,bytes=512M;"
        "alloc:start=30,count=2,min=1M;"
        "noise:sigma=0.1,bias=-0.05,start=2,iters=8",
        seed=11,
    )
    assert plan.seed == 11
    assert plan.spikes == (
        FragmentationSpike(start_iteration=20, num_iterations=3,
                           reserve_bytes=512 * MB),
    )
    assert plan.failures == (
        TransientAllocFailures(start_iteration=30, failures_per_iteration=2,
                               min_request_bytes=MB),
    )
    assert plan.noise == MispredictionNoise(
        sigma=0.1, bias=-0.05, start_iteration=2, num_iterations=8
    )
    assert not plan.empty
    assert "512MB" in plan.describe()


def test_parse_empty_spec_is_empty_plan():
    plan = FaultPlan.parse("")
    assert plan.empty
    assert plan.describe() == "no faults"


@pytest.mark.parametrize(
    "spec",
    [
        "quake:start=1",              # unknown kind
        "frag:start=1,wat=2",         # unknown option
        "frag:start",                 # malformed key=value
        "noise:sigma=0.1;noise:bias=0.2",  # duplicate noise clause
        "frag:start=0",               # 1-based iterations
    ],
)
def test_parse_rejects_bad_specs(spec):
    with pytest.raises(ValueError):
        FaultPlan.parse(spec)


# ------------------------------------------------------------------- injector

def test_spike_active_window():
    spike = FragmentationSpike(start_iteration=5, num_iterations=3,
                               reserve_bytes=MB)
    assert [spike.active(i) for i in (4, 5, 6, 7, 8)] == [
        False, True, True, True, False
    ]


def test_injector_phantom_follows_spike_window():
    plan = FaultPlan(spikes=(
        FragmentationSpike(start_iteration=2, num_iterations=2,
                           reserve_bytes=10 * MB),
        FragmentationSpike(start_iteration=3, num_iterations=1,
                           reserve_bytes=5 * MB),
    ))
    inj = plan.build()
    phantoms = []
    for it in (1, 2, 3, 4):
        inj.begin_iteration(it)
        phantoms.append(inj.phantom_bytes())
    assert phantoms == [0, 10 * MB, 15 * MB, 0]  # overlapping spikes add up
    assert inj.stats.spiked_iterations == 2


def test_transient_failures_fire_only_on_first_attempt():
    plan = FaultPlan(failures=(
        TransientAllocFailures(start_iteration=3, failures_per_iteration=2,
                               min_request_bytes=MB),
    ))
    inj = FaultInjector(plan)
    inj.begin_iteration(3)
    assert not inj.should_fail(1024)        # below min_request_bytes
    assert inj.should_fail(2 * MB)
    assert inj.should_fail(2 * MB)
    assert not inj.should_fail(2 * MB)      # budget exhausted
    inj.begin_iteration(3)                  # retry of the same iteration
    assert not inj.should_fail(2 * MB)      # transient: gone on retry
    assert inj.stats.injected_failures == 2


def test_noise_perturbation_deterministic_per_iteration():
    plan = FaultPlan(seed=5, noise=MispredictionNoise(sigma=0.2, bias=-0.1))
    a, b = plan.build(), plan.build()
    a.begin_iteration(4)
    b.begin_iteration(4)
    values = [10 * MB, 20 * MB, 30 * MB]
    assert [a.perturb_measurement(v) for v in values] == [
        b.perturb_measurement(v) for v in values
    ]
    # a different iteration draws from a different stream
    a.begin_iteration(5)
    b.begin_iteration(4)
    assert [a.perturb_measurement(v) for v in values] != [
        b.perturb_measurement(v) for v in values
    ]


def test_noise_bias_shifts_measurements():
    plan = FaultPlan(seed=1, noise=MispredictionNoise(sigma=0.0, bias=-0.25))
    inj = plan.build()
    inj.begin_iteration(1)
    assert inj.perturb_measurement(100 * MB) == 75 * MB
    assert inj.stats.perturbed_measurements == 1


def test_noise_outside_window_passes_through():
    plan = FaultPlan(noise=MispredictionNoise(sigma=0.5, start_iteration=10,
                                              num_iterations=2))
    inj = plan.build()
    inj.begin_iteration(9)
    assert inj.perturb_measurement(MB) == MB
    inj.begin_iteration(12)
    assert inj.perturb_measurement(MB) == MB


# ------------------------------------------------------- executor integration

def _no_ckpt_executor(budget, faults):
    model = make_tiny_model(num_units=4, features=64)
    planner = NoCheckpointPlanner(budget)
    planner.setup(ModelView(model))
    return TrainingExecutor(
        model, planner, capacity_bytes=budget, faults=faults
    )


def test_spike_reserves_memory_and_can_cause_oom():
    model = make_tiny_model(num_units=4, features=64)
    budget = model.static_memory().total + 60 * MB
    batch = BatchInput((1024, 64), FLOAT32)

    clean = _no_ckpt_executor(budget, None).step(batch)
    assert not clean.oom
    headroom = budget - clean.peak_reserved

    spiky = FaultPlan(spikes=(
        FragmentationSpike(start_iteration=1, num_iterations=1,
                           reserve_bytes=headroom + 10 * MB),
    ))
    faulted = _no_ckpt_executor(budget, spiky).step(batch)
    assert faulted.oom


def test_spike_block_is_released_after_the_iteration():
    model = make_tiny_model(num_units=4, features=64)
    budget = model.static_memory().total + 120 * MB
    plan = FaultPlan(spikes=(
        FragmentationSpike(start_iteration=1, num_iterations=1,
                           reserve_bytes=5 * MB),
    ))
    ex = _no_ckpt_executor(budget, plan)
    first = ex.step(BatchInput((256, 64), FLOAT32))
    assert not first.oom
    assert first.end_in_use == ex.static_bytes  # phantom block freed
    ex.allocator.check_consistency()


def test_noise_corrupts_collect_measurements():
    budget = int(2 * GB)

    def collected(faults):
        m = make_tiny_model(num_units=4, features=64)
        p = MimosePlanner(budget, collect_iterations=2,
                          headroom_bytes=4 * MB)
        p.setup(ModelView(m))
        ex = TrainingExecutor(m, p, capacity_bytes=budget, faults=faults)
        for rows in (256, 512):
            ex.step(BatchInput((rows, 64), FLOAT32))
        return p

    clean = collected(None)
    noisy = collected(
        FaultPlan(seed=2, noise=MispredictionNoise(sigma=0.0, bias=-0.5))
    )
    unit = next(iter(clean.collector.unit_names()))
    clean_bytes = [s.saved_bytes for s in clean.collector.samples(unit)]
    noisy_bytes = [s.saved_bytes for s in noisy.collector.samples(unit)]
    assert len(clean_bytes) == len(noisy_bytes)
    assert all(n < c for n, c in zip(noisy_bytes, clean_bytes))
