"""Executor-level lifecycle behaviour under drift scenarios.

Pins the two determinism contracts the online-replanning path must keep:

* a refit mid-run flushes the replay/compiled tiers through the
  executor-bound invalidation callback, and the flush is digest-neutral
  (the fast-path tiers are bit-identical to full simulation by
  construction, so only *how fast* iterations are served may change);
* parallel sweeps stay byte-identical to serial ones under every
  non-stationary input scenario, exactly as on stationary workloads.

Digest mismatches are reported at the *first divergent iteration* via
``RunResult.rolling_digests`` so a failure names the iteration where
simulated behaviour split, not just that it did.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.datasets import DRIFT_SCENARIOS
from repro.engine.events import EstimatorRefit
from repro.engine.stats import RunResult
from repro.experiments.runner import run_task, sweep
from repro.experiments.tasks import GB, load_task

TASK = "TC-Bert"
ITERATIONS = 30
BUDGET = int(5.0 * GB)


def assert_same_run(a: RunResult, b: RunResult, context: str) -> None:
    ra, rb = a.rolling_digests(), b.rolling_digests()
    for i, (da, db) in enumerate(zip(ra, rb)):
        assert da == db, (
            f"{context}: first divergent iteration {i} "
            f"({a.iterations[i]} != {b.iterations[i]})"
        )
    assert len(ra) == len(rb), (
        f"{context}: run lengths differ ({len(ra)} != {len(rb)})"
    )


class RefitRecorder:
    def __init__(self):
        self.events: list[EstimatorRefit] = []

    def attach(self, bus) -> "RefitRecorder":
        bus.subscribe(self, EstimatorRefit)
        return self

    def __call__(self, event: EstimatorRefit) -> None:
        self.events.append(event)


def drift_run(scenario: str, seed: int = 0, **kwargs) -> RunResult:
    task = load_task(
        TASK, iterations=ITERATIONS, seed=seed, drift_scenario=scenario
    )
    return run_task(
        task,
        "mimose",
        BUDGET,
        max_iterations=ITERATIONS,
        drift_detection=True,
        **kwargs,
    )


def test_refit_mid_run_invalidates_fastpath_tiers():
    recorder = RefitRecorder()
    result = drift_run(
        "regime-switch", observers=[lambda ex: recorder.attach(ex.events)]
    )
    # The regime switch forces at least one mid-run refit...
    assert result.refits >= 1
    assert result.refits == sum(1 for e in recorder.events if e.invalidated)
    # ...and every refit ran the full invalidation protocol (the initial
    # fit, which precedes any replay/compiled entries, never does).
    initial = [e for e in recorder.events if not e.invalidated]
    assert len(initial) == 1


def test_refit_invalidation_is_digest_neutral_and_deterministic():
    for scenario in DRIFT_SCENARIOS:
        with_compiled = drift_run(scenario)
        without = drift_run(scenario, compiled=False)
        assert_same_run(
            with_compiled, without, f"{scenario}: compiled on vs off"
        )
        again = drift_run(scenario)
        assert_same_run(with_compiled, again, f"{scenario}: repeat run")
        # determinism extends to the fast-path counters themselves: the
        # same refits flush the same entries at the same iterations
        assert with_compiled.replay_hits == again.replay_hits
        assert with_compiled.compiled_hits == again.compiled_hits
        assert with_compiled.refits == again.refits


@settings(max_examples=4, deadline=None)
@given(
    scenario=st.sampled_from(DRIFT_SCENARIOS),
    seed=st.integers(min_value=0, max_value=3),
)
def test_parallel_sweep_matches_serial_under_drift(scenario, seed):
    task = load_task(
        TASK, iterations=ITERATIONS, seed=seed, drift_scenario=scenario
    )
    budgets = [int(4.5 * GB), int(5.5 * GB)]
    serial = sweep(
        task,
        ("mimose",),
        budgets,
        max_iterations=ITERATIONS,
        drift_detection=True,
        jobs=1,
    )
    parallel = sweep(
        task,
        ("mimose",),
        budgets,
        max_iterations=ITERATIONS,
        drift_detection=True,
        jobs=2,
    )
    assert len(serial) == len(parallel) == len(budgets)
    for s, p in zip(serial, parallel):
        assert_same_run(
            s, p, f"{scenario} seed={seed} budget={s.budget_bytes}"
        )
        assert s.refits == p.refits
        assert s.drift_events == p.drift_events
