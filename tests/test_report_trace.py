"""Tests for text rendering and the memory timeline recorder."""

import pytest

from repro.engine.trace import MemoryTimeline, TimelinePoint
from repro.experiments.report import render_series, render_table


# -------------------------------------------------------------------- report

def test_render_table_alignment_and_values():
    rows = [
        {"name": "alpha", "value": 1.23456, "flag": True},
        {"name": "b", "value": 1000000.0, "flag": False},
    ]
    text = render_table(rows, title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert "alpha" in text and "yes" in text and "no" in text
    assert "1e+06" in text  # large floats go scientific
    # all rows align to the same width
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1


def test_render_table_column_selection_and_missing_keys():
    rows = [{"a": 1, "b": 2}]
    text = render_table(rows, columns=["b", "c"])
    assert "b" in text and "c" in text
    assert "1" not in text.splitlines()[-1]


def test_render_table_empty():
    assert "(no rows)" in render_table([], title="x")
    assert render_table([]) == "(no rows)"


def test_render_table_float_formatting():
    text = render_table([{"v": 0.25}])
    assert "0.25" in text
    text = render_table([{"v": 0.0001}])
    assert "0.0001" in text
    text = render_table([{"v": 0.0}])
    assert text.splitlines()[-1].strip() == "0"


def test_render_series():
    text = render_series(
        {"mimose": [(1, 1.1), (2, 1.0)]},
        x_label="budget",
        y_label="time",
        title="S",
    )
    assert text.startswith("S")
    assert "[mimose]" in text
    assert "-> 1.1" in text


# --------------------------------------------------------------------- trace

def test_timeline_record_and_peaks():
    tl = MemoryTimeline()
    tl.record(0.0, 100, 200, "fwd:a", 1)
    tl.record(0.1, 300, 400, "fwd:b", 1)
    tl.record(0.2, 50, 400, "bwd:a", 2)
    assert tl.peak_by_iteration() == {1: 300, 2: 50}
    assert [p.phase for p in tl.phases(1)] == ["fwd:a", "fwd:b"]
    assert tl.phases(3) == []


def test_timeline_disabled_records_nothing():
    tl = MemoryTimeline(enabled=False)
    tl.record(0.0, 1, 1, "x", 1)
    assert tl.points == []


def test_timeline_clear():
    tl = MemoryTimeline()
    tl.record(0.0, 1, 1, "x", 1)
    tl.clear()
    assert tl.points == []


def test_timeline_point_is_frozen():
    p = TimelinePoint(0.0, 1, 2, "x", 1)
    with pytest.raises(AttributeError):
        p.time = 5.0
