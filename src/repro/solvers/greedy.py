"""The paper's responsive schedulers (§IV-D, Algorithm 1) as solvers.

Given per-unit estimated activation sizes and the forward execution order,
pick the units to checkpoint so the estimated excess over the budget is
covered, preferring:

1. the layer whose activation size is *nearest above* the remaining excess
   (avoid over-dropping), falling back to the largest layer when none
   covers it alone;
2. within a ±10 % size bucket, the layer with the *earliest* forward
   timestamp — checkpointing late layers barely lowers the peak because
   their recompute happens while everything else is still resident
   (Fig 9).

:class:`KnapsackScheduler` is the Knapsack-style alternative the paper
mentions, and :class:`HybridGreedyScheduler` prices RECOMPUTE against
SWAP per unit through a pluggable :class:`~repro.solvers.base.CostModel`
(Capuchin's rule, shared with :mod:`repro.planners.capuchin`), which is
what lets ``MimosePlanner`` emit input-aware hybrid plans
(``repro run --solver hybrid``).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.planners.base import ActionAssignment
from repro.solvers.base import (
    CostModel,
    PcieCostModel,
    Solver,
    SolverInput,
    register_solver,
)
from repro.tensorsim.device import DeviceModel


@register_solver
class GreedyScheduler(Solver):
    """Algorithm 1: bucketed greedy selection.

    Args:
        bucket_tolerance: relative width of a similarity bucket; 0.10 is
            the paper's ±10 %.
    """

    name = "greedy"

    def __init__(self, bucket_tolerance: float = 0.10) -> None:
        if not 0.0 <= bucket_tolerance < 1.0:
            raise ValueError("bucket_tolerance must be in [0, 1)")
        self.bucket_tolerance = bucket_tolerance

    def build_buckets(self, inp: SolverInput) -> list[list[str]]:
        """Group units of similar estimated size (Algorithm 1 lines 2-12).

        Buckets are ordered by descending size; units inside a bucket by
        ascending forward timestamp.
        """
        remaining = sorted(
            inp.est_bytes, key=lambda u: inp.est_bytes[u], reverse=True
        )
        buckets: list[list[str]] = []
        i = 0
        while i < len(remaining):
            head = remaining[i]
            head_size = inp.est_bytes[head]
            floor = head_size * (1.0 - self.bucket_tolerance)
            j = i + 1
            while j < len(remaining) and inp.est_bytes[remaining[j]] > floor:
                j += 1
            bucket = sorted(remaining[i:j], key=lambda u: inp.order[u])
            buckets.append(bucket)
            i = j
        return buckets

    def schedule(self, inp: SolverInput) -> frozenset[str]:
        if inp.excess_bytes <= 0:
            return frozenset()
        buckets = self.build_buckets(inp)
        chosen: list[str] = []
        excess = inp.excess_bytes
        while excess > 0 and buckets:
            # Buckets whose largest member alone covers the excess
            # (Algorithm 1 line 15); choose the tightest one.
            candidates = [
                b for b in buckets
                if max(inp.est_bytes[u] for u in b) >= excess
            ]
            if candidates:
                bucket = min(
                    candidates, key=lambda b: max(inp.est_bytes[u] for u in b)
                )
                # "Nearest above": only members that cover the excess alone
                # qualify — the earliest-timestamp member of the bucket may
                # be up to bucket_tolerance smaller than the excess, and
                # picking it would force one extra (over-dropping) pick.
                unit = min(
                    (u for u in bucket if inp.est_bytes[u] >= excess),
                    key=lambda u: inp.order[u],
                )
                bucket.remove(unit)
            else:
                bucket = buckets[0]  # largest activations first
                unit = bucket.pop(0)  # earliest timestamp inside the bucket
            if not bucket:
                buckets.remove(bucket)
            chosen.append(unit)
            excess -= inp.est_bytes[unit]
        return frozenset(chosen)


@register_solver
class KnapsackScheduler(Solver):
    """Exact alternative: minimise recompute time subject to coverage.

    Solves min sum(time_u) over subsets with sum(bytes_u) >= excess via DP
    on quantised bytes.  Useful as an ablation upper bound on plan quality;
    slower than the greedy pass but still sub-millisecond at unit counts.
    """

    name = "knapsack"
    _QUANTUM = 1 << 20  # 1 MiB

    def schedule(self, inp: SolverInput) -> frozenset[str]:
        if inp.excess_bytes <= 0:
            return frozenset()
        need = math.ceil(inp.excess_bytes / self._QUANTUM)
        # Round *down*: each counted quantum under-states the unit's real
        # bytes, so DP coverage (sum(sizes) >= need) guarantees the real
        # bytes freed reach excess_bytes.  A max(1, ...) floor here would
        # let a sub-quantum unit masquerade as a full MiB and leave the
        # excess uncovered.  Zero-quantum units can never help cover, so
        # they are excluded from the DP outright.
        sizes = {
            u: b // self._QUANTUM
            for u, b in inp.est_bytes.items()
            if b >= self._QUANTUM
        }
        units = list(sizes)
        times = {
            u: (inp.est_time[u] if inp.est_time else float(inp.order[u] + 1))
            for u in units
        }
        total = sum(sizes.values())
        if total < need:
            # Even every DP-eligible unit falls short of guaranteed
            # coverage; drop everything, sub-quantum units included.
            return frozenset(inp.est_bytes)
        # rows[i][c] = min time to cover >= c quanta using the first i units
        inf = float("inf")
        rows: list[list[float]] = [[0.0, *([inf] * need)]]
        for u in units:
            w, t = sizes[u], times[u]
            prev = rows[-1]
            cur = prev[:]
            for c in range(1, need + 1):
                src = prev[max(0, c - w)] + t
                if src < cur[c]:
                    cur[c] = src
            rows.append(cur)
        if rows[-1][need] == inf:
            return frozenset(inp.est_bytes)
        chosen: list[str] = []
        c = need
        for i in range(len(units), 0, -1):
            if rows[i][c] != rows[i - 1][c]:
                u = units[i - 1]
                chosen.append(u)
                c = max(0, c - sizes[u])
        return frozenset(chosen)


@register_solver
class HybridGreedyScheduler(Solver):
    """Per-unit swap-vs-recompute greedy over a :class:`CostModel`.

    Capuchin's selection loop, lifted out of the planner so any caller
    with per-unit byte/time estimates can use it: walk the units largest
    activations first until the excess is covered, and for each pick the
    cheaper action — SWAP when its residual stall undercuts the unit's
    recompute time *and* the cumulative transfer still fits the copy
    engine's envelope, RECOMPUTE otherwise.  Zero-byte units free
    nothing and are skipped.

    With :class:`~repro.core.planner.MimosePlanner` driving it
    (``repro run --solver hybrid``), the estimates come from the
    Lightning estimator per input size, making the swap/recompute split
    input-aware — the ROADMAP "choose per tensor" item.
    """

    name = "hybrid"
    prices_actions = True

    def __init__(self, cost_model: Optional[CostModel] = None) -> None:
        self.cost_model = (
            cost_model if cost_model is not None else PcieCostModel()
        )

    @classmethod
    def create(
        cls,
        *,
        device: Optional[DeviceModel] = None,
        pcie_bandwidth: Optional[float] = None,
        bwd_ratio: Optional[float] = None,
    ) -> "HybridGreedyScheduler":
        return cls(
            PcieCostModel(
                device, pcie_bandwidth=pcie_bandwidth, bwd_ratio=bwd_ratio
            )
        )

    def schedule(self, inp: SolverInput) -> frozenset[str]:
        """Recompute-only view of :meth:`assign` (legacy callers)."""
        return self.assign(inp).checkpoint_units

    def assign(self, inp: SolverInput) -> ActionAssignment:
        if inp.excess_bytes <= 0:
            return ActionAssignment.empty()
        model = self.cost_model
        # One O(n) envelope + window per call, not per unit: the per-unit
        # swap price is max(0, transfer - window), float-identical to
        # model.swap_cost(name, inp) but without re-deriving the window
        # (itself an O(n) mean) inside the selection loop.
        envelope = model.transfer_envelope(inp)
        window = model.overlap_window(inp)
        drop: set[str] = set()
        swap: set[str] = set()
        freed = 0
        cum_transfer = 0.0
        for name in sorted(inp.est_bytes, key=lambda n: -inp.est_bytes[n]):
            if freed >= inp.excess_bytes:
                break
            nbytes = inp.est_bytes[name]
            if nbytes == 0:
                continue
            transfer = model.transfer_time(nbytes)
            fits_bandwidth = cum_transfer + transfer <= envelope
            stall = max(0.0, transfer - window)
            if stall < model.recompute_cost(name, inp) and fits_bandwidth:
                swap.add(name)
                cum_transfer += transfer
            else:
                drop.add(name)
            freed += nbytes
        return ActionAssignment.from_sets(
            recompute=frozenset(drop), swap=frozenset(swap)
        )
