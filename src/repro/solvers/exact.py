"""Exact optimality bound: branch-and-bound over per-unit actions.

The per-unit action layer is exactly the decision-variable set of
Checkmate's ILP (Jain et al., MLSys 2020) restricted to one unit tier:
for every checkpointable unit choose KEEP, RECOMPUTE or SWAP, minimise
the predicted overhead seconds (:func:`~repro.solvers.base.plan_cost`)
subject to

* coverage — released bytes reach the input's excess (capped at the
  total, the exhaustion case every heuristic also honours), and
* the copy-engine envelope — summed swap transfer time fits
  :meth:`~repro.solvers.base.CostModel.transfer_envelope`.

Pure python, no external solver, fully deterministic: units are visited
largest-bytes-first (name as tie-break), branches cheapest-action-first,
and the incumbent only ever *strictly* improves, so ties resolve to the
first solution in that fixed order.

Tractability: the search is exponential in the worst case but the
fractional-relaxation bound plus the swap-dominance prune keep it well
under a millisecond at the repo's unit counts (≤ ~100 units; see
``benchmarks/bench_optimality.py`` for the pinned 64-unit wall time).
``max_units`` guards against pathological inputs — the gap harness
skips cells beyond it rather than hanging.
"""

from __future__ import annotations

from typing import Optional

from repro.planners.base import ActionAssignment, MemoryAction
from repro.solvers.base import (
    CostModel,
    PcieCostModel,
    Solver,
    SolverInput,
    plan_cost,
    plan_feasible,
    register_solver,
)
from repro.solvers.greedy import GreedyScheduler, HybridGreedyScheduler
from repro.tensorsim.device import DeviceModel

_KEEP = 0
_RECOMPUTE = 1
_SWAP = 2


@register_solver
class ExactSolver(Solver):
    """Minimum-cost KEEP/RECOMPUTE/SWAP assignment by branch-and-bound.

    The optimality reference for every other solver in the registry:
    :mod:`repro.experiments.optimality` prices each solver's plan with
    the shared cost model and reports the relative gap against this
    solver's optimum (identically zero for the exact solver itself).

    Args:
        cost_model: action pricing; defaults to :class:`PcieCostModel`.
        max_units: refuse inputs with more (non-zero-byte) units than
            this — exactness is only claimed where the search is known
            tractable.
    """

    name = "exact"
    prices_actions = True

    #: Search-size backstop: exactness is never claimed past this many
    #: explored nodes — pathological inputs raise instead of hanging.
    MAX_NODES = 2_000_000

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        *,
        max_units: int = 128,
    ) -> None:
        self.cost_model = (
            cost_model if cost_model is not None else PcieCostModel()
        )
        self.max_units = max_units

    @classmethod
    def create(
        cls,
        *,
        device: Optional[DeviceModel] = None,
        pcie_bandwidth: Optional[float] = None,
        bwd_ratio: Optional[float] = None,
    ) -> "ExactSolver":
        return cls(
            PcieCostModel(
                device, pcie_bandwidth=pcie_bandwidth, bwd_ratio=bwd_ratio
            )
        )

    def schedule(self, inp: SolverInput) -> frozenset[str]:
        """Recompute-only view of :meth:`assign` (legacy callers)."""
        return self.assign(inp).checkpoint_units

    def assign(self, inp: SolverInput) -> ActionAssignment:
        if inp.excess_bytes <= 0:
            return ActionAssignment.empty()
        model = self.cost_model
        # Zero-byte units release nothing: any action on them only adds
        # cost, so the optimum keeps them and they stay out of the search.
        units = sorted(
            (u for u in inp.est_bytes if inp.est_bytes[u] > 0),
            key=lambda u: (-inp.est_bytes[u], u),
        )
        if len(units) > self.max_units:
            raise ValueError(
                f"exact solver capped at {self.max_units} units; "
                f"got {len(units)}"
            )
        if not units:
            return ActionAssignment.empty()
        n = len(units)
        nbytes = [inp.est_bytes[u] for u in units]
        rcost = [model.recompute_cost(u, inp) for u in units]
        window = model.overlap_window(inp)
        envelope = model.transfer_envelope(inp)
        transfer = [model.transfer_time(b) for b in nbytes]
        scost = [max(0.0, t - window) for t in transfer]
        # Exhaustion: when even everything falls short, freeing it all
        # as cheaply as possible is the best any plan can do.
        excess = min(inp.excess_bytes, sum(nbytes))

        # Suffix totals for the can-still-cover prune, and the fractional
        # relaxation bound: cheapest per-byte completion ignoring
        # integrality and the envelope (both relaxations only lower the
        # bound, so pruning on it is safe).
        suffix_bytes = [0] * (n + 1)
        for i in range(n - 1, -1, -1):
            suffix_bytes[i] = suffix_bytes[i + 1] + nbytes[i]
        density = [min(rcost[i], scost[i]) / nbytes[i] for i in range(n)]
        suffix_sorted: list[list[tuple[float, int]]] = [[] for _ in range(n + 1)]
        for i in range(n - 1, -1, -1):
            merged = list(suffix_sorted[i + 1])
            merged.append((density[i], nbytes[i]))
            merged.sort(key=lambda db: db[0])
            suffix_sorted[i] = merged

        def completion_bound(i: int, remaining: int) -> float:
            bound = 0.0
            for dens, size in suffix_sorted[i]:
                if remaining <= 0:
                    break
                take = size if size < remaining else remaining
                bound += dens * take
                remaining -= take
            return bound

        # Incumbent: seed from the fast heuristics so the search starts
        # with a tight upper bound instead of discovering one depth-first.
        best_cost = float("inf")
        best_actions: Optional[list[int]] = None
        for heuristic in (
            HybridGreedyScheduler(model),
            GreedyScheduler(),
        ):
            seed = heuristic.assign(inp)
            if not plan_feasible(model, seed, inp):
                continue
            cost = plan_cost(model, seed, inp)
            if cost < best_cost:
                best_cost = cost
                best_actions = [
                    {
                        MemoryAction.KEEP: _KEEP,
                        MemoryAction.RECOMPUTE: _RECOMPUTE,
                        MemoryAction.SWAP: _SWAP,
                    }[seed.action_for(u)]
                    for u in units
                ]

        # Symmetry break: units indistinguishable to the objective and
        # both constraints (same bytes, same prices) are interchangeable,
        # so only one canonical action sequence per run is explored —
        # action ranks non-decreasing along the run (RECOMPUTE < SWAP <
        # KEEP).  Without this, tie-heavy inputs explode combinatorially
        # for no change in the optimal value.
        same_as_prev = [False] + [
            nbytes[i] == nbytes[i - 1]
            and rcost[i] == rcost[i - 1]
            and scost[i] == scost[i - 1]
            for i in range(1, n)
        ]
        rank = {_RECOMPUTE: 0, _SWAP: 1, _KEEP: 2}

        actions = [_KEEP] * n
        nodes = 0

        def search(i: int, freed: int, cum_transfer: float, cost: float) -> None:
            nonlocal best_cost, best_actions, nodes
            nodes += 1
            if nodes > self.MAX_NODES:
                raise ValueError(
                    f"exact search exceeded {self.MAX_NODES} nodes"
                )
            if cost >= best_cost:
                return
            if freed >= excess:
                best_cost = cost
                best_actions = actions[:]
                return
            if i == n or freed + suffix_bytes[i] < excess:
                return
            if cost + completion_bound(i, excess - freed) >= best_cost:
                return
            min_rank = rank[actions[i - 1]] if same_as_prev[i] else 0
            r, s = rcost[i], scost[i]
            # SWAP is dominated when its stall matches or exceeds the
            # recompute price: replacing it by RECOMPUTE frees the same
            # bytes at no greater cost and releases envelope budget.
            swap_ok = (
                s < r
                and cum_transfer + transfer[i] <= envelope
                and min_rank <= rank[_SWAP]
            )
            branches: list[tuple[float, int, float]] = []
            if min_rank <= rank[_RECOMPUTE]:
                branches.append((r, _RECOMPUTE, 0.0))
            if swap_ok:
                branches.append((s, _SWAP, transfer[i]))
                branches.sort(key=lambda b: b[0])
            for branch_cost, action, tr in branches:
                actions[i] = action
                search(
                    i + 1, freed + nbytes[i], cum_transfer + tr,
                    cost + branch_cost,
                )
            actions[i] = _KEEP
            search(i + 1, freed, cum_transfer, cost)

        search(0, 0, 0.0, 0.0)
        if best_actions is None:
            # Unreachable while excess <= total (the root's RECOMPUTE-all
            # path is always feasible), kept as a correctness backstop.
            return ActionAssignment.from_sets(recompute=frozenset(units))
        recompute = frozenset(
            u for u, a in zip(units, best_actions) if a == _RECOMPUTE
        )
        swap = frozenset(
            u for u, a in zip(units, best_actions) if a == _SWAP
        )
        return ActionAssignment.from_sets(recompute=recompute, swap=swap)
