"""LP relaxation + deterministic threshold-rounding sweep.

Checkmate's ``strategy_approx_lp`` (Jain et al., MLSys 2020) solves the
LP relaxation of its ILP and rounds the fractional solution at a sweep
of thresholds, keeping the best feasible integral plan.  This solver is
that scheme specialised to the repo's one-tier action layer, where the
relaxation is small enough to solve in closed form — no external LP
dependency:

* Relaxation.  ``min Σ c_u·x_u  s.t.  Σ bytes_u·x_u ≥ excess, 0 ≤ x ≤ 1``
  with ``c_u = min(recompute_cost, swap_stall)`` is a fractional
  covering knapsack; the greedy walk in ascending cost-per-byte order is
  its exact optimum (at most one unit ends up fractional).

* Rounding.  Sweep every distinct fractional value as a threshold θ and
  select ``{u : x_u ≥ θ}``; for each candidate set, re-assign actions
  integrally — cheapest action per unit, swaps admitted in ascending
  stall order while the copy-engine envelope holds — and keep the
  lowest-cost feasible plan.  The sweep is over the solution's own
  values, so it is deterministic and needs no RNG.

The relaxation's objective value is a true lower bound on any integral
plan, which also makes this module the cross-check for the exact
solver: ``ExactSolver``'s optimum always lands between
:func:`fractional_lower_bound` and this solver's rounded cost.
"""

from __future__ import annotations

from typing import Optional

from repro.planners.base import ActionAssignment
from repro.solvers.base import (
    CostModel,
    PcieCostModel,
    Solver,
    SolverInput,
    plan_cost,
    plan_feasible,
    register_solver,
)
from repro.tensorsim.device import DeviceModel


def fractional_lower_bound(model: CostModel, inp: SolverInput) -> float:
    """Optimal value of the LP relaxation: a lower bound on every plan.

    Ignores the envelope and integrality (both relaxations can only
    lower the value), prices each unit at its cheaper action, and fills
    the coverage constraint in ascending cost-per-byte order.
    """
    if inp.excess_bytes <= 0:
        return 0.0
    window = model.overlap_window(inp)
    units = [(u, b) for u, b in inp.est_bytes.items() if b > 0]
    remaining = min(inp.excess_bytes, sum(b for _, b in units))
    priced = sorted(
        (
            (
                min(
                    model.recompute_cost(u, inp),
                    max(0.0, model.transfer_time(b) - window),
                )
                / b,
                u,
                b,
            )
            for u, b in units
        ),
        key=lambda t: (t[0], t[1]),
    )
    bound = 0.0
    for density, _, b in priced:
        if remaining <= 0:
            break
        take = b if b < remaining else remaining
        bound += density * take
        remaining -= take
    return bound


@register_solver
class LpRoundingSolver(Solver):
    """Closed-form LP relaxation, then a threshold-rounding sweep."""

    name = "lp"
    prices_actions = True

    def __init__(self, cost_model: Optional[CostModel] = None) -> None:
        self.cost_model = (
            cost_model if cost_model is not None else PcieCostModel()
        )

    @classmethod
    def create(
        cls,
        *,
        device: Optional[DeviceModel] = None,
        pcie_bandwidth: Optional[float] = None,
        bwd_ratio: Optional[float] = None,
    ) -> "LpRoundingSolver":
        return cls(
            PcieCostModel(
                device, pcie_bandwidth=pcie_bandwidth, bwd_ratio=bwd_ratio
            )
        )

    def schedule(self, inp: SolverInput) -> frozenset[str]:
        """Recompute-only view of :meth:`assign` (legacy callers)."""
        return self.assign(inp).checkpoint_units

    def _integral_plan(
        self, chosen: list[str], inp: SolverInput
    ) -> ActionAssignment:
        """Assign each chosen unit its cheaper action under the envelope.

        Swaps are admitted in ascending stall order (cheapest residuals
        claim the copy engine first); once the envelope is exhausted the
        rest recompute.
        """
        model = self.cost_model
        window = model.overlap_window(inp)
        envelope = model.transfer_envelope(inp)
        wants_swap: list[tuple[float, str, float]] = []
        recompute: set[str] = set()
        for u in chosen:
            transfer = model.transfer_time(inp.est_bytes[u])
            stall = max(0.0, transfer - window)
            if stall < model.recompute_cost(u, inp):
                wants_swap.append((stall, u, transfer))
            else:
                recompute.add(u)
        swap: set[str] = set()
        cum_transfer = 0.0
        for stall, u, transfer in sorted(wants_swap):
            if cum_transfer + transfer <= envelope:
                swap.add(u)
                cum_transfer += transfer
            else:
                recompute.add(u)
        return ActionAssignment.from_sets(
            recompute=frozenset(recompute), swap=frozenset(swap)
        )

    def assign(self, inp: SolverInput) -> ActionAssignment:
        if inp.excess_bytes <= 0:
            return ActionAssignment.empty()
        model = self.cost_model
        window = model.overlap_window(inp)
        units = [(u, b) for u, b in inp.est_bytes.items() if b > 0]
        if not units:
            return ActionAssignment.empty()
        need = min(inp.excess_bytes, sum(b for _, b in units))
        # Relaxation optimum: walk ascending cost-per-byte; every unit
        # before the waterline gets x=1, the waterline unit the fractional
        # remainder, everything after x=0.
        priced = sorted(
            (
                (
                    min(
                        model.recompute_cost(u, inp),
                        max(0.0, model.transfer_time(b) - window),
                    )
                    / b,
                    u,
                    b,
                )
                for u, b in units
            ),
            key=lambda t: (t[0], t[1]),
        )
        x: dict[str, float] = {}
        remaining = need
        for _, u, b in priced:
            if remaining <= 0:
                x[u] = 0.0
            elif b <= remaining:
                x[u] = 1.0
                remaining -= b
            else:
                x[u] = remaining / b
                remaining = 0
        # Threshold sweep over the solution's own distinct values: θ just
        # above each value excludes it, θ at it includes it.  Descending
        # thresholds move from the sparsest candidate to the densest.
        thresholds = sorted({v for v in x.values() if v > 0.0}, reverse=True)
        best: Optional[ActionAssignment] = None
        best_cost = float("inf")
        for theta in thresholds:
            chosen = sorted(u for u, v in x.items() if v >= theta)
            candidate = self._integral_plan(chosen, inp)
            if not plan_feasible(model, candidate, inp):
                continue
            cost = plan_cost(model, candidate, inp)
            if cost < best_cost:
                best_cost = cost
                best = candidate
        if best is None:
            # No threshold covers (can only happen through rounding
            # corner cases); fall back to dropping every priced unit.
            best = self._integral_plan([u for u, _ in units], inp)
        return best
