"""One solver family over :class:`~repro.planners.base.ActionAssignment`.

Every planning algorithm in the repo — the paper's Algorithm 1 greedy,
the knapsack alternative, the Capuchin-style hybrid, the static planner
cores, and the optimality harness (exact branch-and-bound, LP rounding,
Chen baselines) — implements :class:`Solver` and registers under a name;
:func:`make_solver` is the single construction point for the runner, the
CLI (``repro run --solver``) and ``MimosePlanner``.

Importing this package registers the built-in solvers (the same
import-for-effect idiom as :mod:`repro.engine.strategies` and
:mod:`repro.analysis.rules`).
"""

from repro.solvers.base import (
    CostModel,
    PcieCostModel,
    Scheduler,
    SchedulerInput,
    Solver,
    SolverInput,
    covered_bytes,
    make_solver,
    plan_cost,
    plan_feasible,
    predicted_swap_stall,
    register_solver,
    required_coverage,
    solver_class,
    solver_names,
)
from repro.solvers.greedy import (
    GreedyScheduler,
    HybridGreedyScheduler,
    KnapsackScheduler,
)
from repro.solvers.exact import ExactSolver
from repro.solvers.lp import LpRoundingSolver, fractional_lower_bound
from repro.solvers.chen import ChenGreedySolver, ChenSqrtNSolver
from repro.solvers.adapters import CheckmateSolver, SublinearSolver

__all__ = [
    "CostModel",
    "PcieCostModel",
    "Scheduler",
    "SchedulerInput",
    "Solver",
    "SolverInput",
    "covered_bytes",
    "make_solver",
    "plan_cost",
    "plan_feasible",
    "predicted_swap_stall",
    "register_solver",
    "required_coverage",
    "solver_class",
    "solver_names",
    "GreedyScheduler",
    "HybridGreedyScheduler",
    "KnapsackScheduler",
    "ExactSolver",
    "LpRoundingSolver",
    "fractional_lower_bound",
    "ChenGreedySolver",
    "ChenSqrtNSolver",
    "CheckmateSolver",
    "SublinearSolver",
]
