"""Solver family over :class:`~repro.planners.base.ActionAssignment`.

One decision layer for every planning idea in the repo: a *solver* maps a
:class:`SolverInput` (per-unit byte/time estimates for one input size) to
an :class:`~repro.planners.base.ActionAssignment` — a memory action per
unit.  The paper's Algorithm 1 greedy pass, the knapsack alternative, the
Capuchin-style hybrid, the optimality harness (exact branch-and-bound, LP
rounding) and the Chen et al. baselines are all solvers behind the same
registry, so ``MimosePlanner``, the runner, and the CLI construct them by
name with no per-family branching.

Registration mirrors :func:`repro.engine.strategies.register_strategy`
and :func:`repro.analysis.core.register_rule`: decorate the class, the
registry key is its ``name`` attribute, and :func:`make_solver` is the
single construction point (``repro run --solver <name>``).

The cost vocabulary is shared too: :func:`plan_cost` prices any
assignment — recompute seconds for dropped units, residual stall seconds
for swapped ones — with the same :class:`CostModel` the hybrid and exact
solvers optimise against, which is what makes per-cell optimality gaps
(:mod:`repro.experiments.optimality`) comparable across solvers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional, Protocol

from repro.tensorsim.device import DeviceModel


@dataclass(frozen=True, slots=True)
class SolverInput:
    """Everything a solver may consider for one input size.

    Attributes:
        est_bytes: estimated activation bytes per checkpointable unit.
        order: forward timestamp (index) per unit.
        excess_bytes: estimated bytes beyond the usable budget that the
            plan must release.
        est_time: optional estimated forward (recompute) seconds per unit.
        bwd_time: optional estimated backward seconds per unit (cost
            models derive the swap overlap window from it; filled from
            sheltered backward measurements by both the Capuchin planner
            and ``MimosePlanner`` once the estimator has backward data).
    """

    est_bytes: Mapping[str, int]
    order: Mapping[str, int]
    excess_bytes: int
    est_time: Mapping[str, float] | None = None
    bwd_time: Mapping[str, float] | None = None


#: Historical name, kept for the pre-refactor scheduler vocabulary
#: (``repro.core.scheduler`` re-exports it).
SchedulerInput = SolverInput


class CostModel(Protocol):
    """Prices each :class:`~repro.planners.base.MemoryAction` per unit.

    Implementations read the estimates carried by a
    :class:`SolverInput` and a device model; they never touch planner
    state, so one instance can be shared between planners (Capuchin and
    hybrid Mimose price actions through the same object).
    """

    def recompute_cost(self, unit: str, inp: SolverInput) -> float:
        """Seconds to rematerialise the unit (its forward time)."""
        ...

    def swap_cost(self, unit: str, inp: SolverInput) -> float:
        """Stall seconds swapping costs beyond the backward overlap."""
        ...

    def transfer_time(self, nbytes: int) -> float:
        """Raw PCIe transfer seconds for one unit's activations."""
        ...

    def overlap_window(self, inp: SolverInput) -> float:
        """Backward compute a transfer can hide under, seconds."""
        ...

    def transfer_envelope(self, inp: SolverInput) -> float:
        """Aggregate transfer budget for the whole plan, seconds."""
        ...


class PcieCostModel:
    """Capuchin's swap/recompute pricing rule (Peng et al., ASPLOS 2020).

    ``swap_cost(u) = max(0, transfer_time(bytes_u) - overlap_window)``
    against ``recompute_cost(u) = forward_time(u)``, plus an aggregate
    envelope — swap-outs serialise on one copy engine and must complete
    roughly within the forward pass, so transfers beyond
    ``envelope_fraction`` of the total forward time never finish before
    their backward (the paper's §II observation that PCIe cannot keep up
    with activation production).

    The overlap window is the mean per-unit backward time when the input
    carries measured backwards (Capuchin's measured-execution
    discipline).  Without measured backwards it falls back to
    ``bwd_ratio`` × the mean estimated forward time — the backward ≈ 2×
    forward *folk* rule, a rough average that is wrong per architecture
    (attention-heavy vs. conv-heavy units differ substantially), which
    is exactly why measured backwards exist.  The fallback ratio is
    :data:`DEFAULT_BWD_RATIO` unless the caller forces one.

    Args:
        device: device model used to price PCIe transfers.
        pcie_bandwidth: host link bandwidth (bytes/s); ``None`` prices
            transfers at the device preset's own link speed.
        bwd_ratio: ``None`` (the default) prefers measured ``bwd_time``
            and uses :data:`DEFAULT_BWD_RATIO` only as the fallback when
            backwards were never measured.  An explicit float *forces*
            ratio pricing even when measured backwards are available —
            the ``--bwd-ratio`` CLI override, useful for A/B-ing the
            constant against measured pricing.
        envelope_fraction: fraction of total forward time available to
            the copy engine.
    """

    #: Fallback backward/forward ratio when no backwards were measured.
    #: A folk constant, not a law — see the class docstring.
    DEFAULT_BWD_RATIO = 2.0

    def __init__(
        self,
        device: Optional[DeviceModel] = None,
        *,
        pcie_bandwidth: Optional[float] = None,
        bwd_ratio: Optional[float] = None,
        envelope_fraction: float = 0.8,
    ) -> None:
        self.device = device if device is not None else DeviceModel()
        self.pcie_bandwidth = pcie_bandwidth
        self.bwd_ratio = bwd_ratio
        self.envelope_fraction = envelope_fraction

    def transfer_time(self, nbytes: int) -> float:
        return self.device.transfer_time(
            nbytes, pcie_bandwidth=self.pcie_bandwidth
        )

    def recompute_cost(self, unit: str, inp: SolverInput) -> float:
        if inp.est_time is None:
            # No time information: recompute is assumed free, so swapping
            # (whose stall is never negative) is never preferred.
            return 0.0
        return inp.est_time[unit]

    def pricing_mode(self, inp: SolverInput) -> str:
        """Which branch :meth:`overlap_window` takes for this input.

        One of ``"measured-bwd"`` (per-unit measured backwards),
        ``"ratio-override"`` (caller forced an explicit ratio),
        ``"ratio-fallback"`` (no backwards measured; the
        :data:`DEFAULT_BWD_RATIO` constant), or ``"untimed"`` (no time
        estimates at all — swapping never wins).
        """
        if self.bwd_ratio is not None:
            return "ratio-override" if inp.est_time is not None else "untimed"
        if inp.bwd_time is not None:
            return "measured-bwd"
        if inp.est_time is not None:
            return "ratio-fallback"
        return "untimed"

    def overlap_window(self, inp: SolverInput) -> float:
        if self.bwd_ratio is None and inp.bwd_time is not None:
            bwd = list(inp.bwd_time.values())
            return sum(bwd) / max(len(bwd), 1)
        if inp.est_time is None:
            return 0.0
        ratio = (
            self.DEFAULT_BWD_RATIO if self.bwd_ratio is None
            else self.bwd_ratio
        )
        fwd = list(inp.est_time.values())
        return ratio * (sum(fwd) / max(len(fwd), 1))

    def transfer_envelope(self, inp: SolverInput) -> float:
        if inp.est_time is None:
            return 0.0
        return self.envelope_fraction * sum(inp.est_time.values())

    def swap_cost(self, unit: str, inp: SolverInput) -> float:
        transfer = self.transfer_time(inp.est_bytes[unit])
        return max(0.0, transfer - self.overlap_window(inp))


class Solver:
    """Strategy interface: assign a memory action per unit.

    ``schedule`` is the classic recompute-only entry point (Algorithm 1's
    vocabulary); ``assign`` is the general one.  Recompute-only
    solvers implement ``schedule`` and inherit the default ``assign``
    wrapper; action-aware solvers override ``assign`` directly.

    ``cost_model`` is ``None`` for solvers that never price actions
    (pure coverage algorithms); action-pricing solvers set it, which is
    how callers discover swap pricing without branching on solver names.
    """

    name = "solver"

    #: Set by action-pricing solvers (hybrid, exact, lp); ``None`` means
    #: the solver only covers bytes and never consults a price.
    cost_model: Optional[CostModel] = None

    #: Class-level capability flag: ``True`` for solvers whose
    #: :meth:`create` builds a cost model from the pricing knobs.  The
    #: declarative gate for pricing-only CLI flags (``--bwd-ratio``) —
    #: callers check this instead of matching solver names.
    prices_actions = False

    def schedule(self, inp: SolverInput) -> frozenset[str]:
        raise NotImplementedError

    def assign(self, inp: SolverInput) -> ActionAssignment:
        """Default: every scheduled unit is dropped and recomputed."""
        return ActionAssignment.from_sets(recompute=self.schedule(inp))

    @classmethod
    def create(
        cls,
        *,
        device: Optional[DeviceModel] = None,
        pcie_bandwidth: Optional[float] = None,
        bwd_ratio: Optional[float] = None,
    ) -> "Solver":
        """Registry constructor: build the solver from CLI-level knobs.

        The base implementation ignores the pricing knobs (coverage-only
        solvers have no cost model); pricing solvers override this to
        build a :class:`PcieCostModel` from them.
        """
        del device, pcie_bandwidth, bwd_ratio
        return cls()


#: Historical alias: the pre-refactor name for the solver interface.
Scheduler = Solver


_SOLVERS: dict[str, type[Solver]] = {}


def register_solver(cls: type[Solver]) -> type[Solver]:
    """Class decorator: make ``cls`` constructible by :func:`make_solver`.

    The registry key is ``cls.name``; duplicate names are a programming
    error and raise immediately (mirrors ``register_strategy``).
    """
    if cls.name in _SOLVERS:
        raise ValueError(f"duplicate solver name {cls.name!r}")
    _SOLVERS[cls.name] = cls
    return cls


def solver_names() -> tuple[str, ...]:
    """All registered solver names, sorted (CLI ``--solver`` choices)."""
    return tuple(sorted(_SOLVERS))


def solver_class(name: str) -> type[Solver]:
    """Look up a registered solver class by name."""
    try:
        return _SOLVERS[name]
    except KeyError:
        raise KeyError(
            f"unknown solver {name!r}; available: {solver_names()}"
        ) from None


def make_solver(
    name: str,
    *,
    device: Optional[DeviceModel] = None,
    pcie_bandwidth: Optional[float] = None,
    bwd_ratio: Optional[float] = None,
) -> Solver:
    """Construct a registered solver by name.

    The single construction point for every consumer (runner, CLI,
    ``MimosePlanner``, the gap harness): pricing knobs are forwarded to
    the class's :meth:`Solver.create`, which decides whether a cost
    model is needed — no per-solver branching here.
    """
    return solver_class(name).create(
        device=device, pcie_bandwidth=pcie_bandwidth, bwd_ratio=bwd_ratio
    )


def predicted_swap_stall(
    model: CostModel, assignment: ActionAssignment, inp: SolverInput
) -> float:
    """Total backward stall the cost model predicts for a plan's swaps.

    Sums ``max(0, transfer_time(bytes_u) - overlap_window)`` over the
    assignment's swapped units — the same residual the selection loop
    priced, aggregated so it can be compared against the simulated
    ``swap_stall_time`` a run actually reports (the calibration check
    ``benchmarks/bench_hybrid.py`` performs).
    """
    window = model.overlap_window(inp)
    return sum(
        max(0.0, model.transfer_time(inp.est_bytes[u]) - window)
        for u in assignment.swap_units
    )


def required_coverage(inp: SolverInput) -> int:
    """Bytes a feasible plan must release: the excess, capped at what
    exists — when even dropping everything falls short, exhausting the
    unit set is the best any solver can do and counts as feasible."""
    total = sum(inp.est_bytes.values())
    return max(0, min(inp.excess_bytes, total))


def covered_bytes(assignment: ActionAssignment, inp: SolverInput) -> int:
    """Estimated bytes the assignment releases (all non-KEEP actions)."""
    return sum(inp.est_bytes.get(u, 0) for u in assignment.units)


def plan_cost(
    model: CostModel, assignment: ActionAssignment, inp: SolverInput
) -> float:
    """Predicted seconds of overhead one iteration pays for this plan.

    Recomputed (and segmented) units charge their forward time; swapped
    units charge the residual stall beyond the overlap window — exactly
    the per-unit prices the hybrid loop and the exact solver optimise,
    so costs (and therefore optimality gaps) are comparable across every
    solver in the registry.
    """
    window = model.overlap_window(inp)
    cost = 0.0
    for unit in assignment.checkpoint_units | assignment.segment_units:
        cost += model.recompute_cost(unit, inp)
    for unit in assignment.swap_units:
        cost += max(0.0, model.transfer_time(inp.est_bytes[unit]) - window)
    return cost


def plan_feasible(
    model: CostModel, assignment: ActionAssignment, inp: SolverInput
) -> bool:
    """Whether the assignment releases enough bytes under the envelope.

    Coverage: released bytes reach :func:`required_coverage`.  Envelope:
    the summed transfer time of swapped units fits the copy engine's
    aggregate budget (recompute-only plans satisfy it trivially).
    """
    if covered_bytes(assignment, inp) < required_coverage(inp):
        return False
    transfer = math.fsum(
        model.transfer_time(inp.est_bytes[u]) for u in assignment.swap_units
    )
    return transfer <= model.transfer_envelope(inp) + 1e-12


# Imported last, breaking the package cycle: repro.planners.capuchin (in
# the middle of repro.planners' own init) imports the solver family, and
# by this point every name above is defined.  ActionAssignment is only
# touched from method bodies, never at class-definition time, so the
# late binding is safe.
from repro.planners.base import ActionAssignment  # noqa: E402
