"""Chen et al. (2016) baselines: √n segmentation and the greedy sweep.

"Training Deep Nets with Sublinear Memory Cost" keeps a checkpoint at
every segment boundary and recomputes the segment interiors; boundaries
must be articulation points of the dataflow graph (a vertex every path
crosses), found here with :func:`repro.graph.articulation_points` over
the chain induced by the input's forward order.  Both schemes are
*memory-targeted* rather than cost-minimising, which is exactly why they
belong in the optimality harness: their measured gap against
:class:`~repro.solvers.exact.ExactSolver` quantifies what input-aware
pricing buys (Table I's gap column).

* ``chen-sqrtn`` keeps ~√n evenly spaced articulation points, shrinking
  the kept set only when the released bytes fall short of the excess.
* ``chen-greedy`` sweeps a per-segment byte budget over a deterministic
  candidate grid; each budget walks the chain, placing a keep at the
  first articulation point after the running segment exceeds the
  budget, and the cheapest feasible segmentation wins.

Both emit RECOMPUTE for dropped units (KEEP for boundaries), so their
plans execute on the unchanged recompute path.
"""

from __future__ import annotations

import math

from repro.graph.articulation import articulation_points
from repro.planners.base import ActionAssignment
from repro.solvers.base import Solver, SolverInput, register_solver


def _chain(inp: SolverInput) -> list[str]:
    """Units in forward order — the simulator's dataflow chain."""
    return sorted(inp.est_bytes, key=lambda u: (inp.order[u], u))


def _chain_articulation(chain: list[str]) -> frozenset[str]:
    adjacency = {
        u: [w for w in (chain[i - 1] if i else None,
                        chain[i + 1] if i + 1 < len(chain) else None)
            if w is not None]
        for i, u in enumerate(chain)
    }
    return articulation_points(adjacency)


def _dropped_bytes(chain: list[str], keep: set[str], inp: SolverInput) -> int:
    return sum(inp.est_bytes[u] for u in chain if u not in keep)


def _recompute_cost(chain: list[str], keep: set[str], inp: SolverInput) -> float:
    if inp.est_time is None:
        return 0.0
    return sum(inp.est_time[u] for u in chain if u not in keep)


@register_solver
class ChenSqrtNSolver(Solver):
    """Keep ~√n evenly spaced articulation points, recompute the rest."""

    name = "chen-sqrtn"

    def schedule(self, inp: SolverInput) -> frozenset[str]:
        if inp.excess_bytes <= 0:
            return frozenset()
        chain = _chain(inp)
        aps = _chain_articulation(chain)
        boundaries = [u for u in chain if u in aps]
        total = sum(inp.est_bytes.values())
        need = min(inp.excess_bytes, total)
        k = math.isqrt(len(chain))
        # Shrink the kept set until the dropped bytes reach the excess;
        # k = 0 degenerates to drop-everything, which is always feasible
        # under the capped requirement.
        while k > 0:
            if len(boundaries) <= k:
                keep = set(boundaries)
            else:
                step = len(boundaries) / k
                keep = {boundaries[int(i * step)] for i in range(k)}
            if _dropped_bytes(chain, keep, inp) >= need:
                return frozenset(u for u in chain if u not in keep)
            k -= 1
        return frozenset(chain)


@register_solver
class ChenGreedySolver(Solver):
    """Sweep per-segment budgets, keep the cheapest feasible split."""

    name = "chen-greedy"

    def schedule(self, inp: SolverInput) -> frozenset[str]:
        if inp.excess_bytes <= 0:
            return frozenset()
        chain = _chain(inp)
        boundaries = _chain_articulation(chain)
        total = sum(inp.est_bytes.values())
        need = min(inp.excess_bytes, total)
        # Candidate budgets: total/k for every segment count k, plus the
        # drop-everything degenerate — a deterministic grid that brackets
        # Chen's √(total·avg) heuristic without committing to it.
        candidates = sorted(
            {total // k for k in range(1, len(chain) + 1) if total // k > 0},
            reverse=True,
        )
        best: frozenset[str] | None = None
        best_cost = float("inf")
        for budget in candidates:
            keep: set[str] = set()
            segment = 0
            for u in chain:
                segment += inp.est_bytes[u]
                if segment > budget and u in boundaries:
                    keep.add(u)
                    segment = 0
            if _dropped_bytes(chain, keep, inp) < need:
                continue
            dropped = frozenset(u for u in chain if u not in keep)
            cost = _recompute_cost(chain, keep, inp)
            if cost < best_cost:
                best_cost = cost
                best = dropped
        if best is None:
            return frozenset(chain)
        return best
