"""Legacy planner cores adapted to the solver interface.

The static planners in :mod:`repro.planners` decide offline against a
profiled worst-case/assumed shape, but their decision *cores* — the
evenly-spaced keep rule of :mod:`repro.planners.sublinear` and the
keep-knapsack of :mod:`repro.planners.checkmate` — are pure functions of
per-unit bytes and times.  Re-housing those cores behind the solver
registry does two things: the legacy planners stop being a second,
parallel decision layer (they share one vocabulary with the runtime
schedulers), and the optimality harness can price them per input size
like any other solver, which is how Table I's gap column covers the
static families.
"""

from __future__ import annotations

from repro.planners.checkmate import solve_keep_knapsack
from repro.planners.sublinear import evenly_spaced_keep
from repro.solvers.base import Solver, SolverInput, register_solver


def _ordered(inp: SolverInput) -> list[str]:
    return sorted(inp.est_bytes, key=lambda u: (inp.order[u], u))


@register_solver
class SublinearSolver(Solver):
    """Chen-style evenly spaced keeps over the forward chain.

    The decision core of
    :class:`~repro.planners.sublinear.SublinearPlanner`: keep the largest
    evenly spaced unit set whose complement still releases the excess.
    """

    name = "sublinear"

    def schedule(self, inp: SolverInput) -> frozenset[str]:
        if inp.excess_bytes <= 0:
            return frozenset()
        names = _ordered(inp)
        need = min(inp.excess_bytes, sum(inp.est_bytes.values()))
        for keep in range(len(names), -1, -1):
            kept = evenly_spaced_keep(names, keep)
            drop = frozenset(names) - kept
            if sum(inp.est_bytes[u] for u in drop) >= need:
                return drop
        return frozenset(names)


@register_solver
class CheckmateSolver(Solver):
    """Keep-knapsack over estimated bytes and recompute times.

    The decision core of
    :class:`~repro.planners.checkmate.CheckmatePlanner`: maximise the
    recompute time *avoided* by keeping units, subject to the kept bytes
    fitting what the budget leaves after the excess is released.  The
    knapsack quantises kept weights upward
    (:func:`~repro.planners.checkmate.solve_keep_knapsack`), so the
    complement always releases at least the excess.
    """

    name = "checkmate"

    def schedule(self, inp: SolverInput) -> frozenset[str]:
        if inp.excess_bytes <= 0:
            return frozenset()
        names = _ordered(inp)
        total = sum(inp.est_bytes.values())
        need = min(inp.excess_bytes, total)
        capacity = total - need
        if capacity <= 0:
            return frozenset(names)
        values = [
            inp.est_time[u] if inp.est_time else float(inp.order[u] + 1)
            for u in names
        ]
        kept_idx = solve_keep_knapsack(
            values, [inp.est_bytes[u] for u in names], capacity
        )
        kept = {names[i] for i in kept_idx}
        return frozenset(n for n in names if n not in kept)
