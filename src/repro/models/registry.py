"""Name-based model construction."""

from __future__ import annotations

from typing import Callable

from repro.models.base import SegmentedModel
from repro.models.bert import build_bert_base, build_roberta_base
from repro.models.gpt2 import build_gpt2_small
from repro.models.resnet import build_resnet50_det, build_resnet101_det
from repro.models.swin import build_swin_tiny
from repro.models.t5 import build_t5_base

_BUILDERS: dict[str, Callable[[], SegmentedModel]] = {
    "bert-base": build_bert_base,
    "roberta-base": build_roberta_base,
    "t5-base": build_t5_base,
    "resnet50-det": build_resnet50_det,
    "resnet101-det": build_resnet101_det,
    "swin-tiny": build_swin_tiny,
    "gpt2-small": build_gpt2_small,
    "bert-base-amp": lambda: build_bert_base(amp=True),
    "roberta-base-amp": lambda: build_roberta_base(amp=True),
}


def available_models() -> list[str]:
    """Names accepted by :func:`build_model`."""
    return sorted(_BUILDERS)


def build_model(name: str) -> SegmentedModel:
    """Construct a fresh model instance by name.

    Raises:
        KeyError: for unknown names (listing the known ones).
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {available_models()}"
        ) from None
    return builder()
