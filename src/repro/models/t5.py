"""T5-base encoder–decoder stack (~220 M parameters).

The translation task (TR-T5 in Table II) runs the full encoder–decoder.  In
this symbolic reproduction the decoder consumes the encoder output spec and
attends over the same sequence length (translation source/target lengths
are comparable); each encoder block and each decoder block is a
checkpointable unit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.module import Module, ProfileContext
from repro.graph.ops import (
    Add,
    BatchMatMul,
    Dropout,
    Embedding,
    Gelu,
    LayerNorm,
    Linear,
    Reshape,
    Scale,
    Softmax,
    Transpose,
)
from repro.models.base import SegmentedModel
from repro.tensorsim.dtypes import INT64
from repro.tensorsim.tensor import TensorSpec


@dataclass(frozen=True)
class T5Config:
    """Hyper-parameters of a T5 stack (defaults: t5-base)."""

    vocab_size: int = 32128
    hidden_size: int = 768
    num_layers: int = 12  # per stack (encoder and decoder)
    num_heads: int = 12
    ff_size: int = 3072
    dropout: float = 0.1

    def __post_init__(self) -> None:
        if self.hidden_size % self.num_heads != 0:
            raise ValueError("hidden_size must be divisible by num_heads")

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_heads


def _attention(
    ctx: ProfileContext,
    cfg: T5Config,
    x: TensorSpec,
    memory: TensorSpec,
    tag: str,
) -> TensorSpec:
    """Shared (self or cross) attention sub-block."""
    b, q_len, hidden = x.shape
    kv_len = memory.shape[1]
    heads, dim = cfg.num_heads, cfg.head_dim

    def heads_of(t: TensorSpec, length: int, label: str) -> TensorSpec:
        t = ctx.op(Reshape((b, length, heads, dim)), t, name=f"{label}_split")
        return ctx.op(Transpose(1, 2), t, name=f"{label}_perm")

    q = heads_of(ctx.op(Linear(hidden, hidden, bias=False), x, name=f"{tag}_q"), q_len, f"{tag}_q")
    k = heads_of(ctx.op(Linear(hidden, hidden, bias=False), memory, name=f"{tag}_k"), kv_len, f"{tag}_k")
    v = heads_of(ctx.op(Linear(hidden, hidden, bias=False), memory, name=f"{tag}_v"), kv_len, f"{tag}_v")

    scores = ctx.op(BatchMatMul(transpose_b=True), q, k, name=f"{tag}_qk")
    scores = ctx.op(Scale(1.0 / dim**0.5), scores, name=f"{tag}_scale")
    probs = ctx.op(Softmax(), scores, name=f"{tag}_softmax")
    probs = ctx.op(Dropout(cfg.dropout), probs, name=f"{tag}_drop")
    out = ctx.op(BatchMatMul(), probs, v, name=f"{tag}_pv")
    out = ctx.op(Transpose(1, 2), out, name=f"{tag}_merge_perm")
    out = ctx.op(Reshape((b, q_len, hidden)), out, name=f"{tag}_merge")
    out = ctx.op(Linear(hidden, hidden, bias=False), out, name=f"{tag}_o")
    out = ctx.op(Add(), out, x, name=f"{tag}_residual")
    out = ctx.op(LayerNorm(hidden), out, name=f"{tag}_ln")
    return out


def _ffn(ctx: ProfileContext, cfg: T5Config, x: TensorSpec, tag: str) -> TensorSpec:
    h = ctx.op(Linear(cfg.hidden_size, cfg.ff_size, bias=False), x, name=f"{tag}_up")
    h = ctx.op(Gelu(), h, name=f"{tag}_act")
    h = ctx.op(Dropout(cfg.dropout), h, name=f"{tag}_ff_drop")
    h = ctx.op(Linear(cfg.ff_size, cfg.hidden_size, bias=False), h, name=f"{tag}_down")
    h = ctx.op(Add(), h, x, name=f"{tag}_ff_residual")
    h = ctx.op(LayerNorm(cfg.hidden_size), h, name=f"{tag}_ff_ln")
    return h


class T5Embeddings(Module):
    def __init__(self, cfg: T5Config, name: str = "shared_embeddings") -> None:
        super().__init__(name)
        self.cfg = cfg

    def forward(self, ctx: ProfileContext, x: TensorSpec) -> TensorSpec:
        cfg = self.cfg
        if x.dtype.is_floating or x.ndim != 2:
            raise ValueError(f"expected integer (batch, seqlen) ids, got {x}")
        h = ctx.op(Embedding(cfg.vocab_size, cfg.hidden_size), x, name="emb")
        h = ctx.op(Dropout(cfg.dropout), h, name="drop")
        return h


class T5EncoderLayer(Module):
    def __init__(self, cfg: T5Config, index: int) -> None:
        super().__init__(f"enc.{index}", checkpointable=True)
        self.cfg = cfg

    def forward(self, ctx: ProfileContext, x: TensorSpec) -> TensorSpec:
        x = _attention(ctx, self.cfg, x, x, "self")
        return _ffn(ctx, self.cfg, x, "enc")


class T5DecoderLayer(Module):
    """Self-attention + cross-attention (over the encoder memory) + FFN."""

    def __init__(self, cfg: T5Config, index: int) -> None:
        super().__init__(f"dec.{index}", checkpointable=True)
        self.cfg = cfg

    def forward(self, ctx: ProfileContext, x: TensorSpec) -> TensorSpec:
        x = _attention(ctx, self.cfg, x, x, "self")
        # Cross attention: the encoder memory has the same (b, len, hidden)
        # spec as x in this chain, so attend over an equally-shaped memory.
        x = _attention(ctx, self.cfg, x, x, "cross")
        return _ffn(ctx, self.cfg, x, "dec")


class T5LMHead(Module):
    """Final layer-norm + logits projection over the vocabulary."""

    def __init__(self, cfg: T5Config, name: str = "lm_head") -> None:
        super().__init__(name)
        self.cfg = cfg

    def forward(self, ctx: ProfileContext, x: TensorSpec) -> TensorSpec:
        cfg = self.cfg
        h = ctx.op(LayerNorm(cfg.hidden_size), x, name="final_ln")
        # T5 ties the LM head to the shared embedding matrix, so the
        # projection contributes no new parameters.
        return ctx.op(
            _TiedProjection(cfg.hidden_size, cfg.vocab_size), h, name="logits"
        )


from repro.graph.ops import Op, OpProfile  # noqa: E402  (local helper op)


@dataclass(frozen=True, repr=False)
class _TiedProjection(Op):
    """Linear projection whose weights are tied (no extra parameters)."""

    kind = "reduction"
    in_features: int = 0
    out_features: int = 0

    def profile(self, *inputs: TensorSpec) -> OpProfile:
        self._expect_arity(inputs, 1)
        x = inputs[0]
        if x.shape[-1] != self.in_features:
            raise ValueError(f"tied projection expects {self.in_features}, got {x.shape}")
        out = x.with_shape(x.shape[:-1] + (self.out_features,))
        rows = out.numel // self.out_features
        flops = 2.0 * rows * self.in_features * self.out_features
        traffic = x.nbytes + out.nbytes
        return OpProfile(out, flops, traffic, 2 * flops, 2 * traffic, 0, saved=())


def build_t5_base() -> SegmentedModel:
    """t5-base: 12+12 layers, hidden 768, ~223 M parameters."""
    cfg = T5Config()
    units: list[Module] = [T5Embeddings(cfg)]
    units += [T5EncoderLayer(cfg, i) for i in range(cfg.num_layers)]
    units += [T5DecoderLayer(cfg, i) for i in range(cfg.num_layers)]
    units.append(T5LMHead(cfg))
    return SegmentedModel("t5-base", units, input_dtype=INT64)
