"""GPT-2-small: causal decoder-only transformer (extension model).

Not part of the paper's Table II, but the natural seventh workload: causal
language modelling streams documents of wildly varying length, so it
exhibits exactly the input dynamics Mimose exploits — with the same
quadratic attention memory law (the causal mask halves the *useful*
scores but the materialised ``seqlen x seqlen`` tensors are identical).

GPT-2-small: 12 layers, hidden 768, 12 heads, vocab 50257, ~124 M
parameters.  Each decoder block is a checkpointable unit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.module import Module, ProfileContext
from repro.graph.ops import (
    Add,
    BatchMatMul,
    Dropout,
    Embedding,
    Gelu,
    LayerNorm,
    Linear,
    Reshape,
    Scale,
    Softmax,
    Transpose,
)
from repro.models.base import SegmentedModel
from repro.tensorsim.dtypes import INT64
from repro.tensorsim.tensor import TensorSpec


@dataclass(frozen=True)
class GPT2Config:
    """Hyper-parameters (defaults: gpt2-small)."""

    vocab_size: int = 50257
    hidden_size: int = 768
    num_layers: int = 12
    num_heads: int = 12
    max_position_embeddings: int = 1024
    dropout: float = 0.1

    def __post_init__(self) -> None:
        if self.hidden_size % self.num_heads != 0:
            raise ValueError("hidden_size must be divisible by num_heads")

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_heads


class GPT2Embeddings(Module):
    def __init__(self, cfg: GPT2Config, name: str = "embeddings") -> None:
        super().__init__(name)
        self.cfg = cfg

    def forward(self, ctx: ProfileContext, x: TensorSpec) -> TensorSpec:
        cfg = self.cfg
        if x.dtype.is_floating or x.ndim != 2:
            raise ValueError(f"expected integer (batch, seqlen) ids, got {x}")
        h = ctx.op(Embedding(cfg.vocab_size, cfg.hidden_size), x, name="wte")
        pos = ctx.op(
            Embedding(cfg.max_position_embeddings, cfg.hidden_size),
            x,
            name="wpe",
        )
        h = ctx.op(Add(), h, pos, name="add_pos")
        h = ctx.op(Dropout(cfg.dropout), h, name="drop")
        return h


class GPT2Block(Module):
    """Pre-norm causal self-attention + MLP — a checkpointable unit."""

    def __init__(self, cfg: GPT2Config, index: int) -> None:
        super().__init__(f"block.{index}", checkpointable=True)
        self.cfg = cfg

    def forward(self, ctx: ProfileContext, x: TensorSpec) -> TensorSpec:
        cfg = self.cfg
        b, length, hidden = x.shape
        heads, dim = cfg.num_heads, cfg.head_dim

        h = ctx.op(LayerNorm(hidden), x, name="ln1")
        qkv = ctx.op(Linear(hidden, 3 * hidden), h, name="qkv")
        # the causal mask zeroes future positions but the full score
        # matrix is still materialised — memory stays quadratic
        q = TensorSpec((b, heads, length, dim), x.dtype)
        del qkv
        scores = ctx.op(BatchMatMul(transpose_b=True), q, q, name="qk")
        scores = ctx.op(Scale(1.0 / dim**0.5), scores, name="scale")
        probs = ctx.op(Softmax(), scores, name="softmax")
        probs = ctx.op(Dropout(cfg.dropout), probs, name="attn_drop")
        out = ctx.op(BatchMatMul(), probs, q, name="pv")
        out = ctx.op(Transpose(1, 2), out, name="perm")
        out = ctx.op(Reshape((b, length, hidden)), out, name="merge")
        out = ctx.op(Linear(hidden, hidden), out, name="proj")
        out = ctx.op(Dropout(cfg.dropout), out, name="proj_drop")
        x = ctx.op(Add(), out, x, name="attn_residual")

        h = ctx.op(LayerNorm(hidden), x, name="ln2")
        m = ctx.op(Linear(hidden, 4 * hidden), h, name="mlp_up")
        m = ctx.op(Gelu(), m, name="mlp_act")
        m = ctx.op(Linear(4 * hidden, hidden), m, name="mlp_down")
        m = ctx.op(Dropout(cfg.dropout), m, name="mlp_drop")
        return ctx.op(Add(), m, x, name="mlp_residual")


class GPT2LMHead(Module):
    """Final LayerNorm + tied logits projection."""

    def __init__(self, cfg: GPT2Config, name: str = "lm_head") -> None:
        super().__init__(name)
        self.cfg = cfg

    def forward(self, ctx: ProfileContext, x: TensorSpec) -> TensorSpec:
        from repro.models.t5 import _TiedProjection

        cfg = self.cfg
        h = ctx.op(LayerNorm(cfg.hidden_size), x, name="ln_f")
        return ctx.op(
            _TiedProjection(cfg.hidden_size, cfg.vocab_size), h, name="logits"
        )


def build_gpt2_small() -> SegmentedModel:
    """gpt2-small: 12 blocks, hidden 768, ~124 M parameters."""
    cfg = GPT2Config()
    units: list[Module] = [GPT2Embeddings(cfg)]
    units += [GPT2Block(cfg, i) for i in range(cfg.num_layers)]
    units.append(GPT2LMHead(cfg))
    return SegmentedModel("gpt2-small", units, input_dtype=INT64)
