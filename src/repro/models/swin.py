"""Swin-Transformer-tiny: the staged architecture §IV-D reasons about.

The paper uses Swin to motivate *stage*-aware scheduling: "the patch
merging structure on the boundary of each stage reduces the output tensor
size of the previous stage by 50 %, which leads to the step-down of
memory usage in different stages".  This model reproduces that memory
staircase so the scheduler's bucketing can be exercised on units of
genuinely different sizes (unlike BERT's twelve identical encoders).

Swin-tiny: patch embed (4x4, dim 96), stages of depth (2, 2, 6, 2) at
dims (96, 192, 384, 768), 7x7 window attention, ~28 M parameters.
Each transformer block is a checkpointable unit; patch-merging layers
are the cheap stage boundaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.graph.module import Module, ProfileContext
from repro.graph.ops import (
    Add,
    BatchMatMul,
    Conv2d,
    Gelu,
    LayerNorm,
    Linear,
    Reshape,
    Scale,
    Softmax,
    Transpose,
)
from repro.models.base import SegmentedModel
from repro.tensorsim.dtypes import FLOAT32
from repro.tensorsim.tensor import TensorSpec


@dataclass(frozen=True)
class SwinConfig:
    """Hyper-parameters (defaults: swin-tiny)."""

    embed_dim: int = 96
    depths: tuple[int, ...] = (2, 2, 6, 2)
    num_heads: tuple[int, ...] = (3, 6, 12, 24)
    window: int = 7
    mlp_ratio: int = 4
    patch_size: int = 4
    num_classes: int = 1000
    dropout: float = 0.0

    def stage_dim(self, stage: int) -> int:
        return self.embed_dim * (1 << stage)


class SwinPatchEmbed(Module):
    """4x4 strided conv patchification + LayerNorm."""

    def __init__(self, cfg: SwinConfig, name: str = "patch_embed") -> None:
        super().__init__(name)
        self.cfg = cfg

    def forward(self, ctx: ProfileContext, x: TensorSpec) -> TensorSpec:
        cfg = self.cfg
        if x.ndim != 4:
            raise ValueError(f"expected (B, 3, H, W) images, got {x}")
        h = ctx.op(
            Conv2d(3, cfg.embed_dim, kernel_size=cfg.patch_size,
                   stride=cfg.patch_size),
            x,
            name="proj",
        )
        b, c, ph, pw = h.shape
        h = ctx.op(Reshape((b, c, ph * pw)), h, name="flatten")
        h = ctx.op(Transpose(1, 2), h, name="tokens")  # (B, L, C)
        h = ctx.op(LayerNorm(c), h, name="norm")
        return h


def _window_attention(
    ctx: ProfileContext, cfg: SwinConfig, x: TensorSpec, heads: int, tag: str
) -> TensorSpec:
    """Attention within non-overlapping windows: memory *linear* in tokens.

    Windows hold ``window**2`` tokens regardless of image size, so the
    score tensors scale with the number of windows — linearly with the
    input — unlike global attention's quadratic growth.
    """
    b, length, dim = x.shape
    win_tokens = cfg.window**2
    num_windows = max(1, math.ceil(length / win_tokens))
    rows = b * num_windows
    head_dim = dim // heads

    ctx.op(Linear(dim, 3 * dim), x, name=f"{tag}_qkv")
    # The qkv output is partitioned into padded windows; the partition is
    # a view, so q/k/v specs are constructed directly.
    q = TensorSpec((rows, heads, win_tokens, head_dim), x.dtype)
    scores = ctx.op(BatchMatMul(transpose_b=True), q, q, name=f"{tag}_qk")
    scores = ctx.op(Scale(1.0 / head_dim**0.5), scores, name=f"{tag}_scale")
    probs = ctx.op(Softmax(), scores, name=f"{tag}_softmax")
    out = ctx.op(BatchMatMul(), probs, q, name=f"{tag}_pv")
    out = ctx.op(Transpose(1, 2), out, name=f"{tag}_perm")
    out = ctx.op(Reshape((rows * win_tokens, dim)), out, name=f"{tag}_merge")
    proj = ctx.op(Linear(dim, dim), out, name=f"{tag}_proj")
    assert proj.numel >= b * length * dim  # padded rows cover every token
    # dropping window padding is a view back to the token sequence
    tokens = TensorSpec((b, length, dim), x.dtype)
    res = ctx.op(Add(), tokens, x, name=f"{tag}_residual")
    return ctx.op(LayerNorm(dim), res, name=f"{tag}_norm")


class SwinBlock(Module):
    """One (shifted-)window transformer block — a checkpointable unit."""

    def __init__(self, cfg: SwinConfig, stage: int, index: int) -> None:
        super().__init__(f"stage{stage + 1}.block{index}", checkpointable=True)
        self.cfg = cfg
        self.stage = stage

    def forward(self, ctx: ProfileContext, x: TensorSpec) -> TensorSpec:
        cfg = self.cfg
        heads = cfg.num_heads[self.stage]
        h = _window_attention(ctx, cfg, x, heads, "attn")
        dim = x.shape[-1]
        m = ctx.op(Linear(dim, cfg.mlp_ratio * dim), h, name="mlp_up")
        m = ctx.op(Gelu(), m, name="mlp_act")
        m = ctx.op(Linear(cfg.mlp_ratio * dim, dim), m, name="mlp_down")
        m = ctx.op(Add(), m, h, name="mlp_residual")
        return ctx.op(LayerNorm(dim), m, name="mlp_norm")


class SwinPatchMerging(Module):
    """Stage boundary: 2x2 patch merge — half the tokens, double the dim.

    This is the §IV-D structure that creates the per-stage memory
    step-down (output tensor size of the previous stage shrinks by 50 %).
    """

    def __init__(self, cfg: SwinConfig, stage: int) -> None:
        super().__init__(f"merge{stage + 1}")
        self.cfg = cfg
        self.stage = stage

    def forward(self, ctx: ProfileContext, x: TensorSpec) -> TensorSpec:
        b, length, dim = x.shape
        merged = max(1, length // 4)
        # gathering the 2x2 neighbourhoods is a (possibly truncating) view
        h = TensorSpec((b, merged, 4 * dim), x.dtype)
        h = ctx.op(LayerNorm(4 * dim), h, name="norm")
        return ctx.op(Linear(4 * dim, 2 * dim, bias=False), h, name="reduce")


class SwinHead(Module):
    """Global pool + classifier."""

    def __init__(self, cfg: SwinConfig, name: str = "head") -> None:
        super().__init__(name)
        self.cfg = cfg

    def forward(self, ctx: ProfileContext, x: TensorSpec) -> TensorSpec:
        b, _length, dim = x.shape
        pooled = TensorSpec((b, dim), x.dtype)  # mean over tokens (a view-ish)
        h = ctx.op(LayerNorm(dim), pooled, name="norm")
        return ctx.op(Linear(dim, self.cfg.num_classes), h, name="fc")


def build_swin_tiny(num_classes: int = 1000) -> SegmentedModel:
    """swin-tiny: depths (2,2,6,2), dims 96-768, ~28 M parameters."""
    cfg = SwinConfig(num_classes=num_classes)
    units: list[Module] = [SwinPatchEmbed(cfg)]
    for stage, depth in enumerate(cfg.depths):
        for i in range(depth):
            units.append(SwinBlock(cfg, stage, i))
        if stage + 1 < len(cfg.depths):
            units.append(SwinPatchMerging(cfg, stage))
    units.append(SwinHead(cfg))
    return SegmentedModel(
        "swin-tiny",
        units,
        input_dtype=FLOAT32,
        probe_shape=(1, 3, 224, 224),
    )
