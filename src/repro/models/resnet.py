"""ResNet-50/101 detection backbones (OD-R50 / OD-R101 in Table II).

The paper trains MMDetection two-stage detectors whose backbone is a
ResNet.  Activation checkpointing operates on the backbone's residual
blocks; the RPN/ROI heads generate content-dependent numbers of anchors and
proposals, which §IV-C explicitly declines to predict — Mimose performs
*memory reservation* for them instead.  We model that with a
:class:`DetectionHeadReservation` unit that contributes a fixed,
non-checkpointable memory reservation and compute cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.module import Module, ProfileContext
from repro.graph.ops import (
    Add,
    BatchNorm2d,
    Conv2d,
    Linear,
    MaxPool2d,
    Op,
    OpProfile,
    Relu,
)
from repro.models.base import SegmentedModel
from repro.tensorsim.dtypes import FLOAT32
from repro.tensorsim.tensor import TensorSpec


@dataclass(frozen=True)
class ResNetConfig:
    """Stage depths for the bottleneck ResNets."""

    name: str
    stage_blocks: tuple[int, int, int, int]

    @property
    def total_blocks(self) -> int:
        return sum(self.stage_blocks)


RESNET50 = ResNetConfig("resnet50", (3, 4, 6, 3))
RESNET101 = ResNetConfig("resnet101", (3, 4, 23, 3))

_STAGE_WIDTH = (64, 128, 256, 512)  # bottleneck inner widths per stage


class ResNetStem(Module):
    """7x7/2 conv + BN + ReLU + 3x3/2 max-pool."""

    def __init__(self, name: str = "stem") -> None:
        super().__init__(name, checkpointable=True)

    def forward(self, ctx: ProfileContext, x: TensorSpec) -> TensorSpec:
        h = ctx.op(Conv2d(3, 64, kernel_size=7, stride=2, padding=3), x, name="conv1")
        h = ctx.op(BatchNorm2d(64), h, name="bn1")
        h = ctx.op(Relu(), h, name="relu1")
        h = ctx.op(MaxPool2d(kernel_size=3, stride=2, padding=1), h, name="pool")
        return h


class Bottleneck(Module):
    """1x1 reduce -> 3x3 -> 1x1 expand with a residual shortcut."""

    def __init__(
        self,
        name: str,
        in_channels: int,
        width: int,
        *,
        stride: int = 1,
    ) -> None:
        super().__init__(name, checkpointable=True)
        self.in_channels = in_channels
        self.width = width
        self.out_channels = width * 4
        self.stride = stride
        self.has_projection = stride != 1 or in_channels != self.out_channels

    def forward(self, ctx: ProfileContext, x: TensorSpec) -> TensorSpec:
        w, cin, cout = self.width, self.in_channels, self.out_channels
        h = ctx.op(Conv2d(cin, w, kernel_size=1), x, name="conv1")
        h = ctx.op(BatchNorm2d(w), h, name="bn1")
        h = ctx.op(Relu(), h, name="relu1")
        h = ctx.op(
            Conv2d(w, w, kernel_size=3, stride=self.stride, padding=1),
            h,
            name="conv2",
        )
        h = ctx.op(BatchNorm2d(w), h, name="bn2")
        h = ctx.op(Relu(), h, name="relu2")
        h = ctx.op(Conv2d(w, cout, kernel_size=1), h, name="conv3")
        h = ctx.op(BatchNorm2d(cout), h, name="bn3")
        if self.has_projection:
            shortcut = ctx.op(
                Conv2d(cin, cout, kernel_size=1, stride=self.stride),
                x,
                name="proj",
            )
            shortcut = ctx.op(BatchNorm2d(cout), shortcut, name="proj_bn")
        else:
            shortcut = x
        h = ctx.op(Add(), h, shortcut, name="residual")
        h = ctx.op(Relu(), h, name="relu3")
        return h


@dataclass(frozen=True, repr=False)
class _ProposalWork(Op):
    """Content-dependent RPN/ROI compute, modelled as fixed per-image work.

    Output keeps the backbone feature spec so the chain stays well-typed;
    the (unpredictable) proposal tensors are covered by the model-level
    ``extra_reserved_bytes`` reservation, never by the estimator.
    """

    kind = "structure"
    flops_per_image: float = 4.0e10

    def profile(self, *inputs: TensorSpec) -> OpProfile:
        self._expect_arity(inputs, 1)
        x = inputs[0]
        batch = x.shape[0] if x.ndim else 1
        flops = self.flops_per_image * batch
        return OpProfile(
            output=x,
            flops=flops,
            bytes_moved=2.0 * x.nbytes,
            bwd_flops=2.0 * flops,
            bwd_bytes=3.0 * x.nbytes,
            saved=(),
        )


class DetectionHeadReservation(Module):
    """RPN + ROI heads with reserved (not predicted) activation memory."""

    def __init__(self, feature_channels: int = 2048, name: str = "det_head") -> None:
        super().__init__(name, checkpointable=False)
        self.feature_channels = feature_channels

    def forward(self, ctx: ProfileContext, x: TensorSpec) -> TensorSpec:
        h = ctx.op(_ProposalWork(), x, name="proposals")
        b = x.shape[0]
        # Per-ROI box/class heads over a fixed 512-proposal budget.
        rois = TensorSpec((b * 512, self.feature_channels), FLOAT32)
        h2 = ctx.op(Linear(self.feature_channels, 1024), rois, name="fc1")
        h2 = ctx.op(Relu(), h2, name="fc1_relu")
        h2 = ctx.op(Linear(1024, 1024), h2, name="fc2")
        h2 = ctx.op(Relu(), h2, name="fc2_relu")
        ctx.op(Linear(1024, 81 * 5), h2, name="box_cls")
        return h


def _build_backbone(cfg: ResNetConfig) -> list[Module]:
    units: list[Module] = [ResNetStem()]
    in_channels = 64
    for stage_idx, (blocks, width) in enumerate(zip(cfg.stage_blocks, _STAGE_WIDTH)):
        for block_idx in range(blocks):
            stride = 2 if (block_idx == 0 and stage_idx > 0) else 1
            unit = Bottleneck(
                f"layer{stage_idx + 1}.{block_idx}",
                in_channels,
                width,
                stride=stride,
            )
            units.append(unit)
            in_channels = unit.out_channels
    return units


def _build_detector(cfg: ResNetConfig, reserved_gb: float) -> SegmentedModel:
    units = _build_backbone(cfg)
    units.append(DetectionHeadReservation())
    return SegmentedModel(
        f"{cfg.name}-det",
        units,
        input_dtype=FLOAT32,
        extra_reserved_bytes=int(reserved_gb * 1024**3),
    )


def build_resnet50_det() -> SegmentedModel:
    """Faster-R-CNN-style detector on a ResNet-50 backbone (~41 M params)."""
    return _build_detector(RESNET50, reserved_gb=1.5)


def build_resnet101_det() -> SegmentedModel:
    """Same detector on ResNet-101 (~60 M params)."""
    return _build_detector(RESNET101, reserved_gb=1.5)
