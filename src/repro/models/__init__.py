"""Model zoo: the architectures used in the paper's evaluation (Table II).

Every model is a :class:`~repro.models.base.SegmentedModel` — an ordered
chain of checkpointable units (encoder blocks, residual blocks) exactly at
the granularity ``torch.utils.checkpoint`` gives the original Mimose
implementation.
"""

from repro.models.base import BatchInput, SegmentedModel, StaticMemory
from repro.models.bert import BertConfig, build_bert_base, build_roberta_base
from repro.models.t5 import T5Config, build_t5_base
from repro.models.resnet import ResNetConfig, build_resnet50_det, build_resnet101_det
from repro.models.swin import SwinConfig, build_swin_tiny
from repro.models.registry import available_models, build_model

__all__ = [
    "BatchInput",
    "SegmentedModel",
    "StaticMemory",
    "BertConfig",
    "build_bert_base",
    "build_roberta_base",
    "T5Config",
    "build_t5_base",
    "ResNetConfig",
    "build_resnet50_det",
    "build_resnet101_det",
    "SwinConfig",
    "build_swin_tiny",
    "available_models",
    "build_model",
]
