"""Segmented model abstraction shared by the whole reproduction.

A :class:`SegmentedModel` is a chain of units; the planner's decision space
is "which units to checkpoint".  The model also accounts for the *static*
part of the memory footprint — parameters, gradients, and optimizer states —
which §III-A notes is constant across input sizes (only activations vary).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.graph.module import Module, ModuleProfile
from repro.tensorsim.dtypes import DType, INT64
from repro.tensorsim.tensor import TensorSpec


@dataclass(frozen=True, slots=True)
class BatchInput:
    """One collated mini-batch, described by shape only.

    For NLP tasks ``shape = (batch, seqlen)`` with an integer dtype; for
    vision tasks ``shape = (batch, 3, H, W)`` float.  ``input_size`` (the
    paper's x-axis everywhere) is the element count of this tensor.
    """

    shape: tuple[int, ...]
    dtype: DType = INT64

    @property
    def spec(self) -> TensorSpec:
        return TensorSpec(self.shape, self.dtype)

    @property
    def input_size(self) -> int:
        return self.spec.numel

    @property
    def nbytes(self) -> int:
        return self.spec.nbytes


@dataclass(frozen=True, slots=True)
class StaticMemory:
    """Input-size-independent memory: weights, grads, optimizer states."""

    param_bytes: int
    grad_bytes: int
    optimizer_bytes: int
    workspace_bytes: int = 0  # cuDNN-style scratch reserved by the framework

    @property
    def total(self) -> int:
        return (
            self.param_bytes
            + self.grad_bytes
            + self.optimizer_bytes
            + self.workspace_bytes
        )


class SegmentedModel:
    """An ordered chain of (mostly checkpointable) units.

    Args:
        name: model identifier (e.g. ``"bert-base"``).
        units: modules applied in order; the output spec of unit *i* is the
            input spec of unit *i+1*.
        input_dtype: dtype of the collated batch tensor.
        extra_reserved_bytes: content-dependent memory the model reserves up
            front instead of predicting (the paper's §IV-C "memory
            reservation" for detection heads whose proposal counts depend on
            image content).
    """

    def __init__(
        self,
        name: str,
        units: Sequence[Module],
        *,
        input_dtype: DType = INT64,
        extra_reserved_bytes: int = 0,
        probe_shape: tuple[int, ...] | None = None,
        amp: bool = False,
    ) -> None:
        if not units:
            raise ValueError("a model needs at least one unit")
        names = [u.name for u in units]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate unit names: {names}")
        self.name = name
        self.units = list(units)
        self.input_dtype = input_dtype
        self.extra_reserved_bytes = int(extra_reserved_bytes)
        self.probe_shape = probe_shape
        self.amp = amp
        self._param_count: int | None = None

    # ------------------------------------------------------------ profiling

    def profiles(self, batch: BatchInput) -> list[ModuleProfile]:
        """Profile the full chain for one batch shape (unit caches apply)."""
        x = batch.spec
        out: list[ModuleProfile] = []
        for unit in self.units:
            p = unit.profile(x)
            out.append(p)
            x = p.output
        return out

    def unit_names(self) -> list[str]:
        return [u.name for u in self.units]

    def checkpointable_units(self) -> list[Module]:
        return [u for u in self.units if u.checkpointable]

    # ------------------------------------------------------------- memory

    def param_count(self) -> int:
        """Total learnable parameters (computed once via a probe profile)."""
        if self._param_count is None:
            batch = self.probe_batch()
            self._param_count = sum(p.param_count for p in self.profiles(batch))
        return self._param_count

    def probe_batch(self) -> BatchInput:
        """A minimal valid batch used for parameter counting."""
        if self.probe_shape is not None:
            return BatchInput(self.probe_shape, self.input_dtype)
        if self.input_dtype.is_floating:
            return BatchInput((1, 3, 256, 256), self.input_dtype)
        return BatchInput((1, 16), self.input_dtype)

    def static_memory(
        self, *, optimizer: str = "adam", amp: bool | None = None
    ) -> StaticMemory:
        """Static footprint for training with the given optimizer.

        With ``amp`` (mixed precision; inferred from the model's
        activation dtype by default) the fp32 master weights keep their
        full size and an fp16 working copy plus fp16 gradients are added —
        the standard AMP recipe, whose *static* memory is barely smaller
        than fp32 training (activations are where AMP saves).
        """
        n = self.param_count()
        if amp is None:
            amp = self.amp
        if amp:
            param_bytes = 4 * n + 2 * n  # fp32 master + fp16 working copy
            grad_bytes = 2 * n
        else:
            param_bytes = 4 * n
            grad_bytes = 4 * n
        if optimizer == "adam":
            opt_bytes = 8 * n  # first and second moment, fp32
        elif optimizer == "sgd":
            opt_bytes = 4 * n  # momentum buffer
        else:
            raise ValueError(f"unknown optimizer {optimizer!r}")
        return StaticMemory(
            param_bytes=param_bytes,
            grad_bytes=grad_bytes,
            optimizer_bytes=opt_bytes,
            workspace_bytes=self.extra_reserved_bytes,
        )

    def clear_caches(self) -> None:
        for unit in self.units:
            unit.clear_profile_cache()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SegmentedModel({self.name!r}, units={len(self.units)})"
