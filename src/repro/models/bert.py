"""BERT-base and RoBERTa-base encoder stacks.

The architectures follow the HuggingFace implementations the paper trains
(``bert-base-uncased``: 110 M parameters; ``roberta-base``: 125 M — the
difference is almost entirely the vocabulary size).  Each of the 12 encoder
blocks is a checkpointable unit, matching how Mimose wraps HuggingFace
encoders with ``torch.utils.checkpoint``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.module import Module, ProfileContext
from repro.graph.ops import (
    Add,
    BatchMatMul,
    Dropout,
    Embedding,
    Gelu,
    LayerNorm,
    Linear,
    Reshape,
    Scale,
    Softmax,
    Tanh,
    Transpose,
)
from repro.models.base import SegmentedModel
from repro.tensorsim.dtypes import FLOAT16, FLOAT32, INT64
from repro.tensorsim.tensor import TensorSpec


@dataclass(frozen=True)
class BertConfig:
    """Hyper-parameters of a BERT-family encoder."""

    vocab_size: int = 30522
    hidden_size: int = 768
    num_layers: int = 12
    num_heads: int = 12
    intermediate_size: int = 3072
    max_position_embeddings: int = 512
    type_vocab_size: int = 2
    dropout: float = 0.1
    num_labels: int = 2
    #: mixed-precision training: activations in fp16, halving their bytes
    amp: bool = False

    def __post_init__(self) -> None:
        if self.hidden_size % self.num_heads != 0:
            raise ValueError("hidden_size must be divisible by num_heads")

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_heads


class BertEmbeddings(Module):
    """Word + position + token-type embeddings, LayerNorm, dropout."""

    def __init__(self, cfg: BertConfig, name: str = "embeddings") -> None:
        super().__init__(name, checkpointable=False)
        self.cfg = cfg

    def forward(self, ctx: ProfileContext, x: TensorSpec) -> TensorSpec:
        cfg = self.cfg
        if x.dtype.is_floating or x.ndim != 2:
            raise ValueError(f"expected integer (batch, seqlen) ids, got {x}")
        act = FLOAT16 if cfg.amp else FLOAT32
        h = ctx.op(
            Embedding(cfg.vocab_size, cfg.hidden_size, out_dtype=act),
            x,
            name="word_emb",
        )
        pos = ctx.op(
            Embedding(cfg.max_position_embeddings, cfg.hidden_size, out_dtype=act),
            x,
            name="pos_emb",
        )
        typ = ctx.op(
            Embedding(cfg.type_vocab_size, cfg.hidden_size, out_dtype=act),
            x,
            name="type_emb",
        )
        h = ctx.op(Add(), h, pos, name="add_pos")
        h = ctx.op(Add(), h, typ, name="add_type")
        h = ctx.op(LayerNorm(cfg.hidden_size), h, name="ln")
        h = ctx.op(Dropout(cfg.dropout), h, name="drop")
        return h


class BertSelfAttention(Module):
    """Multi-head self-attention with the quadratic score tensors."""

    def __init__(self, cfg: BertConfig, name: str = "attn") -> None:
        super().__init__(name)
        self.cfg = cfg

    def forward(self, ctx: ProfileContext, x: TensorSpec) -> TensorSpec:
        cfg = self.cfg
        b, length, hidden = x.shape
        heads, dim = cfg.num_heads, cfg.head_dim

        def split_heads(t: TensorSpec, tag: str) -> TensorSpec:
            t = ctx.op(Reshape((b, length, heads, dim)), t, name=f"{tag}_split")
            return ctx.op(Transpose(1, 2), t, name=f"{tag}_perm")

        q = split_heads(ctx.op(Linear(hidden, hidden), x, name="q_proj"), "q")
        k = split_heads(ctx.op(Linear(hidden, hidden), x, name="k_proj"), "k")
        v = split_heads(ctx.op(Linear(hidden, hidden), x, name="v_proj"), "v")

        scores = ctx.op(BatchMatMul(transpose_b=True), q, k, name="qk")
        scores = ctx.op(Scale(1.0 / dim**0.5), scores, name="scale")
        probs = ctx.op(Softmax(), scores, name="softmax")
        probs = ctx.op(Dropout(cfg.dropout), probs, name="attn_drop")
        context = ctx.op(BatchMatMul(), probs, v, name="pv")
        context = ctx.op(Transpose(1, 2), context, name="merge_perm")
        context = ctx.op(Reshape((b, length, hidden)), context, name="merge")

        out = ctx.op(Linear(hidden, hidden), context, name="out_proj")
        out = ctx.op(Dropout(cfg.dropout), out, name="out_drop")
        out = ctx.op(Add(), out, x, name="residual")
        out = ctx.op(LayerNorm(hidden), out, name="ln")
        return out


class BertFFN(Module):
    """Position-wise feed-forward block (768 -> 3072 -> 768)."""

    def __init__(self, cfg: BertConfig, name: str = "ffn") -> None:
        super().__init__(name)
        self.cfg = cfg

    def forward(self, ctx: ProfileContext, x: TensorSpec) -> TensorSpec:
        cfg = self.cfg
        h = ctx.op(
            Linear(cfg.hidden_size, cfg.intermediate_size), x, name="up"
        )
        h = ctx.op(Gelu(), h, name="gelu")
        h = ctx.op(
            Linear(cfg.intermediate_size, cfg.hidden_size), h, name="down"
        )
        h = ctx.op(Dropout(cfg.dropout), h, name="drop")
        h = ctx.op(Add(), h, x, name="residual")
        h = ctx.op(LayerNorm(cfg.hidden_size), h, name="ln")
        return h


class BertEncoderLayer(Module):
    """One transformer encoder block — the checkpointable unit."""

    def __init__(self, cfg: BertConfig, index: int) -> None:
        super().__init__(f"encoder.{index}", checkpointable=True)
        self.attn = BertSelfAttention(cfg)
        self.ffn = BertFFN(cfg)

    def forward(self, ctx: ProfileContext, x: TensorSpec) -> TensorSpec:
        x = ctx.module(self.attn, x)
        x = ctx.module(self.ffn, x)
        return x


class BertClassifierHead(Module):
    """Pooler + task head (classification / multiple choice / QA)."""

    def __init__(self, cfg: BertConfig, name: str = "head") -> None:
        super().__init__(name, checkpointable=False)
        self.cfg = cfg

    def forward(self, ctx: ProfileContext, x: TensorSpec) -> TensorSpec:
        cfg = self.cfg
        b, _length, hidden = x.shape
        pooled = TensorSpec((b, hidden), x.dtype)  # [CLS] token slice (a view)
        pooled = ctx.op(Linear(hidden, hidden), pooled, name="pooler")
        pooled = ctx.op(Tanh(), pooled, name="pooler_act")
        logits = ctx.op(Linear(hidden, cfg.num_labels), pooled, name="classifier")
        return logits


def _build(cfg: BertConfig, name: str) -> SegmentedModel:
    units: list[Module] = [BertEmbeddings(cfg)]
    units += [BertEncoderLayer(cfg, i) for i in range(cfg.num_layers)]
    units.append(BertClassifierHead(cfg))
    return SegmentedModel(name, units, input_dtype=INT64, amp=cfg.amp)


def build_bert_base(num_labels: int = 2, *, amp: bool = False) -> SegmentedModel:
    """BERT-base-uncased: 12 layers, hidden 768, ~110 M parameters."""
    cfg = BertConfig(num_labels=num_labels, amp=amp)
    return _build(cfg, "bert-base-amp" if amp else "bert-base")


def build_roberta_base(num_labels: int = 2, *, amp: bool = False) -> SegmentedModel:
    """RoBERTa-base: BERT architecture with a 50 k vocabulary, ~125 M params."""
    cfg = BertConfig(
        vocab_size=50265,
        max_position_embeddings=514,
        type_vocab_size=1,
        num_labels=num_labels,
        amp=amp,
    )
    return _build(cfg, "roberta-base-amp" if amp else "roberta-base")
