"""Explicit collect→fit→plan lifecycle controller with drift detection.

The Mimose planner's two-phase lifecycle used to be *implicit*: the
collector-readiness check lived in the planner's plan path, the one-shot
estimator fit hid behind a lazy ``if not fitted`` inside ``plan()``, and
the recollect-triggered refit sat in ``observe()`` — three call sites,
no single owner, and no notion of the fit ever going stale.  This module
makes the lifecycle an explicit state machine:

.. code-block:: text

    COLLECTING ──ready──▶ FITTED ──responsive obs──▶ MONITORING
        ▲                    ▲                            │
        │ partial            │                            │ detector
        │ re-collection      └────────── REFITTING ◀──────┘ fires
        │                                    ▲
        └────────────── DRIFTED ─────────────┘ (window refilled)

:class:`LifecycleController` is the *only* module that decides when to
fit or refit (enforced by the ``lifecycle-protocol`` replint rule): the
planner asks it ``needs_collection(size)`` before planning and
``ensure_fitted()`` before predicting, and hands it every iteration's
surviving stats through ``observe`` — either directly or via the typed
event bus (:class:`~repro.engine.events.IterationObserved`), to which
the executor attaches the controller automatically.

On top of the state machine sit the drift monitors
(:mod:`repro.core.drift`): a Page–Hinkley test over the signed residual
stream (systematic under-prediction ⇒ the fitted size→memory relation
moved) and a CUSUM over plan-time input sizes (the size *distribution*
moved).  Either firing sends the machine to ``DRIFTED``: the collector
evicts the stale head of its window (partial re-collection), the next
iterations run sheltered until readiness is re-earned, and the refit
that follows runs the **refit invalidation protocol** — plan cache
cleared, replay records and compiled templates flushed through the
executor-bound callback — so no tier can serve results priced off the
stale fit.

Everything here is deterministic: the detectors are pure functions of
the observation stream, no randomness, no host clocks (wall-clock stays
in the planner's allowlisted stopwatch sites).  With drift detection
off (the default) the controller reproduces the legacy implicit
lifecycle bit-for-bit — the digest-parity goldens pin this.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.core.adaptive import QuantileTracker, ResidualTracker
from repro.core.collector import ShuttlingCollector
from repro.core.drift import CusumMonitor, PageHinkleyDetector
from repro.core.estimator import LightningMemoryEstimator
from repro.core.plan_cache import PlanCache
from repro.engine.events import (
    DriftDetected,
    EstimatorRefit,
    EventBus,
    IterationObserved,
    LifecycleTransition,
)
from repro.engine.stats import IterationStats


class LifecycleState(enum.Enum):
    """States of the collect→fit→plan lifecycle machine."""

    COLLECTING = "collecting"
    FITTED = "fitted"
    MONITORING = "monitoring"
    DRIFTED = "drifted"
    REFITTING = "refitting"


class LifecycleController:
    """Owns every fit/refit/re-collection decision of one planner.

    Args:
        collector: the shuttling collector accumulating sheltered samples.
        estimator: the memory estimator being (re)fitted.
        cache: the plan cache flushed on every (re)fit.
        residuals: the adaptive-margin residual tracker fed per
            responsive iteration.
        frag_observed: the allocator-slack quantile tracker.
        recollect_margin: how far beyond the largest trained input size a
            new input may be before triggering a sheltered re-collection
            (the paper's O(n/N) occasional re-collection).
        drift_detection: enable the drift monitors and the DRIFTED path.
            Off by default — the stationary lifecycle is bit-identical to
            the legacy implicit one.
        residual_detector: Page–Hinkley test over signed prediction
            residuals (default-constructed when drift detection is on).
        size_monitor: CUSUM over plan-time input sizes (default-
            constructed when drift detection is on).
        recollect_iterations: fresh sheltered iterations required after a
            drift eviction before the estimator may be refitted.
    """

    def __init__(
        self,
        *,
        collector: ShuttlingCollector,
        estimator: LightningMemoryEstimator,
        cache: PlanCache,
        residuals: ResidualTracker,
        frag_observed: QuantileTracker,
        recollect_margin: float = 0.10,
        drift_detection: bool = False,
        residual_detector: Optional[PageHinkleyDetector] = None,
        size_monitor: Optional[CusumMonitor] = None,
        recollect_iterations: Optional[int] = None,
    ) -> None:
        self.collector = collector
        self.estimator = estimator
        self.cache = cache
        self.residuals = residuals
        self.frag_observed = frag_observed
        self.recollect_margin = recollect_margin
        self.drift_detection = drift_detection
        self.residual_detector = (
            residual_detector
            if residual_detector is not None
            else PageHinkleyDetector()
        )
        self.size_monitor = (
            size_monitor if size_monitor is not None else CusumMonitor()
        )
        if recollect_iterations is None:
            recollect_iterations = max(2, collector.min_iterations // 2)
        if recollect_iterations < 1:
            raise ValueError("recollect_iterations must be >= 1")
        self.recollect_iterations = recollect_iterations
        self.state = LifecycleState.COLLECTING
        # bookkeeping surfaced through RunResult / `repro run`
        self.fit_count = 0
        self.refit_count = 0
        self.drift_events = 0
        self._base_samples: list[tuple[int, int]] = []
        self._bus: Optional[EventBus] = None
        self._invalidate: Optional[Callable[[], None]] = None
        self._last_observed: Optional[IterationStats] = None
        self._iteration = 0

    # ---------------------------------------------------------------- wiring

    def attach(
        self,
        bus: EventBus,
        *,
        invalidate: Optional[Callable[[], None]] = None,
    ) -> "LifecycleController":
        """Wire the controller to an executor's event bus.

        Subscribes to :class:`~repro.engine.events.IterationObserved`
        (the post-recovery observation stream) and keeps the bus for
        publishing lifecycle events.  ``invalidate`` is the executor's
        replay/compiled flush, bound here so the refit invalidation
        protocol reaches every cache tier without the controller knowing
        the executor.  The executor calls this automatically for any
        planner exposing a ``lifecycle`` attribute.
        """
        self._bus = bus
        if invalidate is not None:
            self._invalidate = invalidate
        bus.subscribe(self, IterationObserved)
        return self

    def __call__(self, event: IterationObserved) -> None:
        """Bus entry point: observe each surviving iteration's stats."""
        self.observe(event.stats)

    # ------------------------------------------------------------- decisions

    def needs_collection(self, size: int) -> bool:
        """Whether the next iteration must run sheltered (COLLECT mode).

        True while the collector window is unfilled (initial collection
        and post-drift re-collection), for inputs beyond the trusted
        extrapolation range, and — with drift detection on — when the
        input-size monitor sees the size distribution shift.  Consulted
        at plan time, *before* execution, so a drifted input is diverted
        to the sheltered footprint instead of an extrapolated plan.
        """
        if not self.collector.is_ready():
            return True
        if not self.estimator.is_fitted:
            return False  # enough data — this iteration fits and plans
        if self.should_recollect(size):
            return True
        if self.drift_detection and self.state in (
            LifecycleState.FITTED,
            LifecycleState.MONITORING,
        ):
            if self.size_monitor.update(float(size)):
                self._on_drift(
                    "input-size-cusum",
                    self.size_monitor.statistic,
                    self.size_monitor.threshold,
                )
                return True
        return False

    def should_recollect(self, size: int) -> bool:
        """Whether ``size`` lies beyond the trusted extrapolation range."""
        if not self.estimator.is_fitted:
            return True
        limit = self.estimator.max_trained_size * (1.0 + self.recollect_margin)
        return size > limit

    def ensure_fitted(self) -> None:
        """Fit the estimator if it never was (the first responsive plan)."""
        if not self.estimator.is_fitted:
            self._refit("initial fit", initial=True)

    # --------------------------------------------------------------- observe

    def observe(self, stats: IterationStats) -> None:
        """Feed one iteration's surviving stats into the lifecycle.

        Idempotent per stats object: when an executor drives the
        controller through the bus, the planner's own ``observe`` call
        with the same object is a no-op — so the controller behaves
        identically with or without a bus.
        """
        if stats is self._last_observed:
            return
        self._last_observed = stats
        self._iteration = stats.iteration
        if stats.is_collect:
            self.collector.ingest(stats.measurements)
            if not stats.oom:
                self._base_samples.append((stats.input_size, stats.peak_in_use))
            # A post-fit sheltered iteration (re-collection) refits as
            # soon as the window is full again; a drift eviction leaves
            # the window short, deferring the refit until it refills.
            if self.estimator.is_fitted and self.collector.is_ready():
                self._refit(
                    "re-collection window full"
                    if self.state is LifecycleState.DRIFTED
                    else "out-of-range input re-collected"
                )
            return
        if stats.oom:
            # Budget policy (reserve widening) is the planner's; the
            # lifecycle only reacts to what the estimator can fix.
            return
        if self.state is LifecycleState.FITTED:
            self._transition(
                LifecycleState.MONITORING, "first responsive observation"
            )
        predicted = stats.predicted_peak_bytes
        if predicted is not None:
            if predicted > 0:
                self.residuals.record(predicted, stats.peak_in_use)
                if (
                    self.drift_detection
                    and self.state is LifecycleState.MONITORING
                ):
                    signed = stats.peak_in_use / predicted - 1.0
                    if self.residual_detector.update(signed):
                        self._on_drift(
                            "residual-page-hinkley",
                            self.residual_detector.statistic,
                            self.residual_detector.threshold,
                        )
            self.frag_observed.record(
                max(0, stats.peak_reserved - stats.peak_in_use)
            )

    # ------------------------------------------------------------ internals

    def _on_drift(self, monitor: str, statistic: float, threshold: float) -> None:
        """Handle a firing drift monitor: evict and start re-collecting."""
        self.drift_events += 1
        if self._bus is not None:
            self._bus.emit(
                DriftDetected(self._iteration, monitor, statistic, threshold)
            )
        self._transition(LifecycleState.DRIFTED, f"{monitor} fired")
        # Partial re-collection: keep the recent tail of the window, drop
        # the stale head, and require `recollect_iterations` fresh
        # sheltered iterations before the refit.
        keep = max(
            0, self.collector.min_iterations - self.recollect_iterations
        )
        self.collector.evict_oldest(keep=keep)
        # The monitors restart from scratch; the size monitor stays
        # uncalibrated (silent) until the refit provides a new reference.
        self.residual_detector.reset()
        self.size_monitor.reset()

    def _refit(self, reason: str, *, initial: bool = False) -> None:
        """(Re)fit the estimator and run the invalidation protocol."""
        if not initial:
            self._transition(LifecycleState.REFITTING, reason)
        self.estimator.fit(self.collector)
        if self._base_samples:
            sizes = [s for s, _ in self._base_samples]
            peaks = [p for _, p in self._base_samples]
            self.estimator.fit_base(sizes, peaks)
        # Invalidation protocol: cached plans carry predictions from the
        # old fit; replay records and compiled templates embed iterations
        # priced off those plans.  All three tiers flush together.
        self.cache.clear()
        invalidated = False
        if not initial and self._invalidate is not None:
            self._invalidate()
            invalidated = True
        self.fit_count += 1
        if not initial:
            self.refit_count += 1
        if self.drift_detection:
            self.residual_detector.reset()
            self.size_monitor.calibrate(
                [float(s) for s in self.collector.window_sizes()]
            )
        if self._bus is not None:
            self._bus.emit(
                EstimatorRefit(
                    self._iteration,
                    self.fit_count,
                    self.collector.iterations_collected,
                    invalidated,
                )
            )
        self._transition(LifecycleState.FITTED, reason)

    def _transition(self, state: LifecycleState, reason: str) -> None:
        if state is self.state:
            return
        previous = self.state
        self.state = state
        if self._bus is not None:
            self._bus.emit(
                LifecycleTransition(
                    self._iteration, previous.value, state.value, reason
                )
            )
