"""Sequential drift detectors for the planning lifecycle (ROADMAP: input-
distribution drift and online replanning).

Two complementary monitors feed :class:`~repro.core.lifecycle
.LifecycleController`:

* :class:`PageHinkleyDetector` watches the *residual* stream — the signed
  relative error of the estimator's peak-memory predictions.  A fitted
  estimator that is still valid produces residuals hovering around zero;
  a persistent positive shift means the fit systematically under-predicts
  the current workload, which is how concept drift (the size→memory
  relationship moved) shows up *after* execution.
* :class:`CusumMonitor` watches the *input-size* stream, standardised
  against the distribution the estimator was trained on.  A persistent
  shift fires *before* a mispredicted iteration has to OOM: the monitor
  is consulted at plan time, so the controller can divert the suspicious
  iteration to sheltered (full-checkpoint) execution instead of trusting
  an extrapolated plan.

Both are classic sequential change-point statistics (Page 1954): O(1)
state per update, no randomness, no clocks — pure functions of the
observation stream, so they are safe inside the digest-bearing planning
path.
"""

from __future__ import annotations

import math
from typing import Sequence


class PageHinkleyDetector:
    """Page–Hinkley test for an upward shift in a stream's mean.

    Maintains the cumulative deviation of observations from their running
    mean (minus a per-step tolerance ``delta``); drift is declared when
    the cumulation rises more than ``threshold`` above its historical
    minimum.  Tuned for the residual stream: only *upward* shifts matter
    (systematic under-prediction is the unsafe direction; over-prediction
    merely wastes checkpointing).

    Args:
        delta: per-observation tolerance subtracted before accumulating —
            shifts smaller than this never fire.
        threshold: detection threshold on (cumulation − running minimum).
        min_observations: observations required before drift may fire,
            so a single early outlier cannot trip the test.
    """

    def __init__(
        self,
        *,
        delta: float = 0.005,
        threshold: float = 0.15,
        min_observations: int = 8,
    ) -> None:
        if delta < 0:
            raise ValueError("delta must be non-negative")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        self.delta = delta
        self.threshold = threshold
        self.min_observations = min_observations
        self._count = 0
        self._mean = 0.0
        self._cum = 0.0
        self._cum_min = 0.0

    def update(self, value: float) -> bool:
        """Feed one observation; returns True when drift is detected."""
        self._count += 1
        self._mean += (value - self._mean) / self._count
        self._cum += value - self._mean - self.delta
        self._cum_min = min(self._cum_min, self._cum)
        return (
            self._count >= self.min_observations
            and self.statistic > self.threshold
        )

    @property
    def statistic(self) -> float:
        """Current test statistic (cumulation above its running minimum)."""
        return self._cum - self._cum_min

    @property
    def num_observations(self) -> int:
        return self._count

    def reset(self) -> None:
        """Forget all state (called after a refit resolves the drift)."""
        self._count = 0
        self._mean = 0.0
        self._cum = 0.0
        self._cum_min = 0.0


class CusumMonitor:
    """Two-sided CUSUM on standardised observations.

    Calibrated against a reference sample (the collector window the
    estimator was trained on); each observation is standardised with the
    reference mean/std and fed into upper and lower one-sided cumulative
    sums with slack ``slack``.  Either sum exceeding ``threshold``
    declares a distribution shift.

    An uncalibrated monitor never fires — there is nothing to deviate
    *from* until the first fit provides a reference window.

    Args:
        slack: per-step allowance in standard deviations (the classic
            ``k``); drifts smaller than ``slack`` sigmas never fire.
        threshold: detection threshold on either cumulative sum (``h``).
        min_observations: observations since calibration required before
            drift may fire.
    """

    def __init__(
        self,
        *,
        slack: float = 0.5,
        threshold: float = 6.0,
        min_observations: int = 4,
    ) -> None:
        if slack < 0:
            raise ValueError("slack must be non-negative")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        self.slack = slack
        self.threshold = threshold
        self.min_observations = min_observations
        self._mean = 0.0
        self._std = 0.0
        self._calibrated = False
        self._count = 0
        self._upper = 0.0
        self._lower = 0.0

    def calibrate(self, reference: Sequence[float]) -> None:
        """Set the no-drift reference from the training window's values."""
        values = list(reference)
        if not values:
            raise ValueError("calibration needs at least one value")
        n = len(values)
        mean = math.fsum(values) / n
        var = math.fsum((v - mean) ** 2 for v in values) / n
        # Floor the scale so a degenerate window (one repeated size) does
        # not turn every later observation into an infinite z-score.
        self._mean = mean
        self._std = max(math.sqrt(var), 0.05 * abs(mean), 1.0)
        self._calibrated = True
        self._count = 0
        self._upper = 0.0
        self._lower = 0.0

    def update(self, value: float) -> bool:
        """Feed one observation; returns True when drift is detected."""
        if not self._calibrated:
            return False
        z = (value - self._mean) / self._std
        self._count += 1
        self._upper = max(0.0, self._upper + z - self.slack)
        self._lower = max(0.0, self._lower - z - self.slack)
        return (
            self._count >= self.min_observations
            and self.statistic > self.threshold
        )

    @property
    def statistic(self) -> float:
        """Current test statistic (the larger one-sided cumulative sum)."""
        return max(self._upper, self._lower)

    @property
    def calibrated(self) -> bool:
        return self._calibrated

    @property
    def num_observations(self) -> int:
        return self._count

    def reset(self) -> None:
        """Drop the calibration and all accumulated state."""
        self._calibrated = False
        self._mean = 0.0
        self._std = 0.0
        self._count = 0
        self._upper = 0.0
        self._lower = 0.0
