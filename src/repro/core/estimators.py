"""Regression model zoo for the memory estimator (Table IV candidates).

All models map a scalar input size to predicted bytes and share the tiny
:class:`Regressor` interface.  They are implemented from scratch on NumPy
— this reproduction has no sklearn/xgboost — but preserve the properties
Table IV compares:

* polynomial least squares (n = 1, 2, 3): microsecond predictions; the
  quadratic recovers the true memory law exactly;
* a kernel (RBF ridge) regressor standing in for SVR: same kernel-method
  family, an order of magnitude slower to predict, poor extrapolation;
* a CART decision tree: piecewise-constant, overfits 10 samples and
  cannot extrapolate;
* gradient-boosted stumps standing in for XGBoost: by far the slowest to
  train and predict, same extrapolation failure as any tree ensemble.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


class NotFittedError(RuntimeError):
    """Raised when predicting before fitting."""


class Regressor:
    """1-D regression interface: bytes = f(input_size)."""

    name: str = "regressor"

    def fit(self, x: Sequence[float], y: Sequence[float]) -> "Regressor":
        raise NotImplementedError

    def predict(self, x: float) -> float:
        raise NotImplementedError

    def predict_many(self, xs: Sequence[float]) -> np.ndarray:
        return np.asarray([self.predict(x) for x in xs], dtype=float)

    def _validate(self, x: Sequence[float], y: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
        xa = np.asarray(x, dtype=float)
        ya = np.asarray(y, dtype=float)
        if xa.ndim != 1 or ya.ndim != 1 or xa.shape != ya.shape:
            raise ValueError("x and y must be equal-length 1-D sequences")
        if xa.size == 0:
            raise ValueError("cannot fit on zero samples")
        return xa, ya


class PolynomialRegressor(Regressor):
    """Least-squares polynomial fit of the given degree.

    Inputs are scaled to [0, 1] before constructing the Vandermonde matrix
    so the normal equations stay well conditioned for input sizes in the
    tens of thousands.
    """

    def __init__(self, degree: int = 2) -> None:
        if not 1 <= degree <= 8:
            raise ValueError("degree must be in [1, 8]")
        self.degree = degree
        self.name = f"poly{degree}"
        self._coeffs: np.ndarray | None = None
        self._scale = 1.0

    def fit(self, x: Sequence[float], y: Sequence[float]) -> "PolynomialRegressor":
        import warnings

        xa, ya = self._validate(x, y)
        self._scale = float(xa.max()) or 1.0
        xs = xa / self._scale
        degree = min(self.degree, max(1, xa.size - 1))
        with warnings.catch_warnings():
            # near-duplicate sample sizes make the Vandermonde system
            # rank-deficient; least squares still returns the best fit
            warnings.simplefilter("ignore", np.exceptions.RankWarning)
            self._coeffs = np.polyfit(xs, ya, degree)
        return self

    def predict(self, x: float) -> float:
        if self._coeffs is None:
            raise NotFittedError(f"{self.name} has not been fitted")
        return float(np.polyval(self._coeffs, x / self._scale))

    @property
    def coefficients(self) -> np.ndarray:
        if self._coeffs is None:
            raise NotFittedError(f"{self.name} has not been fitted")
        return self._coeffs.copy()

    @property
    def scale(self) -> float:
        """Input normalisation divisor chosen at fit time."""
        return self._scale


class SupportVectorRegressor(Regressor):
    """RBF kernel ridge regressor (SVR-family stand-in).

    Solves ``(K + lambda I) a = y`` in closed form; prediction evaluates the
    kernel against every training point, which is what makes real SVR an
    order of magnitude slower than the polynomial models in Table IV.
    """

    name = "svr"

    def __init__(self, gamma: float = 8.0, ridge: float = 1e-3) -> None:
        if gamma <= 0 or ridge <= 0:
            raise ValueError("gamma and ridge must be positive")
        self.gamma = gamma
        self.ridge = ridge
        self._x: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._scale = 1.0
        self._y_mean = 0.0

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        d = a[:, None] - b[None, :]
        return np.exp(-self.gamma * d * d)

    def fit(self, x: Sequence[float], y: Sequence[float]) -> "SupportVectorRegressor":
        xa, ya = self._validate(x, y)
        self._scale = float(xa.max()) or 1.0
        xs = xa / self._scale
        self._y_mean = float(ya.mean())
        k = self._kernel(xs, xs)
        k[np.diag_indices_from(k)] += self.ridge
        self._alpha = np.linalg.solve(k, ya - self._y_mean)
        self._x = xs
        return self

    def predict(self, x: float) -> float:
        if self._alpha is None or self._x is None:
            raise NotFittedError("svr has not been fitted")
        xs = np.asarray([x / self._scale])
        k = self._kernel(xs, self._x)[0]
        return float(k @ self._alpha + self._y_mean)


@dataclass(slots=True)
class _TreeNode:
    threshold: float = 0.0
    value: float = 0.0
    left: "_TreeNode | None" = None
    right: "_TreeNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTreeRegressor(Regressor):
    """CART regression tree on a single feature.

    Piecewise-constant: with 10 training samples it memorises them, and it
    can never extrapolate beyond the training range — the failure mode
    that gives trees their 5.67 % error in Table IV.
    """

    name = "tree"

    def __init__(self, max_depth: int = 6, min_samples_leaf: int = 1) -> None:
        if max_depth < 1 or min_samples_leaf < 1:
            raise ValueError("invalid tree hyper-parameters")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._root: _TreeNode | None = None

    def fit(self, x: Sequence[float], y: Sequence[float]) -> "DecisionTreeRegressor":
        xa, ya = self._validate(x, y)
        order = np.argsort(xa)
        self._root = self._grow(xa[order], ya[order], 0)
        return self

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int) -> _TreeNode:
        node = _TreeNode(value=float(y.mean()))
        if depth >= self.max_depth or x.size < 2 * self.min_samples_leaf:
            return node
        best_sse = float("inf")
        best_split = -1
        # x is sorted; candidate splits lie between distinct neighbours
        csum = np.cumsum(y)
        total = csum[-1]
        for i in range(self.min_samples_leaf, x.size - self.min_samples_leaf + 1):
            if i < x.size and x[i] == x[i - 1]:
                continue
            left_mean = csum[i - 1] / i
            right_mean = (total - csum[i - 1]) / (x.size - i)
            sse = -(i * left_mean**2 + (x.size - i) * right_mean**2)
            if sse < best_sse:
                best_sse = sse
                best_split = i
        if best_split < 0:
            return node
        i = best_split
        node.threshold = float((x[i - 1] + x[i]) / 2) if i < x.size else float(x[-1])
        node.left = self._grow(x[:i], y[:i], depth + 1)
        node.right = self._grow(x[i:], y[i:], depth + 1)
        return node

    def predict(self, x: float) -> float:
        if self._root is None:
            raise NotFittedError("tree has not been fitted")
        node = self._root
        while not node.is_leaf:
            node = node.left if x <= node.threshold else node.right  # type: ignore[assignment]
        return node.value


class GradientBoostedTrees(Regressor):
    """Gradient-boosted regression stumps (XGBoost stand-in).

    Hundreds of sequential weak learners make both fitting and prediction
    orders of magnitude slower than the closed-form models, reproducing
    XGBoost's Table IV profile (428 ms train / 1.3 ms predict).
    """

    name = "gbt"

    def __init__(
        self,
        n_estimators: int = 300,
        learning_rate: float = 0.1,
        max_depth: int = 3,
    ) -> None:
        if n_estimators < 1 or not 0 < learning_rate <= 1:
            raise ValueError("invalid boosting hyper-parameters")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self._trees: list[DecisionTreeRegressor] = []
        self._base = 0.0

    def fit(self, x: Sequence[float], y: Sequence[float]) -> "GradientBoostedTrees":
        xa, ya = self._validate(x, y)
        self._base = float(ya.mean())
        residual = ya - self._base
        self._trees = []
        for _ in range(self.n_estimators):
            tree = DecisionTreeRegressor(max_depth=self.max_depth)
            tree.fit(xa, residual)
            pred = tree.predict_many(xa)
            residual = residual - self.learning_rate * pred
            self._trees.append(tree)
            if float(np.abs(residual).max()) < 1e-9:
                break
        return self

    def predict(self, x: float) -> float:
        if not self._trees:
            raise NotFittedError("gbt has not been fitted")
        return self._base + self.learning_rate * sum(
            t.predict(x) for t in self._trees
        )


_FACTORIES: dict[str, Callable[[], Regressor]] = {
    "poly1": lambda: PolynomialRegressor(1),
    "poly2": lambda: PolynomialRegressor(2),
    "poly3": lambda: PolynomialRegressor(3),
    "svr": SupportVectorRegressor,
    "tree": DecisionTreeRegressor,
    "gbt": GradientBoostedTrees,
}


def available_regressors() -> list[str]:
    return sorted(_FACTORIES)


def make_regressor(name: str) -> Regressor:
    """Construct a fresh regressor by Table IV family name."""
    try:
        return _FACTORIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown regressor {name!r}; available: {available_regressors()}"
        ) from None
