"""Responsive memory scheduler (§IV-D, Algorithm 1).

Given per-unit estimated activation sizes and the forward execution order,
pick the units to checkpoint so the estimated excess over the budget is
covered, preferring:

1. the layer whose activation size is *nearest above* the remaining excess
   (avoid over-dropping), falling back to the largest layer when none
   covers it alone;
2. within a ±10 % size bucket, the layer with the *earliest* forward
   timestamp — checkpointing late layers barely lowers the peak because
   their recompute happens while everything else is still resident
   (Fig 9).

A pluggable :class:`Scheduler` interface is kept, as the paper promises
("Mimose still reserves a flexible interface for users to experiment with
other scheduling algorithms"); :class:`KnapsackScheduler` is the
Knapsack-style alternative it mentions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping


@dataclass(frozen=True, slots=True)
class SchedulerInput:
    """Everything a scheduler may consider for one input size.

    Attributes:
        est_bytes: estimated activation bytes per checkpointable unit.
        order: forward timestamp (index) per unit.
        excess_bytes: estimated bytes beyond the usable budget that the
            plan must release.
        est_time: optional estimated forward (recompute) seconds per unit.
    """

    est_bytes: Mapping[str, int]
    order: Mapping[str, int]
    excess_bytes: int
    est_time: Mapping[str, float] | None = None


class Scheduler:
    """Strategy interface: pick the units to checkpoint."""

    name = "scheduler"

    def schedule(self, inp: SchedulerInput) -> frozenset[str]:
        raise NotImplementedError


class GreedyScheduler(Scheduler):
    """Algorithm 1: bucketed greedy selection.

    Args:
        bucket_tolerance: relative width of a similarity bucket; 0.10 is
            the paper's ±10 %.
    """

    name = "greedy"

    def __init__(self, bucket_tolerance: float = 0.10) -> None:
        if not 0.0 <= bucket_tolerance < 1.0:
            raise ValueError("bucket_tolerance must be in [0, 1)")
        self.bucket_tolerance = bucket_tolerance

    def build_buckets(self, inp: SchedulerInput) -> list[list[str]]:
        """Group units of similar estimated size (Algorithm 1 lines 2-12).

        Buckets are ordered by descending size; units inside a bucket by
        ascending forward timestamp.
        """
        remaining = sorted(
            inp.est_bytes, key=lambda u: inp.est_bytes[u], reverse=True
        )
        buckets: list[list[str]] = []
        i = 0
        while i < len(remaining):
            head = remaining[i]
            head_size = inp.est_bytes[head]
            floor = head_size * (1.0 - self.bucket_tolerance)
            j = i + 1
            while j < len(remaining) and inp.est_bytes[remaining[j]] > floor:
                j += 1
            bucket = sorted(remaining[i:j], key=lambda u: inp.order[u])
            buckets.append(bucket)
            i = j
        return buckets

    def schedule(self, inp: SchedulerInput) -> frozenset[str]:
        if inp.excess_bytes <= 0:
            return frozenset()
        buckets = self.build_buckets(inp)
        chosen: list[str] = []
        excess = inp.excess_bytes
        while excess > 0 and buckets:
            # Buckets whose largest member alone covers the excess
            # (Algorithm 1 line 15); choose the tightest one.
            candidates = [
                b for b in buckets
                if max(inp.est_bytes[u] for u in b) >= excess
            ]
            if candidates:
                bucket = min(
                    candidates, key=lambda b: max(inp.est_bytes[u] for u in b)
                )
                # "Nearest above": only members that cover the excess alone
                # qualify — the earliest-timestamp member of the bucket may
                # be up to bucket_tolerance smaller than the excess, and
                # picking it would force one extra (over-dropping) pick.
                unit = min(
                    (u for u in bucket if inp.est_bytes[u] >= excess),
                    key=lambda u: inp.order[u],
                )
                bucket.remove(unit)
            else:
                bucket = buckets[0]  # largest activations first
                unit = bucket.pop(0)  # earliest timestamp inside the bucket
            if not bucket:
                buckets.remove(bucket)
            chosen.append(unit)
            excess -= inp.est_bytes[unit]
        return frozenset(chosen)


class KnapsackScheduler(Scheduler):
    """Exact alternative: minimise recompute time subject to coverage.

    Solves min sum(time_u) over subsets with sum(bytes_u) >= excess via DP
    on quantised bytes.  Useful as an ablation upper bound on plan quality;
    slower than the greedy pass but still sub-millisecond at unit counts.
    """

    name = "knapsack"
    _QUANTUM = 1 << 20  # 1 MiB

    def schedule(self, inp: SchedulerInput) -> frozenset[str]:
        if inp.excess_bytes <= 0:
            return frozenset()
        units = list(inp.est_bytes)
        times = {
            u: (inp.est_time[u] if inp.est_time else float(inp.order[u] + 1))
            for u in units
        }
        need = math.ceil(inp.excess_bytes / self._QUANTUM)
        sizes = {u: max(1, inp.est_bytes[u] // self._QUANTUM) for u in units}
        total = sum(sizes.values())
        if total < need:
            return frozenset(units)  # even everything falls short; drop all
        # rows[i][c] = min time to cover >= c quanta using the first i units
        inf = float("inf")
        rows: list[list[float]] = [[0.0, *([inf] * need)]]
        for u in units:
            w, t = sizes[u], times[u]
            prev = rows[-1]
            cur = prev[:]
            for c in range(1, need + 1):
                src = prev[max(0, c - w)] + t
                if src < cur[c]:
                    cur[c] = src
            rows.append(cur)
        if rows[-1][need] == inf:
            return frozenset(units)
        chosen: list[str] = []
        c = need
        for i in range(len(units), 0, -1):
            if rows[i][c] != rows[i - 1][c]:
                u = units[i - 1]
                chosen.append(u)
                c = max(0, c - sizes[u])
        return frozenset(chosen)
