"""Compatibility shim: the scheduler family moved to :mod:`repro.solvers`.

The responsive schedulers (§IV-D, Algorithm 1), the knapsack alternative
and the hybrid swap/recompute scheduler now live in the unified solver
registry — one decision layer over
:class:`~repro.planners.base.ActionAssignment` shared with the
optimality harness (exact, LP-rounding, Chen baselines).  This module
re-exports the original names so pre-refactor imports keep working;
new code should import from :mod:`repro.solvers` and construct by name
via :func:`repro.solvers.make_solver`.
"""

from repro.solvers.base import (
    CostModel,
    PcieCostModel,
    Scheduler,
    SchedulerInput,
    predicted_swap_stall,
)
from repro.solvers.greedy import (
    GreedyScheduler,
    HybridGreedyScheduler,
    KnapsackScheduler,
)

__all__ = [
    "CostModel",
    "PcieCostModel",
    "Scheduler",
    "SchedulerInput",
    "predicted_swap_stall",
    "GreedyScheduler",
    "HybridGreedyScheduler",
    "KnapsackScheduler",
]
