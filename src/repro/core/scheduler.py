"""Responsive memory scheduler (§IV-D, Algorithm 1).

Given per-unit estimated activation sizes and the forward execution order,
pick the units to checkpoint so the estimated excess over the budget is
covered, preferring:

1. the layer whose activation size is *nearest above* the remaining excess
   (avoid over-dropping), falling back to the largest layer when none
   covers it alone;
2. within a ±10 % size bucket, the layer with the *earliest* forward
   timestamp — checkpointing late layers barely lowers the peak because
   their recompute happens while everything else is still resident
   (Fig 9).

A pluggable :class:`Scheduler` interface is kept, as the paper promises
("Mimose still reserves a flexible interface for users to experiment with
other scheduling algorithms"); :class:`KnapsackScheduler` is the
Knapsack-style alternative it mentions.

Schedulers answer in the per-unit action vocabulary (:class:`~repro
.planners.base.ActionAssignment`): :meth:`Scheduler.assign` is the
general interface, and the classic recompute-only algorithms keep their
``schedule`` entry point, wrapped by the default ``assign`` as an
all-RECOMPUTE assignment.  :class:`HybridGreedyScheduler` prices
RECOMPUTE against SWAP per unit through a pluggable :class:`CostModel`
(Capuchin's rule, shared with :mod:`repro.planners.capuchin`), which is
what lets ``MimosePlanner`` emit input-aware hybrid plans
(``repro run --scheduler hybrid``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional, Protocol

from repro.planners.base import ActionAssignment
from repro.tensorsim.device import DeviceModel


@dataclass(frozen=True, slots=True)
class SchedulerInput:
    """Everything a scheduler may consider for one input size.

    Attributes:
        est_bytes: estimated activation bytes per checkpointable unit.
        order: forward timestamp (index) per unit.
        excess_bytes: estimated bytes beyond the usable budget that the
            plan must release.
        est_time: optional estimated forward (recompute) seconds per unit.
        bwd_time: optional estimated backward seconds per unit (cost
            models derive the swap overlap window from it; filled from
            sheltered backward measurements by both the Capuchin planner
            and ``MimosePlanner`` once the estimator has backward data).
    """

    est_bytes: Mapping[str, int]
    order: Mapping[str, int]
    excess_bytes: int
    est_time: Mapping[str, float] | None = None
    bwd_time: Mapping[str, float] | None = None


class CostModel(Protocol):
    """Prices each :class:`~repro.planners.base.MemoryAction` per unit.

    Implementations read the estimates carried by a
    :class:`SchedulerInput` and a device model; they never touch planner
    state, so one instance can be shared between planners (Capuchin and
    hybrid Mimose price actions through the same object).
    """

    def recompute_cost(self, unit: str, inp: SchedulerInput) -> float:
        """Seconds to rematerialise the unit (its forward time)."""
        ...

    def swap_cost(self, unit: str, inp: SchedulerInput) -> float:
        """Stall seconds swapping costs beyond the backward overlap."""
        ...

    def transfer_time(self, nbytes: int) -> float:
        """Raw PCIe transfer seconds for one unit's activations."""
        ...

    def overlap_window(self, inp: SchedulerInput) -> float:
        """Backward compute a transfer can hide under, seconds."""
        ...

    def transfer_envelope(self, inp: SchedulerInput) -> float:
        """Aggregate transfer budget for the whole plan, seconds."""
        ...


class PcieCostModel:
    """Capuchin's swap/recompute pricing rule (Peng et al., ASPLOS 2020).

    ``swap_cost(u) = max(0, transfer_time(bytes_u) - overlap_window)``
    against ``recompute_cost(u) = forward_time(u)``, plus an aggregate
    envelope — swap-outs serialise on one copy engine and must complete
    roughly within the forward pass, so transfers beyond
    ``envelope_fraction`` of the total forward time never finish before
    their backward (the paper's §II observation that PCIe cannot keep up
    with activation production).

    The overlap window is the mean per-unit backward time when the input
    carries measured backwards (Capuchin's measured-execution
    discipline).  Without measured backwards it falls back to
    ``bwd_ratio`` × the mean estimated forward time — the backward ≈ 2×
    forward *folk* rule, a rough average that is wrong per architecture
    (attention-heavy vs. conv-heavy units differ substantially), which
    is exactly why measured backwards exist.  The fallback ratio is
    :data:`DEFAULT_BWD_RATIO` unless the caller forces one.

    Args:
        device: device model used to price PCIe transfers.
        pcie_bandwidth: host link bandwidth (bytes/s); ``None`` prices
            transfers at the device preset's own link speed.
        bwd_ratio: ``None`` (the default) prefers measured ``bwd_time``
            and uses :data:`DEFAULT_BWD_RATIO` only as the fallback when
            backwards were never measured.  An explicit float *forces*
            ratio pricing even when measured backwards are available —
            the ``--bwd-ratio`` CLI override, useful for A/B-ing the
            constant against measured pricing.
        envelope_fraction: fraction of total forward time available to
            the copy engine.
    """

    #: Fallback backward/forward ratio when no backwards were measured.
    #: A folk constant, not a law — see the class docstring.
    DEFAULT_BWD_RATIO = 2.0

    def __init__(
        self,
        device: Optional[DeviceModel] = None,
        *,
        pcie_bandwidth: Optional[float] = None,
        bwd_ratio: Optional[float] = None,
        envelope_fraction: float = 0.8,
    ) -> None:
        self.device = device if device is not None else DeviceModel()
        self.pcie_bandwidth = pcie_bandwidth
        self.bwd_ratio = bwd_ratio
        self.envelope_fraction = envelope_fraction

    def transfer_time(self, nbytes: int) -> float:
        return self.device.transfer_time(
            nbytes, pcie_bandwidth=self.pcie_bandwidth
        )

    def recompute_cost(self, unit: str, inp: SchedulerInput) -> float:
        if inp.est_time is None:
            # No time information: recompute is assumed free, so swapping
            # (whose stall is never negative) is never preferred.
            return 0.0
        return inp.est_time[unit]

    def pricing_mode(self, inp: SchedulerInput) -> str:
        """Which branch :meth:`overlap_window` takes for this input.

        One of ``"measured-bwd"`` (per-unit measured backwards),
        ``"ratio-override"`` (caller forced an explicit ratio),
        ``"ratio-fallback"`` (no backwards measured; the
        :data:`DEFAULT_BWD_RATIO` constant), or ``"untimed"`` (no time
        estimates at all — swapping never wins).
        """
        if self.bwd_ratio is not None:
            return "ratio-override" if inp.est_time is not None else "untimed"
        if inp.bwd_time is not None:
            return "measured-bwd"
        if inp.est_time is not None:
            return "ratio-fallback"
        return "untimed"

    def overlap_window(self, inp: SchedulerInput) -> float:
        if self.bwd_ratio is None and inp.bwd_time is not None:
            bwd = list(inp.bwd_time.values())
            return sum(bwd) / max(len(bwd), 1)
        if inp.est_time is None:
            return 0.0
        ratio = (
            self.DEFAULT_BWD_RATIO if self.bwd_ratio is None
            else self.bwd_ratio
        )
        fwd = list(inp.est_time.values())
        return ratio * (sum(fwd) / max(len(fwd), 1))

    def transfer_envelope(self, inp: SchedulerInput) -> float:
        if inp.est_time is None:
            return 0.0
        return self.envelope_fraction * sum(inp.est_time.values())

    def swap_cost(self, unit: str, inp: SchedulerInput) -> float:
        transfer = self.transfer_time(inp.est_bytes[unit])
        return max(0.0, transfer - self.overlap_window(inp))


class Scheduler:
    """Strategy interface: assign a memory action per unit.

    ``schedule`` is the classic recompute-only entry point (Algorithm 1's
    vocabulary); ``assign`` is the general one.  Recompute-only
    schedulers implement ``schedule`` and inherit the default ``assign``
    wrapper; action-aware schedulers override ``assign`` directly.
    """

    name = "scheduler"

    def schedule(self, inp: SchedulerInput) -> frozenset[str]:
        raise NotImplementedError

    def assign(self, inp: SchedulerInput) -> ActionAssignment:
        """Default: every scheduled unit is dropped and recomputed."""
        return ActionAssignment.from_sets(recompute=self.schedule(inp))


class GreedyScheduler(Scheduler):
    """Algorithm 1: bucketed greedy selection.

    Args:
        bucket_tolerance: relative width of a similarity bucket; 0.10 is
            the paper's ±10 %.
    """

    name = "greedy"

    def __init__(self, bucket_tolerance: float = 0.10) -> None:
        if not 0.0 <= bucket_tolerance < 1.0:
            raise ValueError("bucket_tolerance must be in [0, 1)")
        self.bucket_tolerance = bucket_tolerance

    def build_buckets(self, inp: SchedulerInput) -> list[list[str]]:
        """Group units of similar estimated size (Algorithm 1 lines 2-12).

        Buckets are ordered by descending size; units inside a bucket by
        ascending forward timestamp.
        """
        remaining = sorted(
            inp.est_bytes, key=lambda u: inp.est_bytes[u], reverse=True
        )
        buckets: list[list[str]] = []
        i = 0
        while i < len(remaining):
            head = remaining[i]
            head_size = inp.est_bytes[head]
            floor = head_size * (1.0 - self.bucket_tolerance)
            j = i + 1
            while j < len(remaining) and inp.est_bytes[remaining[j]] > floor:
                j += 1
            bucket = sorted(remaining[i:j], key=lambda u: inp.order[u])
            buckets.append(bucket)
            i = j
        return buckets

    def schedule(self, inp: SchedulerInput) -> frozenset[str]:
        if inp.excess_bytes <= 0:
            return frozenset()
        buckets = self.build_buckets(inp)
        chosen: list[str] = []
        excess = inp.excess_bytes
        while excess > 0 and buckets:
            # Buckets whose largest member alone covers the excess
            # (Algorithm 1 line 15); choose the tightest one.
            candidates = [
                b for b in buckets
                if max(inp.est_bytes[u] for u in b) >= excess
            ]
            if candidates:
                bucket = min(
                    candidates, key=lambda b: max(inp.est_bytes[u] for u in b)
                )
                # "Nearest above": only members that cover the excess alone
                # qualify — the earliest-timestamp member of the bucket may
                # be up to bucket_tolerance smaller than the excess, and
                # picking it would force one extra (over-dropping) pick.
                unit = min(
                    (u for u in bucket if inp.est_bytes[u] >= excess),
                    key=lambda u: inp.order[u],
                )
                bucket.remove(unit)
            else:
                bucket = buckets[0]  # largest activations first
                unit = bucket.pop(0)  # earliest timestamp inside the bucket
            if not bucket:
                buckets.remove(bucket)
            chosen.append(unit)
            excess -= inp.est_bytes[unit]
        return frozenset(chosen)


class KnapsackScheduler(Scheduler):
    """Exact alternative: minimise recompute time subject to coverage.

    Solves min sum(time_u) over subsets with sum(bytes_u) >= excess via DP
    on quantised bytes.  Useful as an ablation upper bound on plan quality;
    slower than the greedy pass but still sub-millisecond at unit counts.
    """

    name = "knapsack"
    _QUANTUM = 1 << 20  # 1 MiB

    def schedule(self, inp: SchedulerInput) -> frozenset[str]:
        if inp.excess_bytes <= 0:
            return frozenset()
        need = math.ceil(inp.excess_bytes / self._QUANTUM)
        # Round *down*: each counted quantum under-states the unit's real
        # bytes, so DP coverage (sum(sizes) >= need) guarantees the real
        # bytes freed reach excess_bytes.  A max(1, ...) floor here would
        # let a sub-quantum unit masquerade as a full MiB and leave the
        # excess uncovered.  Zero-quantum units can never help cover, so
        # they are excluded from the DP outright.
        sizes = {
            u: b // self._QUANTUM
            for u, b in inp.est_bytes.items()
            if b >= self._QUANTUM
        }
        units = list(sizes)
        times = {
            u: (inp.est_time[u] if inp.est_time else float(inp.order[u] + 1))
            for u in units
        }
        total = sum(sizes.values())
        if total < need:
            # Even every DP-eligible unit falls short of guaranteed
            # coverage; drop everything, sub-quantum units included.
            return frozenset(inp.est_bytes)
        # rows[i][c] = min time to cover >= c quanta using the first i units
        inf = float("inf")
        rows: list[list[float]] = [[0.0, *([inf] * need)]]
        for u in units:
            w, t = sizes[u], times[u]
            prev = rows[-1]
            cur = prev[:]
            for c in range(1, need + 1):
                src = prev[max(0, c - w)] + t
                if src < cur[c]:
                    cur[c] = src
            rows.append(cur)
        if rows[-1][need] == inf:
            return frozenset(inp.est_bytes)
        chosen: list[str] = []
        c = need
        for i in range(len(units), 0, -1):
            if rows[i][c] != rows[i - 1][c]:
                u = units[i - 1]
                chosen.append(u)
                c = max(0, c - sizes[u])
        return frozenset(chosen)


class HybridGreedyScheduler(Scheduler):
    """Per-unit swap-vs-recompute greedy over a :class:`CostModel`.

    Capuchin's selection loop, lifted out of the planner so any caller
    with per-unit byte/time estimates can use it: walk the units largest
    activations first until the excess is covered, and for each pick the
    cheaper action — SWAP when its residual stall undercuts the unit's
    recompute time *and* the cumulative transfer still fits the copy
    engine's envelope, RECOMPUTE otherwise.  Zero-byte units free
    nothing and are skipped.

    With :class:`~repro.core.planner.MimosePlanner` driving it
    (``repro run --scheduler hybrid``), the estimates come from the
    Lightning estimator per input size, making the swap/recompute split
    input-aware — the ROADMAP "choose per tensor" item.
    """

    name = "hybrid"

    def __init__(self, cost_model: Optional[CostModel] = None) -> None:
        self.cost_model = (
            cost_model if cost_model is not None else PcieCostModel()
        )

    def schedule(self, inp: SchedulerInput) -> frozenset[str]:
        """Recompute-only view of :meth:`assign` (legacy callers)."""
        return self.assign(inp).checkpoint_units

    def assign(self, inp: SchedulerInput) -> ActionAssignment:
        if inp.excess_bytes <= 0:
            return ActionAssignment.empty()
        model = self.cost_model
        # One O(n) envelope + window per call, not per unit: the per-unit
        # swap price is max(0, transfer - window), float-identical to
        # model.swap_cost(name, inp) but without re-deriving the window
        # (itself an O(n) mean) inside the selection loop.
        envelope = model.transfer_envelope(inp)
        window = model.overlap_window(inp)
        drop: set[str] = set()
        swap: set[str] = set()
        freed = 0
        cum_transfer = 0.0
        for name in sorted(inp.est_bytes, key=lambda n: -inp.est_bytes[n]):
            if freed >= inp.excess_bytes:
                break
            nbytes = inp.est_bytes[name]
            if nbytes == 0:
                continue
            transfer = model.transfer_time(nbytes)
            fits_bandwidth = cum_transfer + transfer <= envelope
            stall = max(0.0, transfer - window)
            if stall < model.recompute_cost(name, inp) and fits_bandwidth:
                swap.add(name)
                cum_transfer += transfer
            else:
                drop.add(name)
            freed += nbytes
        return ActionAssignment.from_sets(
            recompute=frozenset(drop), swap=frozenset(swap)
        )


def predicted_swap_stall(
    model: CostModel, assignment: ActionAssignment, inp: SchedulerInput
) -> float:
    """Total backward stall the cost model predicts for a plan's swaps.

    Sums ``max(0, transfer_time(bytes_u) - overlap_window)`` over the
    assignment's swapped units — the same residual the selection loop
    priced, aggregated so it can be compared against the simulated
    ``swap_stall_time`` a run actually reports (the calibration check
    ``benchmarks/bench_hybrid.py`` performs).
    """
    window = model.overlap_window(inp)
    return sum(
        max(0.0, model.transfer_time(inp.est_bytes[u]) - window)
        for u in assignment.swap_units
    )
