"""Shuttling online collector (§IV-B).

During sheltered execution the executor runs every checkpointable unit's
forward twice (Fig 7) while keeping the Sublinear memory footprint, and
reports per-unit :class:`~repro.engine.stats.UnitMeasurement`s.  The
collector accumulates those samples — one (input size → activation bytes,
forward time) point per unit per sheltered iteration — until it has enough
to train the memory estimator.

The collector never touches the model: everything it knows arrived through
measurements, which is the paper's "no prior knowledge" constraint.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.engine.stats import UnitMeasurement


@dataclass(frozen=True, slots=True)
class CollectedSample:
    """One (input size, activation bytes, forward seconds) sample."""

    input_size: int
    saved_bytes: int
    fwd_time: float


class ShuttlingCollector:
    """Accumulates sheltered-execution measurements per unit.

    Args:
        min_iterations: sheltered iterations before the estimator may be
            trained (the paper uses 10, §V).
        min_distinct_sizes: distinct input sizes required — a quadratic
            needs at least three, and noise-robustness wants a few more.
    """

    def __init__(self, min_iterations: int = 10, min_distinct_sizes: int = 4) -> None:
        if min_iterations < 1:
            raise ValueError("min_iterations must be >= 1")
        if min_distinct_sizes < 3:
            raise ValueError("a quadratic fit needs >= 3 distinct sizes")
        self.min_iterations = min_iterations
        self.min_distinct_sizes = min_distinct_sizes
        self._samples: dict[str, list[CollectedSample]] = defaultdict(list)
        self._iterations = 0
        self._seen_sizes: set[int] = set()

    # ---------------------------------------------------------------- ingest

    def ingest(self, measurements: Iterable[UnitMeasurement]) -> None:
        """Record one sheltered iteration's measurements."""
        any_seen = False
        for m in measurements:
            self._samples[m.unit_name].append(
                CollectedSample(m.input_size, m.saved_bytes, m.fwd_time)
            )
            self._seen_sizes.add(m.input_size)
            any_seen = True
        if any_seen:
            self._iterations += 1

    # ----------------------------------------------------------------- state

    @property
    def iterations_collected(self) -> int:
        return self._iterations

    @property
    def distinct_sizes(self) -> int:
        return len(self._seen_sizes)

    @property
    def max_seen_size(self) -> int:
        return max(self._seen_sizes, default=0)

    def is_ready(self) -> bool:
        """Whether enough data exists to train the estimator."""
        return (
            self._iterations >= self.min_iterations
            and len(self._seen_sizes) >= self.min_distinct_sizes
        )

    def unit_names(self) -> list[str]:
        return sorted(self._samples)

    def samples(self, unit_name: str) -> Sequence[CollectedSample]:
        return tuple(self._samples.get(unit_name, ()))

    def training_data(self) -> Mapping[str, tuple[list[int], list[int], list[float]]]:
        """Per-unit (input sizes, byte sizes, forward times) arrays."""
        out: dict[str, tuple[list[int], list[int], list[float]]] = {}
        for name, rows in self._samples.items():
            out[name] = (
                [r.input_size for r in rows],
                [r.saved_bytes for r in rows],
                [r.fwd_time for r in rows],
            )
        return out

    def clear(self) -> None:
        self._samples.clear()
        self._seen_sizes.clear()
        self._iterations = 0
