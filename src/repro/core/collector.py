"""Shuttling online collector (§IV-B).

During sheltered execution the executor runs every checkpointable unit's
forward twice (Fig 7) while keeping the Sublinear memory footprint, and
reports per-unit :class:`~repro.engine.stats.UnitMeasurement`s.  The
collector accumulates those samples — one (input size → activation bytes,
forward time, backward time) point per unit per sheltered iteration —
until it has enough to train the memory estimator.

Samples are stored per sheltered *iteration*, so the collector can evict
its oldest iterations (:meth:`ShuttlingCollector.evict_oldest`, or
automatically via ``window_iterations``) instead of only clearing
wholesale.  That is what lets the lifecycle controller re-collect
*partially* after input-distribution drift: recent samples survive, the
stale head of the window is dropped, and readiness is re-earned with
fresh sheltered iterations.

The collector never touches the model: everything it knows arrived through
measurements, which is the paper's "no prior knowledge" constraint.  That
includes backward times: the sheltered backward pass times each unit, so
swap-vs-recompute pricing downstream can use a measured overlap window
instead of the backward ≈ 2× forward folk constant.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.engine.stats import UnitMeasurement


@dataclass(frozen=True, slots=True)
class CollectedSample:
    """One (input size, activation bytes, forward s, backward s) sample."""

    input_size: int
    saved_bytes: int
    fwd_time: float
    bwd_time: float = 0.0


class ShuttlingCollector:
    """Accumulates sheltered-execution measurements per unit.

    Args:
        min_iterations: sheltered iterations before the estimator may be
            trained (the paper uses 10, §V).
        min_distinct_sizes: distinct input sizes required *per unit* — a
            quadratic needs at least three, and noise-robustness wants a
            few more.  Readiness is gated on the worst-covered unit, not
            the union of sizes across units: a unit observed at a single
            size would otherwise receive a degenerate quadratic fit while
            the union looked healthy.
        window_iterations: optional rolling-window cap on retained
            sheltered iterations; each :meth:`ingest` beyond the cap
            evicts the oldest iteration.  Must be at least
            ``min_iterations`` (a smaller window could never become
            ready).  ``None`` retains everything (the stationary
            default).
    """

    def __init__(
        self,
        min_iterations: int = 10,
        min_distinct_sizes: int = 4,
        *,
        window_iterations: int | None = None,
    ) -> None:
        if min_iterations < 1:
            raise ValueError("min_iterations must be >= 1")
        if min_distinct_sizes < 3:
            raise ValueError("a quadratic fit needs >= 3 distinct sizes")
        if window_iterations is not None and window_iterations < min_iterations:
            raise ValueError(
                "window_iterations must be >= min_iterations (a smaller "
                "window can never satisfy readiness)"
            )
        self.min_iterations = min_iterations
        self.min_distinct_sizes = min_distinct_sizes
        self.window_iterations = window_iterations
        #: per-iteration batches, oldest first — the eviction unit
        self._history: list[list[tuple[str, CollectedSample]]] = []
        # Derived state, maintained incrementally on ingest and rebuilt
        # from the history after any eviction.
        self._samples: dict[str, list[CollectedSample]] = defaultdict(list)
        self._seen_sizes: set[int] = set()
        self._unit_sizes: dict[str, set[int]] = defaultdict(set)

    # ---------------------------------------------------------------- ingest

    def ingest(self, measurements: Iterable[UnitMeasurement]) -> None:
        """Record one sheltered iteration's measurements."""
        batch: list[tuple[str, CollectedSample]] = []
        for m in measurements:
            sample = CollectedSample(
                m.input_size, m.saved_bytes, m.fwd_time, m.bwd_time
            )
            batch.append((m.unit_name, sample))
            self._samples[m.unit_name].append(sample)
            self._seen_sizes.add(m.input_size)
            self._unit_sizes[m.unit_name].add(m.input_size)
        if batch:
            self._history.append(batch)
            if (
                self.window_iterations is not None
                and len(self._history) > self.window_iterations
            ):
                self.evict_oldest(keep=self.window_iterations)

    # --------------------------------------------------------------- eviction

    def evict_oldest(self, *, keep: int) -> int:
        """Drop all but the most recent ``keep`` sheltered iterations.

        Returns the number of iterations evicted.  All derived state —
        readiness, ``max_seen_size``, per-unit distinct-size counts — is
        recomputed from the surviving window, so nothing a dropped
        iteration contributed can linger (the regression the windowed
        lifecycle must never reintroduce: declaring readiness off stale
        samples).
        """
        if keep < 0:
            raise ValueError("keep must be non-negative")
        evicted = len(self._history) - keep
        if evicted <= 0:
            return 0
        self._history = self._history[evicted:]
        self._rebuild()
        return evicted

    def clear(self) -> None:
        self._history.clear()
        self._rebuild()

    def _rebuild(self) -> None:
        """Recompute every derived view from the retained history."""
        self._samples = defaultdict(list)
        self._seen_sizes = set()
        self._unit_sizes = defaultdict(set)
        for batch in self._history:
            for unit_name, sample in batch:
                self._samples[unit_name].append(sample)
                self._seen_sizes.add(sample.input_size)
                self._unit_sizes[unit_name].add(sample.input_size)

    # ----------------------------------------------------------------- state

    @property
    def iterations_collected(self) -> int:
        return len(self._history)

    @property
    def distinct_sizes(self) -> int:
        return len(self._seen_sizes)

    def distinct_sizes_for(self, unit_name: str) -> int:
        """Distinct input sizes at which one unit has been measured."""
        return len(self._unit_sizes.get(unit_name, ()))

    @property
    def max_seen_size(self) -> int:
        return max(self._seen_sizes, default=0)

    def is_ready(self) -> bool:
        """Whether enough data exists to train the estimator.

        Every unit must have been observed at ``min_distinct_sizes``
        distinct input sizes — the union across units is not enough,
        because each unit gets its own regression fit.
        """
        return (
            len(self._history) >= self.min_iterations
            and bool(self._unit_sizes)
            and min(len(s) for s in self._unit_sizes.values())
            >= self.min_distinct_sizes
        )

    def unit_names(self) -> list[str]:
        return sorted(self._samples)

    def samples(self, unit_name: str) -> Sequence[CollectedSample]:
        return tuple(self._samples.get(unit_name, ()))

    def window_sizes(self) -> list[int]:
        """Per-iteration input sizes of the retained window, oldest first.

        The reference sample the lifecycle controller calibrates its
        input-size drift monitor against after each fit.
        """
        return [batch[0][1].input_size for batch in self._history if batch]

    def training_data(
        self,
    ) -> Mapping[str, tuple[list[int], list[int], list[float], list[float]]]:
        """Per-unit (input sizes, byte sizes, forward s, backward s) arrays."""
        out: dict[str, tuple[list[int], list[int], list[float], list[float]]] = {}
        for name, rows in self._samples.items():
            out[name] = (
                [r.input_size for r in rows],
                [r.saved_bytes for r in rows],
                [r.fwd_time for r in rows],
                [r.bwd_time for r in rows],
            )
        return out
