"""Mimose — the paper's contribution.

The input-aware checkpointing planner (§IV) and its three components:

* :class:`~repro.core.collector.ShuttlingCollector` — online per-unit
  memory/time measurement via double-forward sheltered execution (§IV-B);
* :class:`~repro.core.estimator.LightningMemoryEstimator` — per-unit
  polynomial regression of activation memory vs input size (§IV-C), with
  the alternative regression families of Table IV in
  :mod:`repro.core.estimators`;
* :class:`~repro.core.scheduler.GreedyScheduler` — Algorithm 1's
  bucketed greedy selection (§IV-D), behind a pluggable
  :class:`~repro.core.scheduler.Scheduler` interface;
* :class:`~repro.core.plan_cache.PlanCache` — input-size-keyed plan reuse
  (§V);
* :class:`~repro.core.lifecycle.LifecycleController` — the explicit
  collect→fit→plan state machine, with the drift detectors of
  :mod:`repro.core.drift` for online replanning under input-distribution
  drift;

all orchestrated by :class:`~repro.core.planner.MimosePlanner`.
"""

from repro.core.adaptive import ResidualTracker
from repro.core.collector import CollectedSample, ShuttlingCollector
from repro.core.drift import CusumMonitor, PageHinkleyDetector
from repro.core.lifecycle import LifecycleController, LifecycleState
from repro.core.estimators import (
    DecisionTreeRegressor,
    GradientBoostedTrees,
    PolynomialRegressor,
    Regressor,
    SupportVectorRegressor,
    make_regressor,
)
from repro.core.estimator import EstimatorReport, LightningMemoryEstimator
from repro.core.plan_cache import PlanCache
from repro.core.scheduler import (
    GreedyScheduler,
    KnapsackScheduler,
    Scheduler,
    SchedulerInput,
)
from repro.core.planner import MimosePlanner

__all__ = [
    "ResidualTracker",
    "CollectedSample",
    "ShuttlingCollector",
    "CusumMonitor",
    "PageHinkleyDetector",
    "LifecycleController",
    "LifecycleState",
    "DecisionTreeRegressor",
    "GradientBoostedTrees",
    "PolynomialRegressor",
    "Regressor",
    "SupportVectorRegressor",
    "make_regressor",
    "EstimatorReport",
    "LightningMemoryEstimator",
    "PlanCache",
    "GreedyScheduler",
    "KnapsackScheduler",
    "Scheduler",
    "SchedulerInput",
    "MimosePlanner",
]
