"""Lightning memory estimator (§IV-C).

One regression model per unit maps the iteration input size to the unit's
activation bytes (and a second maps it to the unit's forward time, used
for diagnostics and pluggable cost-aware schedulers).  §IV-C's operator
analysis shows activation memory is at most quadratic in the input size,
so the default family is the quadratic polynomial — Table IV's winner.

Fit and predict wall times are measured with ``time.perf_counter`` because
they are *genuine* planner costs on the critical path (the same Python
work the real Mimose does), unlike model compute, which is simulated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Mapping, Optional

import numpy as np

from repro.core.collector import ShuttlingCollector
from repro.core.estimators import PolynomialRegressor, Regressor


@dataclass(frozen=True, slots=True)
class _StackedPolynomials:
    """All per-unit polynomial models stacked into one coefficient matrix.

    ``predict_all_bytes``/``predict_all_times`` are on the planner's
    critical path (every plan-cache miss evaluates every unit), so instead
    of one ``np.polyval`` call per unit the coefficients are stacked at
    fit time — highest power first, padded with *leading* zeros to a
    common width — and one vectorised Horner pass evaluates every unit at
    once.  Leading-zero padding is exact: the extra Horner steps compute
    ``0 * x + 0`` and ``0 * x + c`` in IEEE double, so the stacked result
    is bitwise identical to per-unit ``np.polyval``.
    """

    names: tuple[str, ...]
    coeffs: np.ndarray  # (units, width), highest power first
    scales: np.ndarray  # (units,) per-unit input normalisation

    @classmethod
    def build(
        cls, models: Mapping[str, Regressor]
    ) -> "Optional[_StackedPolynomials]":
        """Stack ``models`` if they are all fitted polynomials, else None."""
        if not models or not all(
            isinstance(m, PolynomialRegressor) for m in models.values()
        ):
            return None
        names = tuple(models)
        coeff_list = [models[n].coefficients for n in names]  # type: ignore[attr-defined]
        width = max(c.size for c in coeff_list)
        mat = np.zeros((len(names), width))
        for i, c in enumerate(coeff_list):
            mat[i, width - c.size :] = c
        scales = np.array(
            [models[n].scale for n in names]  # type: ignore[attr-defined]
        )
        return cls(names=names, coeffs=mat, scales=scales)

    def evaluate(self, input_size: float) -> np.ndarray:
        """Every unit's polynomial at ``input_size`` (one Horner pass)."""
        xs = input_size / self.scales
        acc = self.coeffs[:, 0].copy()
        for j in range(1, self.coeffs.shape[1]):
            acc = acc * xs + self.coeffs[:, j]
        return acc

    def evaluate_many(self, input_sizes: np.ndarray) -> np.ndarray:
        """Every unit's polynomial at every size — shape (units, sizes).

        One Horner pass over a broadcast (units, sizes) grid.  Column
        *k* performs exactly the IEEE-double operations of
        ``evaluate(input_sizes[k])``, so the batch result is bitwise
        identical to evaluating sizes one at a time.
        """
        xs = np.asarray(input_sizes, dtype=float)[None, :] / self.scales[:, None]
        acc = np.broadcast_to(
            self.coeffs[:, 0:1], xs.shape
        ).copy()
        for j in range(1, self.coeffs.shape[1]):
            acc = acc * xs + self.coeffs[:, j, None]
        return acc


@dataclass(frozen=True, slots=True)
class EstimatorReport:
    """Fit-quality and latency summary (Tables IV/V source)."""

    regressor_name: str
    num_units: int
    num_samples: int
    train_time_s: float
    predict_latency_s: float
    relative_error: float


class LightningMemoryEstimator:
    """Per-unit regression of activation memory (and time) vs input size.

    Args:
        regressor_factory: builds a fresh :class:`Regressor` per unit
            (default: quadratic polynomial).
    """

    def __init__(
        self,
        regressor_factory: Callable[[], Regressor] | None = None,
    ) -> None:
        self._factory = regressor_factory or (lambda: PolynomialRegressor(2))
        self._mem_models: dict[str, Regressor] = {}
        self._time_models: dict[str, Regressor] = {}
        self._bwd_models: dict[str, Regressor] = {}
        self._base_model: Regressor | None = None
        self._last_fit_time = 0.0
        self._max_trained_size = 0
        # Vectorised fast path (polynomial regressors only) + per-size
        # memoisation; both rebuilt/cleared on every fit.
        self._mem_stack: Optional[_StackedPolynomials] = None
        self._time_stack: Optional[_StackedPolynomials] = None
        self._bwd_stack: Optional[_StackedPolynomials] = None
        self._bytes_cache: dict[int, dict[str, int]] = {}
        self._times_cache: dict[int, dict[str, float]] = {}
        self._bwd_cache: dict[int, dict[str, float]] = {}

    # ------------------------------------------------------------------- fit

    def fit(self, collector: ShuttlingCollector) -> float:
        """Train one memory, forward-time, and backward-time model per unit.

        Backward models are only fitted when the collector actually
        observed backward times (any positive sample): hand-built
        collectors that predate backward measurement — or sheltered runs
        aborted before a backward — leave :attr:`has_bwd_data` False, so
        downstream pricing falls back to the labelled ratio instead of
        trusting an all-zero regression.

        Returns the wall-clock fit time in seconds.
        """
        data = collector.training_data()
        if not data:
            raise ValueError("collector holds no samples")
        start = time.perf_counter()
        mem_models: dict[str, Regressor] = {}
        time_models: dict[str, Regressor] = {}
        bwd_models: dict[str, Regressor] = {}
        have_bwd = any(
            any(b > 0.0 for b in bwds) for (_, _, _, bwds) in data.values()
        )
        max_size = 0
        for unit, (sizes, bytes_, times, bwd_times) in data.items():
            mem_models[unit] = self._factory().fit(sizes, bytes_)
            time_models[unit] = self._factory().fit(sizes, times)
            if have_bwd:
                bwd_models[unit] = self._factory().fit(sizes, bwd_times)
            max_size = max(max_size, max(sizes))
        self._mem_stack = _StackedPolynomials.build(mem_models)
        self._time_stack = _StackedPolynomials.build(time_models)
        self._bwd_stack = _StackedPolynomials.build(bwd_models)
        elapsed = time.perf_counter() - start
        self._mem_models = mem_models
        self._time_models = time_models
        self._bwd_models = bwd_models
        self._last_fit_time = elapsed
        self._max_trained_size = max_size
        self._bytes_cache.clear()
        self._times_cache.clear()
        self._bwd_cache.clear()
        return elapsed

    def fit_base(self, sizes: list[int], peak_bytes: list[int]) -> None:
        """Fit the sheltered-peak model: the full-checkpoint iteration peak
        as a function of input size (measured during sheltered execution).

        This is the floor on top of which each *kept* unit adds its
        activation bytes, so Mimose can predict the peak of any plan.
        """
        self._base_model = self._factory().fit(sizes, peak_bytes)

    def predict_base(self, input_size: int) -> int:
        """Predicted full-checkpoint peak for one input size."""
        if self._base_model is None:
            raise RuntimeError("base model is not fitted")
        return max(0, int(self._base_model.predict(input_size)))

    @property
    def has_base(self) -> bool:
        return self._base_model is not None

    @property
    def is_fitted(self) -> bool:
        return bool(self._mem_models)

    @property
    def last_fit_time(self) -> float:
        return self._last_fit_time

    @property
    def max_trained_size(self) -> int:
        """Largest input size seen during training (extrapolation guard)."""
        return self._max_trained_size

    def unit_names(self) -> list[str]:
        return sorted(self._mem_models)

    # --------------------------------------------------------------- predict

    def predict_bytes(self, unit_name: str, input_size: int) -> int:
        """Predicted activation bytes of one unit (clamped non-negative)."""
        model = self._mem_models.get(unit_name)
        if model is None:
            raise KeyError(f"no memory model for unit {unit_name!r}")
        return max(0, int(model.predict(input_size)))

    def predict_time(self, unit_name: str, input_size: int) -> float:
        model = self._time_models.get(unit_name)
        if model is None:
            raise KeyError(f"no time model for unit {unit_name!r}")
        return max(0.0, float(model.predict(input_size)))

    def predict_bwd_time(self, unit_name: str, input_size: int) -> float:
        """Predicted backward seconds of one unit (clamped non-negative)."""
        model = self._bwd_models.get(unit_name)
        if model is None:
            raise KeyError(f"no backward-time model for unit {unit_name!r}")
        return max(0.0, float(model.predict(input_size)))

    @property
    def has_bwd_data(self) -> bool:
        """Whether backward-time models were fitted from measured data."""
        return bool(self._bwd_models)

    _PREDICT_CACHE_LIMIT = 4096

    def predict_all_bytes(self, input_size: int) -> dict[str, int]:
        """Per-unit predicted activation bytes for one input size.

        Vectorised (one Horner pass over the stacked coefficient matrix)
        when every unit model is polynomial, and memoised per integer
        input size; results are identical to calling
        :meth:`predict_bytes` per unit.  Returns a fresh dict each call.
        """
        key = int(input_size)
        cached = self._bytes_cache.get(key)
        if cached is None:
            if self._mem_stack is not None:
                values = self._mem_stack.evaluate(key)
                cached = {
                    name: max(0, int(v))
                    for name, v in zip(self._mem_stack.names, values)
                }
            else:
                cached = {
                    name: max(0, int(model.predict(key)))
                    for name, model in self._mem_models.items()
                }
            if len(self._bytes_cache) >= self._PREDICT_CACHE_LIMIT:
                self._bytes_cache.clear()
            self._bytes_cache[key] = cached
        return dict(cached)

    def predict_all_times(self, input_size: int) -> dict[str, float]:
        """Per-unit predicted forward seconds for one input size.

        Same vectorisation/memoisation contract as
        :meth:`predict_all_bytes`.
        """
        key = int(input_size)
        cached = self._times_cache.get(key)
        if cached is None:
            if self._time_stack is not None:
                values = self._time_stack.evaluate(key)
                cached = {
                    name: max(0.0, float(v))
                    for name, v in zip(self._time_stack.names, values)
                }
            else:
                cached = {
                    name: max(0.0, float(model.predict(key)))
                    for name, model in self._time_models.items()
                }
            if len(self._times_cache) >= self._PREDICT_CACHE_LIMIT:
                self._times_cache.clear()
            self._times_cache[key] = cached
        return dict(cached)

    def predict_all_bwd_times(self, input_size: int) -> dict[str, float]:
        """Per-unit predicted backward seconds for one input size.

        Same vectorisation/memoisation contract as
        :meth:`predict_all_bytes`; raises when no backward data was
        measured (check :attr:`has_bwd_data` first).
        """
        if not self._bwd_models:
            raise RuntimeError("no backward-time models were fitted")
        key = int(input_size)
        cached = self._bwd_cache.get(key)
        if cached is None:
            if self._bwd_stack is not None:
                values = self._bwd_stack.evaluate(key)
                cached = {
                    name: max(0.0, float(v))
                    for name, v in zip(self._bwd_stack.names, values)
                }
            else:
                cached = {
                    name: max(0.0, float(model.predict(key)))
                    for name, model in self._bwd_models.items()
                }
            if len(self._bwd_cache) >= self._PREDICT_CACHE_LIMIT:
                self._bwd_cache.clear()
            self._bwd_cache[key] = cached
        return dict(cached)

    def predict_all_bytes_many(
        self, input_sizes: list[int]
    ) -> dict[int, dict[str, int]]:
        """Per-unit predicted bytes for a *batch* of input sizes.

        Uncached sizes are evaluated in one broadcast Horner pass
        (:meth:`_StackedPolynomials.evaluate_many`) instead of one pass
        per size; results are bitwise identical to calling
        :meth:`predict_all_bytes` per size, and share its memo cache.
        Useful for sweep-style planners that price a whole size grid up
        front.

        Note: predictions are *estimates* for planning only.  The
        executor's compiled-template tier deliberately does not consume
        them — templates derive exact per-tensor sizes from traced
        profiles, because serving digest-identical results rules out
        fitted approximations.
        """
        out: dict[int, dict[str, int]] = {}
        missing: list[int] = []
        for size in input_sizes:
            key = int(size)
            cached = self._bytes_cache.get(key)
            if cached is None:
                missing.append(key)
            else:
                out[key] = dict(cached)
        if missing:
            if self._mem_stack is not None:
                grid = self._mem_stack.evaluate_many(np.array(missing))
                for col, key in enumerate(missing):
                    fresh = {
                        name: max(0, int(v))
                        for name, v in zip(
                            self._mem_stack.names, grid[:, col]
                        )
                    }
                    if len(self._bytes_cache) >= self._PREDICT_CACHE_LIMIT:
                        self._bytes_cache.clear()
                    self._bytes_cache[key] = fresh
                    out[key] = dict(fresh)
            else:
                for key in missing:
                    out[key] = self.predict_all_bytes(key)
        return out

    def total_bytes(self, input_size: int) -> int:
        return sum(self.predict_all_bytes(input_size).values())

    # ------------------------------------------------------------ evaluation

    def evaluate(
        self,
        truth: Mapping[int, Mapping[str, int]],
    ) -> EstimatorReport:
        """Compare summed per-unit predictions against ground truth.

        Args:
            truth: ``{input_size: {unit_name: actual_bytes}}`` — e.g. from
                held-out collector runs.

        The relative error is the paper's metric: |sum(pred) - sum(actual)|
        / sum(actual), averaged over the evaluated input sizes.
        """
        if not self.is_fitted:
            raise RuntimeError("estimator is not fitted")
        if not truth:
            raise ValueError("no ground truth provided")
        errors = []
        latencies = []
        num_samples = 0
        for size, per_unit in truth.items():
            actual = sum(per_unit.values())
            start = time.perf_counter()
            predicted = sum(
                self.predict_bytes(u, size) for u in per_unit
            )
            latencies.append(time.perf_counter() - start)
            num_samples += 1
            if actual > 0:
                errors.append(abs(predicted - actual) / actual)
        return EstimatorReport(
            regressor_name=self._factory().name,
            num_units=len(self._mem_models),
            num_samples=num_samples,
            train_time_s=self._last_fit_time,
            predict_latency_s=sum(latencies) / max(len(latencies), 1),
            relative_error=sum(errors) / max(len(errors), 1),
        )
