"""Adaptive safety margin for the memory estimator (paper future work).

§IV-C closes with: "we plan to apply some adaptive algorithms to the
memory estimator" for structures whose memory is content-dependent (e.g.
detection proposals).  This module implements the natural such algorithm:
a conformal-style residual tracker.  After every responsive iteration the
planner records how far the *actual* peak exceeded the *predicted* peak;
the tracker maintains an upper quantile of those relative overshoots over
a sliding window, and the planner inflates future predictions by that
margin instead of relying on a fixed reserve alone.

The margin converges quickly: after a handful of iterations it covers the
estimator's systematic bias (e.g. allocator rounding, aspect-ratio
scatter on vision inputs) without the OOM-retry cycle a fixed reserve
needs when it is set too small.
"""

from __future__ import annotations

from collections import deque


class ResidualTracker:
    """Sliding-window quantile of relative prediction overshoot.

    Args:
        window: number of recent residuals retained.
        quantile: upper quantile of overshoot to report (0.95 covers all
            but the most extreme 5 % of observed behaviour).
        initial_margin: margin reported before any residuals exist.
    """

    def __init__(
        self,
        window: int = 64,
        quantile: float = 0.95,
        initial_margin: float = 0.02,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < quantile <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        if initial_margin < 0:
            raise ValueError("initial margin must be non-negative")
        self.window = window
        self.quantile = quantile
        self.initial_margin = initial_margin
        self._residuals: deque[float] = deque(maxlen=window)

    def record(self, predicted_bytes: int, actual_bytes: int) -> None:
        """Record one (prediction, observation) pair.

        Only positive overshoot matters for safety; underestimation of
        the *observation* (actual < predicted) is recorded as zero so the
        quantile never drifts negative.
        """
        if predicted_bytes <= 0:
            raise ValueError("prediction must be positive")
        overshoot = max(0.0, actual_bytes / predicted_bytes - 1.0)
        self._residuals.append(overshoot)

    def margin(self) -> float:
        """Current relative safety margin (>= 0)."""
        if not self._residuals:
            return self.initial_margin
        ordered = sorted(self._residuals)
        idx = min(len(ordered) - 1, int(self.quantile * len(ordered)))
        return ordered[idx]

    @property
    def num_observations(self) -> int:
        return len(self._residuals)

    def clear(self) -> None:
        self._residuals.clear()


class QuantileTracker:
    """Sliding-window upper quantile of absolute observations (bytes).

    Used for quantities that do not scale with the prediction — chiefly
    allocator fragmentation, which depends on the shape churn rather than
    on the model's activation volume.
    """

    def __init__(self, window: int = 64, quantile: float = 0.95) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < quantile <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        self.window = window
        self.quantile = quantile
        self._values: deque[float] = deque(maxlen=window)

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError("observations must be non-negative")
        self._values.append(value)

    def value(self) -> float:
        """Current quantile (0 before any observation)."""
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        idx = min(len(ordered) - 1, int(self.quantile * len(ordered)))
        return ordered[idx]

    @property
    def num_observations(self) -> int:
        return len(self._values)

    def clear(self) -> None:
        self._values.clear()
