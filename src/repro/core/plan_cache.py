"""Checkpointing plan cache (§V).

Plans are indexed by input size.  Two lookups succeed:

* an exact hit on a previously planned size, and
* a *similar-size* hit — the paper observes that similar input sizes have
  similar memory behaviour and can share plans.  Sharing is only safe
  downward in this reproduction: a plan computed for size S is reused for
  sizes in ``[S * (1 - tolerance), S]``, never above S (a plan for a
  smaller input could overflow the budget on a larger one).

The cache is bounded LRU to keep lookups O(log n) over a sorted key list.

Stored plans are *interned* on their canonical identity — the
:class:`~repro.planners.base.ActionAssignment` (plus label and
prediction) that plan equality and hashing are defined over — so two
input sizes whose planning converged on the same per-unit actions share
one plan object.  Downstream consumers keyed on the plan (the replay
cache, strategy dispatch) then see one canonical instance instead of
N structurally equal copies.
"""

from __future__ import annotations

import bisect
from collections import OrderedDict
from typing import Optional

from repro.planners.base import CheckpointPlan


class PlanCache:
    """Input-size-keyed LRU cache of checkpoint plans.

    Args:
        tolerance: relative similarity window for downward sharing
            (default 5 %).
        max_entries: LRU capacity.
    """

    def __init__(self, tolerance: float = 0.05, max_entries: int = 256) -> None:
        if not 0.0 <= tolerance < 1.0:
            raise ValueError("tolerance must be in [0, 1)")
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.tolerance = tolerance
        self.max_entries = max_entries
        self._plans: OrderedDict[int, CheckpointPlan] = OrderedDict()
        self._sizes: list[int] = []  # sorted keys, kept in sync with _plans
        # canonical-instance pool: plan equality/hash is defined over the
        # (assignment, label, prediction) triple, so structurally equal
        # plans collapse to the first instance stored
        self._canon: dict[CheckpointPlan, CheckpointPlan] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._plans)

    # ---------------------------------------------------------------- lookup

    def get(self, input_size: int) -> Optional[CheckpointPlan]:
        """Return a cached plan usable for ``input_size``, or None."""
        plan = self._plans.get(input_size)
        if plan is not None:
            self._plans.move_to_end(input_size)
            self.hits += 1
            return plan
        # nearest cached size at or above the request, within tolerance
        idx = bisect.bisect_left(self._sizes, input_size)
        if idx < len(self._sizes):
            candidate = self._sizes[idx]
            if input_size >= candidate * (1.0 - self.tolerance):
                self._plans.move_to_end(candidate)
                self.hits += 1
                return self._plans[candidate]
        self.misses += 1
        return None

    def put(self, input_size: int, plan: CheckpointPlan) -> None:
        """Insert (or refresh) a plan for an input size."""
        if input_size <= 0:
            raise ValueError("input_size must be positive")
        plan = self._intern(plan)
        if input_size in self._plans:
            self._plans[input_size] = plan
            self._plans.move_to_end(input_size)
            return
        self._plans[input_size] = plan
        bisect.insort(self._sizes, input_size)
        if len(self._plans) > self.max_entries:
            evicted, _ = self._plans.popitem(last=False)
            self._sizes.remove(evicted)

    def _intern(self, plan: CheckpointPlan) -> CheckpointPlan:
        """Collapse structurally equal plans to one canonical instance.

        The pool can accumulate entries for plans that have since been
        evicted; it is rebuilt from the live plans when it outgrows the
        LRU capacity by 4x, keeping it bounded without per-eviction
        refcounting.
        """
        if len(self._canon) > 4 * self.max_entries:
            self._canon = {p: p for p in self._plans.values()}
        return self._canon.setdefault(plan, plan)

    # ----------------------------------------------------------------- stats

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self._plans.clear()
        self._sizes.clear()
        self._canon.clear()
        self.hits = 0
        self.misses = 0
