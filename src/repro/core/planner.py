"""The Mimose planner (§IV-A): sheltered → responsive execution.

The collect→fit→plan lifecycle itself — when to collect, when to (re)fit,
when to declare the fit stale — is owned by the explicit state machine in
:mod:`repro.core.lifecycle`; the planner consults it and turns its
decisions into plans.  Iteration lifecycle:

1. **Sheltered execution** — the first ``collect_iterations`` iterations
   (and any later iteration whose input size exceeds everything collected
   so far by more than ``recollect_margin``) run in COLLECT mode: all
   checkpointable units are checkpointed (Sublinear-like footprint) and
   executed with the shuttling double forward, producing per-unit
   measurements plus the iteration's full-checkpoint peak.
2. When the collector is ready, the memory estimator is fitted — per-unit
   quadratic models plus a base model of the full-checkpoint peak; the
   wall-clock fit time is charged to that iteration's planning time.
3. **Responsive execution** — each iteration looks up the plan cache by
   input size; on a miss the estimator predicts per-unit bytes, the
   scheduler covers the predicted excess over the usable budget, and the
   new plan is cached.  All of this is real Python work, timed with
   ``perf_counter`` and charged as planning time — the quantity Table III
   reports at 0.26–1.25 ms.

Safety: Mimose reserves ``headroom_bytes`` below the budget (the paper's
0.5–1 GB fragmentation reserve, Fig 11); if an iteration still OOMs, the
headroom is doubled-up by ``headroom_step`` and the cache invalidated.

Recovery: when the executor allows retries, an OOM iteration is rolled
back and replayed under an escalation ladder (:meth:`MimosePlanner
.recover`): drop all cached plans and replan → widen the reserve and
replan → fall back to a full-checkpoint (Sublinear-like) plan.  This is
the runtime reaction DTR (Kirisame et al.) argues for, applied to
Mimose's own safety knobs, and it is what lets a run "train
successfully" through a transient pressure event instead of dying.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core.adaptive import QuantileTracker, ResidualTracker
from repro.core.collector import ShuttlingCollector
from repro.core.estimator import LightningMemoryEstimator
from repro.core.lifecycle import LifecycleController
from repro.core.plan_cache import PlanCache
from repro.solvers import GreedyScheduler, Solver, SolverInput
from repro.engine.stats import IterationStats
from repro.models.base import BatchInput
from repro.planners.base import (
    CheckpointPlan,
    ExecutionMode,
    ModelView,
    PlanDecision,
    Planner,
    PlannerCapabilities,
)

_MB = 1024**2


class MimosePlanner(Planner):
    """Input-aware checkpointing planner respecting a memory budget.

    Args:
        budget_bytes: GPU memory budget to respect.
        collect_iterations: sheltered iterations before fitting (paper: 10).
        headroom_bytes: reserve kept below the budget for fragmentation and
            working memory the per-unit estimator cannot itemise.
        headroom_step: added to the reserve after an unexpected OOM.
        estimator: memory estimator (default: quadratic polynomials).
        scheduler: checkpoint-selection strategy (default: Algorithm 1).
        cache: plan cache (default: 5 % similarity window).
        recollect_margin: how far beyond the largest collected input size a
            new input may be before triggering another sheltered iteration.
        adaptive_margin: learn the safety margin from observed residuals
            (see :mod:`repro.core.adaptive`) instead of the fixed reserve.
        drift_detection: arm the lifecycle controller's drift monitors
            (:mod:`repro.core.drift`) — residual Page–Hinkley plus
            input-size CUSUM — enabling the DRIFTED → partial
            re-collection → refit path under non-stationary inputs.
        collector_window: rolling-window cap on retained sheltered
            iterations (None keeps everything; see
            :class:`~repro.core.collector.ShuttlingCollector`).
    """

    name = "mimose"
    supports_recovery = True
    capabilities = PlannerCapabilities(
        dynamic_input=True,
        fragmentation_avoidance="side-effect",
        granularity="block",
        plan_timing="runtime",
        search_space="holistic",
        search_algorithm="greedy",
    )
    requires_physical_capacity = False

    def __init__(
        self,
        budget_bytes: int,
        *,
        collect_iterations: int = 10,
        headroom_bytes: int | None = None,
        headroom_step: int = 256 * _MB,
        estimator: Optional[LightningMemoryEstimator] = None,
        scheduler: Optional[Solver] = None,
        cache: Optional[PlanCache] = None,
        recollect_margin: float = 0.10,
        adaptive_margin: bool = False,
        drift_detection: bool = False,
        collector_window: Optional[int] = None,
    ) -> None:
        super().__init__(budget_bytes)
        if headroom_bytes is None:
            # the paper's 0.5-1 GB reserve, scaled to the budget: larger
            # budgets mean larger absolute estimation/fragmentation slack
            headroom_bytes = max(512 * _MB, int(0.10 * budget_bytes))
        if headroom_bytes < 0 or headroom_step < 0:
            raise ValueError("headroom must be non-negative")
        self.collector = ShuttlingCollector(
            min_iterations=collect_iterations,
            window_iterations=collector_window,
        )
        self.estimator = estimator if estimator is not None else LightningMemoryEstimator()
        self.scheduler = scheduler if scheduler is not None else GreedyScheduler()
        # NB: `cache or PlanCache()` would discard a user-supplied cache —
        # an *empty* PlanCache is falsy through __len__.
        self.cache = cache if cache is not None else PlanCache()
        self.headroom_bytes = int(headroom_bytes)
        self.headroom_step = int(headroom_step)
        self._order: dict[str, int] = {}
        self._static_bytes = 0
        # Adaptive residual margin (the paper's future-work estimator
        # extension for content-dependent structures, see core.adaptive).
        # During a warmup window the conservative default reserve applies;
        # once enough residuals are observed, the learned margin takes
        # over and the configured (smaller) reserve becomes the floor.
        self.adaptive_margin = adaptive_margin
        self.adaptive_warmup = 16
        self.residuals = ResidualTracker()  # relative estimator error
        self.frag_observed = QuantileTracker()  # absolute allocator slack
        self._warmup_reserve = max(
            self.headroom_bytes, int(0.10 * budget_bytes)
        )
        # Every fit/refit/re-collection decision belongs to the lifecycle
        # controller (core.lifecycle); the planner consults it at the two
        # decision points (plan, observe) and never fits directly.
        self.lifecycle = LifecycleController(
            collector=self.collector,
            estimator=self.estimator,
            cache=self.cache,
            residuals=self.residuals,
            frag_observed=self.frag_observed,
            recollect_margin=recollect_margin,
            drift_detection=drift_detection,
        )
        # bookkeeping for Table III / recovery reporting
        self.collect_count = 0
        self.plan_count = 0
        self.recovery_attempts = 0

    # ------------------------------------------------------------- lifecycle

    def setup(self, view: ModelView) -> None:
        super().setup(view)
        self._order = {
            name: i
            for i, name in enumerate(view.unit_names)
            if name in view.checkpointable
        }
        # The static footprint is observable at runtime (allocator state
        # before the first forward) — no model pre-analysis involved.
        self._static_bytes = view.static_memory.total

    # ------------------------------------------------------------------ plan

    def plan(self, batch: BatchInput) -> PlanDecision:
        size = batch.input_size
        if self.lifecycle.needs_collection(size):
            self.collect_count += 1
            return PlanDecision(
                CheckpointPlan(frozenset(), "mimose-collect"),
                mode=ExecutionMode.COLLECT,
                planning_time=1e-5,
            )

        start = time.perf_counter()
        self.lifecycle.ensure_fitted()
        cached = self.cache.get(size)
        if cached is not None:
            return PlanDecision(cached, planning_time=time.perf_counter() - start)
        plan = self._make_plan(size)
        self.cache.put(size, plan)
        self.plan_count += 1
        return PlanDecision(plan, planning_time=time.perf_counter() - start)

    @property
    def fit_count(self) -> int:
        """Estimator fits performed (delegated to the lifecycle)."""
        return self.lifecycle.fit_count

    @property
    def recollect_margin(self) -> float:
        return self.lifecycle.recollect_margin

    def _usable_budget(self) -> int:
        if not self.adaptive_margin:
            return self.budget_bytes - self.headroom_bytes
        if self.residuals.num_observations < self.adaptive_warmup:
            return self.budget_bytes - self._warmup_reserve
        # learned regime: floor reserve + observed fragmentation quantile
        reserve = self.headroom_bytes + int(self.frag_observed.value())
        return self.budget_bytes - min(reserve, self._warmup_reserve * 2)

    def scheduler_input(self, size: int) -> SolverInput:
        """The scheduler's view of one input size, from current estimates.

        Carries measured backward times whenever the estimator holds any
        (the sheltered backward pass stamps them), so cost-model pricing
        takes its measured branch instead of the ratio fallback.  Public
        because calibration checks (``benchmarks/bench_hybrid.py``)
        re-price a finished run's plans through the same view.
        """
        est = self.estimator.predict_all_bytes(size)
        base = (
            self.estimator.predict_base(size)
            if self.estimator.has_base
            else self._static_bytes
        )
        total = base + sum(est.values())
        if self.adaptive_margin:
            total = int(total * (1.0 + self.residuals.margin()))
        excess = total - self._usable_budget()
        if excess <= 0:
            return SolverInput(
                est_bytes=est, order=self._order, excess_bytes=excess
            )
        bwd_time = (
            self.estimator.predict_all_bwd_times(size)
            if self.estimator.has_bwd_data
            else None
        )
        return SolverInput(
            est_bytes=est,
            order=self._order,
            excess_bytes=excess,
            est_time=self.estimator.predict_all_times(size),
            bwd_time=bwd_time,
        )

    def _make_plan(self, size: int) -> CheckpointPlan:
        inp = self.scheduler_input(size)
        est = inp.est_bytes
        # excess = total - usable (exact int arithmetic), inverted here so
        # the plan's predicted peak matches scheduler_input's view.
        total = inp.excess_bytes + self._usable_budget()
        if inp.excess_bytes <= 0:
            return CheckpointPlan(
                frozenset(), "mimose", predicted_peak_bytes=total
            )
        assignment = self.scheduler.assign(inp)
        # The prediction travels with the plan (through the cache and into
        # the iteration stats) so residual tracking attributes every
        # observation to the plan that produced it — cache hits included.
        # Every non-KEEP unit releases its estimated bytes (recomputed
        # units immediately, swapped units once the copy engine drains).
        return CheckpointPlan.from_assignment(
            assignment,
            "mimose",
            predicted_peak_bytes=total - sum(est[u] for u in assignment.units),
        )

    # --------------------------------------------------------------- observe

    def observe(self, stats: IterationStats) -> None:
        # The lifecycle controller owns collection ingest, refits and the
        # residual/fragmentation feedback (it may already have processed
        # this stats object through the event bus; the call is idempotent
        # per object).  The prediction rides on the stats (copied from
        # the issuing plan by the executor), so cache-served iterations
        # feed the trackers too.
        self.lifecycle.observe(stats)
        if stats.oom and not stats.is_collect:
            # Misprediction: widen the reserve and drop stale plans (the
            # cached plans carry their predictions, so clearing the cache
            # also discards every stale prediction in one stroke).  This
            # is budget policy, not lifecycle: the estimator is not what
            # the widened reserve corrects for.
            self.headroom_bytes += self.headroom_step
            self.cache.clear()

    # -------------------------------------------------------------- recovery

    def recover(
        self, batch: BatchInput, failed: IterationStats, attempt: int
    ) -> Optional[PlanDecision]:
        """Escalation ladder after an OOM iteration.

        Rung 0 — *replan*: drop every cached plan (the failing plan may be
        a similar-size share or a survivor from before a reserve change)
        and replan this size from current estimator state.
        Rung 1 — *widen-reserve*: grow the fragmentation reserve by
        ``headroom_step`` (the same reaction :meth:`observe` applies to a
        fatal OOM) and replan under the tighter usable budget.
        Rung 2 — *full-checkpoint*: give up on estimation and fall back to
        the Sublinear-like floor, checkpointing every checkpointable unit.
        Beyond rung 2 there is nothing left to concede: return ``None``.
        """
        start = time.perf_counter()
        self.recovery_attempts += 1
        if attempt >= 3:
            return None
        if attempt == 2 or not self.estimator.is_fitted:
            # Last rung (or nothing to replan from): the memory floor.
            # The cache still holds the plan the previous rung produced —
            # which just OOM'd — so it must be dropped here too, or the
            # next iteration of this size would be served the failed plan
            # straight from the cache and re-OOM.
            self.cache.clear()
            plan = CheckpointPlan(
                frozenset(self._order), "mimose-recover-full"
            )
            return PlanDecision(
                plan,
                planning_time=time.perf_counter() - start,
                recovery_mode="full-checkpoint",
            )
        if attempt == 0:
            mode = "replan"
        else:
            self.headroom_bytes += self.headroom_step
            mode = "widen-reserve"
        self.cache.clear()
        plan = self._make_plan(batch.input_size)
        self.cache.put(batch.input_size, plan)
        self.plan_count += 1
        return PlanDecision(
            plan,
            planning_time=time.perf_counter() - start,
            recovery_mode=mode,
        )

    # ------------------------------------------------------------ recollect

    def should_recollect(self, size: int) -> bool:
        """Whether ``size`` lies beyond the trusted extrapolation range."""
        return self.lifecycle.should_recollect(size)
