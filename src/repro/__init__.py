"""repro — reproduction of *Mimose* (IPDPS 2023).

"Exploiting Input Tensor Dynamics in Activation Checkpointing for
Efficient Training on GPU" — an input-aware activation-checkpointing
planner, reproduced end-to-end on a deterministic simulated-GPU training
substrate (no CUDA required).

Public entry points:

* :func:`repro.models.build_model` — the evaluated model zoo;
* :class:`repro.core.MimosePlanner` — the paper's contribution;
* :mod:`repro.planners` — the baselines (Sublinear, Checkmate, MONeT, DTR);
* :class:`repro.engine.TrainingExecutor` — simulated training loop;
* :mod:`repro.experiments` — tasks, sweeps, and figure/table generators;
* :mod:`repro.analysis` — ``replint``, the repo's invariant linter.
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "core",
    "data",
    "engine",
    "experiments",
    "graph",
    "models",
    "planners",
    "tensorsim",
]
