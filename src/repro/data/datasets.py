"""Synthetic datasets and the collating data loader.

Each dataset preset is calibrated to the corresponding corpus in the
paper's Table II / Fig 3: the *collated* batch sequence lengths span the
reported ranges (SWAG 35–141, SQuAD 153–512, GLUE-QQP 30–332,
UN_PC 17–460) with the reported distribution families.  COCO images pass
through the multi-scale resize augmentation and are padded to the batch
maximum in each dimension, exactly like MMDetection's collate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

import numpy as np

from repro.data.augment import MultiScaleResize, TokenizerSim, pad_and_truncate
from repro.data.distributions import (
    BucketRotationSampler,
    CurriculumSampler,
    PowerLawSampler,
    RegimeSwitchSampler,
    Sampler,
    TruncatedNormalSampler,
    UniformSampler,
)
from repro.models.base import BatchInput
from repro.tensorsim.dtypes import FLOAT32, INT64


@dataclass(frozen=True)
class SyntheticTextDataset:
    """Token-length-only view of a text corpus.

    Attributes:
        name: corpus label.
        length_sampler: per-sample *word* count distribution.
        tokenizer: word→token expansion model.
        max_length: truncation cap applied at collation.
        num_choices: samples per example that are flattened into the batch
            (4 for SWAG-style multiple choice, 1 otherwise) — multiple
            choice multiplies the effective batch dimension.
    """

    name: str
    length_sampler: Sampler
    tokenizer: TokenizerSim = TokenizerSim()
    max_length: int = 512
    num_choices: int = 1
    #: intra-batch length correlation: real pipelines group samples of
    #: similar length (sorted shards, topical batches), which is what lets
    #: the *collated* length vary as widely as Fig 3 shows.  0 = i.i.d.
    #: samples; 1 = every sample shares the batch's base length.
    length_correlation: float = 0.8

    def sample_token_length(
        self, rng: np.random.Generator, base_words: int | None = None
    ) -> int:
        words = self.length_sampler.sample(rng)
        if base_words is not None and self.length_correlation > 0:
            c = self.length_correlation
            words = int(round(c * base_words + (1.0 - c) * words))
        return self.tokenizer.tokenize_length(max(words, 1), rng)

    def sample_base_words(self, rng: np.random.Generator) -> int:
        return self.length_sampler.sample(rng)

    def max_token_length(self) -> int:
        """Upper bound on a collated length (for static planners)."""
        _, hi = self.length_sampler.support
        # worst case expansion: mean + 4 sigma, then the truncation cap
        worst = int(round(hi * (self.tokenizer.expansion_mean + 4 * self.tokenizer.expansion_std)))
        return min(worst + self.tokenizer.special_tokens, self.max_length)

    def samplers(self) -> tuple[Sampler, ...]:
        """The samplers the loader must position before each iteration."""
        return (self.length_sampler,)


@dataclass(frozen=True)
class SyntheticCocoDataset:
    """Image-dimension-only view of a detection corpus."""

    name: str
    height_sampler: Sampler
    width_sampler: Sampler
    resize: MultiScaleResize = MultiScaleResize()

    def sample_hw(self, rng: np.random.Generator) -> tuple[int, int]:
        h = self.height_sampler.sample(rng)
        w = self.width_sampler.sample(rng)
        return self.resize.resize(h, w, rng)

    def max_hw(self) -> tuple[int, int]:
        return self.resize.worst_case()

    def samplers(self) -> tuple[Sampler, ...]:
        """The samplers the loader must position before each iteration."""
        return (self.height_sampler, self.width_sampler)


class DataLoader:
    """Collates per-sample shapes into per-iteration :class:`BatchInput`s.

    Deterministic given the seed; ``peek_sizes`` lets offline planners
    sample the input-size distribution without consuming loader state
    (the paper's static baselines got to profile the dataset offline).
    """

    def __init__(
        self,
        dataset: SyntheticTextDataset | SyntheticCocoDataset,
        batch_size: int,
        num_iterations: int,
        *,
        seed: int = 0,
    ) -> None:
        if batch_size < 1 or num_iterations < 1:
            raise ValueError("batch_size and num_iterations must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.num_iterations = num_iterations
        self.seed = seed

    def _collate(self, rng: np.random.Generator) -> BatchInput:
        ds = self.dataset
        if isinstance(ds, SyntheticTextDataset):
            base = ds.sample_base_words(rng)
            lengths = [
                ds.sample_token_length(rng, base) for _ in range(self.batch_size)
            ]
            padded = pad_and_truncate(lengths, ds.max_length)
            rows = self.batch_size * ds.num_choices
            return BatchInput((rows, padded), INT64)
        heights, widths = [], []
        for _ in range(self.batch_size):
            h, w = ds.sample_hw(rng)
            heights.append(h)
            widths.append(w)
        return BatchInput(
            (self.batch_size, 3, max(heights), max(widths)), FLOAT32
        )

    def __iter__(self) -> Iterator[BatchInput]:
        rng = np.random.default_rng(self.seed)
        samplers = self.dataset.samplers()
        for i in range(self.num_iterations):
            for s in samplers:
                s.advance(i)
            yield self._collate(rng)

    def __len__(self) -> int:
        return self.num_iterations

    def peek_sizes(self, n: int = 256, *, seed_offset: int = 10_000) -> list[BatchInput]:
        """Sample n batches from a disjoint stream (offline calibration).

        Non-stationary samplers are walked through the same absolute
        positions ``0..n-1`` as a real epoch, so the peek stream covers
        the drift trajectory; positioning is absolute, so a subsequent
        ``__iter__`` is unaffected.
        """
        rng = np.random.default_rng(self.seed + seed_offset)
        samplers = self.dataset.samplers()
        batches = []
        for i in range(n):
            for s in samplers:
                s.advance(i)
            batches.append(self._collate(rng))
        return batches

    def worst_case_batch(self) -> BatchInput:
        """The largest batch the pipeline can emit (for static planners)."""
        ds = self.dataset
        if isinstance(ds, SyntheticTextDataset):
            rows = self.batch_size * ds.num_choices
            return BatchInput((rows, ds.max_token_length()), INT64)
        h, w = ds.max_hw()
        return BatchInput((self.batch_size, 3, max(h, w), max(h, w)), FLOAT32)


# ---------------------------------------------------------------------------
# Table II / Fig 3 presets
# ---------------------------------------------------------------------------

def _swag() -> SyntheticTextDataset:
    # Multiple choice: short contexts; collated lengths ~35-141
    return SyntheticTextDataset(
        name="swag",
        length_sampler=TruncatedNormalSampler(mean=50, std=22, lo=18, hi=104),
        max_length=141,
        num_choices=4,
    )


def _squad() -> SyntheticTextDataset:
    # QA over paragraphs: long contexts, truncated at 512; lengths ~153-512
    return SyntheticTextDataset(
        name="squad",
        length_sampler=TruncatedNormalSampler(mean=190, std=75, lo=110, hi=420),
        max_length=512,
    )


def _glue_qqp() -> SyntheticTextDataset:
    # Question pairs: short-biased power law; lengths ~30-332
    return SyntheticTextDataset(
        name="glue-qqp",
        length_sampler=PowerLawSampler(alpha=2.6, lo=18, hi=250),
        max_length=332,
    )


def _un_pc() -> SyntheticTextDataset:
    # Parallel corpus sentences: heavy tail; lengths ~17-460
    return SyntheticTextDataset(
        name="un_pc",
        length_sampler=PowerLawSampler(alpha=1.9, lo=10, hi=350),
        max_length=460,
    )


def _webtext() -> SyntheticTextDataset:
    # Document stream for causal LM: long heavy tail, truncated at 1024.
    return SyntheticTextDataset(
        name="webtext",
        length_sampler=PowerLawSampler(alpha=1.7, lo=30, hi=780),
        max_length=1024,
    )


def _coco() -> SyntheticCocoDataset:
    # Raw COCO images cluster around 640x480 with varied aspect ratios.
    return SyntheticCocoDataset(
        name="coco",
        height_sampler=UniformSampler(360, 640),
        width_sampler=UniformSampler(480, 640),
    )


_PRESETS = {
    "webtext": _webtext,
    "swag": _swag,
    "squad": _squad,
    "glue-qqp": _glue_qqp,
    "un_pc": _un_pc,
    "coco": _coco,
}


def available_datasets() -> list[str]:
    return sorted(_PRESETS)


def make_dataset(name: str) -> SyntheticTextDataset | SyntheticCocoDataset:
    """Construct a dataset preset by Table II name."""
    try:
        return _PRESETS[name]()
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {available_datasets()}"
        ) from None


# ---------------------------------------------------------------------------
# Drift scenarios — non-stationary rewrites of a preset's samplers
# ---------------------------------------------------------------------------

#: scenario names accepted by ``repro run/sweep --drift-scenario``
DRIFT_SCENARIOS = ("regime-switch", "curriculum", "bucket-rotation")


def _drift_sampler(base: Sampler, scenario: str, iterations: int) -> Sampler:
    """Wrap one stationary sampler into the named drift trajectory.

    Every scenario starts confined to the *lower* part of the base
    support and later visits the upper part, so a model fitted on the
    early window faces genuine extrapolation once the drift lands —
    the regime the lifecycle controller exists to survive.
    """
    lo, hi = base.support
    span = hi - lo
    if span < 3:
        raise ValueError(
            f"support [{lo}, {hi}] is too narrow for a drift scenario"
        )
    third = max(1, span // 3)
    if scenario == "regime-switch":
        return RegimeSwitchSampler(
            [
                (0, UniformSampler(lo, lo + third)),
                (max(1, iterations // 2), UniformSampler(hi - third, hi)),
            ]
        )
    if scenario == "curriculum":
        quarter = max(1, span // 4)
        return CurriculumSampler(
            UniformSampler(lo, lo + quarter),
            UniformSampler(hi - quarter, hi),
            ramp_iterations=max(1, iterations),
        )
    if scenario == "bucket-rotation":
        mid = lo + span // 2
        return BucketRotationSampler(
            [
                UniformSampler(lo, lo + third),
                UniformSampler(mid - third // 2, mid + third // 2),
                UniformSampler(hi - third, hi),
            ],
            period=max(1, iterations // 6),
        )
    raise KeyError(
        f"unknown drift scenario {scenario!r}; available: {DRIFT_SCENARIOS}"
    )


def apply_drift_scenario(
    dataset: SyntheticTextDataset | SyntheticCocoDataset,
    scenario: str,
    iterations: int,
) -> SyntheticTextDataset | SyntheticCocoDataset:
    """Rewrite a preset's samplers into the named non-stationary scenario.

    Returns a new dataset (the presets are frozen dataclasses); the
    drift trajectory spans ``iterations`` loader steps.
    """
    if isinstance(dataset, SyntheticTextDataset):
        return replace(
            dataset,
            length_sampler=_drift_sampler(
                dataset.length_sampler, scenario, iterations
            ),
        )
    return replace(
        dataset,
        height_sampler=_drift_sampler(
            dataset.height_sampler, scenario, iterations
        ),
        width_sampler=_drift_sampler(
            dataset.width_sampler, scenario, iterations
        ),
    )
