"""Synthetic workloads reproducing the paper's input-tensor dynamics.

The planner under test only ever sees the collated batch tensor's shape,
so reproducing the *distribution* of input sizes reproduces the dynamics
the paper exploits.  Samplers are calibrated to the Fig 3 ranges
(SWAG 35–141, SQuAD 153–512, GLUE-QQP 30–332, UN_PC 17–460 tokens) and to
COCO's multi-scale resize augmentation (shorter side 480–800, longer side
capped at 1333, aspect ratio preserved — §II-A).
"""

from repro.data.distributions import (
    BucketRotationSampler,
    CurriculumSampler,
    EmpiricalSampler,
    PowerLawSampler,
    RegimeSwitchSampler,
    Sampler,
    TruncatedNormalSampler,
    UniformSampler,
)
from repro.data.augment import (
    MultiScaleResize,
    TokenizerSim,
    pad_and_truncate,
)
from repro.data.datasets import (
    DRIFT_SCENARIOS,
    DataLoader,
    SyntheticCocoDataset,
    SyntheticTextDataset,
    apply_drift_scenario,
    make_dataset,
)

__all__ = [
    "BucketRotationSampler",
    "CurriculumSampler",
    "DRIFT_SCENARIOS",
    "RegimeSwitchSampler",
    "apply_drift_scenario",
    "EmpiricalSampler",
    "PowerLawSampler",
    "Sampler",
    "TruncatedNormalSampler",
    "UniformSampler",
    "MultiScaleResize",
    "TokenizerSim",
    "pad_and_truncate",
    "DataLoader",
    "SyntheticCocoDataset",
    "SyntheticTextDataset",
    "make_dataset",
]
