"""Data-augmentation simulation: tokenisation, resizing, padding (§II-A).

The training pipeline's pre-processing stages are simulated at the shape
level: a tokenizer maps raw text lengths to token counts; multi-scale
resize maps raw image dimensions to augmented ones; padding/truncation
collates ragged samples into one rectangular batch tensor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class TokenizerSim:
    """Subword tokenisation as a stochastic expansion of word counts.

    Real tokenizers emit ~1.2–1.4 subword tokens per word plus special
    tokens; the exact factor varies per sample.
    """

    expansion_mean: float = 1.3
    expansion_std: float = 0.08
    special_tokens: int = 2

    def tokenize_length(self, words: int, rng: np.random.Generator) -> int:
        if words < 0:
            raise ValueError("word count cannot be negative")
        factor = max(1.0, rng.normal(self.expansion_mean, self.expansion_std))
        return int(round(words * factor)) + self.special_tokens


def pad_and_truncate(lengths: Sequence[int], max_length: int) -> int:
    """Collated sequence length of a batch: pad to the max, truncate at cap.

    Returns the single padded length every sample in the batch gets
    (§II-A: "smaller samples in a mini-batch are padded to match the
    largest sample, whereas the samples too large to be handled are
    truncated smaller").
    """
    if not lengths:
        raise ValueError("cannot collate an empty batch")
    if max_length < 1:
        raise ValueError("max_length must be positive")
    return min(max(lengths), max_length)


@dataclass(frozen=True)
class MultiScaleResize:
    """DETR/Sparse-R-CNN/Swin-style multi-scale resize (§II-A).

    Randomly rescales so the shorter side lands on one of the configured
    scales (480–800 by default) while the longer side stays at most
    ``max_long``; aspect ratio is preserved.
    """

    min_short: int = 480
    max_short: int = 800
    short_step: int = 32
    max_long: int = 1333

    def __post_init__(self) -> None:
        if self.min_short > self.max_short or self.min_short < 1:
            raise ValueError("invalid short-side range")
        if self.max_long < self.max_short:
            raise ValueError("max_long must be >= max_short")

    def scales(self) -> list[int]:
        return list(range(self.min_short, self.max_short + 1, self.short_step))

    def resize(
        self, height: int, width: int, rng: np.random.Generator
    ) -> tuple[int, int]:
        """Augmented (height, width) for one raw image."""
        if height < 1 or width < 1:
            raise ValueError("image dimensions must be positive")
        scales = self.scales()
        target_short = int(scales[rng.integers(0, len(scales))])
        short, long_ = (height, width) if height <= width else (width, height)
        ratio = target_short / short
        new_long = long_ * ratio
        if new_long > self.max_long:
            ratio = self.max_long / long_
        new_h = max(1, int(round(height * ratio)))
        new_w = max(1, int(round(width * ratio)))
        return new_h, new_w

    def worst_case(self) -> tuple[int, int]:
        """Largest possible augmented dimensions (for static planners)."""
        return self.max_short, self.max_long
