"""Seeded integer samplers for sample lengths and image dimensions.

§III-A observes that input sizes "tend to follow a certain probability
distribution, such as normal distribution and power-law distribution";
these samplers are the corresponding families, all driven by a
``numpy.random.Generator`` for determinism.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class Sampler:
    """Draws integers from a distribution."""

    def sample(self, rng: np.random.Generator) -> int:
        raise NotImplementedError

    def sample_many(self, rng: np.random.Generator, n: int) -> list[int]:
        return [self.sample(rng) for _ in range(n)]

    @property
    def support(self) -> tuple[int, int]:
        """Inclusive (lo, hi) bounds of possible draws."""
        raise NotImplementedError


class UniformSampler(Sampler):
    """Uniform integers on [lo, hi]."""

    def __init__(self, lo: int, hi: int) -> None:
        if lo > hi or lo < 1:
            raise ValueError(f"invalid uniform range [{lo}, {hi}]")
        self.lo, self.hi = lo, hi

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.lo, self.hi + 1))

    @property
    def support(self) -> tuple[int, int]:
        return self.lo, self.hi


class TruncatedNormalSampler(Sampler):
    """Normal(mean, std) rejected-and-clamped to [lo, hi]."""

    def __init__(self, mean: float, std: float, lo: int, hi: int) -> None:
        if std <= 0:
            raise ValueError("std must be positive")
        if lo > hi or lo < 1:
            raise ValueError(f"invalid range [{lo}, {hi}]")
        self.mean, self.std, self.lo, self.hi = mean, std, lo, hi

    def sample(self, rng: np.random.Generator) -> int:
        for _ in range(64):
            x = rng.normal(self.mean, self.std)
            if self.lo <= x <= self.hi:
                return int(round(x))
        return int(min(max(self.mean, self.lo), self.hi))

    @property
    def support(self) -> tuple[int, int]:
        return self.lo, self.hi


class PowerLawSampler(Sampler):
    """Pareto-style heavy tail on [lo, hi]: p(x) ~ x^-alpha.

    Text corpora (question pairs, parallel sentences) skew short with a
    long tail; larger ``alpha`` means a heavier concentration near ``lo``.
    """

    def __init__(self, alpha: float, lo: int, hi: int) -> None:
        if alpha <= 1.0:
            raise ValueError("alpha must exceed 1 for a normalisable tail")
        if lo > hi or lo < 1:
            raise ValueError(f"invalid range [{lo}, {hi}]")
        self.alpha, self.lo, self.hi = alpha, lo, hi

    def sample(self, rng: np.random.Generator) -> int:
        # inverse-CDF sampling of a truncated Pareto
        a = 1.0 - self.alpha
        lo_p = self.lo**a
        hi_p = self.hi**a
        u = rng.random()
        x = (lo_p + u * (hi_p - lo_p)) ** (1.0 / a)
        return int(min(max(round(x), self.lo), self.hi))

    @property
    def support(self) -> tuple[int, int]:
        return self.lo, self.hi


class EmpiricalSampler(Sampler):
    """Draws from an explicit value/weight table."""

    def __init__(self, values: Sequence[int], weights: Sequence[float] | None = None) -> None:
        if not values:
            raise ValueError("empirical sampler needs values")
        self.values = np.asarray(values, dtype=int)
        if weights is None:
            self.probs = np.full(len(values), 1.0 / len(values))
        else:
            w = np.asarray(weights, dtype=float)
            if w.shape != self.values.shape or (w < 0).any() or w.sum() <= 0:
                raise ValueError("weights must be non-negative and match values")
            self.probs = w / w.sum()

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.choice(self.values, p=self.probs))

    @property
    def support(self) -> tuple[int, int]:
        return int(self.values.min()), int(self.values.max())
