"""Seeded integer samplers for sample lengths and image dimensions.

§III-A observes that input sizes "tend to follow a certain probability
distribution, such as normal distribution and power-law distribution";
these samplers are the corresponding families, all driven by a
``numpy.random.Generator`` for determinism.

The stationary families are complemented by *non-stationary* composites
(:class:`RegimeSwitchSampler`, :class:`CurriculumSampler`,
:class:`BucketRotationSampler`) whose active distribution depends on the
training position.  Position flows in through :meth:`Sampler.advance`,
called by the data loader with the absolute iteration index before each
batch — absolute (not incremental) so re-iterating a loader reproduces
the exact same drift trajectory.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class Sampler:
    """Draws integers from a distribution."""

    def sample(self, rng: np.random.Generator) -> int:
        raise NotImplementedError

    def sample_many(self, rng: np.random.Generator, n: int) -> list[int]:
        return [self.sample(rng) for _ in range(n)]

    def advance(self, iteration: int) -> None:
        """Position the sampler at absolute training ``iteration``.

        A no-op for stationary samplers; non-stationary composites use it
        to select their active phase.  Absolute positioning keeps drift
        trajectories deterministic under loader re-iteration.
        """

    @property
    def support(self) -> tuple[int, int]:
        """Inclusive (lo, hi) bounds of possible draws."""
        raise NotImplementedError


class UniformSampler(Sampler):
    """Uniform integers on [lo, hi]."""

    def __init__(self, lo: int, hi: int) -> None:
        if lo > hi or lo < 1:
            raise ValueError(f"invalid uniform range [{lo}, {hi}]")
        self.lo, self.hi = lo, hi

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.lo, self.hi + 1))

    @property
    def support(self) -> tuple[int, int]:
        return self.lo, self.hi


class TruncatedNormalSampler(Sampler):
    """Normal(mean, std) rejected-and-clamped to [lo, hi]."""

    def __init__(self, mean: float, std: float, lo: int, hi: int) -> None:
        if std <= 0:
            raise ValueError("std must be positive")
        if lo > hi or lo < 1:
            raise ValueError(f"invalid range [{lo}, {hi}]")
        self.mean, self.std, self.lo, self.hi = mean, std, lo, hi

    def sample(self, rng: np.random.Generator) -> int:
        for _ in range(64):
            x = rng.normal(self.mean, self.std)
            if self.lo <= x <= self.hi:
                return int(round(x))
        return int(min(max(self.mean, self.lo), self.hi))

    @property
    def support(self) -> tuple[int, int]:
        return self.lo, self.hi


class PowerLawSampler(Sampler):
    """Pareto-style heavy tail on [lo, hi]: p(x) ~ x^-alpha.

    Text corpora (question pairs, parallel sentences) skew short with a
    long tail; larger ``alpha`` means a heavier concentration near ``lo``.
    """

    def __init__(self, alpha: float, lo: int, hi: int) -> None:
        if alpha <= 1.0:
            raise ValueError("alpha must exceed 1 for a normalisable tail")
        if lo > hi or lo < 1:
            raise ValueError(f"invalid range [{lo}, {hi}]")
        self.alpha, self.lo, self.hi = alpha, lo, hi

    def sample(self, rng: np.random.Generator) -> int:
        # inverse-CDF sampling of a truncated Pareto
        a = 1.0 - self.alpha
        lo_p = self.lo**a
        hi_p = self.hi**a
        u = rng.random()
        x = (lo_p + u * (hi_p - lo_p)) ** (1.0 / a)
        return int(min(max(round(x), self.lo), self.hi))

    @property
    def support(self) -> tuple[int, int]:
        return self.lo, self.hi


class EmpiricalSampler(Sampler):
    """Draws from an explicit value/weight table."""

    def __init__(self, values: Sequence[int], weights: Sequence[float] | None = None) -> None:
        if not values:
            raise ValueError("empirical sampler needs values")
        self.values = np.asarray(values, dtype=int)
        if weights is None:
            self.probs = np.full(len(values), 1.0 / len(values))
        else:
            w = np.asarray(weights, dtype=float)
            if w.shape != self.values.shape or (w < 0).any() or w.sum() <= 0:
                raise ValueError("weights must be non-negative and match values")
            self.probs = w / w.sum()

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.choice(self.values, p=self.probs))

    @property
    def support(self) -> tuple[int, int]:
        return int(self.values.min()), int(self.values.max())


# ---------------------------------------------------------------------------
# Non-stationary composites — the drift scenarios
# ---------------------------------------------------------------------------


def _union_support(samplers: Sequence[Sampler]) -> tuple[int, int]:
    bounds = [s.support for s in samplers]
    return min(lo for lo, _ in bounds), max(hi for _, hi in bounds)


class RegimeSwitchSampler(Sampler):
    """Abrupt distribution shift: piecewise-stationary phases.

    ``phases`` maps a start iteration to the sampler active from that
    iteration on; the first phase must start at 0.  Models a corpus swap
    or a dataloader shard boundary — the size distribution jumps with no
    warning, the worst case for a fitted estimator.
    """

    def __init__(self, phases: Sequence[tuple[int, Sampler]]) -> None:
        if not phases:
            raise ValueError("regime switch needs at least one phase")
        ordered = sorted(phases, key=lambda p: p[0])
        if ordered[0][0] != 0:
            raise ValueError("first phase must start at iteration 0")
        starts = [start for start, _ in ordered]
        if len(set(starts)) != len(starts):
            raise ValueError("phase start iterations must be distinct")
        self.phases = list(ordered)
        self._iteration = 0

    def advance(self, iteration: int) -> None:
        self._iteration = iteration
        for _, sampler in self.phases:
            sampler.advance(iteration)

    def _active(self) -> Sampler:
        active = self.phases[0][1]
        for start, sampler in self.phases:
            if start <= self._iteration:
                active = sampler
        return active

    def sample(self, rng: np.random.Generator) -> int:
        return self._active().sample(rng)

    @property
    def support(self) -> tuple[int, int]:
        return _union_support([s for _, s in self.phases])


class CurriculumSampler(Sampler):
    """Gradual drift: linear ramp from a start to an end distribution.

    Each draw takes one sample from *both* distributions and blends them
    with the ramp progress ``t = min(1, iteration / ramp_iterations)`` —
    both streams are always consumed, so the rng trajectory is identical
    at every position and only the blend weight drifts.  Models
    curriculum learning (short sequences first, long later).
    """

    def __init__(
        self, start: Sampler, end: Sampler, ramp_iterations: int
    ) -> None:
        if ramp_iterations < 1:
            raise ValueError("ramp_iterations must be positive")
        self.start, self.end = start, end
        self.ramp_iterations = ramp_iterations
        self._iteration = 0

    def advance(self, iteration: int) -> None:
        self._iteration = iteration
        self.start.advance(iteration)
        self.end.advance(iteration)

    def sample(self, rng: np.random.Generator) -> int:
        t = min(1.0, self._iteration / self.ramp_iterations)
        a = self.start.sample(rng)
        b = self.end.sample(rng)
        return int(round((1.0 - t) * a + t * b))

    @property
    def support(self) -> tuple[int, int]:
        return _union_support([self.start, self.end])


class BucketRotationSampler(Sampler):
    """Periodic drift: length buckets served round-robin in blocks.

    Bucket ``(iteration // period) % len(buckets)`` is active; models
    sorted-by-length sharding where the loader walks buckets of similar
    sizes, so the distribution rotates on a fixed cadence.
    """

    def __init__(self, buckets: Sequence[Sampler], period: int) -> None:
        if not buckets:
            raise ValueError("bucket rotation needs at least one bucket")
        if period < 1:
            raise ValueError("period must be positive")
        self.buckets = list(buckets)
        self.period = period
        self._iteration = 0

    def advance(self, iteration: int) -> None:
        self._iteration = iteration
        for sampler in self.buckets:
            sampler.advance(iteration)

    def sample(self, rng: np.random.Generator) -> int:
        idx = (self._iteration // self.period) % len(self.buckets)
        return self.buckets[idx].sample(rng)

    @property
    def support(self) -> tuple[int, int]:
        return _union_support(self.buckets)
