"""Simulated training engine.

:class:`~repro.engine.executor.TrainingExecutor` runs training iterations of
a :class:`~repro.models.base.SegmentedModel` against the tensorsim substrate
under the direction of a :class:`~repro.planners.base.Planner`, producing
:class:`~repro.engine.stats.IterationStats` with the timing/memory breakdown
every figure and table in the paper is computed from.
"""

from repro.engine.stats import IterationStats, RunResult, UnitMeasurement
from repro.engine.executor import IterationOOM, TrainingExecutor
from repro.engine.trace import MemoryTimeline, TimelinePoint
from repro.engine.ddp import DataParallelExecutor, DdpStepStats

__all__ = [
    "IterationStats",
    "RunResult",
    "UnitMeasurement",
    "IterationOOM",
    "TrainingExecutor",
    "MemoryTimeline",
    "TimelinePoint",
    "DataParallelExecutor",
    "DdpStepStats",
]
