"""Simulated training engine.

:class:`~repro.engine.executor.TrainingExecutor` runs training iterations of
a :class:`~repro.models.base.SegmentedModel` against the tensorsim substrate
under the direction of a :class:`~repro.planners.base.Planner`, producing
:class:`~repro.engine.stats.IterationStats` with the timing/memory breakdown
every figure and table in the paper is computed from.

The executor is a thin pipeline driver: per-mode behaviour lives in
:mod:`repro.engine.strategies` and everything observable is published on
the executor's :class:`~repro.engine.events.EventBus` (attach observers
via ``executor.events.subscribe``).
"""

from repro.engine.events import (
    DriftDetected,
    EstimatorRefit,
    EventBus,
    EventCounter,
    IterationEnd,
    IterationObserved,
    IterationStart,
    LifecycleTransition,
    MeasurementTaken,
    OomHit,
    RecoveryRung,
    ReplayHit,
    Subscription,
    SwapIn,
    SwapOut,
    TensorAlloc,
    TensorEvicted,
    TimeCharged,
    TimelineObserver,
    UnitBackward,
    UnitForward,
)
from repro.engine.stats import IterationStats, RunResult, UnitMeasurement
from repro.engine.executor import IterationOOM, TrainingExecutor
from repro.engine.strategies import (
    CollectStrategy,
    ExecutionStrategy,
    NormalStrategy,
    ReactiveStrategy,
    register_strategy,
    strategy_for,
)
from repro.engine.trace import MemoryTimeline, TimelinePoint
from repro.engine.ddp import DataParallelExecutor, DdpStepStats

__all__ = [
    "IterationStats",
    "RunResult",
    "UnitMeasurement",
    "IterationOOM",
    "TrainingExecutor",
    "MemoryTimeline",
    "TimelinePoint",
    "DataParallelExecutor",
    "DdpStepStats",
    # event bus
    "EventBus",
    "Subscription",
    "EventCounter",
    "TimelineObserver",
    "IterationStart",
    "IterationEnd",
    "IterationObserved",
    "LifecycleTransition",
    "DriftDetected",
    "EstimatorRefit",
    "UnitForward",
    "UnitBackward",
    "TimeCharged",
    "MeasurementTaken",
    "TensorAlloc",
    "TensorEvicted",
    "SwapOut",
    "SwapIn",
    "OomHit",
    "RecoveryRung",
    "ReplayHit",
    # strategies
    "ExecutionStrategy",
    "NormalStrategy",
    "CollectStrategy",
    "ReactiveStrategy",
    "strategy_for",
    "register_strategy",
]
