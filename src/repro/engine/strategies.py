"""Per-mode execution strategies and the iteration pipeline stages.

The executor proper (:mod:`repro.engine.executor`) is a thin driver: it
resolves the planner's :class:`~repro.planners.base.PlanDecision` to an
:class:`ExecutionStrategy`, sets up an :class:`IterationContext`, and
runs ``begin → forward → backward``.  Everything that differs between
execution modes lives here, in one strategy class per mode:

* :class:`NormalStrategy` — apply the planner's checkpoint plan:
  checkpointed units drop internals after their forward and
  rematerialise during backward; segments replay whole groups (Chen et
  al.); swap units ride the PCIe copy engine (Capuchin-style hybrid).
* :class:`CollectStrategy` — Mimose's sheltered execution: every
  checkpointable unit is checkpointed (Sublinear footprint) and runs its
  forward twice (Fig 7), emitting per-unit measurements; the sheltered
  backward additionally stamps each unit's backward duration onto its
  measurement (the series the swap cost model prices overlap from).
* :class:`ReactiveStrategy` — DTR semantics: nothing is dropped up
  front; allocations that would exceed the logical budget (or that
  physically fail) trigger the planner's ``on_oom`` eviction.

Cross-cutting concerns are pipeline stages composed around the
strategies:

* :class:`SwapEngine` — the PCIe copy engine (busy-until timestamp,
  in-flight swap-outs, lookahead-1 prefetch);
* :class:`StatsBuilder` — assembles :class:`~repro.engine.stats
  .IterationStats` from the event stream;
* fault-window arming and replay capture — observers in
  :mod:`repro.engine.events`.

Modelling notes (deviations from a real runtime): intra-unit transients
are allocated before the unit's compute time is charged (a slightly
conservative peak at planner granularity), and activation-gradient
buffers are not modelled separately — both affect all planners
identically and cancel in every relative comparison the paper makes.

Determinism contract: these classes were extracted from the monolithic
executor under a bit-identical ``RunResult.digest`` constraint
(``tests/test_executor_pipeline.py``).  Float accumulation is **order
sensitive** (addition is not associative), so the sequence of
``IterationContext.charge`` calls, the noise-RNG draws in
:class:`CollectStrategy`, and the fault-injector consultations in
``alloc`` must not be reordered casually.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dc_replace
from typing import TYPE_CHECKING, ClassVar, Optional

from repro.engine.events import (
    BackwardMeasured,
    MeasurementTaken,
    SwapIn,
    SwapOut,
    TensorAlloc,
    TensorEvicted,
    TimeCharged,
    UnitBackward,
    UnitForward,
)
from repro.engine.stats import IterationStats, UnitMeasurement
from repro.graph.module import ModuleProfile
from repro.planners.base import (
    EvictableGroup,
    ExecutionMode,
    MemoryAction,
    PlanDecision,
)
from repro.tensorsim.allocator import OutOfMemoryError
from repro.tensorsim.tensor import SimTensor

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.executor import TrainingExecutor
    from repro.models.base import BatchInput


@dataclass(slots=True)
class UnitRuntime:
    """Execution-side state of one unit within the current iteration.

    ``internals`` always aligns element-wise with ``records`` — the unit's
    activation records minus the final one when that record *is* the output
    boundary (the boundary lives in ``boundary`` and has its own lifetime).
    """

    name: str
    profile: ModuleProfile
    internals: list[SimTensor] = field(default_factory=list)
    records: tuple = ()
    boundary: Optional[SimTensor] = None
    boundary_is_internal: bool = False
    recompute_needed: bool = False
    fwd_time: float = 0.0
    last_access: float = 0.0
    # swap state (hybrid plans): offloaded means the saved internals live
    # in host memory and must be transferred back before backward
    offloaded: bool = False
    swapin_issued: bool = False
    swapin_done: float = 0.0


# ---------------------------------------------------------------------------
# Cross-cutting stage: the PCIe copy engine
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class SwapEngine:
    """One PCIe copy engine: serialised transfers, busy-until timestamp.

    Swap-outs release device memory only when the transfer completes
    (:meth:`flush`); backward prefetches the next offloaded unit with a
    lookahead of one (:meth:`issue_swapin`) and stalls on the remainder.
    ``reset`` must run *before* the planning-time clock advance — the
    copy engine idles while the host plans.
    """

    copy_free: float = 0.0
    pending: list[tuple[float, UnitRuntime]] = field(default_factory=list)

    def reset(self, now: float) -> None:
        self.copy_free = now
        self.pending = []

    def flush(self, ctx: "IterationContext") -> None:
        """Release activations whose swap-out has completed by now."""
        if not self.pending:
            return
        now = ctx.clock.now
        remaining: list[tuple[float, UnitRuntime]] = []
        for done, rt in self.pending:
            if done <= now and rt.internals:
                for t in rt.internals:
                    t.drop(ctx.allocator)
                rt.internals = []
                rt.offloaded = True
            elif done > now:
                remaining.append((done, rt))
        self.pending = remaining

    def cancel(self, rt: UnitRuntime) -> None:
        """Abort in-flight swap-outs the backward pass caught up with."""
        self.pending = [(t, r) for t, r in self.pending if r is not rt]

    def schedule_out(self, ctx: "IterationContext", rt: UnitRuntime) -> None:
        """Queue the unit's saved activations onto the copy engine."""
        nbytes = sum(
            t.block.size for t in rt.internals if t.block is not None
        )
        start = max(self.copy_free, ctx.clock.now)
        done = start + ctx.device.transfer_time(nbytes)
        self.copy_free = done
        self.pending.append((done, rt))
        ctx.bus.emit(SwapOut(ctx.iteration, rt.name, nbytes, done))

    def issue_swapin(self, ctx: "IterationContext", rt: UnitRuntime) -> None:
        """Start prefetching an offloaded unit's activations (idempotent)."""
        if not rt.offloaded or rt.swapin_issued:
            return
        rt.internals = []
        nbytes = 0
        for rec in rt.records:
            t = SimTensor(rec.spec, rec.name)
            ctx.alloc_tensor(t)
            rt.internals.append(t)
            if t.block is not None:
                nbytes += t.block.size
        start = max(self.copy_free, ctx.clock.now)
        rt.swapin_done = start + ctx.device.transfer_time(nbytes)
        self.copy_free = rt.swapin_done
        rt.swapin_issued = True
        if ctx.bus.wants(SwapIn):
            ctx.bus.emit(
                SwapIn(ctx.iteration, rt.name, nbytes, rt.swapin_done)
            )


# ---------------------------------------------------------------------------
# Iteration context: shared state + tensor-lifetime helpers
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class IterationContext:
    """Everything one iteration's pipeline stages share.

    Owns the per-iteration mutable state (unit runtimes, the input
    tensor) and the tensor-lifetime helpers the strategies compose.
    Tensor allocation (:meth:`alloc_tensor`) dispatches through the
    strategy so reactive planners can interpose eviction.
    """

    executor: "TrainingExecutor"
    decision: PlanDecision
    batch: "BatchInput"
    iteration: int
    strategy: "ExecutionStrategy"
    swap: SwapEngine
    profiles: tuple[ModuleProfile, ...]
    runtimes: list[UnitRuntime] = field(default_factory=list)
    input_tensor: Optional[SimTensor] = None

    # ----------------------------------------------------------- shortcuts

    @property
    def allocator(self):
        return self.executor.allocator

    @property
    def clock(self):
        return self.executor.clock

    @property
    def device(self):
        return self.executor.device

    @property
    def bus(self):
        return self.executor.events

    @property
    def faults(self):
        return self.executor.faults

    @property
    def planner(self):
        return self.executor.planner

    @property
    def model(self):
        return self.executor.model

    # ---------------------------------------------------------- time & alloc

    def times(self, profile: ModuleProfile) -> tuple[float, float]:
        return self.executor.unit_times(profile)

    def charge(self, component: str, seconds: float) -> None:
        """Advance the clock and publish the charge to one stats component."""
        self.clock.advance(seconds)
        self.bus.emit(TimeCharged(component, seconds))

    def alloc_tensor(self, tensor: SimTensor) -> None:
        self.strategy.alloc(self, tensor)

    # ------------------------------------------------------ tensor lifetimes

    def materialize_internals(self, rt: UnitRuntime) -> None:
        """(Re)allocate the unit's non-boundary activations, record-aligned.

        On the first forward call ``records`` is not yet trimmed, so this
        allocates all activation records; :meth:`ensure_boundary` then
        promotes the trailing record to the boundary if applicable.  On
        recompute calls ``records`` is already trimmed and the boundary is
        still live, so exactly the dropped internals come back.
        """
        assert not any(t.is_materialized for t in rt.internals), "already live"
        if not rt.records:
            rt.records = rt.profile.activations
        rt.internals = []
        # Transient (non-saved) tensors are freed as soon as their consumer
        # has run — modelled as "when the next record is allocated".  The
        # trailing transient survives until the unit's cleanup (it may be
        # the unit output awaiting boundary promotion).
        prev_transient: Optional[SimTensor] = None
        for rec in rt.records:
            t = SimTensor(rec.spec, rec.name)
            self.alloc_tensor(t)
            rt.internals.append(t)
            if prev_transient is not None:
                prev_transient.drop(self.allocator)
            prev_transient = None if rec.saved else t

    def ensure_boundary(self, rt: UnitRuntime) -> None:
        """Bind the unit's output tensor (reusing the last record if it is it)."""
        if rt.boundary is not None:
            return
        acts = rt.profile.activations
        if acts and acts[-1].spec == rt.profile.output and rt.internals:
            rt.boundary = rt.internals.pop()
            rt.records = rt.records[:-1]
            rt.boundary_is_internal = True
        else:
            rt.boundary = SimTensor(rt.profile.output, f"{rt.name}.out")
            self.alloc_tensor(rt.boundary)
            rt.boundary_is_internal = False

    def drop_internals(self, rt: UnitRuntime) -> None:
        """Checkpoint/evict: free every internal (the boundary stays).

        ``records`` is reset to the full non-boundary record list so a later
        recompute rematerialises the transient working tensors too.
        """
        for t in rt.internals:
            t.drop(self.allocator)
        rt.internals = []
        acts = rt.profile.activations
        rt.records = acts[:-1] if rt.boundary_is_internal else acts

    def free_transients(self, rt: UnitRuntime) -> None:
        """Free forward-only working tensors; keep the saved ones."""
        keep_tensors: list[SimTensor] = []
        keep_records = []
        for t, rec in zip(rt.internals, rt.records):
            if rec.saved:
                keep_tensors.append(t)
                keep_records.append(rec)
            else:
                t.drop(self.allocator)
        rt.internals = keep_tensors
        rt.records = tuple(keep_records)

    def release_unit(self, rt: UnitRuntime) -> None:
        for t in rt.internals:
            t.drop(self.allocator)
        rt.internals = []
        if rt.boundary is not None:
            rt.boundary.drop(self.allocator)
        rt.boundary = None

    def saved_block_bytes(self, rt: UnitRuntime) -> int:
        """Allocator-rounded bytes of the unit's saved activations."""
        total = 0
        for t, rec in zip(rt.internals, rt.records):
            if rec.saved and t.block is not None:
                total += t.block.size
        return total

    def unwind(self) -> None:
        """OOM: free everything this iteration allocated, in reverse-ish
        order (pending swap-outs, every unit runtime, the input)."""
        self.swap.pending = []
        for rt in self.runtimes:
            self.release_unit(rt)
        if self.input_tensor is not None:
            self.input_tensor.drop(self.allocator)
            self.input_tensor = None

    # -------------------------------------------------------------- events

    def emit_unit_forward(self, rt: UnitRuntime, checkpointed: bool) -> None:
        alloc = self.allocator
        self.bus.emit(
            UnitForward(
                self.iteration,
                rt.name,
                self.clock.now,
                alloc.bytes_in_use,
                alloc.bytes_reserved,
                rt.fwd_time,
                checkpointed,
            )
        )

    def emit_unit_backward(self, rt: UnitRuntime) -> None:
        alloc = self.allocator
        self.bus.emit(
            UnitBackward(
                self.iteration,
                rt.name,
                self.clock.now,
                alloc.bytes_in_use,
                alloc.bytes_reserved,
            )
        )


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


class ExecutionStrategy:
    """One execution mode's forward/backward/allocation behaviour.

    Instances are created fresh per iteration by :func:`strategy_for`, so
    subclasses may keep per-iteration state (segment groups, evictable
    pools) as plain attributes.
    """

    #: the :class:`ExecutionMode` this strategy implements
    mode: ClassVar[ExecutionMode]
    #: False when iterations are history-dependent and must never be
    #: served from the replay cache (see engine.replay)
    replayable: ClassVar[bool] = True

    def allows_replay(self, executor: "TrainingExecutor") -> bool:
        """Per-executor replay veto (e.g. a stateful noise RNG stream)."""
        return True

    def charge_plan(
        self, model, decision: PlanDecision, upkeep: bool
    ) -> Optional[tuple[tuple[str, Optional[int]], ...]]:
        """The symbolic order of this mode's ``TimeCharged`` emissions.

        Returns ``(component, unit_index)`` pairs (``None`` index for the
        optimizer) describing exactly which charges :meth:`run_forward` /
        :meth:`run_backward` emit and in what order, as a function of the
        plan alone — the charge *values* are left symbolic (the unit's
        forward/backward time, the upkeep rate x record count).  The
        compiled tier (:mod:`repro.engine.compiled`) evaluates this program
        at new input sizes and verifies it charge-for-charge against a
        shadow execution before trusting it.  ``None`` means iterations of
        this mode cannot be described this way (history-dependent modes,
        or plans whose timing depends on the copy-engine timeline).
        """
        return None

    def begin(self, ctx: IterationContext) -> None:
        """Validate/stage per-iteration structures before any allocation."""

    def run_forward(self, ctx: IterationContext) -> None:
        raise NotImplementedError

    def run_backward(self, ctx: IterationContext) -> None:
        raise NotImplementedError

    def alloc(self, ctx: IterationContext, tensor: SimTensor) -> None:
        """Plan-based allocation: fail fast on (injected) OOM."""
        faults = ctx.faults
        if faults is not None and faults.should_fail(tensor.nbytes):
            raise OutOfMemoryError(
                tensor.nbytes,
                ctx.allocator.bytes_free_cached,
                ctx.allocator.largest_free_block(),
            )
        tensor.materialize(ctx.allocator)
        if ctx.bus.wants(TensorAlloc):
            ctx.bus.emit(
                TensorAlloc(
                    ctx.iteration, tensor.nbytes, tensor.name, ctx.clock.now
                )
            )

    # --------------------------------------------------------- shared steps

    def open_unit(self, ctx: IterationContext, unit, prof) -> UnitRuntime:
        """Per-unit forward prologue: upkeep charge + runtime registration."""
        fwd_t, _ = ctx.times(prof)
        upkeep_rate = ctx.planner.upkeep_time_per_tensor
        if upkeep_rate:
            ctx.charge("upkeep", upkeep_rate * len(prof.activations))
        rt = UnitRuntime(unit.name, prof, fwd_time=fwd_t)
        ctx.runtimes.append(rt)  # registered before allocs so OOM unwinds it
        return rt

    def forward_compute(self, ctx: IterationContext, rt: UnitRuntime) -> None:
        """Allocate activations, charge the forward, bind the boundary."""
        ctx.materialize_internals(rt)
        ctx.charge("fwd", rt.fwd_time)
        ctx.ensure_boundary(rt)

    def recompute_if_needed(
        self, ctx: IterationContext, rt: UnitRuntime
    ) -> None:
        """Rematerialise a checkpointed/evicted unit before its backward."""
        if not rt.recompute_needed:
            return
        ctx.materialize_internals(rt)
        ctx.charge("recompute", rt.fwd_time)
        upkeep_rate = ctx.planner.upkeep_time_per_tensor
        if upkeep_rate:
            ctx.charge("upkeep", upkeep_rate * len(rt.profile.activations))
        ctx.free_transients(rt)
        rt.recompute_needed = False


class NormalStrategy(ExecutionStrategy):
    """Apply the planner's checkpoint plan: drops, segments, and swap."""

    mode = ExecutionMode.NORMAL

    def __init__(self) -> None:
        self.seg_of: dict[str, int] = {}
        self.seg_first: set[str] = set()
        self.seg_last: set[str] = set()
        self.seg_runtimes: dict[int, list[UnitRuntime]] = {}

    def begin(self, ctx: IterationContext) -> None:
        self.seg_of, self.seg_first, self.seg_last = segment_info(
            ctx.model, ctx.decision
        )

    def run_forward(self, ctx: IterationContext) -> None:
        # One dispatch point: the plan's canonical assignment answers
        # "what happens to this unit" — no per-structure set-membership.
        # Non-checkpointable units always KEEP, whatever a plan claims
        # (plans may legitimately mention them; execution ignores that).
        assignment = ctx.decision.plan.assignment
        prev_rt: Optional[UnitRuntime] = None
        for unit, prof in zip(ctx.model.units, ctx.profiles):
            ctx.swap.flush(ctx)
            rt = self.open_unit(ctx, unit, prof)
            action = (
                assignment.action_for(unit.name)
                if unit.checkpointable
                else MemoryAction.KEEP
            )
            self.forward_compute(ctx, rt)
            if action is MemoryAction.SEGMENT:
                # segment member: internals drop like a checkpoint, and
                # the *interior* boundary feeding this unit drops too —
                # the group recompute will rebuild both
                ctx.drop_internals(rt)
                self.seg_runtimes.setdefault(
                    self.seg_of[unit.name], []
                ).append(rt)
                if (
                    unit.name not in self.seg_first
                    and prev_rt is not None
                    and prev_rt.boundary is not None
                ):
                    prev_rt.boundary.drop(ctx.allocator)
            elif action is MemoryAction.RECOMPUTE:
                ctx.drop_internals(rt)
                rt.recompute_needed = True
            else:
                ctx.free_transients(rt)
                rt.last_access = ctx.clock.now
                if action is MemoryAction.SWAP and rt.internals:
                    # memory is released once the copy engine finishes
                    ctx.swap.schedule_out(ctx, rt)
            prev_rt = rt
            ctx.emit_unit_forward(
                rt,
                action is MemoryAction.RECOMPUTE
                or action is MemoryAction.SEGMENT,
            )

    def charge_plan(
        self, model, decision: PlanDecision, upkeep: bool
    ) -> Optional[tuple[tuple[str, Optional[int]], ...]]:
        assignment = decision.plan.assignment
        if assignment.swap_units:
            # swap stalls depend on where the copy-engine timeline falls
            # relative to the backward — not a pure function of the plan
            return None
        seg_of, _first, seg_last = segment_info(model, decision)
        members: dict[int, list[int]] = {}
        prog: list[tuple[str, Optional[int]]] = []
        units = model.units
        for i, unit in enumerate(units):
            if upkeep:
                prog.append(("upkeep", i))
            prog.append(("fwd", i))
            if unit.checkpointable and unit.name in seg_of:
                members.setdefault(seg_of[unit.name], []).append(i)
        for j in range(len(units) - 1, -1, -1):
            unit = units[j]
            if unit.name in seg_last:
                for i in members[seg_of[unit.name]]:
                    prog.append(("recompute", i))
            action = (
                assignment.action_for(unit.name)
                if unit.checkpointable
                else MemoryAction.KEEP
            )
            if action is MemoryAction.RECOMPUTE:
                prog.append(("recompute", j))
                if upkeep:
                    prog.append(("upkeep", j))
            prog.append(("bwd", j))
        prog.append(("optimizer", None))
        return tuple(prog)

    def run_backward(self, ctx: IterationContext) -> None:
        bwd_order = list(reversed(ctx.runtimes))
        for j, rt in enumerate(bwd_order):
            ctx.swap.flush(ctx)
            # cancel swap-outs the backward reached before they finished
            ctx.swap.cancel(rt)
            # prefetch the next unit's swapped activations (lookahead 1)
            if j + 1 < len(bwd_order):
                ctx.swap.issue_swapin(ctx, bwd_order[j + 1])
            if rt.offloaded:
                ctx.swap.issue_swapin(ctx, rt)
                if ctx.clock.now < rt.swapin_done:
                    ctx.charge("swap_stall", rt.swapin_done - ctx.clock.now)
                rt.offloaded = False
            if rt.name in self.seg_last:
                # group recompute: replay the whole segment forward,
                # rebuilding internals and interior boundaries
                for urt in self.seg_runtimes[self.seg_of[rt.name]]:
                    ctx.materialize_internals(urt)
                    ctx.charge("recompute", urt.fwd_time)
                    ctx.free_transients(urt)
                    if urt is not rt and urt.boundary is not None:
                        urt.boundary.materialize(ctx.allocator)
            self.recompute_if_needed(ctx, rt)
            _, bwd_t = ctx.times(rt.profile)
            ctx.charge("bwd", bwd_t)
            ctx.release_unit(rt)
            ctx.emit_unit_backward(rt)


class CollectStrategy(ExecutionStrategy):
    """Mimose's sheltered execution: measure everything, keep the
    Sublinear footprint, run every checkpointable forward twice (Fig 7).

    Segments and swap plans are NORMAL-mode concepts and are ignored
    here — sheltered decisions carry bare plans by construction.
    """

    mode = ExecutionMode.COLLECT

    def allows_replay(self, executor: "TrainingExecutor") -> bool:
        # the measurement-noise stream is stateful and must advance
        return executor.noise_rng is None

    def charge_plan(
        self, model, decision: PlanDecision, upkeep: bool
    ) -> Optional[tuple[tuple[str, Optional[int]], ...]]:
        prog: list[tuple[str, Optional[int]]] = []
        units = model.units
        for i, unit in enumerate(units):
            if upkeep:
                prog.append(("upkeep", i))
            prog.append(("fwd", i))
            if unit.checkpointable:
                prog.append(("collect", i))
        for j in range(len(units) - 1, -1, -1):
            if units[j].checkpointable:
                prog.append(("recompute", j))
                if upkeep:
                    prog.append(("upkeep", j))
            prog.append(("bwd", j))
        prog.append(("optimizer", None))
        return tuple(prog)

    def run_forward(self, ctx: IterationContext) -> None:
        noise_rng = ctx.executor.noise_rng
        for unit, prof in zip(ctx.model.units, ctx.profiles):
            rt = self.open_unit(ctx, unit, prof)
            self.forward_compute(ctx, rt)
            if unit.checkpointable:
                saved = ctx.saved_block_bytes(rt)
                meas_t = rt.fwd_time
                if noise_rng is not None:
                    jitter = 1.0 + noise_rng.normal(
                        0.0, ctx.executor.measurement_noise, 2
                    )
                    saved = max(0, int(saved * max(jitter[0], 0.0)))
                    meas_t = rt.fwd_time * max(jitter[1], 0.0)
                if ctx.faults is not None:
                    saved = ctx.faults.perturb_measurement(saved)
                ctx.bus.emit(
                    MeasurementTaken(
                        ctx.iteration,
                        UnitMeasurement(
                            unit.name, ctx.batch.input_size, saved, meas_t
                        ),
                    )
                )
                # the second, shuttling forward pass (Fig 7)
                ctx.charge("collect", rt.fwd_time)
                # sheltered execution keeps the Sublinear footprint
                ctx.drop_internals(rt)
                rt.recompute_needed = True
            else:
                ctx.free_transients(rt)
                rt.last_access = ctx.clock.now
            ctx.emit_unit_forward(rt, unit.checkpointable)

    def run_backward(self, ctx: IterationContext) -> None:
        # The sheltered backward is also a measurement pass: each
        # checkpointable unit's backward duration is stamped onto its
        # pending measurement (via BackwardMeasured), giving the
        # collector the backward series the cost model prices swap
        # overlap windows from — measured execution, not a ratio.  The
        # stopwatch is the *simulated* clock charge, never host time
        # (replint's wall-clock rule keeps it that way).
        noise_rng = ctx.executor.noise_rng
        checkpointable = {
            u.name for u in ctx.model.units if u.checkpointable
        }
        for rt in reversed(ctx.runtimes):
            self.recompute_if_needed(ctx, rt)
            _, bwd_t = ctx.times(rt.profile)
            ctx.charge("bwd", bwd_t)
            if rt.name in checkpointable:
                meas_t = bwd_t
                if noise_rng is not None:
                    # drawn after every forward-pass jitter of this
                    # iteration, so the forward noise stream (and every
                    # pre-extension measurement) is unchanged
                    meas_t = bwd_t * max(
                        1.0 + noise_rng.normal(
                            0.0, ctx.executor.measurement_noise
                        ),
                        0.0,
                    )
                ctx.bus.emit(
                    BackwardMeasured(ctx.iteration, rt.name, meas_t)
                )
            ctx.release_unit(rt)
            ctx.emit_unit_backward(rt)


class ReactiveStrategy(ExecutionStrategy):
    """DTR semantics: keep everything, evict on demand via the planner.

    Eviction decisions depend on runtime history (tensor staleness), so
    two same-shape iterations are not the same world — ``replayable``
    is False and the replay cache always bypasses this mode.
    """

    mode = ExecutionMode.REACTIVE
    replayable = False

    def __init__(self) -> None:
        self.evictable: dict[str, UnitRuntime] = {}

    def run_forward(self, ctx: IterationContext) -> None:
        for unit, prof in zip(ctx.model.units, ctx.profiles):
            rt = self.open_unit(ctx, unit, prof)
            self.forward_compute(ctx, rt)
            ctx.free_transients(rt)
            rt.last_access = ctx.clock.now
            if unit.checkpointable and rt.internals:
                self.evictable[rt.name] = rt
            ctx.emit_unit_forward(rt, False)

    def run_backward(self, ctx: IterationContext) -> None:
        for rt in reversed(ctx.runtimes):
            self.recompute_if_needed(ctx, rt)
            _, bwd_t = ctx.times(rt.profile)
            ctx.charge("bwd", bwd_t)
            self.evictable.pop(rt.name, None)
            ctx.release_unit(rt)
            ctx.emit_unit_backward(rt)

    def alloc(self, ctx: IterationContext, tensor: SimTensor) -> None:
        faults = ctx.faults
        injected = faults is not None and faults.should_fail(tensor.nbytes)
        if injected:
            # Reactive planners react to a failed cudaMalloc by evicting;
            # give them the same chance against an injected failure.
            self._evict_one(ctx, tensor.nbytes)
        # Enforce the logical budget first, then let the planner evict on
        # genuine (fragmentation) failures too.
        budget = ctx.planner.budget_bytes
        needed = tensor.nbytes
        allocator = ctx.allocator
        while (
            allocator.bytes_in_use + needed > budget
            and self._evict_one(ctx, needed)
        ):
            pass
        while True:
            try:
                tensor.materialize(allocator)
                break
            except OutOfMemoryError:
                if not self._evict_one(ctx, needed):
                    raise
        if ctx.bus.wants(TensorAlloc):
            ctx.bus.emit(
                TensorAlloc(
                    ctx.iteration, tensor.nbytes, tensor.name, ctx.clock.now
                )
            )

    def _evict_one(self, ctx: IterationContext, requested: int) -> bool:
        pool = {
            name: EvictableGroup(
                unit_name=name,
                nbytes=sum(
                    t.block.size for t in rt.internals
                    if t.block is not None and t is not rt.boundary
                ),
                compute_time=rt.fwd_time,
                last_access=rt.last_access,
                num_tensors=len(rt.internals),
            )
            for name, rt in self.evictable.items()
        }
        pool = {k: g for k, g in pool.items() if g.nbytes > 0}
        if not pool:
            return False
        victim, search_t = ctx.planner.on_oom(requested, pool, ctx.clock.now)
        ctx.charge("eviction_search", search_t)
        if victim is None:
            return False
        rt = self.evictable.pop(victim)
        nbytes = pool[victim].nbytes
        ctx.drop_internals(rt)
        rt.recompute_needed = True
        ctx.bus.emit(
            TensorEvicted(ctx.iteration, victim, nbytes, ctx.clock.now)
        )
        return True


# ---------------------------------------------------------------------------
# Strategy registry
# ---------------------------------------------------------------------------


_STRATEGIES: dict[ExecutionMode, type[ExecutionStrategy]] = {
    ExecutionMode.NORMAL: NormalStrategy,
    ExecutionMode.COLLECT: CollectStrategy,
    ExecutionMode.REACTIVE: ReactiveStrategy,
}


def register_strategy(cls: type[ExecutionStrategy]) -> type[ExecutionStrategy]:
    """Register (or override) the strategy class for ``cls.mode``.

    Usable as a decorator; this is the pluggable-backend hook — a future
    hybrid swap+recompute mode registers here without executor changes.
    """
    _STRATEGIES[cls.mode] = cls
    return cls


def strategy_for(decision: PlanDecision) -> ExecutionStrategy:
    """A fresh strategy instance for the decision's execution mode."""
    try:
        cls = _STRATEGIES[decision.mode]
    except KeyError:
        raise ValueError(
            f"no execution strategy registered for {decision.mode!r}"
        ) from None
    return cls()


# ---------------------------------------------------------------------------
# Segment indexing (NORMAL-mode plans)
# ---------------------------------------------------------------------------


def segment_info(
    model, decision: PlanDecision
) -> tuple[dict[str, int], set[str], set[str]]:
    """Validate plan segments and index them.

    Returns ``(unit -> segment id, first-of-segment names,
    last-of-segment names)``.  Each segment must be a consecutive run
    of checkpointable units in model order.
    """
    segments = decision.plan.segments
    if not segments:
        return {}, set(), set()
    order = {u.name: i for i, u in enumerate(model.units)}
    checkpointable = {u.name for u in model.units if u.checkpointable}
    seg_of: dict[str, int] = {}
    first: set[str] = set()
    last: set[str] = set()
    for sid, segment in enumerate(segments):
        indices = []
        for name in segment:
            if name not in order:
                raise ValueError(f"unknown unit in segment: {name!r}")
            if name not in checkpointable:
                raise ValueError(
                    f"non-checkpointable unit in segment: {name!r}"
                )
            indices.append(order[name])
            seg_of[name] = sid
        if indices != list(range(indices[0], indices[0] + len(indices))):
            raise ValueError(
                f"segment units must be consecutive in model order: {segment}"
            )
        first.add(segment[0])
        last.add(segment[-1])
    return seg_of, first, last


# ---------------------------------------------------------------------------
# Cross-cutting stage: stats assembly
# ---------------------------------------------------------------------------


class StatsBuilder:
    """Assembles :class:`IterationStats` from the event stream.

    Time components accumulate in event-emission order, which matches
    the charge order of the pre-refactor executor exactly — float
    addition is not associative, and ``RunResult.digest`` is pinned
    bit-identical.  Eviction-search time is kept in its own accumulator
    and folded into the planning component once, at :meth:`finalize`
    (the planner's search *is* planning work, Table III).
    """

    _COMPONENTS = (
        "fwd", "bwd", "recompute", "collect",
        "upkeep", "optimizer", "swap_stall",
    )

    def __init__(self) -> None:
        self._comp: dict[str, float] = {}
        self._eviction_search = 0.0
        self._planning = 0.0
        self._measurements: list[UnitMeasurement] = []
        self._meas_index: dict[str, int] = {}
        self._num_checkpointed = 0
        self._evictions = 0
        self._num_swapped = 0

    def attach(self, bus) -> "StatsBuilder":
        bus.subscribe(
            self,
            TimeCharged, UnitForward, MeasurementTaken,
            BackwardMeasured, TensorEvicted, SwapOut,
        )
        return self

    def begin(self, planning_time: float) -> None:
        self._comp = {c: 0.0 for c in self._COMPONENTS}
        self._planning = planning_time
        self._eviction_search = 0.0
        self._measurements = []
        self._meas_index = {}
        self._num_checkpointed = 0
        self._evictions = 0
        self._num_swapped = 0

    def __call__(self, event) -> None:
        t = type(event)
        if t is TimeCharged:
            if event.component == "eviction_search":
                self._eviction_search += event.seconds
            else:
                self._comp[event.component] += event.seconds
        elif t is UnitForward:
            if event.checkpointed:
                self._num_checkpointed += 1
        elif t is MeasurementTaken:
            self._meas_index[event.measurement.unit_name] = len(
                self._measurements
            )
            self._measurements.append(event.measurement)
        elif t is BackwardMeasured:
            # complete the unit's forward-pass measurement in place; the
            # measurements tuple keeps forward emission order, so digests
            # and every order-sensitive consumer are unaffected
            i = self._meas_index.get(event.unit)
            if i is not None:
                self._measurements[i] = dc_replace(
                    self._measurements[i], bwd_time=event.seconds
                )
        elif t is TensorEvicted:
            self._evictions += 1
        elif t is SwapOut:
            self._num_swapped += 1

    def finalize(self, ctx: IterationContext, oom: bool) -> IterationStats:
        comp = self._comp
        executor = ctx.executor
        alloc = executor.allocator
        decision = ctx.decision
        return IterationStats(
            iteration=ctx.iteration,
            input_size=ctx.batch.input_size,
            input_shape=ctx.batch.shape,
            mode=decision.mode.value,
            plan_label=decision.plan.label or executor.planner.name,
            num_checkpointed=self._num_checkpointed,
            fwd_time=comp["fwd"],
            bwd_time=comp["bwd"],
            recompute_time=comp["recompute"],
            collect_time=comp["collect"],
            planning_time=self._planning + self._eviction_search,
            upkeep_time=comp["upkeep"],
            optimizer_time=comp["optimizer"],
            peak_in_use=alloc.stats.peak_in_use,
            peak_reserved=alloc.stats.peak_reserved,
            end_in_use=alloc.bytes_in_use,
            fragmentation_bytes=alloc.fragmentation_bytes(),
            evictions=self._evictions,
            oom=oom,
            measurements=tuple(self._measurements),
            swap_stall_time=comp["swap_stall"],
            num_swapped=self._num_swapped,
            predicted_peak_bytes=decision.plan.predicted_peak_bytes,
        )
