"""Compiled iteration templates — near-recurrence fast path.

The replay cache (:mod:`repro.engine.replay`) serves an iteration only
when its *exact* world recurs: same plan, same batch shape, same
allocator state.  Multi-size input streams (the paper's Fig. 10 regime)
defeat it — every new sequence length is a new world — even though the
iteration that runs is structurally the *same program* at a different
input size.  This module generalises replay from exact recurrence to
**near-recurrence**: when an iteration completes in steady state, a one-
off certification pass records a *symbolic iteration template* for its
world class ``(mode, assignment, label, dtype, allocator signature)``;
a later iteration in the same class with a new input size is then served
by one template evaluation instead of a full tensor-level simulation.
The executor's lookup ladder becomes three tiers::

    exact replay hit  →  compiled-template hit  →  full simulation

**Eligibility** is exactly the replay proof: the compiled tier is only
consulted for iterations that produced a :class:`~repro.engine.replay
.ReplayKey` (so REACTIVE mode, fault windows, recovery attempts and
noisy COLLECT passes never reach it), and a template is only built from
an iteration whose record round-tripped the allocator signature.  On
top of that the certifier rejects worlds it cannot prove size-generic:
plans with swap (stall times depend on where the copy-engine timeline
falls relative to the backward), iterations that reserve or release
segments mid-flight, and iterations whose memory traffic or time
charges are not a pure function of the plan.

**What a template is.**  In an eligible world the *event sequence* of an
iteration is a function of the plan alone — which tensor is allocated
or freed at each step, and which component is charged when, never
depend on the input size.  Only the *sizes* (and through them the
times) do, and each allocation's byte count comes from a profile-
derived source: the iteration input, one activation record, or one unit
boundary.  Certification re-executes the recorded iteration against a
:meth:`~repro.tensorsim.allocator.CachingAllocator.clone` wrapped in a
recording tap, demands the shadow reproduce the recorded
:class:`~repro.engine.stats.IterationStats` bit for bit, and lifts the
trace into that symbolic form: an alloc/free program over size sources,
the strategy's :meth:`~repro.engine.strategies.ExecutionStrategy
.charge_plan` charge program (verified charge for charge against the
shadow), and the mapping from COLLECT measurements to the saved-record
allocations they sum.

**Evaluation** instantiates the request sizes from the unit profiles at
the new batch and interprets the alloc/free program against the world
class's starting free list using the allocator's own decision rules —
address-ordered best fit, split-versus-absorb at
``MIN_SPLIT_REMAINDER``, segment-local coalescing — reproducing the
exact block sizes full simulation would produce, at free-list cost
instead of tensor-simulation cost (no tensors, no events, no block
linked lists, no signature hashing).  The charge program then folds in
emission order (bit-identical float accumulation) and the measurement
spec sums the same block sizes the sheltered collector would have
observed.  The evaluation serves only if the interpreted free list
round-trips to its starting state — the same steady-state proof the
replay tier stores under — so a served iteration leaves the world
exactly as full simulation would have.  A size at which the program
does not fit or does not round-trip falls back to full simulation; any
*structural* drift (profile shapes, record names, upkeep rate) deletes
the template, and full simulation may re-certify.

Why not serve stats from the fitted memory-estimator polynomials?  The
estimator is a *regression* — its predictions approximate, so they can
never reproduce ``RunResult.digest`` bit for bit.  Templates instead
evaluate the exact profile-derived sizes the simulation itself would
use; the estimator keeps its planning role (see
:mod:`repro.core.estimator`).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import OrderedDict
from dataclasses import replace
from typing import TYPE_CHECKING, NamedTuple, Optional

from repro.engine.events import EventBus, MeasurementTaken, TimeCharged
from repro.engine.replay import ReplayKey, ReplayRecord
from repro.engine.stats import IterationStats, UnitMeasurement
from repro.engine.strategies import (
    IterationContext, StatsBuilder, SwapEngine, strategy_for,
)
from repro.tensorsim.allocator import (
    MIN_SPLIT_REMAINDER, OutOfMemoryError, _align_up,
)
from repro.tensorsim.clock import SimClock
from repro.tensorsim.tensor import SimTensor

if TYPE_CHECKING:
    from repro.engine.executor import TrainingExecutor
    from repro.models.base import BatchInput
    from repro.planners.base import PlanDecision

# Allocation-size sources: where a request's byte count comes from when a
# template is evaluated at a new batch.
_SRC_INPUT = 0  # the iteration input tensor
_SRC_RECORD = 1  # (unit_idx, record_idx) activation record
_SRC_BOUNDARY = 2  # (unit_idx,) unit output boundary

# Free slots are addressed by (segment index << _SEG_SHIFT) + offset, which
# preserves absolute address order (segments indexed by base order) while
# keeping neighbour arithmetic plain integer adds.  No segment approaches
# 2**48 bytes, so offsets never carry into the segment bits.
_SEG_SHIFT = 48


class _Reject(Exception):
    """Internal: this world cannot be certified size-generic."""


class CompiledKey(NamedTuple):
    """World-*class* fingerprint: a :class:`ReplayKey` minus the size.

    Dropping ``shape`` and ``predicted_peak_bytes`` is what turns exact
    recurrence into near-recurrence — those become the template's
    symbolic inputs.  ``timeline_active`` is dropped because timeline
    worlds are never served compiled (per-allocation samples cannot be
    produced without running the allocator).
    """

    mode: object
    assignment: object
    label: str
    dtype: str
    signature: tuple

    @classmethod
    def of(cls, key: ReplayKey) -> "CompiledKey":
        return cls(key.mode, key.assignment, key.label, key.dtype,
                   key.signature)


class _TapAllocator:
    """Transparent allocator proxy recording every malloc/free.

    Reads (``stats``, ``bytes_in_use``, …) delegate straight to the
    wrapped clone; the two mutators append to :attr:`ops` so the
    template builder can recover the symbolic alloc/free program.
    """

    def __init__(self, inner) -> None:
        self._inner = inner
        self.ops: list[tuple] = []

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def malloc(self, nbytes: int, *, owner: str = ""):
        inner = self._inner
        stats = inner.stats
        pre_segs = stats.num_segments
        pre_reserved = stats.bytes_reserved
        block = inner.malloc(nbytes, owner=owner)
        self.ops.append((
            "m", owner, nbytes, block.addr, block.size,
            stats.num_segments != pre_segs
            or stats.bytes_reserved != pre_reserved,
        ))
        return block

    def free(self, block) -> None:
        self.ops.append(("f", block.addr, block.size))
        self._inner.free(block)


class _ShadowExecutor:
    """Duck-typed executor for the certification shadow run.

    Shares the real executor's model, planner, device and unit-time
    cache, but owns a private clock, event bus, swap engine and the
    tapped allocator clone — the real executor is never touched.
    """

    def __init__(self, executor: "TrainingExecutor", tap: _TapAllocator) -> None:
        self._real = executor
        self.allocator = tap
        self.clock = SimClock()
        self.device = executor.device
        self.events = EventBus()
        self.faults = None
        self.planner = executor.planner
        self.model = executor.model
        self.noise_rng = None
        self.measurement_noise = 0.0
        self.swap = SwapEngine()

    def unit_times(self, profile):
        return self._real.unit_times(profile)

    def _optimizer_time(self) -> float:
        return self._real._optimizer_time()


class CompiledTemplate:
    """One certified world class: symbolic programs + starting free list.

    Everything structural (alloc/free program, charge program,
    measurement spec, per-request size sources) was verified against the
    certification shadow run before the template was accepted;
    :meth:`evaluate` re-derives only what depends on the input size.
    """

    __slots__ = (
        "align", "coalescing", "req_sources", "ops", "start_free",
        "unit_names", "record_struct", "promoted", "upkeep_rate",
        "charge_prog", "measure_spec", "start_in_use", "const_stats",
        "_size_ctx",
    )

    #: per-shape context entries kept per template (each is tiny: a request
    #: vector and the unit times); cleared wholesale when full
    MAX_SIZE_CTX = 1024

    def __init__(
        self, *, align, coalescing, req_sources, ops, start_free,
        unit_names, record_struct, promoted, upkeep_rate, charge_prog,
        measure_spec, start_in_use, const_stats,
    ) -> None:
        self.align = align
        self.coalescing = coalescing
        #: per alloc op: its size source (input / record / boundary)
        self.req_sources = req_sources
        #: the event program, flat-encoded: request index ``k`` for an
        #: allocation, ``-k - 1`` for the free of request ``k``
        self.ops = ops
        #: starting free list as (addr_key, size), address-ordered
        self.start_free = start_free
        self.unit_names = unit_names
        self.record_struct = record_struct
        self.promoted = promoted
        self.upkeep_rate = upkeep_rate
        self.charge_prog = charge_prog
        #: per measured unit: (unit_idx, req indices of saved records)
        self.measure_spec = measure_spec
        self.start_in_use = start_in_use
        self.const_stats = const_stats
        #: (shape, dtype) -> (request sizes, unit times), fingerprint-checked
        self._size_ctx: dict = {}

    # ------------------------------------------------------------- evaluate

    def _fingerprint_ok(self, executor, profiles) -> bool:
        """Structural drift check: is this still the certified program?"""
        if len(profiles) != len(self.record_struct):
            return False
        for ui, prof in enumerate(profiles):
            acts = prof.activations
            if (
                tuple((rec.name, rec.saved) for rec in acts)
                != self.record_struct[ui]
            ):
                return False
            promoted = bool(acts) and acts[-1].spec == prof.output
            if promoted != self.promoted[ui]:
                return False
        return (
            executor.planner.upkeep_time_per_tensor == self.upkeep_rate
            and executor.allocator.alignment == self.align
            and executor.allocator.coalescing == self.coalescing
        )

    def _request_sizes(self, batch, profiles) -> list[int]:
        """Aligned request bytes per alloc op, from the profile sources."""
        align = self.align
        sizes = []
        for src in self.req_sources:
            kind = src[0]
            if kind == _SRC_RECORD:
                nb = profiles[src[1]].activations[src[2]].spec.nbytes
            elif kind == _SRC_BOUNDARY:
                nb = profiles[src[1]].output.nbytes
            else:
                nb = batch.spec.nbytes
            if nb < 1:
                nb = 1
            sizes.append(-(-nb // align) * align)
        return sizes

    def _interpret(self, rsizes: list[int]):
        """Run the alloc/free program against the starting free list.

        Replays the allocator's own decision rules — address-ordered
        best fit, split-vs-absorb, segment-local coalescing — on bare
        integers.  Returns ``(block_sizes, peak_overshoot)`` or None
        when a request does not fit (the real allocator would reserve a
        segment: not this template's world) or the free list does not
        round-trip (not steady state at this size).
        """
        by_size: list[tuple[int, int]] = sorted(
            (size, addr) for addr, size in self.start_free
        )
        by_addr: dict[int, int] = dict(self.start_free)
        # addr one past each slot's end -> slot addr (backward coalesce)
        end_at: dict[int, int] = {
            addr + size: addr for addr, size in self.start_free
        }
        coalescing = self.coalescing
        nfree = len(by_addr)
        b: list[int] = [0] * len(self.req_sources)
        where: list[int] = [0] * len(self.req_sources)
        cur = 0
        peak = 0
        bl, ins = bisect_left, insort  # hoisted: this loop is the hot path
        for k in self.ops:
            if k >= 0:  # allocate request k
                r = rsizes[k]
                i = bl(by_size, (r,))
                if i == len(by_size):
                    return None  # would reserve a fresh segment
                size, addr = by_size[i]
                del by_size[i]
                del by_addr[addr]
                del end_at[addr + size]
                if size - r >= MIN_SPLIT_REMAINDER:
                    bk = r
                    tail = addr + r
                    ins(by_size, (size - r, tail))
                    by_addr[tail] = size - r
                    end_at[addr + size] = tail
                else:  # absorb: the block keeps the whole slot
                    bk = size
                b[k] = bk
                where[k] = addr
                cur += bk
                if cur > peak:
                    peak = cur
            else:  # free the block of request ~k
                k = -k - 1
                addr = where[k]
                size = b[k]
                cur -= size
                if coalescing:
                    prev = end_at.get(addr)
                    if prev is not None:
                        psize = by_addr.pop(prev)
                        del end_at[addr]
                        del by_size[bl(by_size, (psize, prev))]
                        addr = prev
                        size += psize
                    nsize = by_addr.pop(addr + size, None)
                    if nsize is not None:
                        nxt = addr + size
                        del end_at[nxt + nsize]
                        del by_size[bl(by_size, (nsize, nxt))]
                        size += nsize
                ins(by_size, (size, addr))
                by_addr[addr] = size
                end_at[addr + size] = addr
        if len(by_addr) != nfree:
            return None
        for addr, size in self.start_free:
            if by_addr.get(addr) != size:
                return None  # not steady state at this size
        return b, peak

    def evaluate(
        self,
        executor: "TrainingExecutor",
        batch: "BatchInput",
        decision: "PlanDecision",
        iteration: int,
        profiles,
    ) -> Optional[tuple[IterationStats, float] | str]:
        """Serve this template at ``batch`` (``profiles`` for that batch).

        Returns ``(stats, sim_time)`` bit-identical to full simulation,
        the string ``"stale"`` when the template no longer describes the
        world (structural drift — the caller must delete it), or None
        when this particular size cannot be served (fall back to full
        simulation, template stays).
        """
        # Size-dependent but world-independent inputs — the request vector
        # and unit times — are pure functions of the batch shape, so they
        # are derived (and the fingerprint checked) once per shape.
        ctx = self._size_ctx.get((batch.shape, batch.dtype))
        if ctx is None:
            if not self._fingerprint_ok(executor, profiles):
                return "stale"
            ctx = (
                self._request_sizes(batch, profiles),
                [executor.unit_times(p) for p in profiles],
                [len(p.activations) for p in profiles],
            )
            if len(self._size_ctx) >= self.MAX_SIZE_CTX:
                self._size_ctx.clear()
            self._size_ctx[(batch.shape, batch.dtype)] = ctx
        rsizes, ut, nacts = ctx
        run = self._interpret(rsizes)
        if run is None:
            return None
        b, peak_overshoot = run

        # Fold the charge program in emission order — the same dict-add
        # order full simulation uses, so every float matches bitwise.
        rate = self.upkeep_rate
        comp = {
            "fwd": 0.0, "bwd": 0.0, "recompute": 0.0, "collect": 0.0,
            "upkeep": 0.0, "optimizer": 0.0,
        }
        t = 0.0
        for name, idx in self.charge_prog:
            if name == "bwd":
                v = ut[idx][1]
            elif name == "upkeep":
                v = rate * nacts[idx]
            elif name == "optimizer":
                v = executor._optimizer_time()
            else:  # fwd / recompute / collect all charge the forward time
                v = ut[idx][0]
            comp[name] += v
            t += v

        meas = []
        for ui, req_idx in self.measure_spec:
            saved = 0
            for k in req_idx:
                saved += b[k]
            meas.append(
                UnitMeasurement(
                    self.unit_names[ui], batch.input_size, saved,
                    ut[ui][0], ut[ui][1],
                )
            )

        stats = replace(
            self.const_stats,
            iteration=iteration,
            input_size=batch.input_size,
            input_shape=batch.shape,
            fwd_time=comp["fwd"],
            bwd_time=comp["bwd"],
            recompute_time=comp["recompute"],
            collect_time=comp["collect"],
            planning_time=decision.planning_time,
            upkeep_time=comp["upkeep"],
            optimizer_time=comp["optimizer"],
            peak_in_use=self.start_in_use + peak_overshoot,
            measurements=tuple(meas),
            predicted_peak_bytes=decision.plan.predicted_peak_bytes,
        )
        return stats, t


# ---------------------------------------------------------------------------
# Certification
# ---------------------------------------------------------------------------


def _shadow_run(
    executor: "TrainingExecutor",
    batch: "BatchInput",
    decision: "PlanDecision",
    replay_key: ReplayKey,
    record: ReplayRecord,
    profiles,
):
    """Re-execute the recorded iteration against a tapped allocator clone.

    Returns ``(tap, start_free, start_in_use, charges, measurements,
    profiles, sim_time)`` after verifying the shadow reproduced the
    record bit for bit and round-tripped the signature.
    """
    clone = executor.allocator.clone()
    seg_sorted = sorted(clone._segments, key=lambda s: s.base)
    seg_index = {s.base: i for i, s in enumerate(seg_sorted)}

    def addr_key(block) -> int:
        base = block.segment.base
        return (seg_index[base] << _SEG_SHIFT) + (block.addr - base)

    start_free = tuple(sorted(
        (addr_key(b), b.size) for b in clone._free_blocks.values()
    ))
    start_in_use = clone.stats.bytes_in_use

    tap = _TapAllocator(clone)
    shadow = _ShadowExecutor(executor, tap)
    builder = StatsBuilder().attach(shadow.events)
    charges: list[tuple[str, float]] = []
    measurements: list[UnitMeasurement] = []
    shadow.events.subscribe(
        lambda e: charges.append((e.component, e.seconds)), TimeCharged
    )
    shadow.events.subscribe(
        lambda e: measurements.append(e.measurement), MeasurementTaken
    )

    strategy = strategy_for(decision)
    clone.reset_peaks()
    builder.begin(0.0)
    shadow.swap.reset(shadow.clock.now)
    ctx = IterationContext(
        executor=shadow,
        decision=decision,
        batch=batch,
        iteration=record.stats.iteration,
        strategy=strategy,
        swap=shadow.swap,
        profiles=profiles,
    )
    strategy.begin(ctx)
    try:
        ctx.input_tensor = SimTensor(batch.spec, "input")
        ctx.alloc_tensor(ctx.input_tensor)
        strategy.run_forward(ctx)
        strategy.run_backward(ctx)
        ctx.input_tensor.drop(tap)
        ctx.input_tensor = None
        ctx.charge("optimizer", shadow._optimizer_time())
    except OutOfMemoryError:
        raise _Reject("shadow execution ran out of memory")
    shadow_stats = builder.finalize(ctx, False)
    if shadow_stats != record.stats:
        raise _Reject("shadow run diverged from the recorded iteration")
    if clone.state_signature() != replay_key.signature:
        raise _Reject("shadow run did not round-trip the allocator")
    return (tap, start_free, start_in_use, charges, measurements,
            shadow.clock.now)


def _certify(
    executor: "TrainingExecutor",
    batch: "BatchInput",
    decision: "PlanDecision",
    replay_key: ReplayKey,
    record: ReplayRecord,
    profiles,
) -> CompiledTemplate:
    """Build and self-test a template for one recorded steady-state world.

    Raises :class:`_Reject` when the world cannot be proven size-generic.
    """
    model = executor.model
    upkeep_rate = executor.planner.upkeep_time_per_tensor
    prog = strategy_for(decision).charge_plan(
        model, decision, bool(upkeep_rate)
    )
    if prog is None:
        raise _Reject("mode/plan has no symbolic charge program")

    (tap, start_free, start_in_use, charges, measurements, sim_time) = (
        _shadow_run(executor, batch, decision, replay_key, record, profiles)
    )

    align = executor.allocator.alignment
    units = model.units
    if len(profiles) != len(units):
        raise _Reject("profile/unit count mismatch")
    unit_names = tuple(u.name for u in units)

    # ---- allocation-size sources, keyed by tensor owner name
    sources: dict[str, tuple] = {"input": (_SRC_INPUT,)}
    record_struct = []
    promoted = []
    for ui, prof in enumerate(profiles):
        acts = prof.activations
        record_struct.append(tuple((rec.name, rec.saved) for rec in acts))
        promoted.append(bool(acts) and acts[-1].spec == prof.output)
        for ri, rec in enumerate(acts):
            if rec.name in sources:
                raise _Reject(f"ambiguous tensor name {rec.name!r}")
            sources[rec.name] = (_SRC_RECORD, ui, ri)
        bname = f"{unit_names[ui]}.out"
        if bname in sources:
            raise _Reject(f"ambiguous tensor name {bname!r}")
        sources[bname] = (_SRC_BOUNDARY, ui)

    # ---- verify the charge program against the shadow trace
    ut = [executor.unit_times(p) for p in profiles]
    if len(prog) != len(charges):
        raise _Reject("charge program length diverged")
    for (name, idx), (cname, cval) in zip(prog, charges):
        if name != cname:
            raise _Reject("charge program order diverged")
        if name == "bwd":
            v = ut[idx][1]
        elif name == "upkeep":
            v = upkeep_rate * len(profiles[idx].activations)
        elif name == "optimizer":
            v = executor._optimizer_time()
        else:
            v = ut[idx][0]
        if v != cval:
            raise _Reject("charge value is not a pure function of the plan")

    # ---- lift the tap trace into the symbolic alloc/free program
    req_sources: list[tuple] = []
    req_sizes0: list[int] = []
    ops: list[int] = []
    b0: list[int] = []
    live: dict[int, int] = {}  # block addr -> req idx, this iteration only
    for op in tap.ops:
        if op[0] == "m":
            _tag, owner, nbytes, addr, size, segchg = op
            if segchg:
                raise _Reject("segment reserve/release inside the iteration")
            src = sources.get(owner)
            if src is None:
                raise _Reject(f"allocation by unknown owner {owner!r}")
            k = len(req_sources)
            req_sources.append(src)
            req_sizes0.append(_align_up(max(nbytes, 1), align))
            ops.append(k)
            b0.append(size)
            live[addr] = k
        else:
            _tag, addr, size = op
            k = live.pop(addr, None)
            if k is None:
                raise _Reject("free of a block from before the iteration")
            if size != b0[k]:
                raise _Reject("freed size diverged")
            ops.append(-k - 1)
    if live:
        raise _Reject("iteration-allocated block outlived the iteration")

    # ---- measurement spec: saved bytes of each measured unit are the sum
    # of its first-materialisation saved-record allocations
    first_rec_ops: dict[int, list[int]] = {}
    for kk, src in enumerate(req_sources):
        if src[0] == _SRC_RECORD:
            lst = first_rec_ops.setdefault(src[1], [])
            if len(lst) < len(profiles[src[1]].activations):
                if src[2] != len(lst):
                    raise _Reject("activation records allocated out of order")
                lst.append(kk)
    measure_units = [idx for name, idx in prog if name == "collect"]
    if len(measure_units) != len(measurements):
        raise _Reject("measurement count diverged")
    measure_spec = []
    for j, ui in enumerate(measure_units):
        acts = profiles[ui].activations
        lst = first_rec_ops.get(ui, [])
        if len(lst) != len(acts):
            raise _Reject("measured unit never fully materialised")
        keep = len(acts) - 1 if promoted[ui] else len(acts)
        req_idx = tuple(
            lst[ri] for ri in range(keep) if acts[ri].saved
        )
        saved0 = sum(b0[kk] for kk in req_idx)
        meas = measurements[j]
        if meas.unit_name != unit_names[ui] or meas.saved_bytes != saved0:
            raise _Reject("measurement is not a sum of saved allocations")
        measure_spec.append((ui, req_idx))

    template = CompiledTemplate(
        align=align,
        coalescing=executor.allocator.coalescing,
        req_sources=tuple(req_sources),
        ops=tuple(ops),
        start_free=start_free,
        unit_names=unit_names,
        record_struct=tuple(record_struct),
        promoted=tuple(promoted),
        upkeep_rate=upkeep_rate,
        charge_prog=prog,
        measure_spec=tuple(measure_spec),
        start_in_use=start_in_use,
        const_stats=record.stats,
    )

    # ---- self-test: the interpreter must reproduce the certification
    # iteration bit for bit before the template is ever trusted elsewhere
    if template._request_sizes(batch, profiles) != req_sizes0:
        raise _Reject("size sources mis-derive the certification requests")
    run = template._interpret(req_sizes0)
    if run is None or run[0] != b0:
        raise _Reject("interpreter diverges on the certification trace")
    result = template.evaluate(
        executor, batch, decision, record.stats.iteration, profiles
    )
    if not isinstance(result, tuple):
        raise _Reject("template rejects its own certification input")
    stats, t = result
    if replace(stats, planning_time=0.0) != record.stats:
        raise _Reject("template mis-evaluates its certification input")
    if t != sim_time:
        raise _Reject("template mis-times its certification input")
    return template


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------


class CompiledCache:
    """Bounded LRU of :class:`CompiledTemplate` keyed by world class.

    The middle tier of the executor's lookup ladder.  Consulted only
    after an exact replay miss, for iterations that carry a
    :class:`ReplayKey`; populated by :meth:`maybe_certify` whenever the
    full-simulation path stores a steady-state replay record for a world
    class not yet certified (or already proven uncertifiable).
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._templates: OrderedDict[CompiledKey, CompiledTemplate] = (
            OrderedDict()
        )
        self._rejected: set[CompiledKey] = set()
        # Unit profiles are a pure function of the batch shape (the model
        # is fixed per executor), but re-tracing them dominates template
        # evaluation; memoised here so every template shares one trace per
        # shape.  Independent of allocator state: survives invalidate().
        self._profile_cache: OrderedDict[tuple, tuple] = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: eligible iterations not consulted (timeline recording active)
        self.bypasses = 0
        #: number of times the cache was wholesale invalidated
        self.invalidations = 0
        #: templates successfully certified
        self.certifications = 0
        #: world classes proven uncertifiable (never re-tried until
        #: invalidation)
        self.rejects = 0
        #: evaluations that could not serve (infeasible size, structural
        #: drift) and fell back to full simulation
        self.fallbacks = 0

    def __len__(self) -> int:
        return len(self._templates)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def invalidate(self) -> None:
        """Drop every template *and* every rejection (world changed)."""
        self._templates.clear()
        self._rejected.clear()
        self.invalidations += 1

    def _profiles(self, executor: "TrainingExecutor", batch: "BatchInput"):
        key = (batch.shape, batch.dtype)
        cached = self._profile_cache.get(key)
        if cached is not None:
            self._profile_cache.move_to_end(key)
            return cached
        profiles = executor.model.profiles(batch)
        self._profile_cache[key] = profiles
        if len(self._profile_cache) > 4 * self.max_entries:
            self._profile_cache.popitem(last=False)
        return profiles

    def serve(
        self,
        executor: "TrainingExecutor",
        batch: "BatchInput",
        decision: "PlanDecision",
        replay_key: ReplayKey,
        iteration: int,
    ) -> Optional[tuple[IterationStats, float]]:
        """(stats, sim_time) for this iteration, or None → full simulation."""
        if replay_key.timeline_active:
            self.bypasses += 1
            return None
        key = CompiledKey.of(replay_key)
        template = self._templates.get(key)
        if template is None:
            self.misses += 1
            return None
        result = template.evaluate(
            executor, batch, decision, iteration,
            self._profiles(executor, batch),
        )
        if isinstance(result, tuple):
            self._templates.move_to_end(key)
            self.hits += 1
            return result
        if result == "stale":
            # structural drift: the template no longer describes this
            # world — delete it and let full simulation re-certify
            del self._templates[key]
        self.fallbacks += 1
        self.misses += 1
        return None

    def maybe_certify(
        self,
        executor: "TrainingExecutor",
        batch: "BatchInput",
        decision: "PlanDecision",
        replay_key: ReplayKey,
        record: ReplayRecord,
    ) -> None:
        """Certify this just-recorded steady-state world class, once."""
        if replay_key.timeline_active:
            return
        key = CompiledKey.of(replay_key)
        if key in self._templates or key in self._rejected:
            return
        try:
            template = _certify(
                executor, batch, decision, replay_key, record,
                self._profiles(executor, batch),
            )
        except _Reject:
            self._rejected.add(key)
            self.rejects += 1
            return
        self._templates[key] = template
        self._templates.move_to_end(key)
        if len(self._templates) > self.max_entries:
            self._templates.popitem(last=False)
        self.certifications += 1
