"""Typed iteration events and the executor's event bus.

The execution engine publishes everything observable about an iteration
as typed events on an :class:`EventBus` owned by the executor
(``executor.events``).  Cross-cutting consumers — the
:class:`~repro.engine.trace.MemoryTimeline`, iteration-stats assembly,
replay-record capture, fault-window arming — are *subscribers* rather
than inline executor code, and third parties (benchmarks, examples,
tracing exporters) can attach observers without touching the executor:

    executor = TrainingExecutor(model, planner, capacity_bytes=budget)
    executor.events.subscribe(lambda e: peaks.append(e.bytes_in_use),
                              UnitForward)

Delivery contract:

* events are delivered synchronously, on the simulation "thread", at the
  exact simulated timestamp they describe (``clock.now`` is consistent
  with the event's ``time`` field where one exists);
* handlers run in **subscription order** — a handler subscribed earlier
  always observes an event before one subscribed later, regardless of
  whether either subscribed to the specific type or to all events;
* handlers must not mutate the executor mid-iteration; they are
  observers.  (The engine's own subscribers — stats assembly, timeline,
  replay capture — only append to their own state.)

Hot-path discipline: constructing an event nobody listens to is wasted
work, so publishers guard optional per-allocation events with
:meth:`EventBus.wants`.  Per-unit events (a dozen per iteration) are
always published — the stats builder consumes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.stats import IterationStats, UnitMeasurement


# ---------------------------------------------------------------------------
# Event types
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class IterationStart:
    """A new iteration is about to run (emitted before replay lookup)."""

    iteration: int
    mode: str  # ExecutionMode.value
    plan_label: str
    input_size: int


@dataclass(frozen=True, slots=True)
class UnitForward:
    """One unit's forward pass (and its post-forward plan action) finished."""

    iteration: int
    unit: str
    time: float  # simulated clock at emission
    bytes_in_use: int
    bytes_reserved: int
    fwd_time: float
    checkpointed: bool  # dropped after forward (incl. segment members)


@dataclass(frozen=True, slots=True)
class UnitBackward:
    """One unit's backward pass (incl. any recompute) finished."""

    iteration: int
    unit: str
    time: float
    bytes_in_use: int
    bytes_reserved: int


@dataclass(frozen=True, slots=True)
class TimeCharged:
    """Simulated seconds charged to one stats component.

    ``component`` is one of ``fwd``, ``bwd``, ``recompute``, ``collect``,
    ``upkeep``, ``optimizer``, ``swap_stall``, ``eviction_search``.
    The stats builder folds these into the iteration breakdown in
    emission order, which keeps float accumulation bit-identical to the
    pre-event-bus executor.
    """

    component: str
    seconds: float


@dataclass(frozen=True, slots=True)
class MeasurementTaken:
    """The shuttling collector measured one unit (COLLECT mode)."""

    iteration: int
    measurement: "UnitMeasurement"


@dataclass(frozen=True, slots=True)
class BackwardMeasured:
    """The sheltered backward pass timed one unit (COLLECT mode).

    Emitted per checkpointable unit by the COLLECT strategy's backward,
    after the unit's backward compute has been charged to the simulated
    clock; the stats builder folds ``seconds`` into the iteration's
    pending :class:`~repro.engine.stats.UnitMeasurement` for that unit,
    completing the (bytes, forward, backward) sample the shuttling
    collector accumulates.
    """

    iteration: int
    unit: str
    seconds: float


@dataclass(frozen=True, slots=True)
class TensorAlloc:
    """An activation tensor was materialized (opt-in: publishers guard
    this with ``bus.wants(TensorAlloc)`` — it is per-tensor hot-path)."""

    iteration: int
    nbytes: int
    owner: str
    time: float


@dataclass(frozen=True, slots=True)
class TensorEvicted:
    """A reactive planner evicted one unit's activations."""

    iteration: int
    unit: str
    nbytes: int
    time: float


@dataclass(frozen=True, slots=True)
class SwapOut:
    """A unit's activations were scheduled onto the PCIe copy engine."""

    iteration: int
    unit: str
    nbytes: int
    done: float  # simulated time the transfer completes


@dataclass(frozen=True, slots=True)
class SwapIn:
    """An offloaded unit's activations started prefetching back."""

    iteration: int
    unit: str
    nbytes: int
    done: float


@dataclass(frozen=True, slots=True)
class OomHit:
    """The iteration ran out of memory and is being unwound."""

    iteration: int
    time: float


@dataclass(frozen=True, slots=True)
class RecoveryRung:
    """The recovery ladder produced a retry decision for a failed iteration."""

    iteration: int
    attempt: int  # 0-based retry counter
    mode: str  # e.g. "replan", "widen-reserve", "full-checkpoint"


@dataclass(frozen=True, slots=True)
class ReplayHit:
    """The iteration was served from the replay cache (not simulated)."""

    iteration: int
    base_time: float  # simulated clock after the planning charge
    sim_time: float  # recorded simulated duration being replayed
    points: tuple = ()  # relative timeline samples, see engine.replay


@dataclass(frozen=True, slots=True)
class CompiledHit:
    """The iteration was served by evaluating a compiled template.

    The middle tier of the executor's lookup ladder: the exact world did
    not recur (new input size), but the world *class* did, and its
    certified template's feasibility constraints accepted the new size.
    """

    iteration: int
    base_time: float  # simulated clock after the planning charge
    sim_time: float  # evaluated simulated duration being applied


@dataclass(frozen=True, slots=True)
class IterationEnd:
    """The iteration's stats are final (replayed or fully simulated)."""

    stats: "IterationStats"


@dataclass(frozen=True, slots=True)
class IterationObserved:
    """One iteration's *surviving* stats are being handed to the planner.

    Emitted by the executor once per :meth:`~repro.engine.executor
    .TrainingExecutor.step`, after the recovery ladder has resolved —
    unlike :class:`IterationEnd`, which also fires for OOM'd attempts
    that are about to be rolled back and retried.  This is the event the
    collect→fit→plan lifecycle controller is driven by: it carries
    exactly the observation stream the planner's feedback loop sees.
    """

    stats: "IterationStats"


@dataclass(frozen=True, slots=True)
class LifecycleTransition:
    """The planning lifecycle state machine changed state.

    Published by :class:`~repro.core.lifecycle.LifecycleController`
    (``COLLECTING → FITTED → MONITORING → DRIFTED → REFITTING``); the
    ``reason`` is a human-readable trigger description ("initial fit",
    "input-size drift", ...).
    """

    iteration: int
    previous: str  # LifecycleState.value
    current: str
    reason: str


@dataclass(frozen=True, slots=True)
class DriftDetected:
    """A lifecycle drift monitor crossed its detection threshold.

    ``monitor`` names the firing detector (``"residual-page-hinkley"``
    for the prediction-residual stream, ``"input-size-cusum"`` for the
    input-size distribution monitor); ``statistic`` is the test statistic
    at detection against the configured ``threshold``.
    """

    iteration: int
    monitor: str
    statistic: float
    threshold: float


@dataclass(frozen=True, slots=True)
class EstimatorRefit:
    """The lifecycle controller (re)fitted the memory estimator.

    ``fit_count`` counts every fit including the initial one;
    ``window_iterations`` is the collector window the fit was trained on.
    ``invalidated`` reports whether the refit invalidation protocol
    flushed the executor's replay/compiled tiers (always true for drift
    or re-collection refits, false for the initial fit — there is nothing
    stale to flush before the first fit exists).
    """

    iteration: int
    fit_count: int
    window_iterations: int
    invalidated: bool


# ---------------------------------------------------------------------------
# The bus
# ---------------------------------------------------------------------------


Handler = Callable[[object], None]


@dataclass(slots=True)
class Subscription:
    """Handle returned by :meth:`EventBus.subscribe`; pass to
    :meth:`EventBus.unsubscribe` to detach."""

    handler: Handler
    event_types: Optional[tuple[type, ...]]  # None = all events
    order: int
    active: bool = True

    def matches(self, event_type: type) -> bool:
        return self.event_types is None or event_type in self.event_types


class EventBus:
    """Synchronous publish/subscribe hub for iteration events.

    Handlers are invoked in subscription order (see module docstring).
    Dispatch lists are cached per concrete event type and rebuilt lazily
    on (un)subscription, so :meth:`emit` is a dict lookup plus a loop.
    """

    def __init__(self) -> None:
        self._subs: list[Subscription] = []
        self._order = 0
        self._dispatch: dict[type, tuple[Handler, ...]] = {}

    def subscribe(
        self, handler: Handler, *event_types: type
    ) -> Subscription:
        """Attach ``handler`` for the given event types (none = all).

        Returns a :class:`Subscription` token for :meth:`unsubscribe`.
        """
        sub = Subscription(
            handler=handler,
            event_types=tuple(event_types) if event_types else None,
            order=self._order,
        )
        self._order += 1
        self._subs.append(sub)
        self._dispatch.clear()
        return sub

    def unsubscribe(self, subscription: Subscription) -> None:
        """Detach a subscription; unknown/stale tokens are a no-op."""
        try:
            self._subs.remove(subscription)
        except ValueError:
            return
        subscription.active = False
        self._dispatch.clear()

    def wants(self, event_type: type) -> bool:
        """Whether any subscriber would receive ``event_type`` — use to
        skip constructing hot-path events with no audience."""
        return bool(self._handlers_for(event_type))

    def emit(self, event: object) -> None:
        """Deliver ``event`` to every matching handler, in order."""
        for handler in self._handlers_for(type(event)):
            handler(event)

    # ------------------------------------------------------------- internals

    def _handlers_for(self, event_type: type) -> tuple[Handler, ...]:
        handlers = self._dispatch.get(event_type)
        if handlers is None:
            handlers = tuple(
                s.handler for s in self._subs if s.matches(event_type)
            )
            self._dispatch[event_type] = handlers
        return handlers

    def __len__(self) -> int:
        return len(self._subs)


# ---------------------------------------------------------------------------
# Engine-provided observers
# ---------------------------------------------------------------------------


class TimelineObserver:
    """Feeds a :class:`~repro.engine.trace.MemoryTimeline` from the bus.

    Replaces the executor's inline ``_sample`` calls: unit forward and
    backward events become ``fwd:<unit>`` / ``bwd:<unit>`` samples, and
    replay hits re-emit the recorded relative samples, exactly as the
    full simulation would have.
    """

    def __init__(self, timeline) -> None:
        self.timeline = timeline

    def attach(self, bus: EventBus) -> Subscription:
        return bus.subscribe(self, UnitForward, UnitBackward, ReplayHit)

    def __call__(self, event) -> None:
        if type(event) is ReplayHit:
            self.timeline.record_relative(
                event.base_time, event.iteration, event.points
            )
            return
        phase = (
            f"fwd:{event.unit}"
            if type(event) is UnitForward
            else f"bwd:{event.unit}"
        )
        self.timeline.record(
            event.time,
            event.bytes_in_use,
            event.bytes_reserved,
            phase,
            event.iteration,
        )


class EventCounter:
    """Counts events by type name — the smallest useful observer.

    Used by ``python -m repro run --trace`` and handy in notebooks::

        counter = EventCounter().attach(executor.events)
        ...
        print(counter.counts)
    """

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}

    def attach(self, bus: EventBus) -> "EventCounter":
        bus.subscribe(self)
        return self

    def __call__(self, event) -> None:
        name = type(event).__name__
        self.counts[name] = self.counts.get(name, 0) + 1


@dataclass(slots=True)
class FaultArmObserver:
    """Arms the fault injector's per-iteration window.

    Subscribing this to :class:`IterationStart` replaces the executor's
    inline ``faults.begin_iteration`` call; the window is armed before
    the replay-eligibility check reads ``faults.quiet()``, exactly as
    before.
    """

    injector: object  # FaultInjector (kept untyped to avoid an import cycle)

    def attach(self, bus: EventBus) -> Subscription:
        return bus.subscribe(self, IterationStart)

    def __call__(self, event: IterationStart) -> None:
        self.injector.begin_iteration(event.iteration)


@dataclass(slots=True)
class ReplayPointRecorder:
    """Captures relative timeline samples for the replay cache.

    Armed by the pipeline at simulation start (only when a replay record
    could be stored *and* a timeline is active); collects the same
    ``(dt, in_use, reserved, phase)`` tuples the timeline records, so a
    replayed iteration can re-emit them shifted onto the current clock.
    """

    _base: float = 0.0
    _points: Optional[list] = None
    _subscription: Optional[Subscription] = field(default=None, repr=False)

    def attach(self, bus: EventBus) -> "ReplayPointRecorder":
        self._subscription = bus.subscribe(self, UnitForward, UnitBackward)
        return self

    def arm(self, base_time: float) -> None:
        self._base = base_time
        self._points = []

    def disarm(self) -> tuple:
        points = tuple(self._points) if self._points is not None else ()
        self._points = None
        return points

    def __call__(self, event) -> None:
        if self._points is None:
            return
        phase = (
            f"fwd:{event.unit}"
            if type(event) is UnitForward
            else f"bwd:{event.unit}"
        )
        self._points.append(
            (event.time - self._base, event.bytes_in_use,
             event.bytes_reserved, phase)
        )
