"""Memory timeline recording (memory-in-use sampled at phase boundaries)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class TimelinePoint:
    """One sample of the device memory state."""

    time: float  # simulated seconds since executor construction
    bytes_in_use: int
    bytes_reserved: int
    phase: str  # e.g. "fwd:encoder.3", "bwd:encoder.3", "recompute:encoder.3"
    iteration: int


@dataclass(slots=True)
class MemoryTimeline:
    """Append-only sequence of :class:`TimelinePoint`s.

    Used by the examples and by Fig 4-style plots; recording is optional
    because long sweeps (Fig 10) do not need per-phase samples.
    """

    points: list[TimelinePoint] = field(default_factory=list)
    enabled: bool = True

    def record(
        self,
        time: float,
        in_use: int,
        reserved: int,
        phase: str,
        iteration: int,
    ) -> None:
        if self.enabled:
            self.points.append(
                TimelinePoint(time, in_use, reserved, phase, iteration)
            )

    def peak_by_iteration(self) -> dict[int, int]:
        """Max bytes-in-use observed per iteration."""
        peaks: dict[int, int] = {}
        for p in self.points:
            if p.bytes_in_use > peaks.get(p.iteration, -1):
                peaks[p.iteration] = p.bytes_in_use
        return peaks

    def phases(self, iteration: int) -> list[TimelinePoint]:
        return [p for p in self.points if p.iteration == iteration]

    def clear(self) -> None:
        self.points.clear()
