"""Memory timeline recording (memory-in-use sampled at phase boundaries)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class TimelinePoint:
    """One sample of the device memory state."""

    time: float  # simulated seconds since executor construction
    bytes_in_use: int
    bytes_reserved: int
    phase: str  # e.g. "fwd:encoder.3", "bwd:encoder.3", "recompute:encoder.3"
    iteration: int


@dataclass(slots=True)
class MemoryTimeline:
    """Append-only sequence of :class:`TimelinePoint`s.

    Used by the examples and by Fig 4-style plots; recording is optional
    because long sweeps (Fig 10) do not need per-phase samples.
    """

    points: list[TimelinePoint] = field(default_factory=list)
    enabled: bool = True

    def record(
        self,
        time: float,
        in_use: int,
        reserved: int,
        phase: str,
        iteration: int,
    ) -> None:
        if self.enabled:
            self.points.append(
                TimelinePoint(time, in_use, reserved, phase, iteration)
            )

    def peak_by_iteration(self) -> dict[int, int]:
        """Max bytes-in-use observed per iteration."""
        peaks: dict[int, int] = {}
        for p in self.points:
            if p.bytes_in_use > peaks.get(p.iteration, -1):
                peaks[p.iteration] = p.bytes_in_use
        return peaks

    def phases(self, iteration: int) -> list[TimelinePoint]:
        return [p for p in self.points if p.iteration == iteration]

    def clear(self) -> None:
        self.points.clear()

    # ------------------------------------------------------------- replay API

    def mark(self) -> int:
        """Current point count — pass to :meth:`relative_since` later."""
        return len(self.points)

    def relative_since(
        self, mark: int, base_time: float
    ) -> tuple[tuple[float, int, int, str], ...]:
        """Points recorded since ``mark`` as deltas from ``base_time``.

        The iteration replay cache stores these so a replayed iteration
        can re-emit the same samples shifted to the current clock.
        """
        return tuple(
            (p.time - base_time, p.bytes_in_use, p.bytes_reserved, p.phase)
            for p in self.points[mark:]
        )

    def record_relative(
        self,
        base_time: float,
        iteration: int,
        rel_points: tuple[tuple[float, int, int, str], ...],
    ) -> None:
        """Append recorded relative points shifted onto ``base_time``."""
        for dt, in_use, reserved, phase in rel_points:
            self.record(base_time + dt, in_use, reserved, phase, iteration)
