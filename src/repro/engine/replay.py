"""Iteration replay cache — the executor's fast path.

Most iterations of a steady-state training run are *identical worlds*: the
same plan applied to the same batch shape starting from the same allocator
state must produce bit-identical results, because the simulation is
deterministic.  Re-running the tensor-level allocator/clock loop for such
an iteration only re-derives numbers that are already known.  This module
memoizes them.

An iteration is replayable only when its world is **provably** identical
to a recorded one.  The proof is the :class:`ReplayKey`:

* the plan decision's execution mode and the plan's *canonical*
  :class:`~repro.planners.base.ActionAssignment` (per-unit actions plus
  segment grouping) together with the plan label and prediction — two
  decisions whose plans assign the same actions key identically no
  matter which planner structures built them;
* the exact batch shape and dtype;
* the allocator's behavioural :meth:`~repro.tensorsim.allocator
  .CachingAllocator.state_signature` at iteration start (reserved
  segments, free-block cache in order, accounting totals);
* whether a memory timeline is being recorded.

A record is stored only for iterations that (a) completed without OOM and
(b) left the allocator in exactly the state they found it (steady state) —
so serving the record and skipping execution leaves the world in the same
state full simulation would have.  On a hit the executor replays the
recorded :class:`~repro.engine.stats.IterationStats` and (optionally) the
memory-timeline deltas, advancing the simulated clock by the recorded
iteration time.

Never replayed, by construction:

* **REACTIVE** iterations — DTR's eviction decisions depend on runtime
  history (tensor staleness), so two same-shape iterations are not the
  same world even when the allocator signature matches;
* iterations inside a **fault window** (fragmentation spike, transient
  allocation failure, or measurement noise active) — the injector
  perturbs the world, and the whole cache is invalidated so pre-fault
  records cannot leak across the perturbation;
* **recovery** attempts (``PlanDecision.recovery_mode`` set) and any
  iteration following an OOM — the escalation ladder mutates planner
  reserves, so the cache is invalidated there too;
* **COLLECT** iterations while measurement noise is configured — the
  noise RNG stream is stateful and must be consumed by real execution.

The only stats field that differs between a replayed iteration and a full
simulation is ``planning_time``: it is genuine wall-clock measured by the
planner (Table III) and is patched in from the current decision, exactly
as the full path charges it.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, NamedTuple, Optional

from repro.engine.stats import IterationStats
from repro.models.base import BatchInput
from repro.planners.base import PlanDecision

if TYPE_CHECKING:
    from repro.planners.base import ActionAssignment, ExecutionMode


class ReplayKey(NamedTuple):
    """Typed iteration-world fingerprint (see module docstring).

    Shared by the replay tier and the compiled tier: replay requires the
    *whole* key to recur; the compiled tier derives its coarser world-class
    key from the same fields (dropping shape/prediction, which it treats
    symbolically).
    """

    mode: "ExecutionMode"
    assignment: "ActionAssignment"
    label: str
    predicted_peak_bytes: int
    shape: tuple
    dtype: str
    signature: tuple
    timeline_active: bool


@dataclass(frozen=True, slots=True)
class ReplayRecord:
    """Everything needed to replay one recorded iteration.

    ``stats`` is stored with ``planning_time`` zeroed and a meaningless
    iteration number; both are patched at replay time.  ``points`` are
    memory-timeline samples relative to the post-planning clock.
    """

    stats: IterationStats
    sim_time: float  # simulated seconds excluding the decision's planning
    points: tuple[tuple[float, int, int, str], ...] = ()

    def materialize(
        self, iteration: int, decision: PlanDecision
    ) -> IterationStats:
        """The stats this record stands for at a new iteration number."""
        return replace(
            self.stats,
            iteration=iteration,
            planning_time=decision.planning_time,
            predicted_peak_bytes=decision.plan.predicted_peak_bytes,
        )


class ReplayCache:
    """Bounded LRU of :class:`ReplayRecord` keyed by iteration world.

    Args:
        max_entries: LRU capacity (distinct (plan, shape, allocator-state)
            worlds worth remembering; steady-state runs need one entry per
            recurring batch shape).
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._records: OrderedDict[ReplayKey, ReplayRecord] = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: eligible iterations skipped because the world was perturbed
        #: (fault window, recovery attempt, reactive mode)
        self.bypasses = 0
        #: number of times the cache was wholesale invalidated
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._records)

    @staticmethod
    def key(
        decision: PlanDecision,
        batch: BatchInput,
        allocator_signature: tuple,
        *,
        timeline_active: bool,
    ) -> ReplayKey:
        """The iteration-world fingerprint (see module docstring)."""
        return ReplayKey(
            mode=decision.mode,
            assignment=decision.plan.assignment,
            label=decision.plan.label,
            predicted_peak_bytes=decision.plan.predicted_peak_bytes,
            shape=batch.shape,
            dtype=batch.dtype,
            signature=allocator_signature,
            timeline_active=timeline_active,
        )

    def lookup(self, key: ReplayKey) -> Optional[ReplayRecord]:
        record = self._records.get(key)
        if record is None:
            self.misses += 1
            return None
        self._records.move_to_end(key)
        self.hits += 1
        return record

    def store(self, key: ReplayKey, record: ReplayRecord) -> None:
        self._records[key] = record
        self._records.move_to_end(key)
        if len(self._records) > self.max_entries:
            self._records.popitem(last=False)

    def invalidate(self) -> None:
        """Drop every record (fault fired, OOM seen, reserves changed)."""
        if self._records:
            self._records.clear()
        self.invalidations += 1

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
