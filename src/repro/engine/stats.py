"""Per-iteration and per-run measurement records."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence


@dataclass(frozen=True, slots=True)
class UnitMeasurement:
    """What the shuttling collector measures for one unit (Fig 7).

    Attributes:
        unit_name: the measured unit.
        input_size: element count of the *iteration* input tensor.
        saved_bytes: activation bytes the unit pins until backward,
            as observed from allocator deltas (includes alignment rounding).
        fwd_time: one forward execution of the unit, seconds.
        bwd_time: the unit's backward execution, seconds, stamped by the
            sheltered backward pass (0.0 when the backward was never
            observed — e.g. an iteration that OOM'd before reaching it).
    """

    unit_name: str
    input_size: int
    saved_bytes: int
    fwd_time: float
    bwd_time: float = 0.0

    def __repr__(self) -> str:  # noqa: D105 — digest-format contract below
        # ``RunResult.digest`` hashes measurement tuples through repr().
        # The digest-parity goldens predate backward measurement, so the
        # repr deliberately renders the original four fields only:
        # ``bwd_time`` reaches digests indirectly, through every hybrid
        # plan it re-prices (cf. ``planning_time``, excluded for being
        # wall-clock; this field is excluded for golden stability).
        return (
            f"{type(self).__qualname__}(unit_name={self.unit_name!r}, "
            f"input_size={self.input_size!r}, "
            f"saved_bytes={self.saved_bytes!r}, "
            f"fwd_time={self.fwd_time!r})"
        )


@dataclass(frozen=True, slots=True)
class IterationStats:
    """Complete timing/memory breakdown of one training iteration."""

    iteration: int
    input_size: int
    input_shape: tuple[int, ...]
    mode: str
    plan_label: str
    num_checkpointed: int
    # --- time components (simulated seconds) ---
    fwd_time: float
    bwd_time: float
    recompute_time: float
    collect_time: float  # the extra shuttling forward in COLLECT mode
    planning_time: float  # plan generation / estimator / eviction search
    upkeep_time: float  # per-tensor metadata maintenance (DTR)
    optimizer_time: float
    # --- memory ---
    peak_in_use: int
    peak_reserved: int
    end_in_use: int
    fragmentation_bytes: int
    # --- events ---
    evictions: int = 0
    oom: bool = False
    measurements: tuple[UnitMeasurement, ...] = ()
    # --- swapping (hybrid planners only) ---
    swap_stall_time: float = 0.0  # backward stalls waiting for PCIe swap-in
    num_swapped: int = 0
    # --- OOM recovery ---
    #: number of retry attempts executed after an OOM (0 = first try ok)
    retries: int = 0
    #: escalation rung that produced the final attempt ("" = no recovery)
    recovery_mode: str = ""
    #: the issuing plan's predicted peak (None when the planner made no
    #: prediction, e.g. static plans or sheltered COLLECT iterations)
    predicted_peak_bytes: int | None = None

    @property
    def recovered(self) -> bool:
        """Whether this iteration survived only via the recovery ladder."""
        return self.retries > 0 and not self.oom

    @property
    def is_collect(self) -> bool:
        """Whether this was a sheltered (COLLECT-mode) iteration.

        String comparison against :class:`~repro.planners.base
        .ExecutionMode.COLLECT`'s value, kept here so stats consumers
        (planners, tables) need no mode-enum branching of their own.
        """
        return self.mode == "collect"

    @property
    def total_time(self) -> float:
        return (
            self.fwd_time
            + self.bwd_time
            + self.recompute_time
            + self.collect_time
            + self.planning_time
            + self.upkeep_time
            + self.optimizer_time
            + self.swap_stall_time
        )

    @property
    def compute_time(self) -> float:
        """Productive compute only (what a zero-overhead planner would cost)."""
        return self.fwd_time + self.bwd_time + self.optimizer_time

    @property
    def overhead_time(self) -> float:
        return self.total_time - self.compute_time


@dataclass(slots=True)
class RunResult:
    """Aggregation over a full training run (one task × planner × budget).

    The ``*_hits``/``*_misses`` counters expose the effectiveness of the
    two execution caches (the planner's :class:`~repro.core.plan_cache
    .PlanCache` and the executor's iteration replay cache) so overhead
    reports can attribute fast-path savings; the runner fills them in
    after the loop completes.
    """

    task_name: str
    planner_name: str
    budget_bytes: int
    iterations: list[IterationStats] = field(default_factory=list)
    # --- cache effectiveness (filled in by the runner post-run) ---
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    replay_hits: int = 0
    replay_misses: int = 0
    compiled_hits: int = 0
    compiled_misses: int = 0
    # --- lifecycle activity (filled in by the runner post-run) ---
    #: estimator refits after the initial fit (re-collection or drift)
    refits: int = 0
    #: drift-monitor firings (Page–Hinkley residual or input-size CUSUM)
    drift_events: int = 0
    # --- optimality harness (filled in post-run, opt-in) ---
    #: relative optimality gap of the run's plans versus the exact solver,
    #: keyed by input size (see :mod:`repro.experiments.optimality`).
    #: Empty unless gap reporting was requested; never hashed by
    #: :meth:`digest` (which reads iterations only), so attaching gaps
    #: cannot perturb digest parity.
    optimality_gaps: dict[int, float] = field(default_factory=dict)

    def append(self, stats: IterationStats) -> None:
        self.iterations.append(stats)

    # ------------------------------------------------------------- summaries

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def total_time(self) -> float:
        return sum(s.total_time for s in self.iterations)

    @property
    def peak_in_use(self) -> int:
        return max((s.peak_in_use for s in self.iterations), default=0)

    @property
    def peak_reserved(self) -> int:
        return max((s.peak_reserved for s in self.iterations), default=0)

    @property
    def oom_count(self) -> int:
        return sum(1 for s in self.iterations if s.oom)

    @property
    def succeeded(self) -> bool:
        """A run 'trains successfully' iff no iteration hit a fatal OOM.

        An iteration rescued by the recovery ladder reports ``oom=False``
        (only the final attempt counts), so recovered runs still succeed.
        """
        return self.num_iterations > 0 and self.oom_count == 0

    @property
    def total_retries(self) -> int:
        """Retry attempts summed over the run (recovery ladder activity)."""
        return sum(s.retries for s in self.iterations)

    @property
    def recovered_count(self) -> int:
        """Iterations that OOM'd at least once but completed after retries."""
        return sum(1 for s in self.iterations if s.recovered)

    def recovery_modes(self) -> dict[str, int]:
        """Histogram of the escalation rungs that rescued iterations."""
        modes: dict[str, int] = {}
        for s in self.iterations:
            if s.recovered:
                modes[s.recovery_mode] = modes.get(s.recovery_mode, 0) + 1
        return modes

    def mean_iteration_time(self) -> float:
        if not self.iterations:
            return 0.0
        return self.total_time / len(self.iterations)

    def time_breakdown(self) -> dict[str, float]:
        """Summed per-component times (Fig 5 / Table III source)."""
        keys = (
            "fwd_time",
            "bwd_time",
            "recompute_time",
            "collect_time",
            "planning_time",
            "upkeep_time",
            "optimizer_time",
        )
        return {k: sum(getattr(s, k) for s in self.iterations) for k in keys}

    def overhead_fraction(self) -> float:
        """Fraction of total time not spent on productive compute."""
        total = self.total_time
        if total == 0:
            return 0.0
        return sum(s.overhead_time for s in self.iterations) / total

    def normalized_time(self, baseline: "RunResult") -> float:
        """This run's total time relative to a baseline run (Fig 10 y-axis)."""
        if baseline.total_time == 0:
            raise ValueError("baseline has no recorded time")
        return self.total_time / baseline.total_time

    @property
    def plan_cache_hit_rate(self) -> float:
        total = self.plan_cache_hits + self.plan_cache_misses
        return self.plan_cache_hits / total if total else 0.0

    @property
    def replay_hit_rate(self) -> float:
        total = self.replay_hits + self.replay_misses
        return self.replay_hits / total if total else 0.0

    @property
    def compiled_hit_rate(self) -> float:
        """Fraction of compiled-tier lookups served by a template.

        A lookup reaches the compiled tier only after an exact replay
        miss, so this rate is conditional on the tier being consulted
        (mirroring :attr:`replay_hit_rate`'s own convention).
        """
        total = self.compiled_hits + self.compiled_misses
        return self.compiled_hits / total if total else 0.0

    def _digest_hasher(self):
        """The incremental hasher behind :meth:`digest`.

        Yields the hasher after the run header and again after each
        iteration's record has been fed in.  ``hexdigest()`` does not
        finalize, so one pass serves both the run-level digest (last
        yield) and the per-iteration rolling digests (every yield).
        """
        import hashlib
        from dataclasses import fields as dc_fields

        h = hashlib.sha256()
        h.update(
            f"{self.task_name}|{self.planner_name}|{self.budget_bytes}".encode()
        )
        names = [
            f.name
            for f in dc_fields(IterationStats)
            if f.name != "planning_time"
        ]
        for s in self.iterations:
            h.update(repr([getattr(s, n) for n in names]).encode())
            yield h
        if not self.iterations:
            yield h

    def digest(self) -> str:
        """Deterministic fingerprint of the run's observable results.

        Hashes every :class:`IterationStats` field *except*
        ``planning_time``, which is genuine wall-clock measured by the
        planner and therefore differs between otherwise identical runs.
        Two runs with equal digests produced bit-identical simulated
        behaviour — the equality the replay cache and the parallel sweep
        runner are required to preserve.
        """
        for h in self._digest_hasher():
            pass
        return h.hexdigest()

    def rolling_digests(self) -> tuple[str, ...]:
        """Per-iteration prefix digests of the run.

        Entry *i* is the digest of the run truncated after iteration
        *i* — the last entry equals :meth:`digest` (for a non-empty
        run).  When two runs diverge, comparing the rolling sequences
        pinpoints the *first* iteration whose simulated behaviour
        differed, instead of only reporting that the runs differ.
        """
        if not self.iterations:
            return ()
        return tuple(h.hexdigest() for h in self._digest_hasher())


def summarize_runs(runs: Sequence[RunResult]) -> list[dict[str, object]]:
    """Flat summary rows for reporting (one per run)."""
    rows: list[dict[str, object]] = []
    for r in runs:
        rows.append(
            {
                "task": r.task_name,
                "planner": r.planner_name,
                "budget_gb": r.budget_bytes / 1024**3,
                "iterations": r.num_iterations,
                "total_time_s": r.total_time,
                "mean_iter_ms": 1e3 * r.mean_iteration_time(),
                "peak_in_use_gb": r.peak_in_use / 1024**3,
                "peak_reserved_gb": r.peak_reserved / 1024**3,
                "overhead_frac": r.overhead_fraction(),
                "succeeded": r.succeeded,
                "retries": r.total_retries,
                "recovered": r.recovered_count,
                "plan_cache_hit_rate": r.plan_cache_hit_rate,
                "replay_hit_rate": r.replay_hit_rate,
                "compiled_hit_rate": r.compiled_hit_rate,
                "refits": r.refits,
                "drift_events": r.drift_events,
                "optimality_gap": _format_gaps(r.optimality_gaps),
            }
        )
    return rows


def _format_gaps(gaps: dict[int, float]) -> str:
    """Render per-size gaps compactly: ``"12.5%/0.0%/3.1%"`` by size.

    ``"—"`` when no gaps were attached (the default: gap reporting is
    opt-in because it requires extra solver runs per input size).
    """
    if not gaps:
        return "—"
    parts = []
    for size in sorted(gaps):
        gap = gaps[size]
        parts.append("inf" if math.isinf(gap) else f"{100.0 * gap:.1f}%")
    return "/".join(parts)
