"""Data-parallel training on top of the single-GPU executor (extension).

The paper trains on one GPU, but its motivating deployments (continuous
fine-tuning) run data-parallel — and input dynamics get *worse* there:
each rank collates its own batch, so every step is gated by the rank
that drew the longest sequences (the straggler).  A planner's per-rank
overhead lands on the critical path exactly when that rank is already
the slowest.

:class:`DataParallelExecutor` composes N independent
:class:`~repro.engine.executor.TrainingExecutor`s (one simulated GPU
each, with its own allocator and planner instance) and models the
synchronous step:

    step_time = max_r(iteration_r) + exposed_allreduce

The gradient all-reduce uses the ring-allreduce cost model,
``2 * (N-1)/N * grad_bytes / link_bandwidth``, partially hidden behind
the backward pass (gradients of late layers are ready early): the
exposed part is what exceeds ``overlap_fraction`` of the slowest rank's
backward time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.engine.executor import TrainingExecutor
from repro.engine.stats import IterationStats
from repro.models.base import BatchInput, SegmentedModel
from repro.planners.base import ModelView, Planner
from repro.tensorsim.device import DeviceModel


@dataclass(frozen=True, slots=True)
class DdpStepStats:
    """One synchronous data-parallel step."""

    per_rank: tuple[IterationStats, ...]
    step_time: float
    straggler_rank: int
    allreduce_time: float
    exposed_allreduce: float

    @property
    def world_size(self) -> int:
        return len(self.per_rank)

    @property
    def oom(self) -> bool:
        return any(s.oom for s in self.per_rank)

    @property
    def imbalance(self) -> float:
        """Slowest over mean rank time — 1.0 means perfectly balanced."""
        times = [s.total_time for s in self.per_rank]
        mean = sum(times) / len(times)
        return max(times) / mean if mean else 1.0


class DataParallelExecutor:
    """N synchronous replicas, each with its own planner and memory.

    Args:
        model_factory: builds one replica's model (fresh per rank).
        planner_factory: builds one replica's planner, given the rank.
        world_size: number of replicas.
        capacity_bytes: per-rank device capacity.
        device: per-rank device model.
        link_bandwidth: all-reduce ring bandwidth in bytes/s (NVLink-class
            default, 150 GB/s effective).
        overlap_fraction: share of the backward pass the all-reduce can
            hide under (bucketed gradients overlap with earlier layers'
            backward).
    """

    def __init__(
        self,
        model_factory: Callable[[], SegmentedModel],
        planner_factory: Callable[[int], Planner],
        world_size: int,
        *,
        capacity_bytes: int,
        device: Optional[DeviceModel] = None,
        link_bandwidth: float = 150e9,
        overlap_fraction: float = 0.7,
    ) -> None:
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        if not 0.0 <= overlap_fraction <= 1.0:
            raise ValueError("overlap_fraction must be in [0, 1]")
        if link_bandwidth <= 0:
            raise ValueError("link_bandwidth must be positive")
        self.world_size = world_size
        self.link_bandwidth = link_bandwidth
        self.overlap_fraction = overlap_fraction
        self.executors: list[TrainingExecutor] = []
        for rank in range(world_size):
            model = model_factory()
            planner = planner_factory(rank)
            planner.setup(ModelView(model))
            self.executors.append(
                TrainingExecutor(
                    model,
                    planner,
                    device=device,
                    capacity_bytes=capacity_bytes,
                    coalescing=planner.allocator_coalescing,
                )
            )
        self._grad_bytes = self.executors[0].model.static_memory().grad_bytes
        self.steps = 0
        self.total_time = 0.0
        self.total_compute_time = 0.0

    def subscribe_all(self, observer_factory: Callable[[int], Callable]):
        """Attach one event-bus observer per rank.

        ``observer_factory(rank)`` must return a handler; it is subscribed
        (wildcard) to that rank's ``executor.events`` bus.  Returns the
        per-rank ``(bus, subscription)`` pairs so callers can unsubscribe.
        """
        tokens = []
        for rank, ex in enumerate(self.executors):
            handler = observer_factory(rank)
            tokens.append((ex.events, ex.events.subscribe(handler)))
        return tokens

    def allreduce_time(self) -> float:
        """Full ring all-reduce duration for one gradient set."""
        if self.world_size == 1:
            return 0.0
        n = self.world_size
        return 2.0 * (n - 1) / n * self._grad_bytes / self.link_bandwidth

    def step(self, batches: Sequence[BatchInput]) -> DdpStepStats:
        """Run one synchronous step; each rank gets its own batch."""
        if len(batches) != self.world_size:
            raise ValueError(
                f"need {self.world_size} batches, got {len(batches)}"
            )
        per_rank = tuple(
            ex.step(batch) for ex, batch in zip(self.executors, batches)
        )
        times = [s.total_time for s in per_rank]
        straggler = max(range(self.world_size), key=times.__getitem__)
        allreduce = self.allreduce_time()
        hidden = self.overlap_fraction * per_rank[straggler].bwd_time
        exposed = max(0.0, allreduce - hidden)
        step_time = times[straggler] + exposed
        self.steps += 1
        self.total_time += step_time
        self.total_compute_time += sum(s.compute_time for s in per_rank) / len(
            per_rank
        )
        return DdpStepStats(
            per_rank=per_rank,
            step_time=step_time,
            straggler_rank=straggler,
            allreduce_time=allreduce,
            exposed_allreduce=exposed,
        )

    @property
    def mean_step_time(self) -> float:
        return self.total_time / self.steps if self.steps else 0.0


def shard_loaders(loader_factory: Callable[[int], object], world_size: int):
    """Per-rank loaders from a seed-taking factory (convenience helper)."""
    return [loader_factory(rank) for rank in range(world_size)]
