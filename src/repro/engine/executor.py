"""Simulated training executor.

Runs training iterations of a :class:`~repro.models.base.SegmentedModel`
under the direction of a :class:`~repro.planners.base.Planner`, allocating
every activation tensor from the :class:`~repro.tensorsim.allocator
.CachingAllocator` and advancing a simulated clock per the device roofline
model.  Three execution modes (see :class:`~repro.planners.base
.ExecutionMode`):

* NORMAL — apply the planner's checkpoint plan: checkpointed units drop all
  internal activations at the end of their forward and rematerialise them
  during backward;
* COLLECT — Mimose's sheltered execution: every checkpointable unit runs
  its forward twice (Fig 7) and per-unit memory/time measurements are
  returned in the iteration stats;
* REACTIVE — DTR semantics: nothing is dropped up front; when an
  allocation would exceed the logical budget (or physically fails), the
  planner's ``on_oom`` picks victims to evict.

Modelling notes (documented deviations from a real runtime):

* Activations inside one unit are allocated before the unit's compute time
  is charged, so intra-unit transients all coexist — a slightly
  conservative peak estimate at the granularity planners operate on.
* Gradient buffers for activations are not modelled separately; parameter
  gradients are part of the static footprint.  This affects all planners
  identically and cancels in every relative comparison the paper makes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Union

import numpy as np

from repro.engine.replay import ReplayCache, ReplayRecord
from repro.engine.stats import IterationStats, UnitMeasurement
from repro.engine.trace import MemoryTimeline
from repro.graph.module import ModuleProfile
from repro.models.base import BatchInput, SegmentedModel
from repro.planners.base import (
    EvictableGroup,
    ExecutionMode,
    PlanDecision,
    Planner,
)
from repro.tensorsim.allocator import Block, CachingAllocator, OutOfMemoryError
from repro.tensorsim.clock import SimClock
from repro.tensorsim.faults import FaultInjector, FaultPlan
from repro.tensorsim.device import DeviceModel
from repro.tensorsim.tensor import SimTensor
from repro.tensorsim.tensor import TensorSpec


class IterationOOM(RuntimeError):
    """Raised (optionally) when an iteration cannot fit in memory."""

    def __init__(self, stats: IterationStats) -> None:
        self.stats = stats
        super().__init__(
            f"iteration {stats.iteration} (input_size={stats.input_size}) "
            f"ran out of memory under plan {stats.plan_label!r}"
        )


@dataclass(slots=True)
class _UnitRuntime:
    """Executor-side state of one unit within the current iteration.

    ``internals`` always aligns element-wise with ``records`` — the unit's
    activation records minus the final one when that record *is* the output
    boundary (the boundary lives in ``boundary`` and has its own lifetime).
    """

    name: str
    profile: ModuleProfile
    internals: list[SimTensor] = field(default_factory=list)
    records: tuple = ()
    boundary: Optional[SimTensor] = None
    boundary_is_internal: bool = False
    recompute_needed: bool = False
    fwd_time: float = 0.0
    last_access: float = 0.0
    # swap state (hybrid plans): offloaded means the saved internals live
    # in host memory and must be transferred back before backward
    offloaded: bool = False
    swapin_issued: bool = False
    swapin_done: float = 0.0


class TrainingExecutor:
    """Drives a planner through simulated training iterations.

    Args:
        model: the segmented model to train.
        planner: decides checkpoint plans / evictions; also supplies the
            memory budget.
        device: roofline timing model.
        capacity_bytes: hard memory capacity of the allocator.  For
            plan-based planners this should equal the budget (they promise
            to stay inside it); for reactive planners and the baseline it
            should be the physical device memory, with the budget enforced
            logically (this is how DTR's fragmentation overshoot becomes
            observable, Fig 5).
        coalescing: allocator coalescing; disable to model the CUDA caching
            allocator's fragmentation behaviour under churn (DTR).
        timeline: optional memory timeline recorder.
        raise_on_oom: raise :class:`IterationOOM` instead of returning a
            failed :class:`IterationStats`.
        measurement_noise: relative standard deviation of multiplicative
            noise applied to COLLECT-mode memory/time measurements
            (deterministic given ``noise_seed``).  Real profiling carries
            jitter from allocator races and timer resolution; the paper's
            estimator must be robust to it.
        noise_seed: seed for the measurement-noise stream.
        faults: optional fault-injection plan (or a prebuilt injector):
            fragmentation spikes, transient allocation failures, and
            measurement misprediction noise, all deterministic per seed.
        max_recovery_retries: retry budget per iteration when the planner
            supports recovery (see :meth:`step`); 0 disables recovery and
            restores the seed behaviour where any OOM is fatal.
        replay: enable the iteration replay cache (see
            :mod:`repro.engine.replay`): iterations whose world is provably
            identical to a recorded one are served from memory instead of
            re-simulated, with bit-identical stats and timeline (only the
            genuinely-measured ``planning_time`` differs).  REACTIVE,
            fault-window and recovery iterations always run in full.
    """

    def __init__(
        self,
        model: SegmentedModel,
        planner: Planner,
        *,
        device: Optional[DeviceModel] = None,
        capacity_bytes: Optional[int] = None,
        coalescing: bool = True,
        timeline: Optional[MemoryTimeline] = None,
        raise_on_oom: bool = False,
        measurement_noise: float = 0.0,
        noise_seed: int = 0,
        faults: Optional[Union[FaultPlan, FaultInjector]] = None,
        max_recovery_retries: int = 3,
        replay: bool = True,
    ) -> None:
        self.model = model
        self.planner = planner
        self.device = device or DeviceModel()
        capacity = capacity_bytes or self.device.memory_capacity
        self.allocator = CachingAllocator(capacity, coalescing=coalescing)
        self.clock = SimClock()
        self.timeline = timeline
        self.raise_on_oom = raise_on_oom
        if measurement_noise < 0:
            raise ValueError("measurement_noise must be non-negative")
        self.measurement_noise = measurement_noise
        self._noise_rng = (
            np.random.default_rng(noise_seed) if measurement_noise else None
        )
        if max_recovery_retries < 0:
            raise ValueError("max_recovery_retries must be non-negative")
        self.max_recovery_retries = max_recovery_retries
        self.faults: Optional[FaultInjector] = (
            faults.build() if isinstance(faults, FaultPlan) else faults
        )
        self.replay: Optional[ReplayCache] = ReplayCache() if replay else None
        self._iteration = 0
        self._time_cache: dict[tuple[str, TensorSpec], tuple[float, float]] = {}
        self._static_blocks = self._allocate_static()
        # Reactive-mode state (valid only during a REACTIVE iteration):
        self._evictable: dict[str, _UnitRuntime] = {}
        self._eviction_count = 0
        self._eviction_search_time = 0.0
        self._reactive = False
        # Swap state (valid only within one iteration):
        self._copy_free = 0.0
        self._pending_swapouts: list[tuple[float, _UnitRuntime]] = []

    # ----------------------------------------------------------------- setup

    def _allocate_static(self) -> list[Block]:
        static = self.model.static_memory()
        blocks = []
        try:
            for label, nbytes in (
                ("params", static.param_bytes),
                ("grads", static.grad_bytes),
                ("optimizer", static.optimizer_bytes),
                ("workspace", static.workspace_bytes),
            ):
                if nbytes > 0:
                    blocks.append(self.allocator.malloc(nbytes, owner=label))
        except OutOfMemoryError as exc:
            raise ValueError(
                f"memory capacity {self.allocator.capacity} B cannot hold the "
                f"static footprint of {self.model.name} ({static.total} B)"
            ) from exc
        return blocks

    @property
    def static_bytes(self) -> int:
        return sum(b.size for b in self._static_blocks)

    # ------------------------------------------------------------ time model

    def _times(self, profile: ModuleProfile) -> tuple[float, float]:
        """(forward, backward) seconds for one unit profile (cached)."""
        key = (profile.module_name, profile.input)
        cached = self._time_cache.get(key)
        if cached is not None:
            return cached
        fwd = 0.0
        bwd = 0.0
        for c in profile.op_costs:
            fwd += self.device.kernel_time(c.flops, c.bytes_moved)
            bwd += self.device.kernel_time(c.bwd_flops, c.bwd_bytes)
        self._time_cache[key] = (fwd, bwd)
        return fwd, bwd

    def _optimizer_time(self) -> float:
        n = self.model.param_count()
        # Adam: read params/grads/m/v, write params/m/v -> ~28 B/param traffic.
        return self.device.kernel_time(8.0 * n, 28.0 * n)

    def iteration_times(self, batch: BatchInput) -> tuple[float, float]:
        """(total forward, total backward) seconds for one batch shape."""
        fwd = bwd = 0.0
        for p in self.model.profiles(batch):
            f, b = self._times(p)
            fwd += f
            bwd += b
        return fwd, bwd

    # ------------------------------------------------------------- execution

    def step(self, batch: BatchInput) -> IterationStats:
        """Plan and execute one training iteration.

        If the iteration OOMs and the planner supports recovery, the
        iteration is rolled back and retried under decisions from the
        planner's escalation ladder (:meth:`Planner.recover`), up to
        ``max_recovery_retries`` times.  The failed attempts' wall-clock
        is charged to the surviving attempt's planning time, and the
        retry count / escalation rung are recorded in its stats.
        """
        decision = self.planner.plan(batch)
        stats = self.run_iteration(batch, decision)
        if (
            stats.oom
            and self.planner.supports_recovery
            and self.max_recovery_retries > 0
        ):
            stats = self._recover(batch, stats)
        self.planner.observe(stats)
        return stats

    def _recover(self, batch: BatchInput, failed: IterationStats) -> IterationStats:
        """Retry a failed iteration under the planner's escalation ladder."""
        stats = failed
        wasted = 0.0  # simulated time burnt on attempts that OOM'd
        retries = 0
        mode = ""
        while stats.oom and retries < self.max_recovery_retries:
            decision = self.planner.recover(batch, stats, retries)
            if decision is None:
                break
            wasted += stats.total_time
            retries += 1
            mode = decision.recovery_mode or "retry"
            # The retry *replaces* the failed attempt: same iteration number.
            self._iteration -= 1
            stats = self.run_iteration(batch, decision)
        if retries:
            stats = replace(
                stats,
                retries=retries,
                recovery_mode=mode,
                planning_time=stats.planning_time + wasted,
            )
        return stats

    def run_iteration(self, batch: BatchInput, decision: PlanDecision) -> IterationStats:
        """Execute one iteration under an explicit plan decision.

        Fast path: when the replay cache holds a record proving this
        iteration's world (mode, plan, batch shape, allocator state) is
        identical to one already simulated, the recorded stats and
        timeline are replayed without touching the allocator.  Otherwise
        the iteration is simulated in full at tensor granularity, and —
        if it succeeds and leaves the allocator exactly as it found it —
        recorded for future replay.
        """
        self._iteration += 1
        iteration = self._iteration
        if self.faults is not None:
            self.faults.begin_iteration(iteration)
        replay_key = self._replay_key(batch, decision)
        if replay_key is not None:
            record = self.replay.lookup(replay_key)
            if record is not None:
                return self._replay_iteration(iteration, decision, record)
        return self._simulate_iteration(batch, decision, iteration, replay_key)

    # ------------------------------------------------------------ replay path

    def invalidate_replay(self) -> None:
        """Drop all replay records (external world change, e.g. planner
        margin/reserve reconfiguration between iterations)."""
        if self.replay is not None:
            self.replay.invalidate()

    def _replay_key(self, batch: BatchInput, decision: PlanDecision) -> Optional[tuple]:
        """The replay fingerprint for this iteration, or None if it must
        be simulated in full (see :mod:`repro.engine.replay`)."""
        cache = self.replay
        if cache is None:
            return None
        if decision.mode is ExecutionMode.REACTIVE:
            # history-dependent eviction decisions: never replayable
            cache.bypasses += 1
            return None
        if decision.recovery_mode:
            # the escalation ladder changes planner reserves; records made
            # under the old margins must not survive it
            cache.bypasses += 1
            cache.invalidate()
            return None
        if self.faults is not None and not self.faults.quiet():
            # a fault perturbs the world for this iteration and possibly
            # the allocator layout beyond it
            cache.bypasses += 1
            cache.invalidate()
            return None
        if decision.mode is ExecutionMode.COLLECT and self._noise_rng is not None:
            # the measurement-noise stream is stateful and must advance
            cache.bypasses += 1
            return None
        return ReplayCache.key(
            decision,
            batch,
            self.allocator.state_signature(),
            timeline_active=self.timeline is not None and self.timeline.enabled,
        )

    def _replay_iteration(
        self, iteration: int, decision: PlanDecision, record: ReplayRecord
    ) -> IterationStats:
        """Serve one iteration from its replay record (allocator untouched)."""
        self.clock.advance(decision.planning_time)
        if self.timeline is not None:
            self.timeline.record_relative(self.clock.now, iteration, record.points)
        self.clock.advance(record.sim_time)
        return record.materialize(iteration, decision)

    # -------------------------------------------------------- full simulation

    def _simulate_iteration(
        self,
        batch: BatchInput,
        decision: PlanDecision,
        iteration: int,
        replay_key: Optional[tuple],
    ) -> IterationStats:
        alloc = self.allocator
        alloc.reset_peaks()
        mode = decision.mode
        self._reactive = mode is ExecutionMode.REACTIVE
        self._evictable = {}
        self._eviction_count = 0
        self._eviction_search_time = 0.0

        comp = {
            "fwd": 0.0,
            "bwd": 0.0,
            "recompute": 0.0,
            "collect": 0.0,
            "planning": decision.planning_time,
            "upkeep": 0.0,
            "optimizer": 0.0,
            "swap_stall": 0.0,
        }
        # PCIe copy engine: busy-until timestamp and in-flight swap-outs
        self._copy_free = self.clock.now
        self._pending_swapouts: list[tuple[float, _UnitRuntime]] = []
        num_swapped = 0
        self.clock.advance(decision.planning_time)
        sim_start = self.clock.now
        tl_mark = self.timeline.mark() if self.timeline is not None else 0
        measurements: list[UnitMeasurement] = []
        runtimes: list[_UnitRuntime] = []
        input_tensor: Optional[SimTensor] = None
        upkeep_rate = self.planner.upkeep_time_per_tensor

        profiles = self.model.profiles(batch)
        num_ckpt = 0
        seg_of, seg_first, seg_last = self._segment_info(decision)
        seg_runtimes: dict[int, list[_UnitRuntime]] = {}
        fault_block: Optional[Block] = None
        try:
            if self.faults is not None:
                phantom = self.faults.phantom_bytes()
                if phantom > 0:
                    # fragmentation spike: memory that exists but is not ours
                    fault_block = alloc.malloc(phantom, owner="fault:frag")
            input_tensor = SimTensor(batch.spec, "input")
            self._alloc_tensor(input_tensor)
            # ------------------------------------------------------- forward
            prev_rt: Optional[_UnitRuntime] = None
            for unit, prof in zip(self.model.units, profiles):
                self._flush_swapouts()
                fwd_t, _ = self._times(prof)
                if upkeep_rate:
                    dt = upkeep_rate * len(prof.activations)
                    comp["upkeep"] += dt
                    self.clock.advance(dt)
                rt = _UnitRuntime(unit.name, prof, fwd_time=fwd_t)
                runtimes.append(rt)  # registered before allocs so OOM unwinds it
                in_segment = (
                    mode is ExecutionMode.NORMAL and unit.name in seg_of
                )
                checkpointed = not in_segment and self._is_checkpointed(
                    unit.name, unit.checkpointable, decision
                )
                if checkpointed or in_segment:
                    num_ckpt += 1

                self._materialize_internals(rt)
                self.clock.advance(fwd_t)
                comp["fwd"] += fwd_t
                self._ensure_boundary(rt)

                if mode is ExecutionMode.COLLECT and unit.checkpointable:
                    saved = self._saved_block_bytes(rt)
                    meas_t = fwd_t
                    if self._noise_rng is not None:
                        jitter = 1.0 + self._noise_rng.normal(
                            0.0, self.measurement_noise, 2
                        )
                        saved = max(0, int(saved * max(jitter[0], 0.0)))
                        meas_t = fwd_t * max(jitter[1], 0.0)
                    if self.faults is not None:
                        saved = self.faults.perturb_measurement(saved)
                    measurements.append(
                        UnitMeasurement(unit.name, batch.input_size, saved, meas_t)
                    )
                    # the second, shuttling forward pass (Fig 7)
                    self.clock.advance(fwd_t)
                    comp["collect"] += fwd_t

                if in_segment:
                    # segment member: internals drop like a checkpoint, and
                    # the *interior* boundary feeding this unit drops too —
                    # the group recompute will rebuild both
                    self._drop_internals(rt)
                    seg_runtimes.setdefault(seg_of[unit.name], []).append(rt)
                    if (
                        unit.name not in seg_first
                        and prev_rt is not None
                        and prev_rt.boundary is not None
                    ):
                        prev_rt.boundary.drop(alloc)
                elif checkpointed:
                    self._drop_internals(rt)
                    rt.recompute_needed = True
                else:
                    self._free_transients(rt)
                    rt.last_access = self.clock.now
                    if self._reactive and unit.checkpointable and rt.internals:
                        self._evictable[rt.name] = rt
                    elif (
                        mode is ExecutionMode.NORMAL
                        and unit.checkpointable
                        and unit.name in decision.plan.swap_units
                        and rt.internals
                    ):
                        # schedule the PCIe swap-out; memory is released
                        # once the copy engine finishes the transfer
                        nbytes = sum(
                            t.block.size for t in rt.internals
                            if t.block is not None
                        )
                        start = max(self._copy_free, self.clock.now)
                        done = start + self.device.transfer_time(nbytes)
                        self._copy_free = done
                        self._pending_swapouts.append((done, rt))
                        num_swapped += 1
                prev_rt = rt
                self._sample(f"fwd:{unit.name}", iteration)

            # ------------------------------------------------------ backward
            bwd_order = list(reversed(runtimes))
            for j, rt in enumerate(bwd_order):
                self._flush_swapouts()
                # cancel swap-outs the backward reached before they finished
                self._pending_swapouts = [
                    (t, r) for t, r in self._pending_swapouts if r is not rt
                ]
                # prefetch the next unit's swapped activations (lookahead 1)
                if j + 1 < len(bwd_order):
                    self._issue_swapin(bwd_order[j + 1])
                if rt.offloaded:
                    self._issue_swapin(rt)
                    if self.clock.now < rt.swapin_done:
                        stall = rt.swapin_done - self.clock.now
                        self.clock.advance(stall)
                        comp["swap_stall"] += stall
                    rt.offloaded = False
                if rt.name in seg_last:
                    # group recompute: replay the whole segment forward,
                    # rebuilding internals and interior boundaries
                    for urt in seg_runtimes[seg_of[rt.name]]:
                        self._materialize_internals(urt)
                        self.clock.advance(urt.fwd_time)
                        comp["recompute"] += urt.fwd_time
                        self._free_transients(urt)
                        if urt is not rt and urt.boundary is not None:
                            urt.boundary.materialize(alloc)
                if rt.recompute_needed:
                    self._materialize_internals(rt)
                    self.clock.advance(rt.fwd_time)
                    comp["recompute"] += rt.fwd_time
                    if upkeep_rate:
                        dt = upkeep_rate * len(rt.profile.activations)
                        comp["upkeep"] += dt
                        self.clock.advance(dt)
                    self._free_transients(rt)
                    rt.recompute_needed = False
                _, bwd_t = self._times(rt.profile)
                self.clock.advance(bwd_t)
                comp["bwd"] += bwd_t
                self._evictable.pop(rt.name, None)
                self._release_unit(rt)
                self._sample(f"bwd:{rt.name}", iteration)

            input_tensor.drop(alloc)
            input_tensor = None
            opt_t = self._optimizer_time()
            self.clock.advance(opt_t)
            comp["optimizer"] += opt_t
            oom = False
        except OutOfMemoryError:
            # Unwind everything allocated this iteration and report failure.
            self._pending_swapouts = []
            for rt in runtimes:
                self._release_unit(rt)
            if input_tensor is not None:
                input_tensor.drop(alloc)
            oom = True

        if fault_block is not None:
            alloc.free(fault_block)
        comp["planning"] += self._eviction_search_time
        stats = IterationStats(
            iteration=iteration,
            input_size=batch.input_size,
            input_shape=batch.shape,
            mode=mode.value,
            plan_label=decision.plan.label or self.planner.name,
            num_checkpointed=num_ckpt,
            fwd_time=comp["fwd"],
            bwd_time=comp["bwd"],
            recompute_time=comp["recompute"],
            collect_time=comp["collect"],
            planning_time=comp["planning"],
            upkeep_time=comp["upkeep"],
            optimizer_time=comp["optimizer"],
            peak_in_use=alloc.stats.peak_in_use,
            peak_reserved=alloc.stats.peak_reserved,
            end_in_use=alloc.bytes_in_use,
            fragmentation_bytes=alloc.fragmentation_bytes(),
            evictions=self._eviction_count,
            oom=oom,
            measurements=tuple(measurements),
            swap_stall_time=comp["swap_stall"],
            num_swapped=num_swapped,
            predicted_peak_bytes=decision.plan.predicted_peak_bytes,
        )
        if oom:
            if self.replay is not None:
                # reserves/margins will move in response; stale records
                # must not outlive the pressure event
                self.replay.invalidate()
            if self.raise_on_oom:
                raise IterationOOM(stats)
            return stats
        if (
            replay_key is not None
            and alloc.state_signature() == ReplayCache.signature_of(replay_key)
        ):
            # Steady state proven: the iteration left the allocator exactly
            # as it found it, so replaying it later is indistinguishable
            # from re-simulating it.
            points = (
                self.timeline.relative_since(tl_mark, sim_start)
                if self.timeline is not None and self.timeline.enabled
                else ()
            )
            self.replay.store(
                replay_key,
                ReplayRecord(
                    stats=replace(stats, planning_time=0.0),
                    sim_time=self.clock.now - sim_start,
                    points=points,
                ),
            )
        return stats

    # --------------------------------------------------------- unit helpers

    def _segment_info(
        self, decision: PlanDecision
    ) -> tuple[dict[str, int], set[str], set[str]]:
        """Validate plan segments and index them.

        Returns ``(unit -> segment id, first-of-segment names,
        last-of-segment names)``.  Each segment must be a consecutive run
        of checkpointable units in model order.
        """
        segments = decision.plan.segments
        if not segments:
            return {}, set(), set()
        order = {u.name: i for i, u in enumerate(self.model.units)}
        checkpointable = {
            u.name for u in self.model.units if u.checkpointable
        }
        seg_of: dict[str, int] = {}
        first: set[str] = set()
        last: set[str] = set()
        for sid, segment in enumerate(segments):
            indices = []
            for name in segment:
                if name not in order:
                    raise ValueError(f"unknown unit in segment: {name!r}")
                if name not in checkpointable:
                    raise ValueError(
                        f"non-checkpointable unit in segment: {name!r}"
                    )
                indices.append(order[name])
                seg_of[name] = sid
            if indices != list(range(indices[0], indices[0] + len(indices))):
                raise ValueError(
                    f"segment units must be consecutive in model order: {segment}"
                )
            first.add(segment[0])
            last.add(segment[-1])
        return seg_of, first, last

    def _is_checkpointed(
        self, name: str, checkpointable: bool, decision: PlanDecision
    ) -> bool:
        if not checkpointable:
            return False
        if decision.mode is ExecutionMode.COLLECT:
            return True  # sheltered execution keeps the Sublinear footprint
        if decision.mode is ExecutionMode.REACTIVE:
            return False
        return name in decision.plan

    def _materialize_internals(self, rt: _UnitRuntime) -> None:
        """(Re)allocate the unit's non-boundary activations, record-aligned.

        On the first forward call ``records`` is not yet trimmed, so this
        allocates all activation records; :meth:`_ensure_boundary` then
        promotes the trailing record to the boundary if applicable.  On
        recompute calls ``records`` is already trimmed and the boundary is
        still live, so exactly the dropped internals come back.
        """
        assert not any(t.is_materialized for t in rt.internals), "already live"
        if not rt.records:
            rt.records = rt.profile.activations
        rt.internals = []
        # Transient (non-saved) tensors are freed as soon as their consumer
        # has run — modelled as "when the next record is allocated".  The
        # trailing transient survives until the unit's cleanup (it may be
        # the unit output awaiting boundary promotion).
        prev_transient: Optional[SimTensor] = None
        for rec in rt.records:
            t = SimTensor(rec.spec, rec.name)
            self._alloc_tensor(t)
            rt.internals.append(t)
            if prev_transient is not None:
                prev_transient.drop(self.allocator)
            prev_transient = None if rec.saved else t

    def _ensure_boundary(self, rt: _UnitRuntime) -> None:
        """Bind the unit's output tensor (reusing the last record if it is it)."""
        if rt.boundary is not None:
            return
        acts = rt.profile.activations
        if acts and acts[-1].spec == rt.profile.output and rt.internals:
            rt.boundary = rt.internals.pop()
            rt.records = rt.records[:-1]
            rt.boundary_is_internal = True
        else:
            rt.boundary = SimTensor(rt.profile.output, f"{rt.name}.out")
            self._alloc_tensor(rt.boundary)
            rt.boundary_is_internal = False

    def _drop_internals(self, rt: _UnitRuntime) -> None:
        """Checkpoint/evict: free every internal (the boundary stays).

        ``records`` is reset to the full non-boundary record list so a later
        recompute rematerialises the transient working tensors too.
        """
        for t in rt.internals:
            t.drop(self.allocator)
        rt.internals = []
        acts = rt.profile.activations
        rt.records = acts[:-1] if rt.boundary_is_internal else acts

    def _free_transients(self, rt: _UnitRuntime) -> None:
        """Free forward-only working tensors; keep the saved ones."""
        keep_tensors: list[SimTensor] = []
        keep_records = []
        for t, rec in zip(rt.internals, rt.records):
            if rec.saved:
                keep_tensors.append(t)
                keep_records.append(rec)
            else:
                t.drop(self.allocator)
        rt.internals = keep_tensors
        rt.records = tuple(keep_records)

    def _release_unit(self, rt: _UnitRuntime) -> None:
        for t in rt.internals:
            t.drop(self.allocator)
        rt.internals = []
        if rt.boundary is not None:
            rt.boundary.drop(self.allocator)
        rt.boundary = None

    def _saved_block_bytes(self, rt: _UnitRuntime) -> int:
        """Allocator-rounded bytes of the unit's saved activations."""
        total = 0
        for t, rec in zip(rt.internals, rt.records):
            if rec.saved and t.block is not None:
                total += t.block.size
        return total

    # ------------------------------------------------------------- swapping

    def _flush_swapouts(self) -> None:
        """Release activations whose PCIe swap-out has completed by now."""
        if not self._pending_swapouts:
            return
        now = self.clock.now
        remaining: list[tuple[float, _UnitRuntime]] = []
        for done, rt in self._pending_swapouts:
            if done <= now and rt.internals:
                for t in rt.internals:
                    t.drop(self.allocator)
                rt.internals = []
                rt.offloaded = True
            elif done > now:
                remaining.append((done, rt))
        self._pending_swapouts = remaining

    def _issue_swapin(self, rt: _UnitRuntime) -> None:
        """Start prefetching an offloaded unit's activations (idempotent)."""
        if not rt.offloaded or rt.swapin_issued:
            return
        rt.internals = []
        nbytes = 0
        for rec in rt.records:
            t = SimTensor(rec.spec, rec.name)
            self._alloc_tensor(t)
            rt.internals.append(t)
            if t.block is not None:
                nbytes += t.block.size
        start = max(self._copy_free, self.clock.now)
        rt.swapin_done = start + self.device.transfer_time(nbytes)
        self._copy_free = rt.swapin_done
        rt.swapin_issued = True

    # ---------------------------------------------------------- allocation

    def _alloc_tensor(self, tensor: SimTensor) -> None:
        injected = self.faults is not None and self.faults.should_fail(
            tensor.nbytes
        )
        if not self._reactive:
            if injected:
                raise OutOfMemoryError(
                    tensor.nbytes,
                    self.allocator.bytes_free_cached,
                    self.allocator.largest_free_block(),
                )
            tensor.materialize(self.allocator)
            return
        if injected:
            # Reactive planners react to a failed cudaMalloc by evicting;
            # give them the same chance against an injected failure.
            self._evict_one(tensor.nbytes)
        # Reactive path: enforce the logical budget first, then let the
        # planner evict on genuine (fragmentation) failures too.
        budget = self.planner.budget_bytes
        needed = tensor.nbytes
        while (
            self.allocator.bytes_in_use + needed > budget
            and self._evict_one(needed)
        ):
            pass
        while True:
            try:
                tensor.materialize(self.allocator)
                return
            except OutOfMemoryError:
                if not self._evict_one(needed):
                    raise

    def _evict_one(self, requested: int) -> bool:
        pool = {
            name: EvictableGroup(
                unit_name=name,
                nbytes=sum(
                    t.block.size for t in rt.internals
                    if t.block is not None and t is not rt.boundary
                ),
                compute_time=rt.fwd_time,
                last_access=rt.last_access,
                num_tensors=len(rt.internals),
            )
            for name, rt in self._evictable.items()
        }
        pool = {k: g for k, g in pool.items() if g.nbytes > 0}
        if not pool:
            return False
        victim, search_t = self.planner.on_oom(requested, pool, self.clock.now)
        self._eviction_search_time += search_t
        self.clock.advance(search_t)
        if victim is None:
            return False
        rt = self._evictable.pop(victim)
        self._drop_internals(rt)
        rt.recompute_needed = True
        self._eviction_count += 1
        return True

    # ------------------------------------------------------------ recording

    def _sample(self, phase: str, iteration: int) -> None:
        if self.timeline is not None:
            self.timeline.record(
                self.clock.now,
                self.allocator.bytes_in_use,
                self.allocator.bytes_reserved,
                phase,
                iteration,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TrainingExecutor({self.model.name}, planner={self.planner.name}, "
            f"capacity={self.allocator.capacity})"
        )
