"""Simulated training executor — the iteration-pipeline driver.

Runs training iterations of a :class:`~repro.models.base.SegmentedModel`
under a :class:`~repro.planners.base.Planner`, allocating every activation
from the simulated caching allocator and advancing a simulated clock per
the device roofline model.  The executor itself is deliberately thin:
per-mode behaviour lives in :mod:`repro.engine.strategies`, everything
observable is published on :attr:`TrainingExecutor.events`
(:mod:`repro.engine.events`), and the engine's own cross-cutting concerns
(stats assembly, timeline sampling, replay capture, fault arming) are bus
subscribers like any third-party observer.  One iteration runs as::

    plan → (replay-cache lookup) → strategy.begin
         → input alloc → strategy.run_forward → strategy.run_backward
         → optimizer → stats finalize → (replay-record store)

Modelling deviations from a real runtime are documented in
:mod:`repro.engine.strategies`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Union

import numpy as np

from repro.engine.compiled import CompiledCache
from repro.engine.events import (
    CompiledHit, EventBus, FaultArmObserver, IterationEnd, IterationObserved,
    IterationStart, OomHit, RecoveryRung, ReplayHit, ReplayPointRecorder,
    TimelineObserver,
)
from repro.engine.replay import ReplayCache, ReplayKey, ReplayRecord
from repro.engine.stats import IterationStats
from repro.engine.strategies import (
    ExecutionStrategy, IterationContext, StatsBuilder, SwapEngine,
    strategy_for,
)
from repro.engine.trace import MemoryTimeline
from repro.graph.module import ModuleProfile
from repro.models.base import BatchInput, SegmentedModel
from repro.planners.base import PlanDecision, Planner
from repro.tensorsim.allocator import Block, CachingAllocator, OutOfMemoryError
from repro.tensorsim.clock import SimClock
from repro.tensorsim.device import DeviceModel
from repro.tensorsim.faults import FaultInjector, FaultPlan
from repro.tensorsim.tensor import SimTensor, TensorSpec


class IterationOOM(RuntimeError):
    """Raised (optionally) when an iteration cannot fit in memory."""

    def __init__(self, stats: IterationStats) -> None:
        self.stats = stats
        super().__init__(
            f"iteration {stats.iteration} (input_size={stats.input_size}) "
            f"ran out of memory under plan {stats.plan_label!r}"
        )


class TrainingExecutor:
    """Drives a planner through simulated training iterations.

    Args:
        model: the segmented model to train.
        planner: decides checkpoint plans / evictions; supplies the budget.
        device: roofline timing model.
        capacity_bytes: hard allocator capacity.  Plan-based planners set
            it to their budget; reactive planners and the baseline use
            physical device memory with the budget enforced logically
            (how DTR's fragmentation overshoot becomes observable, Fig 5).
        coalescing: allocator coalescing; disable to model the CUDA
            caching allocator's fragmentation under churn (DTR).
        timeline: optional memory timeline recorder (an event-bus
            subscriber, :class:`~repro.engine.events.TimelineObserver`).
        raise_on_oom: raise :class:`IterationOOM` instead of returning a
            failed :class:`IterationStats`.
        measurement_noise: relative stddev of multiplicative noise on
            COLLECT-mode measurements, deterministic given ``noise_seed``.
        faults: optional fault-injection plan (or a prebuilt injector),
            deterministic per seed — see :mod:`repro.tensorsim.faults`.
        max_recovery_retries: retry budget per iteration when the planner
            supports recovery (see :meth:`step`); 0 makes any OOM fatal.
        replay: enable the iteration replay cache
            (:mod:`repro.engine.replay`).
        compiled: enable the compiled-template tier
            (:mod:`repro.engine.compiled`); requires ``replay`` (the
            compiled tier shares replay's eligibility proof and key).

    Attach observers to :attr:`events`; the engine's own subscribers
    (fault arming, stats, timeline, replay capture) register first.
    """

    def __init__(
        self,
        model: SegmentedModel,
        planner: Planner,
        *,
        device: Optional[DeviceModel] = None,
        capacity_bytes: Optional[int] = None,
        coalescing: bool = True,
        timeline: Optional[MemoryTimeline] = None,
        raise_on_oom: bool = False,
        measurement_noise: float = 0.0,
        noise_seed: int = 0,
        faults: Optional[Union[FaultPlan, FaultInjector]] = None,
        max_recovery_retries: int = 3,
        replay: bool = True,
        compiled: bool = True,
    ) -> None:
        self.model = model
        self.planner = planner
        self.device = device or DeviceModel()
        capacity = capacity_bytes or self.device.memory_capacity
        self.allocator = CachingAllocator(capacity, coalescing=coalescing)
        self.clock = SimClock()
        self.timeline = timeline
        self.raise_on_oom = raise_on_oom
        if measurement_noise < 0:
            raise ValueError("measurement_noise must be non-negative")
        self.measurement_noise = measurement_noise
        self.noise_rng = (
            np.random.default_rng(noise_seed) if measurement_noise else None
        )
        if max_recovery_retries < 0:
            raise ValueError("max_recovery_retries must be non-negative")
        self.max_recovery_retries = max_recovery_retries
        self.faults: Optional[FaultInjector] = (
            faults.build() if isinstance(faults, FaultPlan) else faults
        )
        self.replay: Optional[ReplayCache] = ReplayCache() if replay else None
        self.compiled: Optional[CompiledCache] = (
            CompiledCache() if (replay and compiled) else None
        )
        self._sig_cache: Optional[tuple] = None
        self._sig_version: Optional[tuple] = None
        self._iteration = 0
        self._time_cache: dict[tuple[str, TensorSpec], tuple[float, float]] = {}
        self._static_blocks = self._allocate_static()
        self.swap = SwapEngine()
        # The event bus and the engine's own subscribers.  Subscription
        # order is delivery order; user observers attach after these.
        self.events = EventBus()
        if self.faults is not None:
            FaultArmObserver(self.faults).attach(self.events)
        self._stats = StatsBuilder().attach(self.events)
        if self.timeline is not None:
            TimelineObserver(self.timeline).attach(self.events)
        self._replay_points = ReplayPointRecorder().attach(self.events)
        # A planner exposing a lifecycle controller (MimosePlanner) gets
        # it wired to this executor's bus: the controller consumes the
        # post-recovery observation stream (IterationObserved), publishes
        # lifecycle/drift events, and gains the replay/compiled flush for
        # its refit invalidation protocol.
        lifecycle = getattr(planner, "lifecycle", None)
        if lifecycle is not None:
            lifecycle.attach(self.events, invalidate=self.invalidate_replay)

    def _allocate_static(self) -> list[Block]:
        static = self.model.static_memory()
        blocks = []
        try:
            for label, nbytes in (
                ("params", static.param_bytes),
                ("grads", static.grad_bytes),
                ("optimizer", static.optimizer_bytes),
                ("workspace", static.workspace_bytes),
            ):
                if nbytes > 0:
                    blocks.append(self.allocator.malloc(nbytes, owner=label))
        except OutOfMemoryError as exc:
            raise ValueError(
                f"memory capacity {self.allocator.capacity} B cannot hold the "
                f"static footprint of {self.model.name} ({static.total} B)"
            ) from exc
        return blocks

    @property
    def static_bytes(self) -> int:
        return sum(b.size for b in self._static_blocks)

    def unit_times(self, profile: ModuleProfile) -> tuple[float, float]:
        """(forward, backward) seconds for one unit profile (cached)."""
        key = (profile.module_name, profile.input)
        cached = self._time_cache.get(key)
        if cached is not None:
            return cached
        fwd = 0.0
        bwd = 0.0
        for c in profile.op_costs:
            fwd += self.device.kernel_time(c.flops, c.bytes_moved)
            bwd += self.device.kernel_time(c.bwd_flops, c.bwd_bytes)
        self._time_cache[key] = (fwd, bwd)
        return fwd, bwd

    def _optimizer_time(self) -> float:
        n = self.model.param_count()
        # Adam: read params/grads/m/v, write params/m/v -> ~28 B/param traffic.
        return self.device.kernel_time(8.0 * n, 28.0 * n)

    def iteration_times(self, batch: BatchInput) -> tuple[float, float]:
        """(total forward, total backward) seconds for one batch shape."""
        fwd = bwd = 0.0
        for p in self.model.profiles(batch):
            f, b = self.unit_times(p)
            fwd += f
            bwd += b
        return fwd, bwd

    def step(self, batch: BatchInput) -> IterationStats:
        """Plan and execute one training iteration.

        An iteration that OOMs under a recovery-capable planner is rolled
        back and retried under the planner's escalation ladder
        (:meth:`Planner.recover`), up to ``max_recovery_retries`` times;
        the failed attempts' time is charged to the survivor's planning
        time and the retry count / rung recorded in its stats.
        """
        decision = self.planner.plan(batch)
        stats = self.run_iteration(batch, decision)
        if (
            stats.oom
            and self.planner.supports_recovery
            and self.max_recovery_retries > 0
        ):
            stats = self._recover(batch, stats)
        # The surviving stats (post-recovery) are the planner feedback
        # stream; the lifecycle controller consumes them from the bus and
        # the planner's observe call below is idempotent with it.
        self.events.emit(IterationObserved(stats))
        self.planner.observe(stats)
        return stats

    def _recover(self, batch: BatchInput, failed: IterationStats) -> IterationStats:
        """Retry a failed iteration under the planner's escalation ladder."""
        stats = failed
        wasted = 0.0  # simulated time burnt on attempts that OOM'd
        retries = 0
        mode = ""
        while stats.oom and retries < self.max_recovery_retries:
            decision = self.planner.recover(batch, stats, retries)
            if decision is None:
                break
            mode = decision.recovery_mode or "retry"
            self.events.emit(RecoveryRung(stats.iteration, retries, mode))
            wasted += stats.total_time
            retries += 1
            # The retry *replaces* the failed attempt: same iteration number.
            self._iteration -= 1
            stats = self.run_iteration(batch, decision)
        if retries:
            stats = replace(
                stats,
                retries=retries,
                recovery_mode=mode,
                planning_time=stats.planning_time + wasted,
            )
        return stats

    def run_iteration(self, batch: BatchInput, decision: PlanDecision) -> IterationStats:
        """Execute one iteration under an explicit plan decision.

        Three-tier lookup: a replay record proving this iteration's world
        (mode, plan, batch shape, allocator state) identical to one
        already simulated is served without touching the allocator; on a
        miss, a certified compiled template for the same world *class*
        (any batch size) is evaluated symbolically; otherwise simulate in
        full and — if the allocator round-trips — record (and certify).
        """
        self._iteration += 1
        iteration = self._iteration
        # Arms the fault window (FaultArmObserver) before replay
        # eligibility reads ``faults.quiet()``.
        self.events.emit(
            IterationStart(
                iteration, decision.mode.value,
                decision.plan.label, batch.input_size,
            )
        )
        strategy = strategy_for(decision)
        replay_key = self._replay_key(batch, decision, strategy)
        if replay_key is not None:
            record = self.replay.lookup(replay_key)
            if record is not None:
                return self._replay_iteration(iteration, decision, record)
            if self.compiled is not None:
                served = self.compiled.serve(
                    self, batch, decision, replay_key, iteration
                )
                if served is not None:
                    return self._compiled_iteration(
                        iteration, decision, replay_key, served
                    )
        return self._simulate(batch, decision, iteration, strategy, replay_key)

    def invalidate_replay(self) -> None:
        """Drop all replay records and compiled templates (external world
        change, e.g. a planner reserve reconfiguration between iterations)."""
        if self.replay is not None:
            self.replay.invalidate()
        if self.compiled is not None:
            self.compiled.invalidate()

    def _state_signature(self) -> tuple:
        """The allocator signature, cached until the allocator mutates.

        Serving an iteration from replay or a compiled template leaves
        the allocator untouched, so steady-state streams re-fingerprint
        an unchanged state every iteration; the version triple is bumped
        by every malloc, free and segment reserve/release.
        """
        alloc = self.allocator
        stats = alloc.stats
        version = (stats.num_allocs, stats.num_frees, stats.bytes_reserved)
        if version != self._sig_version:
            self._sig_cache = alloc.state_signature()
            self._sig_version = version
        return self._sig_cache

    def _replay_key(
        self,
        batch: BatchInput,
        decision: PlanDecision,
        strategy: ExecutionStrategy,
    ) -> Optional[ReplayKey]:
        """The replay fingerprint, or None if the iteration must be
        simulated.  The bypass/invalidate ladder is ordered; its counters
        are public contract (see :mod:`repro.engine.replay`)."""
        cache = self.replay
        compiled = self.compiled
        if cache is None:
            return None
        if not strategy.replayable:  # history-dependent (reactive) mode
            cache.bypasses += 1
            if compiled is not None:
                compiled.bypasses += 1
            return None
        if decision.recovery_mode:  # escalation ladder moved the reserves
            cache.bypasses += 1
            cache.invalidate()
            if compiled is not None:
                compiled.bypasses += 1
                compiled.invalidate()
            return None
        if self.faults is not None and not self.faults.quiet():
            cache.bypasses += 1  # the fault window perturbs the world
            cache.invalidate()
            if compiled is not None:
                compiled.bypasses += 1
                compiled.invalidate()
            return None
        if not strategy.allows_replay(self):  # e.g. stateful noise stream
            cache.bypasses += 1
            if compiled is not None:
                compiled.bypasses += 1
            return None
        return ReplayCache.key(
            decision,
            batch,
            self._state_signature(),
            timeline_active=self.timeline is not None and self.timeline.enabled,
        )

    def _replay_iteration(
        self, iteration: int, decision: PlanDecision, record: ReplayRecord
    ) -> IterationStats:
        """Serve one iteration from its replay record (allocator untouched)."""
        self.clock.advance(decision.planning_time)
        if self.events.wants(ReplayHit):
            # the TimelineObserver re-emits the recorded samples
            self.events.emit(
                ReplayHit(
                    iteration, self.clock.now, record.sim_time, record.points
                )
            )
        self.clock.advance(record.sim_time)
        stats = record.materialize(iteration, decision)
        self.events.emit(IterationEnd(stats))
        return stats

    def _compiled_iteration(
        self,
        iteration: int,
        decision: PlanDecision,
        replay_key: ReplayKey,
        served: tuple[IterationStats, float],
    ) -> IterationStats:
        """Apply one compiled-template evaluation (allocator untouched).

        The evaluated world round-tripped by construction (the template's
        steady-state conditions held), so the result is also promoted to
        the exact tier: the same world at the same size replays from now
        on without re-evaluating the template.
        """
        stats, sim_time = served
        self.clock.advance(decision.planning_time)
        if self.events.wants(CompiledHit):
            self.events.emit(CompiledHit(iteration, self.clock.now, sim_time))
        self.clock.advance(sim_time)
        self.replay.store(
            replay_key,
            ReplayRecord(
                stats=replace(stats, planning_time=0.0), sim_time=sim_time
            ),
        )
        self.events.emit(IterationEnd(stats))
        return stats

    def _simulate(
        self,
        batch: BatchInput,
        decision: PlanDecision,
        iteration: int,
        strategy: ExecutionStrategy,
        replay_key: Optional[ReplayKey],
    ) -> IterationStats:
        alloc = self.allocator
        alloc.reset_peaks()
        self._stats.begin(decision.planning_time)
        # The PCIe copy engine idles while the host plans: its busy-until
        # baseline is the *pre*-planning clock.
        self.swap.reset(self.clock.now)
        self.clock.advance(decision.planning_time)
        sim_start = self.clock.now
        record_points = (
            replay_key is not None
            and self.timeline is not None
            and self.timeline.enabled
        )
        if record_points:
            self._replay_points.arm(sim_start)
        ctx = IterationContext(
            executor=self,
            decision=decision,
            batch=batch,
            iteration=iteration,
            strategy=strategy,
            swap=self.swap,
            profiles=self.model.profiles(batch),
        )
        strategy.begin(ctx)  # plan validation errors propagate, not OOM
        fault_block: Optional[Block] = None
        oom = False
        try:
            if self.faults is not None:
                phantom = self.faults.phantom_bytes()
                if phantom > 0:
                    # fragmentation spike: memory that exists but is not ours
                    fault_block = alloc.malloc(phantom, owner="fault:frag")
            ctx.input_tensor = SimTensor(batch.spec, "input")
            ctx.alloc_tensor(ctx.input_tensor)
            strategy.run_forward(ctx)
            strategy.run_backward(ctx)
            ctx.input_tensor.drop(alloc)
            ctx.input_tensor = None
            ctx.charge("optimizer", self._optimizer_time())
        except OutOfMemoryError:
            # Unwind everything allocated this iteration and report failure.
            ctx.unwind()
            oom = True
            self.events.emit(OomHit(iteration, self.clock.now))
        if fault_block is not None:
            alloc.free(fault_block)
        points = self._replay_points.disarm() if record_points else ()
        stats = self._stats.finalize(ctx, oom)
        self.events.emit(IterationEnd(stats))
        if oom:
            if self.replay is not None:
                # reserves/margins will move in response; stale records
                # must not outlive the pressure event
                self.replay.invalidate()
            if self.compiled is not None:
                self.compiled.invalidate()
            if self.raise_on_oom:
                raise IterationOOM(stats)
            return stats
        if (
            replay_key is not None
            and self._state_signature() == replay_key.signature
        ):
            # Steady state proven: the iteration left the allocator exactly
            # as it found it, so replaying it later is indistinguishable
            # from re-simulating it.
            record = ReplayRecord(
                stats=replace(stats, planning_time=0.0),
                sim_time=self.clock.now - sim_start,
                points=points,
            )
            self.replay.store(replay_key, record)
            if self.compiled is not None:
                # one-off certification attempt for this world class
                self.compiled.maybe_certify(
                    self, batch, decision, replay_key, record
                )
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TrainingExecutor({self.model.name}, planner={self.planner.name}, "
            f"capacity={self.allocator.capacity})"
        )
