"""Deterministic fault injection for the simulated GPU substrate.

The paper's headline claim is that Mimose "trains successfully" under
budgets where static planners OOM (Fig 10/11); exercising that claim
requires *provoking* memory pressure on demand.  This module injects
three fault families the real system suffers from, each deterministic
given a seed so recovery behaviour is testable and benchmarkable:

* **Fragmentation spikes** — a phantom reservation held for a window of
  iterations, modelling external fragmentation or a co-tenant process
  suddenly shrinking the usable pool (the situation the paper's 0.5–1 GB
  fragmentation reserve, Fig 11, is sized against);
* **Transient allocation failures** — individual ``cudaMalloc``-level
  failures that do not repeat on retry (allocator races, driver hiccups);
* **Estimator misprediction noise** — multiplicative corruption of the
  shuttling collector's measurements, so the fitted estimator genuinely
  mispredicts and the planner's safety margins are what keeps the run
  alive.

A :class:`FaultPlan` is an immutable description (parseable from a CLI
spec string); a :class:`FaultInjector` is the per-run mutable runtime the
executor consults.  All randomness is derived from ``(seed, iteration)``
so a *retried* iteration sees exactly the same world — except transient
failures, which by definition fire only on the first attempt.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

import numpy as np

_SIZE_SUFFIX = {"k": 1024, "m": 1024**2, "g": 1024**3}


def parse_size(text: str) -> int:
    """Parse ``"1.5G"``/``"256M"``/``"4096"`` into bytes."""
    m = re.fullmatch(r"\s*([0-9]*\.?[0-9]+)\s*([kKmMgG]?)[bB]?\s*", text)
    if m is None:
        raise ValueError(f"cannot parse size {text!r}")
    value = float(m.group(1)) * _SIZE_SUFFIX.get(m.group(2).lower(), 1)
    return int(value)


@dataclass(frozen=True, slots=True)
class FragmentationSpike:
    """Phantom memory reservation held during ``[start, start + iterations)``."""

    start_iteration: int
    num_iterations: int = 1
    reserve_bytes: int = 0

    def __post_init__(self) -> None:
        if self.start_iteration < 1:
            raise ValueError("start_iteration is 1-based and must be >= 1")
        if self.num_iterations < 1:
            raise ValueError("num_iterations must be >= 1")
        if self.reserve_bytes < 0:
            raise ValueError("reserve_bytes must be non-negative")

    def active(self, iteration: int) -> bool:
        return (
            self.start_iteration
            <= iteration
            < self.start_iteration + self.num_iterations
        )


@dataclass(frozen=True, slots=True)
class TransientAllocFailures:
    """Allocation failures injected on the *first attempt* of each covered
    iteration; a retried iteration does not see them again (transience)."""

    start_iteration: int
    num_iterations: int = 1
    failures_per_iteration: int = 1
    min_request_bytes: int = 0

    def __post_init__(self) -> None:
        if self.start_iteration < 1:
            raise ValueError("start_iteration is 1-based and must be >= 1")
        if self.num_iterations < 1 or self.failures_per_iteration < 1:
            raise ValueError("iteration and failure counts must be >= 1")
        if self.min_request_bytes < 0:
            raise ValueError("min_request_bytes must be non-negative")

    def active(self, iteration: int) -> bool:
        return (
            self.start_iteration
            <= iteration
            < self.start_iteration + self.num_iterations
        )


@dataclass(frozen=True, slots=True)
class MispredictionNoise:
    """Multiplicative corruption of COLLECT-mode memory measurements.

    ``factor = max(0, 1 + bias + sigma * N(0, 1))`` drawn per measurement
    from a per-iteration stream.  A negative ``bias`` makes the estimator
    systematically *under*-predict — the dangerous direction.
    """

    sigma: float = 0.05
    bias: float = 0.0
    start_iteration: int = 1
    num_iterations: Optional[int] = None  # None = for the whole run

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        if self.start_iteration < 1:
            raise ValueError("start_iteration is 1-based and must be >= 1")
        if self.num_iterations is not None and self.num_iterations < 1:
            raise ValueError("num_iterations must be >= 1 when given")

    def active(self, iteration: int) -> bool:
        if iteration < self.start_iteration:
            return False
        if self.num_iterations is None:
            return True
        return iteration < self.start_iteration + self.num_iterations


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """Immutable, seedable description of the faults to inject into a run.

    Build one programmatically or from a CLI spec string (see
    :meth:`parse`), then hand it to the executor/runner, which constructs
    a fresh :class:`FaultInjector` per run.
    """

    seed: int = 0
    spikes: tuple[FragmentationSpike, ...] = ()
    failures: tuple[TransientAllocFailures, ...] = ()
    noise: Optional[MispredictionNoise] = None

    @classmethod
    def parse(cls, spec: str, *, seed: int = 0) -> "FaultPlan":
        """Parse a ``;``-separated spec string into a plan.

        Clauses (keys are optional unless noted)::

            frag:start=20,iters=5,bytes=1G     fragmentation spike
            alloc:start=30,iters=1,count=2,min=1M
                                               transient allocation failures
            noise:sigma=0.05,bias=-0.1,start=1,iters=10
                                               measurement misprediction noise

        Example: ``"frag:start=20,iters=3,bytes=512M;noise:bias=-0.05"``.
        """
        spikes: list[FragmentationSpike] = []
        failures: list[TransientAllocFailures] = []
        noise: Optional[MispredictionNoise] = None
        for clause in filter(None, (c.strip() for c in spec.split(";"))):
            kind, _, body = clause.partition(":")
            kv: dict[str, str] = {}
            for item in filter(None, (i.strip() for i in body.split(","))):
                key, sep, value = item.partition("=")
                if not sep:
                    raise ValueError(f"malformed fault option {item!r}")
                kv[key.strip()] = value.strip()
            kind = kind.strip().lower()
            if kind == "frag":
                spikes.append(
                    FragmentationSpike(
                        start_iteration=int(kv.pop("start", 1)),
                        num_iterations=int(kv.pop("iters", 1)),
                        reserve_bytes=parse_size(kv.pop("bytes", "0")),
                    )
                )
            elif kind == "alloc":
                failures.append(
                    TransientAllocFailures(
                        start_iteration=int(kv.pop("start", 1)),
                        num_iterations=int(kv.pop("iters", 1)),
                        failures_per_iteration=int(kv.pop("count", 1)),
                        min_request_bytes=parse_size(kv.pop("min", "0")),
                    )
                )
            elif kind == "noise":
                if noise is not None:
                    raise ValueError("at most one noise clause is allowed")
                iters = kv.pop("iters", None)
                noise = MispredictionNoise(
                    sigma=float(kv.pop("sigma", "0.05")),
                    bias=float(kv.pop("bias", "0.0")),
                    start_iteration=int(kv.pop("start", 1)),
                    num_iterations=int(iters) if iters is not None else None,
                )
            else:
                raise ValueError(
                    f"unknown fault kind {kind!r} (expected frag/alloc/noise)"
                )
            if kv:
                raise ValueError(
                    f"unknown options for {kind!r} clause: {sorted(kv)}"
                )
        return cls(
            seed=seed,
            spikes=tuple(spikes),
            failures=tuple(failures),
            noise=noise,
        )

    def describe(self) -> str:
        """One-line human summary (CLI/benchmark headers)."""
        parts = []
        for s in self.spikes:
            parts.append(
                f"frag {s.reserve_bytes / 1024**2:.0f}MB @ "
                f"{s.start_iteration}+{s.num_iterations}"
            )
        for f in self.failures:
            parts.append(
                f"alloc-fail x{f.failures_per_iteration} @ "
                f"{f.start_iteration}+{f.num_iterations}"
            )
        if self.noise is not None:
            parts.append(
                f"noise sigma={self.noise.sigma} bias={self.noise.bias:+}"
            )
        return "; ".join(parts) if parts else "no faults"

    @property
    def empty(self) -> bool:
        return not self.spikes and not self.failures and self.noise is None

    def build(self) -> "FaultInjector":
        return FaultInjector(self)


@dataclass(slots=True)
class FaultInjectorStats:
    """Counters the injector maintains for reporting."""

    injected_failures: int = 0
    spiked_iterations: int = 0
    perturbed_measurements: int = 0


class FaultInjector:
    """Per-run mutable runtime consulted by the executor.

    The executor calls :meth:`begin_iteration` at the top of every
    iteration *attempt* (retries included, with the same iteration
    number); :meth:`phantom_bytes`, :meth:`should_fail` and
    :meth:`perturb_measurement` then answer for the current attempt.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.stats = FaultInjectorStats()
        self._iteration = 0
        self._first_attempt_done: set[int] = set()
        self._spiked_seen: set[int] = set()
        self._fail_remaining = 0
        self._fail_min_request = 0
        self._phantom = 0
        self._noise_rng: Optional[np.random.Generator] = None

    def begin_iteration(self, iteration: int) -> None:
        plan = self.plan
        self._iteration = iteration
        self._phantom = sum(
            s.reserve_bytes for s in plan.spikes if s.active(iteration)
        )
        if self._phantom and iteration not in self._spiked_seen:
            self._spiked_seen.add(iteration)
            self.stats.spiked_iterations += 1
        # Transient failures fire only on the first attempt of an iteration.
        if iteration in self._first_attempt_done:
            self._fail_remaining = 0
        else:
            self._first_attempt_done.add(iteration)
            active = [f for f in plan.failures if f.active(iteration)]
            self._fail_remaining = sum(
                f.failures_per_iteration for f in active
            )
            self._fail_min_request = min(
                (f.min_request_bytes for f in active), default=0
            )
        # Per-(seed, iteration) stream: a retried iteration that re-collects
        # sees identical measurement noise — determinism across retries.
        if plan.noise is not None and plan.noise.active(iteration):
            self._noise_rng = np.random.default_rng((plan.seed, iteration))
        else:
            self._noise_rng = None

    # ------------------------------------------------------------- queries

    def phantom_bytes(self) -> int:
        """Fragmentation-spike reservation to hold for this iteration."""
        return self._phantom

    def quiet(self) -> bool:
        """Whether the current iteration attempt is fault-free.

        True means no fragmentation spike, no pending transient failure
        and no measurement noise are active — the iteration's world is
        exactly what a fault-free run would see, so the executor's replay
        cache may serve or record it.
        """
        return (
            self._phantom == 0
            and self._fail_remaining <= 0
            and self._noise_rng is None
        )

    def should_fail(self, request_bytes: int) -> bool:
        """Whether this allocation suffers an injected transient failure."""
        if self._fail_remaining <= 0:
            return False
        if request_bytes < self._fail_min_request:
            return False
        self._fail_remaining -= 1
        self.stats.injected_failures += 1
        return True

    def perturb_measurement(self, value: int) -> int:
        """Corrupt one COLLECT-mode memory measurement (bytes)."""
        if self._noise_rng is None:
            return value
        noise = self.plan.noise
        assert noise is not None
        factor = 1.0 + noise.bias + noise.sigma * self._noise_rng.normal()
        self.stats.perturbed_measurements += 1
        return max(0, int(value * max(factor, 0.0)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultInjector({self.plan.describe()!r}, it={self._iteration})"


__all__ = [
    "FaultInjector",
    "FaultInjectorStats",
    "FaultPlan",
    "FragmentationSpike",
    "MispredictionNoise",
    "TransientAllocFailures",
    "parse_size",
]
