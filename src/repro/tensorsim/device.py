"""Roofline timing model of a GPU.

Each simulated kernel is characterised by its arithmetic work (FLOPs) and
its memory traffic (bytes moved).  Execution time is the classic roofline:

    t = launch_overhead + max(flops / achievable_flops,
                              bytes / achievable_bandwidth)

The *achievable* rates are the peak rates scaled by an efficiency factor;
small kernels never reach peak, which the launch overhead term captures.
Absolute numbers are not the point of this reproduction (the paper ran on a
real V100); the model only has to preserve the *relative* costs that the
checkpointing trade-off depends on: forward vs backward vs recompute time,
and compute-bound vs bandwidth-bound operators.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class DevicePreset:
    """Hardware constants for a device generation."""

    name: str
    peak_flops: float  # FLOP/s (FP32)
    mem_bandwidth: float  # bytes/s
    launch_overhead: float  # seconds per kernel
    memory_capacity: int  # bytes
    compute_efficiency: float = 0.55  # fraction of peak sustained by real kernels
    bandwidth_efficiency: float = 0.75
    #: host link for swapping; PCIe 3.0 x16 sustains ~12 GB/s in practice —
    #: the bottleneck the paper cites when dismissing swapping planners
    pcie_bandwidth: float = 12e9


#: NVIDIA V100 (16 GB SXM2) — the platform used in the paper's evaluation.
V100 = DevicePreset(
    name="V100",
    peak_flops=15.7e12,
    mem_bandwidth=900e9,
    launch_overhead=5e-6,
    memory_capacity=16 * 1024**3,
)

#: A deliberately small device for fast unit tests.
TOY = DevicePreset(
    name="TOY",
    peak_flops=1e12,
    mem_bandwidth=100e9,
    launch_overhead=1e-6,
    memory_capacity=1 * 1024**3,
)


class DeviceModel:
    """Computes kernel execution times from the roofline model.

    Args:
        preset: hardware constants (defaults to :data:`V100`).
    """

    def __init__(self, preset: DevicePreset = V100) -> None:
        self.preset = preset
        self._flops_rate = preset.peak_flops * preset.compute_efficiency
        self._bw_rate = preset.mem_bandwidth * preset.bandwidth_efficiency

    @property
    def memory_capacity(self) -> int:
        return self.preset.memory_capacity

    def kernel_time(self, flops: float, bytes_moved: float) -> float:
        """Execution time of one kernel, in seconds.

        Args:
            flops: floating point operations performed.
            bytes_moved: total DRAM traffic (reads + writes).
        """
        if flops < 0 or bytes_moved < 0:
            raise ValueError("kernel costs must be non-negative")
        compute = flops / self._flops_rate
        memory = bytes_moved / self._bw_rate
        return self.preset.launch_overhead + max(compute, memory)

    def transfer_time(
        self, nbytes: float, *, pcie_bandwidth: float | None = None
    ) -> float:
        """Host<->device copy time over the PCIe link (swap planners)."""
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        bandwidth = pcie_bandwidth or self.preset.pcie_bandwidth
        return self.preset.launch_overhead + nbytes / bandwidth

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeviceModel({self.preset.name})"
