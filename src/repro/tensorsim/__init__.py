"""Simulated GPU substrate: tensors, memory allocator, device timing model.

This package replaces the CUDA runtime the paper's artifact depends on.  It
provides the three pieces every planner in :mod:`repro.planners` and
:mod:`repro.core` is measured against:

* :class:`~repro.tensorsim.tensor.SimTensor` — a shape/dtype descriptor bound
  to storage in the simulated device memory,
* :class:`~repro.tensorsim.allocator.CachingAllocator` — a best-fit caching
  block allocator over a simulated address space, exhibiting the same
  fragmentation pathologies as the CUDA caching allocator,
* :class:`~repro.tensorsim.device.DeviceModel` — a roofline timing model
  (peak FLOP/s, memory bandwidth, kernel-launch overhead) with a V100 preset.
"""

from repro.tensorsim.clock import SimClock
from repro.tensorsim.dtypes import DType, FLOAT16, FLOAT32, INT32, INT64
from repro.tensorsim.tensor import SimTensor, TensorSpec
from repro.tensorsim.allocator import (
    AllocationError,
    Block,
    CachingAllocator,
    OutOfMemoryError,
)
from repro.tensorsim.device import DeviceModel, DevicePreset, V100
from repro.tensorsim.faults import (
    FaultInjector,
    FaultPlan,
    FragmentationSpike,
    MispredictionNoise,
    TransientAllocFailures,
)

__all__ = [
    "SimClock",
    "DType",
    "FLOAT16",
    "FLOAT32",
    "INT32",
    "INT64",
    "SimTensor",
    "TensorSpec",
    "AllocationError",
    "Block",
    "CachingAllocator",
    "OutOfMemoryError",
    "DeviceModel",
    "DevicePreset",
    "V100",
    "FaultInjector",
    "FaultPlan",
    "FragmentationSpike",
    "MispredictionNoise",
    "TransientAllocFailures",
]
