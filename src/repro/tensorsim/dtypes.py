"""Numeric dtype registry for the simulated tensor substrate.

Only the metadata that affects memory and bandwidth accounting is modelled:
the element size in bytes and whether the type participates in gradient
computation (integer tensors such as token ids do not carry gradients and
therefore produce no gradient allocations in the backward pass).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class DType:
    """A simulated element type.

    Attributes:
        name: canonical name, e.g. ``"float32"``.
        itemsize: bytes per element.
        is_floating: whether tensors of this type are differentiable.
    """

    name: str
    itemsize: int
    is_floating: bool = True

    def __post_init__(self) -> None:
        if self.itemsize <= 0:
            raise ValueError(f"itemsize must be positive, got {self.itemsize}")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


FLOAT16 = DType("float16", 2)
FLOAT32 = DType("float32", 4)
FLOAT64 = DType("float64", 8)
INT32 = DType("int32", 4, is_floating=False)
INT64 = DType("int64", 8, is_floating=False)
BOOL = DType("bool", 1, is_floating=False)

_REGISTRY: dict[str, DType] = {
    d.name: d for d in (FLOAT16, FLOAT32, FLOAT64, INT32, INT64, BOOL)
}


def dtype_by_name(name: str) -> DType:
    """Look up a registered dtype by its canonical name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown dtype {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def register_dtype(dtype: DType) -> DType:
    """Register a custom dtype; returns it for chaining.

    Raises:
        ValueError: if a different dtype is already registered under the name.
    """
    existing = _REGISTRY.get(dtype.name)
    if existing is not None and existing != dtype:
        raise ValueError(f"dtype {dtype.name!r} already registered as {existing}")
    _REGISTRY[dtype.name] = dtype
    return dtype
