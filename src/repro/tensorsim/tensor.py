"""Simulated tensors.

A :class:`SimTensor` carries no numerical data — only the metadata that
matters for memory planning: its shape, dtype, and (when materialized) the
allocator block backing it.  This mirrors how checkpointing planners reason
about real tensors: by size and liveness, never by value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.tensorsim.dtypes import DType, FLOAT32

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tensorsim.allocator import Block, CachingAllocator


@dataclass(frozen=True, slots=True)
class TensorSpec:
    """Shape + dtype of a tensor, independent of whether it is materialized."""

    shape: tuple[int, ...]
    dtype: DType = FLOAT32

    def __post_init__(self) -> None:
        if any(d < 0 for d in self.shape):
            raise ValueError(f"negative dimension in shape {self.shape}")

    @property
    def numel(self) -> int:
        """Number of elements (product of dimensions; 1 for scalars)."""
        return math.prod(self.shape)

    @property
    def nbytes(self) -> int:
        """Storage size in bytes."""
        return self.numel * self.dtype.itemsize

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def with_shape(self, shape: tuple[int, ...]) -> "TensorSpec":
        """A spec with the same dtype but a different shape."""
        return TensorSpec(shape, self.dtype)

    def __str__(self) -> str:
        return f"{self.dtype.name}{list(self.shape)}"


_TENSOR_COUNTER = 0


def _next_tensor_id() -> int:
    global _TENSOR_COUNTER
    _TENSOR_COUNTER += 1
    return _TENSOR_COUNTER


@dataclass(slots=True)
class SimTensor:
    """A (possibly materialized) tensor in simulated device memory.

    Attributes:
        spec: shape/dtype metadata.
        name: human-readable label, usually ``<module>.<op>`` from the tape.
        block: allocator block backing the tensor, or ``None`` when the
            tensor has been dropped (checkpointed away) or never allocated.
        tensor_id: unique id, stable across drop/rematerialize cycles.
    """

    spec: TensorSpec
    name: str = ""
    block: Optional["Block"] = None
    tensor_id: int = field(default_factory=_next_tensor_id)

    @property
    def nbytes(self) -> int:
        return self.spec.nbytes

    @property
    def shape(self) -> tuple[int, ...]:
        return self.spec.shape

    @property
    def dtype(self) -> DType:
        return self.spec.dtype

    @property
    def is_materialized(self) -> bool:
        """Whether the tensor currently occupies device memory."""
        return self.block is not None

    def materialize(self, allocator: "CachingAllocator") -> "SimTensor":
        """Allocate backing storage (no-op if already materialized)."""
        if self.block is None:
            self.block = allocator.malloc(self.nbytes, owner=self.name)
        return self

    def drop(self, allocator: "CachingAllocator") -> "SimTensor":
        """Release backing storage (no-op if already dropped)."""
        if self.block is not None:
            allocator.free(self.block)
            self.block = None
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "materialized" if self.is_materialized else "dropped"
        return f"SimTensor({self.name or self.tensor_id}, {self.spec}, {state})"
