"""Segment-based caching allocator over a simulated device address space.

This models the CUDA caching allocator's actual structure:

* memory is reserved from the device in **segments** (``cudaMalloc``
  chunks): small requests share pooled 2 MiB segments, medium ones 20 MiB
  segments, large ones get dedicated segments rounded to 2 MiB;
* within a segment, allocations are served best-fit from free blocks,
  splitting over-large blocks; freed blocks coalesce with free neighbours
  **within the same segment only** — segments never merge, which is the
  mechanistic root of external fragmentation: churny workloads (DTR's
  evict/rematerialise cycles with ever-changing tensor sizes) strand free
  space across many partly-used segments that cannot serve a large
  request, so reserved memory grows well past bytes-in-use (§III-B /
  Fig 5's "budget 4.2 GB, actually 6.7 GB used");
* reserved segments are cached forever (no ``empty_cache`` in the
  training loop), so ``bytes_reserved`` is the footprint an ``nvidia-smi``
  would show;
* when no cached block fits and the remaining capacity cannot hold a new
  segment, allocation raises :class:`OutOfMemoryError` — the signal DTR's
  eviction loop reacts to.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator, Optional

DEFAULT_ALIGNMENT = 512  # bytes, the CUDA caching allocator quantum
MIN_SPLIT_REMAINDER = 512
SMALL_REQUEST = 1 << 20  # <1 MiB requests pool into small segments
SMALL_SEGMENT = 2 << 20  # 2 MiB
MEDIUM_REQUEST = 10 << 20  # <10 MiB requests pool into medium segments
MEDIUM_SEGMENT = 20 << 20  # 20 MiB
LARGE_ROUND = 2 << 20  # dedicated segments round up to 2 MiB


class AllocationError(RuntimeError):
    """Base class for allocator failures."""


class OutOfMemoryError(AllocationError):
    """Raised when an allocation cannot be satisfied within capacity.

    Carries enough context for a dynamic planner (DTR) to decide how much
    to evict: the requested size and the free bytes at failure time (which
    may be plentiful if the failure is purely fragmentation).
    """

    def __init__(self, requested: int, free_bytes: int, largest_free: int) -> None:
        self.requested = requested
        self.free_bytes = free_bytes
        self.largest_free = largest_free
        super().__init__(
            f"out of memory: requested {requested} B, "
            f"{free_bytes} B free (largest contiguous {largest_free} B)"
        )


@dataclass(slots=True)
class Segment:
    """One reserved chunk of device memory."""

    base: int
    size: int
    head: Optional["Block"] = None

    @property
    def end(self) -> int:
        return self.base + self.size


@dataclass(slots=True)
class Block:
    """A contiguous region within a segment."""

    addr: int
    size: int
    segment: Segment
    free: bool = True
    owner: str = ""
    prev: Optional["Block"] = field(default=None, repr=False)
    next: Optional["Block"] = field(default=None, repr=False)

    @property
    def end(self) -> int:
        return self.addr + self.size


def _align_up(n: int, quantum: int) -> int:
    return (n + quantum - 1) // quantum * quantum


class _FreeIndex:
    """Size-bucketed, address-ordered index of free blocks.

    Free blocks are bucketed by size class (``size.bit_length()``, so class
    ``c`` holds sizes in the disjoint range ``[2^(c-1), 2^c)``) and each
    bucket is kept sorted by ``(size, addr)``.  Best fit is then a bisect in
    the request's own class followed by the head of the next non-empty class
    — the same block a linear best-fit scan with address tie-break would
    choose, because the class ranges are disjoint and ascending.  This keeps
    allocation :math:`O(\\log n)` under tens of thousands of live blocks
    while staying bit-identical to the linear scan (``state_signature`` and
    the chosen-block sequence are unchanged).

    Invariant: a block's size never changes while it is indexed — callers
    remove before mutating (carve) or merge first and insert once
    (coalesce).
    """

    __slots__ = ("_by_addr", "_buckets", "_classes")

    def __init__(self) -> None:
        self._by_addr: dict[int, Block] = {}
        #: size class -> list of (size, addr, block) sorted ascending
        self._buckets: dict[int, list[tuple[int, int, Block]]] = {}
        self._classes: list[int] = []  # sorted non-empty bucket keys

    def __len__(self) -> int:
        return len(self._by_addr)

    def __contains__(self, addr: int) -> bool:
        return addr in self._by_addr

    def __iter__(self) -> Iterator[int]:
        return iter(self._by_addr)

    def values(self):
        return self._by_addr.values()

    def add(self, block: Block) -> None:
        self._by_addr[block.addr] = block
        cls = block.size.bit_length()
        bucket = self._buckets.get(cls)
        if bucket is None:
            bucket = self._buckets[cls] = []
            insort(self._classes, cls)
        # (size, addr) is unique per block, so the trailing Block is never
        # compared by insort.
        insort(bucket, (block.size, block.addr, block))

    def remove(self, block: Block) -> None:
        del self._by_addr[block.addr]
        cls = block.size.bit_length()
        bucket = self._buckets[cls]
        i = bisect_left(bucket, (block.size, block.addr))
        entry = bucket[i]
        assert entry[1] == block.addr, "free index out of sync with block"
        del bucket[i]
        if not bucket:
            del self._buckets[cls]
            self._classes.remove(cls)

    def max_size(self) -> int:
        """Largest indexed free-block size, O(1) (0 when empty).

        The class list is sorted and every bucket sorted by (size, addr),
        so the last entry of the last class is the global maximum — the
        value ``largest_free_block``/``fragmentation_bytes`` previously
        recomputed with a full linear scan per call.
        """
        if not self._classes:
            return 0
        return self._buckets[self._classes[-1]][-1][0]

    def best_fit(self, size: int) -> Optional[Block]:
        """Smallest free block >= size; ties break toward the lowest addr."""
        classes = self._classes
        k = size.bit_length()
        i = bisect_left(classes, k)
        if i < len(classes) and classes[i] == k:
            # The request's own class may hold both too-small and qualifying
            # blocks; bisect to the first (size, addr) >= (size,).
            bucket = self._buckets[k]
            j = bisect_left(bucket, (size,))
            if j < len(bucket):
                return bucket[j][2]
            i += 1
        if i < len(classes):
            # Every block in a higher class qualifies and is larger than any
            # class-k block, so its (size, addr) minimum is the global best.
            return self._buckets[classes[i]][0][2]
        return None

    def check_consistency(self) -> None:
        indexed = 0
        for cls, bucket in self._buckets.items():
            assert bucket, "empty bucket retained"
            assert cls in self._classes, "bucket missing from class list"
            assert bucket == sorted(bucket), "bucket must stay sorted"
            for size, addr, block in bucket:
                assert block.size == size, "block mutated while indexed"
                assert block.addr == addr, "block moved while indexed"
                assert size.bit_length() == cls, "block in wrong size class"
                assert self._by_addr.get(addr) is block
                indexed += 1
        assert indexed == len(self._by_addr), "bucket/addr views disagree"
        assert self._classes == sorted(self._buckets), "class list stale"
        linear_max = max((b.size for b in self._by_addr.values()), default=0)
        assert self.max_size() == linear_max, "max_size diverged from scan"


@dataclass(slots=True)
class AllocatorStats:
    """Counters maintained by :class:`CachingAllocator`."""

    bytes_in_use: int = 0
    bytes_reserved: int = 0
    peak_in_use: int = 0
    peak_reserved: int = 0
    num_allocs: int = 0
    num_frees: int = 0
    num_oom: int = 0
    num_splits: int = 0
    num_coalesces: int = 0
    num_segments: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "bytes_in_use": self.bytes_in_use,
            "bytes_reserved": self.bytes_reserved,
            "peak_in_use": self.peak_in_use,
            "peak_reserved": self.peak_reserved,
            "num_allocs": self.num_allocs,
            "num_frees": self.num_frees,
            "num_oom": self.num_oom,
            "num_splits": self.num_splits,
            "num_coalesces": self.num_coalesces,
            "num_segments": self.num_segments,
        }


class CachingAllocator:
    """Segmented best-fit caching allocator.

    Args:
        capacity: total device memory (bytes) this allocator may reserve.
        alignment: allocation quantum; requests are rounded up to it.
        coalescing: merge adjacent free blocks within a segment on free.
            True matches the CUDA caching allocator; False is a stress
            knob for fragmentation experiments.
        oom_callback: invoked with the failing request size just before an
            :class:`OutOfMemoryError` would be raised; if it returns True
            the allocation is retried once (the hook a reactive planner's
            eviction loop can use).
    """

    def __init__(
        self,
        capacity: int,
        *,
        alignment: int = DEFAULT_ALIGNMENT,
        coalescing: bool = True,
        oom_callback: Optional[Callable[[int], bool]] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if alignment <= 0 or (alignment & (alignment - 1)) != 0:
            raise ValueError("alignment must be a positive power of two")
        self.capacity = int(capacity)
        self.alignment = alignment
        self.coalescing = coalescing
        self.oom_callback = oom_callback
        self.stats = AllocatorStats()
        self._segments: list[Segment] = []
        self._free_blocks = _FreeIndex()
        self._brk = 0  # next segment base address

    # ------------------------------------------------------------------ info

    @property
    def bytes_in_use(self) -> int:
        """Bytes currently backing live tensors."""
        return self.stats.bytes_in_use

    @property
    def bytes_reserved(self) -> int:
        """Bytes reserved from the device (what nvidia-smi would report)."""
        return self.stats.bytes_reserved

    @property
    def bytes_free_cached(self) -> int:
        """Free bytes sitting inside reserved segments."""
        return self.stats.bytes_reserved - self.stats.bytes_in_use

    @property
    def bytes_available(self) -> int:
        """Bytes an ideal (non-fragmenting) allocator could still serve."""
        return self.capacity - self.stats.bytes_in_use

    def largest_free_block(self) -> int:
        """Largest single allocation currently satisfiable.

        O(1): the bucketed free index tracks its maximum, so the OOM
        error path and per-iteration fragmentation stats no longer pay a
        linear scan over every cached free block.
        """
        return max(
            self._free_blocks.max_size(),
            self.capacity - self.stats.bytes_reserved,
        )

    def fragmentation_bytes(self) -> int:
        """External fragmentation: cached free bytes outside the largest block.

        The memory that exists but cannot serve one large request — the
        quantity behind DTR's budget-vs-actual gap in Fig 5.  O(1) via
        the free index's tracked maximum.
        """
        return max(0, self.bytes_free_cached - self._free_blocks.max_size())

    def free_block_sizes(self) -> list[int]:
        """Sizes of all cached free blocks (for fragmentation histograms)."""
        return sorted(b.size for b in self._free_blocks.values())

    def num_segments(self) -> int:
        return len(self._segments)

    def state_signature(self) -> tuple:
        """Order-sensitive fingerprint of the allocator's behavioural state.

        Two allocators with equal signatures respond identically to any
        future malloc/free sequence.  The signature is *canonical*: no
        observable behaviour depends on absolute segment base addresses —
        allocation is address-ordered best fit (order survives an
        order-preserving relabelling), coalescing is segment-local, and
        nothing outside the allocator ever reads an address — so segments
        are relabelled by base order and free blocks expressed as
        (segment index, offset, size).  Two states that differ only in
        where ``_brk`` happened to place their segments therefore compare
        equal, which is what lets the state re-converge after segment
        release/re-reserve churn.  Used by the iteration replay cache to
        prove a steady-state iteration is identical to a recorded one;
        cost is O(n log n) in the free-block count, negligible next to a
        simulated iteration.
        """
        segments = sorted(self._segments, key=lambda s: s.base)
        index = {s.base: i for i, s in enumerate(segments)}
        return (
            self.stats.bytes_in_use,
            self.stats.bytes_reserved,
            tuple(s.size for s in segments),
            tuple(
                sorted(
                    (index[b.segment.base], b.addr - b.segment.base, b.size)
                    for b in self._free_blocks.values()
                )
            ),
        )

    # ----------------------------------------------------------------- alloc

    def _segment_size_for(self, size: int) -> int:
        if size <= SMALL_REQUEST:
            return SMALL_SEGMENT
        if size <= MEDIUM_REQUEST:
            return MEDIUM_SEGMENT
        return _align_up(size, LARGE_ROUND)

    def malloc(self, nbytes: int, *, owner: str = "") -> Block:
        """Allocate ``nbytes`` (rounded up to alignment).

        Raises:
            OutOfMemoryError: when the request cannot be satisfied even
                after the ``oom_callback`` (if any) was given a chance to
                release memory.
        """
        if nbytes < 0:
            raise ValueError("cannot allocate a negative number of bytes")
        size = _align_up(max(nbytes, 1), self.alignment)

        block = self._try_alloc(size, owner)
        if block is None and self.oom_callback is not None:
            if self.oom_callback(size):
                block = self._try_alloc(size, owner)
        if block is None:
            self.stats.num_oom += 1
            raise OutOfMemoryError(
                size, self.bytes_free_cached, self.largest_free_block()
            )
        return block

    def try_malloc(self, nbytes: int, *, owner: str = "") -> Optional[Block]:
        """Like :meth:`malloc` but returns None instead of raising."""
        try:
            return self.malloc(nbytes, owner=owner)
        except OutOfMemoryError:
            return None

    def _try_alloc(self, size: int, owner: str) -> Optional[Block]:
        # Address-ordered best fit: ties on size break toward the lowest
        # address, so the chosen block depends only on the *set* of free
        # blocks, never on cache insertion history.  This canonical policy
        # is what lets two iterations with equal free-block sets behave
        # identically (the replay cache's steady-state proof).  The bucketed
        # index returns exactly the block the old linear scan would.
        best = self._free_blocks.best_fit(size)
        if best is not None:
            return self._carve(best, size, owner)
        # Nothing cached fits: reserve a new segment if capacity allows.
        seg_size = self._segment_size_for(size)
        if self.stats.bytes_reserved + seg_size > self.capacity:
            # Like the CUDA caching allocator on a failed cudaMalloc:
            # release completely-free cached segments and retry.
            self._release_empty_segments()
        if self.stats.bytes_reserved + seg_size > self.capacity:
            # a tight-fit segment may still fit where the pooled size won't
            seg_size = _align_up(size, self.alignment)
            if self.stats.bytes_reserved + seg_size > self.capacity:
                return None
        segment = Segment(base=self._brk, size=seg_size)
        self._brk += seg_size
        whole = Block(addr=segment.base, size=seg_size, segment=segment, free=True)
        segment.head = whole
        self._segments.append(segment)
        self._free_blocks.add(whole)
        self.stats.bytes_reserved += seg_size
        self.stats.peak_reserved = max(
            self.stats.peak_reserved, self.stats.bytes_reserved
        )
        self.stats.num_segments += 1
        return self._carve(whole, size, owner)

    def _carve(self, block: Block, size: int, owner: str) -> Block:
        """Serve ``size`` bytes from a free ``block``, splitting if worthwhile."""
        self._free_blocks.remove(block)
        remainder = block.size - size
        if remainder >= MIN_SPLIT_REMAINDER:
            tail = Block(
                addr=block.addr + size,
                size=remainder,
                segment=block.segment,
                free=True,
            )
            block.size = size
            tail.prev = block
            tail.next = block.next
            if block.next is not None:
                block.next.prev = tail
            block.next = tail
            self._free_blocks.add(tail)
            self.stats.num_splits += 1
        block.free = False
        block.owner = owner
        self.stats.bytes_in_use += block.size
        self.stats.peak_in_use = max(
            self.stats.peak_in_use, self.stats.bytes_in_use
        )
        self.stats.num_allocs += 1
        return block

    def _release_empty_segments(self) -> None:
        """Return fully-free segments to the device (cudaFree on OOM path)."""
        kept: list[Segment] = []
        for seg in self._segments:
            head = seg.head
            if head is not None and head.free and head.next is None:
                self._free_blocks.remove(head)
                self.stats.bytes_reserved -= seg.size
                self.stats.num_segments -= 1
            else:
                kept.append(seg)
        self._segments = kept

    def release_cached(self) -> int:
        """Public ``empty_cache()``: drop all fully-free segments.

        Returns the number of bytes returned to the device.
        """
        before = self.stats.bytes_reserved
        self._release_empty_segments()
        return before - self.stats.bytes_reserved

    # ------------------------------------------------------------------ free

    def free(self, block: Block) -> None:
        """Return a block to the cache (coalescing within its segment)."""
        if block.free:
            raise AllocationError(f"double free of block at {block.addr}")
        block.free = True
        block.owner = ""
        self.stats.bytes_in_use -= block.size
        self.stats.num_frees += 1
        if self.coalescing:
            block = self._coalesce(block)
        self._free_blocks.add(block)

    def _coalesce(self, block: Block) -> Block:
        """Merge free neighbours into ``block`` and return the survivor.

        The survivor is *not* indexed on return: neighbours are removed
        from the free index before their bytes are absorbed, and the caller
        inserts the merged block exactly once — so no indexed block's size
        ever changes (the invariant the bucketed index relies on).
        """
        while block.next is not None and block.next.free:
            nxt = block.next
            self._free_blocks.remove(nxt)
            block.size += nxt.size
            block.next = nxt.next
            if nxt.next is not None:
                nxt.next.prev = block
            self.stats.num_coalesces += 1
        while block.prev is not None and block.prev.free:
            prv = block.prev
            self._free_blocks.remove(prv)
            prv.size += block.size
            prv.next = block.next
            if block.next is not None:
                block.next.prev = prv
            self.stats.num_coalesces += 1
            block = prv
        return block

    # ------------------------------------------------------------- lifecycle

    def clone(self) -> "CachingAllocator":
        """An independent allocator in exactly this behavioural state.

        Segments, block lists, the free index, stats and the ``_brk``
        cursor are all deep-copied; no mutable state is shared, so driving
        the clone cannot disturb the original (the compiled tier's shadow
        certification relies on this).  ``oom_callback`` is deliberately
        not carried over — a clone is a measurement instrument, not a
        participant in the reactive eviction loop.
        """
        new = CachingAllocator.__new__(CachingAllocator)
        new.capacity = self.capacity
        new.alignment = self.alignment
        new.coalescing = self.coalescing
        new.oom_callback = None
        new.stats = replace(self.stats)
        new._segments = []
        new._free_blocks = _FreeIndex()
        new._brk = self._brk
        for seg in self._segments:
            nseg = Segment(base=seg.base, size=seg.size)
            prev: Optional[Block] = None
            node = seg.head
            while node is not None:
                nb = Block(
                    addr=node.addr,
                    size=node.size,
                    segment=nseg,
                    free=node.free,
                    owner=node.owner,
                )
                if prev is None:
                    nseg.head = nb
                else:
                    prev.next = nb
                    nb.prev = prev
                if nb.free:
                    new._free_blocks.add(nb)
                prev = nb
                node = node.next
            new._segments.append(nseg)
        return new

    def reset_peaks(self) -> None:
        """Reset peak statistics (between iterations/experiments)."""
        self.stats.peak_in_use = self.stats.bytes_in_use
        self.stats.peak_reserved = self.stats.bytes_reserved

    def check_consistency(self) -> None:
        """Verify internal invariants; used heavily by the property tests.

        Raises:
            AssertionError: if any invariant is violated.
        """
        in_use = 0
        reserved = 0
        free_seen = 0
        for seg in self._segments:
            reserved += seg.size
            node = seg.head
            assert node is not None, "segment without blocks"
            assert node.prev is None, "segment head has a predecessor"
            prev_end = seg.base
            while node is not None:
                assert node.addr == prev_end, "blocks must tile the segment"
                assert node.size > 0, "blocks must be non-empty"
                assert node.segment is seg, "block belongs to wrong segment"
                if node.free:
                    assert node.addr in self._free_blocks
                    free_seen += 1
                else:
                    assert node.addr not in self._free_blocks
                    in_use += node.size
                prev_end = node.end
                node = node.next
            assert prev_end == seg.end, "blocks must cover the whole segment"
        assert in_use == self.stats.bytes_in_use, "in-use accounting must match"
        assert reserved == self.stats.bytes_reserved, "reserve accounting must match"
        assert free_seen == len(self._free_blocks), "free index must be exact"
        self._free_blocks.check_consistency()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CachingAllocator(in_use={self.bytes_in_use}, "
            f"reserved={self.bytes_reserved}, capacity={self.capacity}, "
            f"segments={len(self._segments)})"
        )
