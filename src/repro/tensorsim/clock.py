"""Deterministic simulated clock.

All experiment timings in this reproduction are *simulated* — advanced by the
executor according to the device roofline model — so results are exactly
reproducible across machines.  Wall-clock time is used only for costs that
are genuinely incurred by the planner itself in Python (estimator fit and
predict latency, scheduler solve latency), mirroring how the paper reports
them in Tables III–V.
"""

from __future__ import annotations


class SimClock:
    """A monotonically advancing simulated clock, in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start in the past")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` (must be non-negative).

        Returns the new time, which makes the common pattern
        ``end = clock.advance(dt)`` read naturally.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time {seconds}")
        self._now += seconds
        return self._now

    def reset(self, to: float = 0.0) -> None:
        """Reset the clock (used between independent experiment runs)."""
        if to < 0:
            raise ValueError("clock cannot be reset to a negative time")
        self._now = float(to)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.6f}s)"
