"""Articulation points of an undirected graph (Tarjan/Hopcroft).

A vertex is an articulation point when removing it disconnects its
component.  For checkpointing this is the classic segmentation
criterion (Chen et al. 2016): a segment boundary must be a vertex every
dataflow path crosses, otherwise recomputing the segment needs tensors
the boundary does not carry.  On the simulator's sequential unit chains
every internal unit qualifies; the implementation is the general
linear-time algorithm so branched graphs are handled identically.

Iterative (explicit stack) rather than recursive: model graphs can be
deeper than the default recursion limit.  Iteration order is sorted, so
the traversal — and therefore nothing observable, the result is a set —
is deterministic.
"""

from __future__ import annotations

from typing import Iterable, Mapping


def articulation_points(
    adjacency: Mapping[str, Iterable[str]],
) -> frozenset[str]:
    """Vertices whose removal disconnects their component.

    Args:
        adjacency: undirected adjacency — every edge should appear in
            both endpoints' lists (missing reverse entries are repaired
            internally).
    """
    neighbours: dict[str, list[str]] = {v: [] for v in adjacency}
    for v, adj in adjacency.items():
        for w in adj:
            neighbours.setdefault(v, [])
            neighbours.setdefault(w, [])
    for v, adj in adjacency.items():
        for w in adj:
            if w not in neighbours[v]:
                neighbours[v].append(w)
            if v not in neighbours[w]:
                neighbours[w].append(v)
    for adj_list in neighbours.values():
        adj_list.sort()

    disc: dict[str, int] = {}
    low: dict[str, int] = {}
    parent: dict[str, str | None] = {}
    points: set[str] = set()
    counter = 0

    for root in sorted(neighbours):
        if root in disc:
            continue
        parent[root] = None
        root_children = 0
        # Stack frames: (vertex, iterator index into its adjacency list).
        stack: list[tuple[str, int]] = [(root, 0)]
        disc[root] = low[root] = counter
        counter += 1
        while stack:
            v, idx = stack[-1]
            adj = neighbours[v]
            if idx < len(adj):
                stack[-1] = (v, idx + 1)
                w = adj[idx]
                if w not in disc:
                    parent[w] = v
                    if v == root:
                        root_children += 1
                    disc[w] = low[w] = counter
                    counter += 1
                    stack.append((w, 0))
                elif w != parent[v]:
                    low[v] = min(low[v], disc[w])
            else:
                stack.pop()
                p = parent[v]
                if p is not None:
                    low[p] = min(low[p], low[v])
                    if p != root and low[v] >= disc[p]:
                        points.add(p)
        if root_children > 1:
            points.add(root)
    return frozenset(points)
