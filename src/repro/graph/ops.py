"""Primitive operator library with shape inference and cost models.

Every operator implements :meth:`Op.profile`, mapping input
:class:`~repro.tensorsim.tensor.TensorSpec`s to an :class:`OpProfile` that
carries the output spec, forward/backward arithmetic and traffic costs, the
parameter count, and which tensors the op must *save* until the backward
pass.  The saved set is what activation checkpointing trades against
recomputation, so it is the load-bearing part of this module.

The categorisation follows §IV-C of the paper:

* **elementwise** ops (ReLU, add, …) — output size equals input size;
* **fixed-output-size** ops (AdaptiveAvgPool) — output size constant;
* **implicit-reduction** ops (Linear, Conv, MaxPool) — output size linearly
  related to input size through fixed hyper-parameters;
* **structures** (attention) — compose to at-most-quadratic growth in the
  iteration input size (the ``seqlen × seqlen`` score matrices).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.tensorsim.dtypes import BOOL, DType, FLOAT32, INT64
from repro.tensorsim.tensor import TensorSpec


class ShapeError(ValueError):
    """Raised when an operator receives incompatible input shapes."""


@dataclass(frozen=True, slots=True)
class OpProfile:
    """The planner-visible footprint of one operator application.

    Attributes:
        output: spec of the op's output tensor.
        flops: forward floating-point operations.
        bytes_moved: forward DRAM traffic (bytes).
        bwd_flops: backward floating-point operations.
        bwd_bytes: backward DRAM traffic (bytes).
        param_count: learnable parameters owned by this op.
        saved: tensors that must stay resident until the backward pass
            (beyond the op inputs, which are the previous ops' outputs).
            The op output is listed here when the backward formula needs it.
        saves_output: convenience flag — True when ``saved`` includes the
            output tensor itself.
    """

    output: TensorSpec
    flops: float
    bytes_moved: float
    bwd_flops: float
    bwd_bytes: float
    param_count: int = 0
    saved: tuple[TensorSpec, ...] = ()
    saves_output: bool = False

    @property
    def saved_bytes(self) -> int:
        return sum(s.nbytes for s in self.saved)


class Op:
    """Base class for all operators."""

    #: short human-readable operator family name
    kind: str = "op"

    def profile(self, *inputs: TensorSpec) -> OpProfile:
        raise NotImplementedError

    def _expect_arity(self, inputs: tuple[TensorSpec, ...], n: int) -> None:
        if len(inputs) != n:
            raise ShapeError(
                f"{type(self).__name__} expects {n} input(s), got {len(inputs)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


def _elementwise_profile(
    out: TensorSpec,
    *,
    flops_per_elem: float = 1.0,
    save_output: bool = False,
    extra_saved: tuple[TensorSpec, ...] = (),
    param_count: int = 0,
) -> OpProfile:
    n = out.numel
    itemsize = out.dtype.itemsize
    saved = (out,) + extra_saved if save_output else extra_saved
    return OpProfile(
        output=out,
        flops=flops_per_elem * n,
        bytes_moved=2.0 * n * itemsize,
        bwd_flops=2.0 * flops_per_elem * n,
        bwd_bytes=3.0 * n * itemsize,
        param_count=param_count,
        saved=saved,
        saves_output=save_output,
    )


# --------------------------------------------------------------------------
# Elementwise operators
# --------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class Relu(Op):
    """ReLU; saves its output (the backward needs the sign pattern)."""

    kind = "elementwise"

    def profile(self, *inputs: TensorSpec) -> OpProfile:
        self._expect_arity(inputs, 1)
        return _elementwise_profile(inputs[0], save_output=True)


@dataclass(frozen=True, repr=False)
class Gelu(Op):
    """GELU activation; saves its input-shaped output for backward."""

    kind = "elementwise"

    def profile(self, *inputs: TensorSpec) -> OpProfile:
        self._expect_arity(inputs, 1)
        return _elementwise_profile(inputs[0], flops_per_elem=8.0, save_output=True)


@dataclass(frozen=True, repr=False)
class Tanh(Op):
    kind = "elementwise"

    def profile(self, *inputs: TensorSpec) -> OpProfile:
        self._expect_arity(inputs, 1)
        return _elementwise_profile(inputs[0], flops_per_elem=4.0, save_output=True)


@dataclass(frozen=True, repr=False)
class Add(Op):
    """Elementwise addition of two same-shaped tensors; saves nothing."""

    kind = "elementwise"

    def profile(self, *inputs: TensorSpec) -> OpProfile:
        self._expect_arity(inputs, 2)
        a, b = inputs
        if a.shape != b.shape:
            raise ShapeError(f"Add shapes differ: {a.shape} vs {b.shape}")
        return _elementwise_profile(a)


@dataclass(frozen=True, repr=False)
class Mul(Op):
    """Elementwise product; inputs are saved by their producers already."""

    kind = "elementwise"

    def profile(self, *inputs: TensorSpec) -> OpProfile:
        self._expect_arity(inputs, 2)
        a, b = inputs
        if a.shape != b.shape:
            raise ShapeError(f"Mul shapes differ: {a.shape} vs {b.shape}")
        return _elementwise_profile(a)


@dataclass(frozen=True, repr=False)
class Scale(Op):
    """Multiplication by a scalar constant (e.g. 1/sqrt(d_k) in attention)."""

    kind = "elementwise"
    factor: float = 1.0

    def profile(self, *inputs: TensorSpec) -> OpProfile:
        self._expect_arity(inputs, 1)
        return _elementwise_profile(inputs[0])


@dataclass(frozen=True, repr=False)
class Dropout(Op):
    """Dropout; saves a byte mask alongside passing the output through."""

    kind = "elementwise"
    p: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.p < 1.0:
            raise ValueError(f"dropout probability must be in [0,1), got {self.p}")

    def profile(self, *inputs: TensorSpec) -> OpProfile:
        self._expect_arity(inputs, 1)
        x = inputs[0]
        mask = TensorSpec(x.shape, BOOL)
        return _elementwise_profile(x, extra_saved=(mask,))


# --------------------------------------------------------------------------
# Normalisation / softmax
# --------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class Softmax(Op):
    """Softmax over the last axis; saves its output for the backward."""

    kind = "structure"

    def profile(self, *inputs: TensorSpec) -> OpProfile:
        self._expect_arity(inputs, 1)
        return _elementwise_profile(inputs[0], flops_per_elem=5.0, save_output=True)


@dataclass(frozen=True, repr=False)
class LayerNorm(Op):
    """LayerNorm over the trailing ``dim`` features."""

    kind = "elementwise"
    dim: int = 0

    def profile(self, *inputs: TensorSpec) -> OpProfile:
        self._expect_arity(inputs, 1)
        x = inputs[0]
        if self.dim and x.shape and x.shape[-1] != self.dim:
            raise ShapeError(
                f"LayerNorm({self.dim}) got trailing dim {x.shape[-1]}"
            )
        return _elementwise_profile(
            x, flops_per_elem=8.0, save_output=True, param_count=2 * self.dim
        )


@dataclass(frozen=True, repr=False)
class BatchNorm2d(Op):
    """BatchNorm over (B, C, H, W); saves output plus per-channel stats."""

    kind = "elementwise"
    channels: int = 0

    def profile(self, *inputs: TensorSpec) -> OpProfile:
        self._expect_arity(inputs, 1)
        x = inputs[0]
        if x.ndim != 4:
            raise ShapeError(f"BatchNorm2d expects 4-D input, got {x.shape}")
        if self.channels and x.shape[1] != self.channels:
            raise ShapeError(
                f"BatchNorm2d({self.channels}) got {x.shape[1]} channels"
            )
        return _elementwise_profile(
            x, flops_per_elem=8.0, save_output=True, param_count=2 * x.shape[1]
        )


# --------------------------------------------------------------------------
# Implicit-reduction operators
# --------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class Linear(Op):
    """Affine map over the trailing feature axis: (..., in) -> (..., out)."""

    kind = "reduction"
    in_features: int = 0
    out_features: int = 0
    bias: bool = True

    def __post_init__(self) -> None:
        if self.in_features <= 0 or self.out_features <= 0:
            raise ValueError("Linear features must be positive")

    def profile(self, *inputs: TensorSpec) -> OpProfile:
        self._expect_arity(inputs, 1)
        x = inputs[0]
        if not x.shape or x.shape[-1] != self.in_features:
            raise ShapeError(
                f"Linear({self.in_features}->{self.out_features}) got {x.shape}"
            )
        out = x.with_shape(x.shape[:-1] + (self.out_features,))
        rows = out.numel // self.out_features
        flops = 2.0 * rows * self.in_features * self.out_features
        weight_bytes = self.in_features * self.out_features * x.dtype.itemsize
        traffic = x.nbytes + out.nbytes + weight_bytes
        params = self.in_features * self.out_features + (
            self.out_features if self.bias else 0
        )
        return OpProfile(
            output=out,
            flops=flops,
            bytes_moved=traffic,
            bwd_flops=2.0 * flops,  # dX = dY W^T and dW = X^T dY
            bwd_bytes=2.0 * traffic,
            param_count=params,
            saved=(),  # backward uses the (already saved) input
        )


@dataclass(frozen=True, repr=False)
class BatchMatMul(Op):
    """Batched matrix product: (..., m, k) x (..., k, n) -> (..., m, n).

    With ``transpose_b`` the second operand is (..., n, k) — the shape of
    the ``Q @ K^T`` score computation whose quadratic output drives the
    paper's quadratic memory law.
    """

    kind = "structure"
    transpose_b: bool = False

    def profile(self, *inputs: TensorSpec) -> OpProfile:
        self._expect_arity(inputs, 2)
        a, b = inputs
        if a.ndim < 2 or b.ndim < 2:
            raise ShapeError("BatchMatMul operands must be at least 2-D")
        if a.shape[:-2] != b.shape[:-2]:
            raise ShapeError(
                f"batch dims differ: {a.shape[:-2]} vs {b.shape[:-2]}"
            )
        m, k = a.shape[-2], a.shape[-1]
        if self.transpose_b:
            n, kb = b.shape[-2], b.shape[-1]
        else:
            kb, n = b.shape[-2], b.shape[-1]
        if k != kb:
            raise ShapeError(f"contraction dims differ: {k} vs {kb}")
        batch = math.prod(a.shape[:-2])
        out = a.with_shape(a.shape[:-2] + (m, n))
        flops = 2.0 * batch * m * n * k
        traffic = a.nbytes + b.nbytes + out.nbytes
        return OpProfile(
            output=out,
            flops=flops,
            bytes_moved=traffic,
            bwd_flops=2.0 * flops,
            bwd_bytes=2.0 * traffic,
            saved=(),  # operands saved by producers
        )


@dataclass(frozen=True, repr=False)
class Conv2d(Op):
    """2-D convolution on (B, C, H, W)."""

    kind = "reduction"
    in_channels: int = 0
    out_channels: int = 0
    kernel_size: int = 3
    stride: int = 1
    padding: int = 0
    bias: bool = False

    def __post_init__(self) -> None:
        if min(self.in_channels, self.out_channels, self.kernel_size, self.stride) <= 0:
            raise ValueError("Conv2d hyper-parameters must be positive")
        if self.padding < 0:
            raise ValueError("padding must be non-negative")

    def out_hw(self, h: int, w: int) -> tuple[int, int]:
        oh = (h + 2 * self.padding - self.kernel_size) // self.stride + 1
        ow = (w + 2 * self.padding - self.kernel_size) // self.stride + 1
        if oh <= 0 or ow <= 0:
            raise ShapeError(
                f"Conv2d output collapsed for input {h}x{w} "
                f"(k={self.kernel_size}, s={self.stride}, p={self.padding})"
            )
        return oh, ow

    def profile(self, *inputs: TensorSpec) -> OpProfile:
        self._expect_arity(inputs, 1)
        x = inputs[0]
        if x.ndim != 4:
            raise ShapeError(f"Conv2d expects 4-D input, got {x.shape}")
        b, c, h, w = x.shape
        if c != self.in_channels:
            raise ShapeError(
                f"Conv2d expects {self.in_channels} channels, got {c}"
            )
        oh, ow = self.out_hw(h, w)
        out = x.with_shape((b, self.out_channels, oh, ow))
        flops = (
            2.0 * b * self.out_channels * oh * ow
            * self.in_channels * self.kernel_size**2
        )
        weight = (
            self.in_channels * self.out_channels * self.kernel_size**2
        )
        params = weight + (self.out_channels if self.bias else 0)
        traffic = x.nbytes + out.nbytes + weight * x.dtype.itemsize
        return OpProfile(
            output=out,
            flops=flops,
            bytes_moved=traffic,
            bwd_flops=2.0 * flops,
            bwd_bytes=2.0 * traffic,
            param_count=params,
            saved=(),
        )


@dataclass(frozen=True, repr=False)
class MaxPool2d(Op):
    """Max pooling; saves the argmax index map for the backward scatter."""

    kind = "reduction"
    kernel_size: int = 2
    stride: int = 2
    padding: int = 0

    def profile(self, *inputs: TensorSpec) -> OpProfile:
        self._expect_arity(inputs, 1)
        x = inputs[0]
        if x.ndim != 4:
            raise ShapeError(f"MaxPool2d expects 4-D input, got {x.shape}")
        b, c, h, w = x.shape
        oh = (h + 2 * self.padding - self.kernel_size) // self.stride + 1
        ow = (w + 2 * self.padding - self.kernel_size) // self.stride + 1
        if oh <= 0 or ow <= 0:
            raise ShapeError(f"MaxPool2d output collapsed for {h}x{w}")
        out = x.with_shape((b, c, oh, ow))
        indices = TensorSpec(out.shape, INT64)
        n = out.numel * self.kernel_size**2
        return OpProfile(
            output=out,
            flops=float(n),
            bytes_moved=x.nbytes + out.nbytes,
            bwd_flops=float(out.numel),
            bwd_bytes=x.nbytes + out.nbytes,
            saved=(indices,),
        )


# --------------------------------------------------------------------------
# Fixed-output-size operators
# --------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class AdaptiveAvgPool2d(Op):
    """Pools (B, C, H, W) to a fixed (B, C, oh, ow) regardless of H, W."""

    kind = "fixed"
    output_size: tuple[int, int] = (1, 1)

    def profile(self, *inputs: TensorSpec) -> OpProfile:
        self._expect_arity(inputs, 1)
        x = inputs[0]
        if x.ndim != 4:
            raise ShapeError(f"AdaptiveAvgPool2d expects 4-D input, got {x.shape}")
        b, c, _, _ = x.shape
        oh, ow = self.output_size
        out = x.with_shape((b, c, oh, ow))
        return OpProfile(
            output=out,
            flops=float(x.numel),
            bytes_moved=x.nbytes + out.nbytes,
            bwd_flops=float(x.numel),
            bwd_bytes=x.nbytes + out.nbytes,
            saved=(),
        )


# --------------------------------------------------------------------------
# Lookup / shaping / loss
# --------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class Embedding(Op):
    """Token-id lookup: int (..., L) -> float (..., L, dim)."""

    kind = "fixed"
    num_embeddings: int = 0
    embedding_dim: int = 0
    out_dtype: DType = FLOAT32

    def __post_init__(self) -> None:
        if self.num_embeddings <= 0 or self.embedding_dim <= 0:
            raise ValueError("Embedding dimensions must be positive")

    def profile(self, *inputs: TensorSpec) -> OpProfile:
        self._expect_arity(inputs, 1)
        ids = inputs[0]
        if ids.dtype.is_floating:
            raise ShapeError("Embedding expects an integer id tensor")
        out = TensorSpec(ids.shape + (self.embedding_dim,), self.out_dtype)
        return OpProfile(
            output=out,
            flops=0.0,
            bytes_moved=ids.nbytes + out.nbytes,
            bwd_flops=float(out.numel),
            bwd_bytes=out.nbytes,
            param_count=self.num_embeddings * self.embedding_dim,
            saved=(),
        )


@dataclass(frozen=True, repr=False)
class Reshape(Op):
    """View with a new shape (one dim may be -1); costs nothing."""

    kind = "view"
    shape: tuple[int, ...] = ()

    def profile(self, *inputs: TensorSpec) -> OpProfile:
        self._expect_arity(inputs, 1)
        x = inputs[0]
        shape = list(self.shape)
        wildcard = [i for i, d in enumerate(shape) if d == -1]
        if len(wildcard) > 1:
            raise ShapeError("at most one -1 allowed in Reshape")
        if wildcard:
            known = math.prod(d for d in shape if d != -1)
            if known == 0 or x.numel % known != 0:
                raise ShapeError(f"cannot reshape {x.shape} to {self.shape}")
            shape[wildcard[0]] = x.numel // known
        if math.prod(shape) != x.numel:
            raise ShapeError(
                f"reshape element mismatch: {x.shape} -> {tuple(shape)}"
            )
        out = x.with_shape(tuple(shape))
        return OpProfile(out, 0.0, 0.0, 0.0, 0.0, saved=())


@dataclass(frozen=True, repr=False)
class Transpose(Op):
    """Swap two axes (a view; costs nothing in this model)."""

    kind = "view"
    dim0: int = -2
    dim1: int = -1

    def profile(self, *inputs: TensorSpec) -> OpProfile:
        self._expect_arity(inputs, 1)
        x = inputs[0]
        shape = list(x.shape)
        try:
            shape[self.dim0], shape[self.dim1] = shape[self.dim1], shape[self.dim0]
        except IndexError:
            raise ShapeError(
                f"Transpose dims ({self.dim0},{self.dim1}) out of range for {x.shape}"
            ) from None
        return OpProfile(x.with_shape(tuple(shape)), 0.0, 0.0, 0.0, 0.0, saved=())


@dataclass(frozen=True, repr=False)
class Concat(Op):
    """Concatenate along an axis; backward is slicing, so nothing saved."""

    kind = "view"
    axis: int = -1

    def profile(self, *inputs: TensorSpec) -> OpProfile:
        if not inputs:
            raise ShapeError("Concat needs at least one input")
        first = inputs[0]
        axis = self.axis % first.ndim if first.ndim else 0
        total = 0
        for x in inputs:
            if x.ndim != first.ndim:
                raise ShapeError("Concat rank mismatch")
            for i, (da, db) in enumerate(zip(x.shape, first.shape)):
                if i != axis and da != db:
                    raise ShapeError(
                        f"Concat non-axis dims differ: {x.shape} vs {first.shape}"
                    )
            total += x.shape[axis]
        shape = list(first.shape)
        shape[axis] = total
        out = first.with_shape(tuple(shape))
        nbytes = float(sum(x.nbytes for x in inputs) + out.nbytes)
        return OpProfile(out, 0.0, nbytes, 0.0, nbytes, saved=())


@dataclass(frozen=True, repr=False)
class CrossEntropyLoss(Op):
    """Softmax + NLL over (rows, classes) -> scalar; saves the probabilities."""

    kind = "structure"

    def profile(self, *inputs: TensorSpec) -> OpProfile:
        self._expect_arity(inputs, 1)
        logits = inputs[0]
        if logits.ndim < 2:
            raise ShapeError(f"CrossEntropyLoss expects >=2-D logits, got {logits.shape}")
        out = logits.with_shape(())
        probs = TensorSpec(logits.shape, logits.dtype)
        n = logits.numel
        return OpProfile(
            output=out,
            flops=6.0 * n,
            bytes_moved=2.0 * logits.nbytes,
            bwd_flops=2.0 * n,
            bwd_bytes=2.0 * logits.nbytes,
            saved=(probs,),
        )
