"""Model-graph substrate: operators, modules, and profiling.

Models in this reproduction are *symbolic*: an operator knows how to infer
its output shape and its compute/memory costs from input shapes, and a
module's ``forward`` is executed against a :class:`ProfileContext` tracer
that records every intermediate activation tensor.  This is exactly the
information a checkpointing planner consumes — tensor sizes, liveness order,
and recompute costs — without paying for numerical execution.
"""

from repro.graph.ops import (
    Op,
    OpProfile,
    Add,
    AdaptiveAvgPool2d,
    BatchMatMul,
    BatchNorm2d,
    Concat,
    Conv2d,
    CrossEntropyLoss,
    Dropout,
    Embedding,
    Gelu,
    LayerNorm,
    Linear,
    MaxPool2d,
    Mul,
    Relu,
    Reshape,
    Scale,
    Softmax,
    Tanh,
    Transpose,
)
from repro.graph.articulation import articulation_points
from repro.graph.module import (
    ActivationRecord,
    Module,
    ModuleProfile,
    ProfileContext,
    Sequential,
)

__all__ = [
    "Op",
    "OpProfile",
    "Add",
    "AdaptiveAvgPool2d",
    "BatchMatMul",
    "BatchNorm2d",
    "Concat",
    "Conv2d",
    "CrossEntropyLoss",
    "Dropout",
    "Embedding",
    "Gelu",
    "LayerNorm",
    "Linear",
    "MaxPool2d",
    "Mul",
    "Relu",
    "Reshape",
    "Scale",
    "Softmax",
    "Tanh",
    "Transpose",
    "articulation_points",
    "ActivationRecord",
    "Module",
    "ModuleProfile",
    "ProfileContext",
    "Sequential",
]
