"""Module tree and the tracing profiler.

A :class:`Module` declares its computation in ``forward`` exactly like a
``torch.nn.Module``, except the "tensors" flowing through are
:class:`~repro.tensorsim.tensor.TensorSpec`s and every op application goes
through a :class:`ProfileContext`, which records the intermediate activation
tensors and accumulates compute costs.  Profiling a module for a given input
spec yields a :class:`ModuleProfile` — the unit of information all planners
in this reproduction consume.

Profiles are cached per ``(module, input spec)``: model shapes are
deterministic, so re-profiling for a repeated input size would be wasted
work (this mirrors the paper's plan cache observation that equal input
sizes imply equal memory behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.graph.ops import Op, OpProfile
from repro.tensorsim.tensor import TensorSpec


@dataclass(frozen=True, slots=True)
class ActivationRecord:
    """One intermediate tensor produced while profiling a module.

    Attributes:
        name: hierarchical name, e.g. ``"encoder.3/attn/softmax"``.
        spec: tensor shape/dtype.
        saved: whether the tensor must survive until the backward pass
            (False means it is transient working memory within the forward).
        op_kind: the producing operator's family, for diagnostics.
    """

    name: str
    spec: TensorSpec
    saved: bool
    op_kind: str

    @property
    def nbytes(self) -> int:
        return self.spec.nbytes


@dataclass(frozen=True, slots=True)
class OpCost:
    """Per-kernel cost record, consumed by the device roofline model."""

    flops: float
    bytes_moved: float
    bwd_flops: float
    bwd_bytes: float


@dataclass(frozen=True, slots=True)
class ModuleProfile:
    """Planner-visible summary of one module executed on one input spec."""

    module_name: str
    input: TensorSpec
    output: TensorSpec
    activations: tuple[ActivationRecord, ...]
    op_costs: tuple[OpCost, ...]
    fwd_flops: float
    fwd_bytes: float
    bwd_flops: float
    bwd_bytes: float
    param_count: int

    @property
    def saved_bytes(self) -> int:
        """Bytes of activations this module pins until backward."""
        return sum(a.nbytes for a in self.activations if a.saved)

    @property
    def transient_bytes(self) -> int:
        """Bytes of forward-only working memory (freed at module exit)."""
        return sum(a.nbytes for a in self.activations if not a.saved)

    @property
    def total_activation_bytes(self) -> int:
        return sum(a.nbytes for a in self.activations)

    def saved_activations(self) -> tuple[ActivationRecord, ...]:
        return tuple(a for a in self.activations if a.saved)


class ProfileContext:
    """Tracer passed to ``Module.forward``; records ops and submodules."""

    def __init__(self) -> None:
        self._records: list[ActivationRecord] = []
        self._op_costs: list[OpCost] = []
        self._scope: list[str] = []
        self._counter = 0
        self.fwd_flops = 0.0
        self.fwd_bytes = 0.0
        self.bwd_flops = 0.0
        self.bwd_bytes = 0.0
        self.param_count = 0

    # ----------------------------------------------------------------- trace

    def op(self, op: Op, *inputs: TensorSpec, name: str = "") -> TensorSpec:
        """Apply an operator, record its footprint, return the output spec."""
        profile: OpProfile = op.profile(*inputs)
        self._absorb(op, profile, name)
        return profile.output

    def _absorb(self, op: Op, profile: OpProfile, name: str) -> None:
        self._counter += 1
        label = name or f"{type(op).__name__.lower()}_{self._counter}"
        full = "/".join([*self._scope, label])
        self.fwd_flops += profile.flops
        self.fwd_bytes += profile.bytes_moved
        self.bwd_flops += profile.bwd_flops
        self.bwd_bytes += profile.bwd_bytes
        self.param_count += profile.param_count
        if op.kind != "view":
            self._op_costs.append(
                OpCost(
                    profile.flops,
                    profile.bytes_moved,
                    profile.bwd_flops,
                    profile.bwd_bytes,
                )
            )
        if profile.output.numel > 0 and profile.output.ndim > 0 and op.kind != "view":
            self._records.append(
                ActivationRecord(full, profile.output, profile.saves_output, op.kind)
            )
        for i, extra in enumerate(profile.saved):
            if profile.saves_output and extra is profile.output:
                continue  # already recorded as the output
            self._records.append(
                ActivationRecord(f"{full}.saved{i}", extra, True, op.kind)
            )

    def module(self, sub: "Module", x: TensorSpec) -> TensorSpec:
        """Inline a submodule's forward under a nested name scope."""
        self._scope.append(sub.name)
        try:
            return sub.forward(self, x)
        finally:
            self._scope.pop()

    # ------------------------------------------------------------- wrap up

    def finish(self, module_name: str, x: TensorSpec, out: TensorSpec) -> ModuleProfile:
        return ModuleProfile(
            module_name=module_name,
            input=x,
            output=out,
            activations=tuple(self._records),
            op_costs=tuple(self._op_costs),
            fwd_flops=self.fwd_flops,
            fwd_bytes=self.fwd_bytes,
            bwd_flops=self.bwd_flops,
            bwd_bytes=self.bwd_bytes,
            param_count=self.param_count,
        )


class Module:
    """Base class for symbolic modules.

    Subclasses implement :meth:`forward` against a :class:`ProfileContext`.
    ``checkpointable`` marks the module as a unit the planners may drop and
    recompute — the paper's "block"/"stage" granularity (encoder blocks,
    residual stages).
    """

    def __init__(self, name: str, *, checkpointable: bool = False) -> None:
        if not name:
            raise ValueError("modules must be named")
        self.name = name
        self.checkpointable = checkpointable
        self._profile_cache: dict[TensorSpec, ModuleProfile] = {}

    def forward(self, ctx: ProfileContext, x: TensorSpec) -> TensorSpec:
        raise NotImplementedError

    def profile(self, x: TensorSpec) -> ModuleProfile:
        """Profile this module for input spec ``x`` (cached)."""
        cached = self._profile_cache.get(x)
        if cached is not None:
            return cached
        ctx = ProfileContext()
        ctx._scope.append(self.name)
        out = self.forward(ctx, x)
        ctx._scope.pop()
        profile = ctx.finish(self.name, x, out)
        self._profile_cache[x] = profile
        return profile

    def clear_profile_cache(self) -> None:
        self._profile_cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class Sequential(Module):
    """A module composed of children applied in order."""

    def __init__(
        self,
        name: str,
        children: Sequence[Module],
        *,
        checkpointable: bool = False,
    ) -> None:
        super().__init__(name, checkpointable=checkpointable)
        if not children:
            raise ValueError("Sequential needs at least one child")
        names = [c.name for c in children]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate child names in {name}: {names}")
        self.children = list(children)

    def forward(self, ctx: ProfileContext, x: TensorSpec) -> TensorSpec:
        for child in self.children:
            x = ctx.module(child, x)
        return x

    def __iter__(self) -> Iterable[Module]:  # pragma: no cover - convenience
        return iter(self.children)
