"""Sublinear (Chen et al. 2016): static segment checkpointing.

Plans once, offline, for the *worst-case* input the dataset can produce
(after truncation/augmentation caps), then applies the same plan to every
iteration.  This is exactly the conservatism §III-B criticises: for small
inputs the plan recomputes far more than the budget requires (Fig 4's
wasted 1.2 GB / up to 35% throughput loss).

The original algorithm keeps ~√n evenly spaced segment boundaries.  At
this reproduction's unit granularity, keeping a unit means keeping its
internal activations; the planner keeps the largest evenly-spaced set of
units whose predicted worst-case peak fits the budget.
"""

from __future__ import annotations

from typing import Optional

from repro.models.base import BatchInput
from repro.planners.analysis import predict_peak_bytes
from repro.planners.base import (
    CheckpointPlan,
    ModelView,
    PlanDecision,
    Planner,
    PlannerCapabilities,
)


def evenly_spaced_keep(names: list[str], keep: int) -> frozenset[str]:
    """The ``keep`` names to preserve, spread evenly across the chain."""
    n = len(names)
    if keep <= 0:
        return frozenset()
    if keep >= n:
        return frozenset(names)
    step = n / keep
    kept = {names[min(n - 1, int((i + 0.5) * step))] for i in range(keep)}
    return frozenset(kept)


class SublinearPlanner(Planner):
    """Static √n-style planner targeting the worst-case input.

    Args:
        budget_bytes: GPU memory budget.
        worst_case_batch: the largest batch shape the pipeline can emit
            (known offline from dataset + augmentation caps).
    """

    name = "sublinear"
    capabilities = PlannerCapabilities(
        granularity="layer",
        plan_timing="offline",
        search_space="segments",
        search_algorithm="greedy",
    )

    #: headroom below the budget for allocator segment-pooling slack
    FRAG_RESERVE = 256 * 1024**2

    def __init__(self, budget_bytes: int, worst_case_batch: BatchInput) -> None:
        super().__init__(budget_bytes)
        self.worst_case_batch = worst_case_batch
        self._plan: Optional[CheckpointPlan] = None

    def setup(self, view: ModelView) -> None:
        super().setup(view)
        self._plan = self._solve(view)

    def _solve(self, view: ModelView) -> CheckpointPlan:
        batch = self.worst_case_batch
        profiles = view.profiles(batch)
        names = [n for n in view.unit_names if n in view.checkpointable]
        static = view.static_memory.total
        # Keep as many evenly spaced units as possible while the
        # worst-case peak stays within budget.
        best: Optional[frozenset[str]] = None
        for keep in range(len(names), -1, -1):
            kept = evenly_spaced_keep(names, keep)
            drop = frozenset(names) - kept
            plan = CheckpointPlan(drop, f"sublinear-keep{keep}")
            peak = predict_peak_bytes(
                profiles,
                plan,
                static_bytes=static,
                input_nbytes=batch.nbytes,
                checkpointable=view.checkpointable,
            )
            if peak <= self.budget_bytes - self.FRAG_RESERVE:
                best = drop
                break
        if best is None:
            # even full checkpointing misses the budget; fall back to all
            best = frozenset(names)
        return CheckpointPlan(best, "sublinear")

    def plan(self, batch: BatchInput) -> PlanDecision:
        if self._plan is None:
            raise RuntimeError("setup() must run before plan()")
        # Applying a precomputed static plan costs essentially nothing.
        return PlanDecision(self._plan, planning_time=1e-6)
