"""Capuchin-style hybrid planner: swap or recompute, per unit.

Capuchin (Peng et al., ASPLOS 2020) observes the first training iteration
("measured execution") and then decides per tensor whether to *swap* it to
host memory (when the PCIe transfer hides under backward compute) or to
*recompute* it (when transferring would stall).  It plans at runtime but —
like every non-Mimose baseline in Table I — assumes the input shape it
measured, so it neither adapts to input dynamics nor guarantees the
budget for larger inputs.

This reproduction uses the same cost rule at unit granularity:

    swap_cost(u)      = max(0, transfer_time(bytes_u) - overlap_window)
    recompute_cost(u) = forward_time(u)

choosing the cheaper action per unit, largest activations first, until
the measured iteration's excess over the budget is covered.  The paper's
§II argument — PCIe at ~12 GB/s makes swapping cost "more than 2x the
computation time for most layers" — falls directly out of these numbers:
transformer-block activations transfer slower than they recompute, so
the hybrid degenerates mostly to checkpointing plus stalls wherever it
chose to swap.

The rule itself lives in the shared scheduling layer
(:class:`~repro.core.scheduler.PcieCostModel` priced through
:class:`~repro.core.scheduler.HybridGreedyScheduler`); this planner is a
thin caller that feeds it profile-measured forward/backward times and
activation sizes for the measured input shape.
"""

from __future__ import annotations

from typing import Optional

from repro.solvers.base import PcieCostModel, SchedulerInput
from repro.solvers.greedy import HybridGreedyScheduler
from repro.models.base import BatchInput
from repro.planners.analysis import predict_peak_bytes, unit_saved_bytes
from repro.planners.base import (
    CheckpointPlan,
    PlanDecision,
    Planner,
    PlannerCapabilities,
)
from repro.tensorsim.device import DeviceModel


class CapuchinPlanner(Planner):
    """Hybrid swap/recompute planner (measured-iteration static plan).

    Args:
        budget_bytes: GPU memory budget.
        device: device model used to price PCIe transfers and kernels.
        pcie_bandwidth: host link bandwidth (bytes/s).
    """

    name = "capuchin"
    capabilities = PlannerCapabilities(
        swapping=True,
        checkpointing=True,
        granularity="tensor",
        plan_timing="runtime",
        search_space="holistic",
        search_algorithm="greedy",
    )
    requires_physical_capacity = True  # assumes the measured input shape

    def __init__(
        self,
        budget_bytes: int,
        *,
        device: Optional[DeviceModel] = None,
        pcie_bandwidth: float = 12e9,
    ) -> None:
        super().__init__(budget_bytes)
        self.device = device or DeviceModel()
        self.pcie_bandwidth = pcie_bandwidth
        self.cost_model = PcieCostModel(
            self.device, pcie_bandwidth=pcie_bandwidth
        )
        self.scheduler = HybridGreedyScheduler(self.cost_model)
        self._plan: Optional[CheckpointPlan] = None
        self.planned_for_size: int = 0

    # ------------------------------------------------------------------ plan

    def plan(self, batch: BatchInput) -> PlanDecision:
        if self._plan is None or batch.input_size > self.planned_for_size:
            # "measured execution": the largest shape seen so far drives
            # the plan.  Capuchin re-plans when memory pressure grows but
            # never relaxes for smaller inputs — the input-dynamics
            # blindness Table I records.
            self._plan = self._solve(batch)
            self.planned_for_size = batch.input_size
        return PlanDecision(self._plan, planning_time=1e-5)

    def _unit_times(self, profile) -> tuple[float, float]:
        fwd = sum(
            self.device.kernel_time(c.flops, c.bytes_moved)
            for c in profile.op_costs
        )
        bwd = sum(
            self.device.kernel_time(c.bwd_flops, c.bwd_bytes)
            for c in profile.op_costs
        )
        return fwd, bwd

    def _solve(self, batch: BatchInput) -> CheckpointPlan:
        view = self._require_view()
        profiles = view.profiles(batch)
        by_name = {p.module_name: p for p in profiles}
        names = [n for n in view.unit_names if n in view.checkpointable]
        static = view.static_memory.total

        baseline_peak = predict_peak_bytes(
            profiles,
            CheckpointPlan.none(),
            static_bytes=static,
            input_nbytes=batch.nbytes,
            checkpointable=view.checkpointable,
        )
        excess = baseline_peak - self.budget_bytes
        if excess <= 0:
            return CheckpointPlan(frozenset(), "capuchin")

        # Measured execution feeds the shared cost model: profile forward
        # times price RECOMPUTE, profile backward times set the overlap
        # window, and activation sizes price the PCIe transfers.  The
        # selection loop itself (largest-first until the excess is
        # covered, aggregate transfer envelope) is HybridGreedyScheduler.
        assignment = self.scheduler.assign(
            SchedulerInput(
                est_bytes={n: unit_saved_bytes(by_name[n]) for n in names},
                order={n: i for i, n in enumerate(names)},
                excess_bytes=excess,
                est_time={n: self._unit_times(by_name[n])[0] for n in names},
                bwd_time={n: self._unit_times(by_name[n])[1] for n in names},
            )
        )
        return CheckpointPlan.from_assignment(assignment, "capuchin")

    @property
    def chosen_swaps(self) -> frozenset[str]:
        return self._plan.swap_units if self._plan else frozenset()

    @property
    def chosen_drops(self) -> frozenset[str]:
        return self._plan.checkpoint_units if self._plan else frozenset()
