"""Checkmate (Jain et al. 2020): optimal static rematerialisation.

The original formulates tensor rematerialisation as a MILP over a static
graph and solves it offline (up to an hour per budget; §VI-A allocates
8–12 h for the related MONeT solves).  At this reproduction's unit
granularity the same optimisation — minimise total recompute time subject
to the peak-memory budget — is an exact 0/1 knapsack, which we solve by
dynamic programming and then verify/tighten against the exact analytic
peak model.

Being built on static graphs, Checkmate cannot re-plan per input shape
(the paper cites its issue #126 declining dynamic-shape support).  It
plans for one *assumed* input batch; iterations with larger inputs
overshoot the budget, which is why Fig 10 annotates its actual peak
memory on the OD tasks.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.models.base import BatchInput
from repro.planners.analysis import predict_peak_bytes, unit_saved_bytes
from repro.planners.base import (
    CheckpointPlan,
    ModelView,
    PlanDecision,
    Planner,
    PlannerCapabilities,
)

_SCALE = 1 << 20  # knapsack weight quantum: 1 MiB


def solve_keep_knapsack(
    values: Sequence[float],
    weights: Sequence[int],
    capacity: int,
) -> list[int]:
    """Pick item indices maximising total value with total weight <= capacity.

    Values are the forward (recompute) times avoided by keeping a unit;
    weights are its saved activation bytes.  Weights are quantised to 1 MiB
    so the DP table stays small; quantisation rounds weights *up*, keeping
    the solution feasible.  Zero-byte units quantise to weight 0 — keeping
    them consumes no capacity, so they are always worth keeping; the old
    ``max(1, ...)`` floor charged them a phantom MiB each and could evict
    a free keep under a tight budget (the sub-quantum mirror of
    ``KnapsackScheduler``'s round-*down* rule on the covering side).
    """
    n = len(values)
    if n == 0 or capacity <= 0:
        return []
    w = [math.ceil(weight / _SCALE) for weight in weights]
    cap = capacity // _SCALE
    if cap <= 0:
        return []
    # rows[i][c] = best value using the first i items at weight budget c
    rows: list[list[float]] = [[0.0] * (cap + 1)]
    for i in range(n):
        wi, vi = w[i], values[i]
        prev = rows[-1]
        cur = prev[:]
        if wi <= cap:
            for c in range(wi, cap + 1):
                cand = prev[c - wi] + vi
                if cand > cur[c]:
                    cur[c] = cand
        rows.append(cur)
    chosen: list[int] = []
    c = cap
    for i in range(n, 0, -1):
        if rows[i][c] != rows[i - 1][c]:
            chosen.append(i - 1)
            c -= w[i - 1]
    chosen.reverse()
    return chosen


class CheckmatePlanner(Planner):
    """Optimal static planner for an assumed input shape.

    Args:
        budget_bytes: GPU memory budget.
        assumed_batch: the input shape the static graph was traced with.
            The paper's evaluation uses a representative (large-ish) shape;
            pass the calibration p95 for that behaviour.
        solve_time_s: modelled offline solve time (reported, not charged).
    """

    name = "checkmate"
    capabilities = PlannerCapabilities(
        granularity="layer",
        plan_timing="offline",
        search_space="reduced",
        search_algorithm="MILP+approx.",
    )
    requires_physical_capacity = True  # overshoots on larger-than-assumed inputs
    #: headroom below the budget for allocator segment-pooling slack
    FRAG_RESERVE = 256 * 1024**2

    def __init__(
        self,
        budget_bytes: int,
        assumed_batch: BatchInput,
        *,
        solve_time_s: float = 3600.0,
        enforce_budget: bool = False,
    ) -> None:
        super().__init__(budget_bytes)
        self.assumed_batch = assumed_batch
        self.solve_time_s = solve_time_s
        # When the assumed shape is the true worst case (NLP, where the
        # truncation cap bounds every input) the plan genuinely respects
        # the budget, so the executor may enforce it as a hard cap.  With
        # a calibration shape (OD) larger inputs overshoot, and only
        # physical capacity makes that observable (Fig 10 annotations).
        self.requires_physical_capacity = not enforce_budget
        self._plan: Optional[CheckpointPlan] = None

    # ------------------------------------------------------------------ solve

    def setup(self, view: ModelView) -> None:
        super().setup(view)
        self._plan = self._solve(view)

    def _solve(self, view: ModelView) -> CheckpointPlan:
        batch = self.assumed_batch
        profiles = view.profiles(batch)
        static = view.static_memory.total
        names = [n for n in view.unit_names if n in view.checkpointable]
        by_name = {p.module_name: p for p in profiles}
        saved = {n: unit_saved_bytes(by_name[n]) for n in names}
        fwd_cost = {n: by_name[n].fwd_flops for n in names}

        all_plan = CheckpointPlan.of(names, "all")
        floor_peak = predict_peak_bytes(
            profiles,
            all_plan,
            static_bytes=static,
            input_nbytes=batch.nbytes,
            checkpointable=view.checkpointable,
        )
        usable = self.budget_bytes - self.FRAG_RESERVE
        capacity = usable - floor_peak
        # Tighten until the exact peak model accepts the plan (quantisation
        # and liveness-window effects can make the linear model optimistic).
        for _ in range(16):
            if capacity <= 0:
                return all_plan
            kept_idx = solve_keep_knapsack(
                [fwd_cost[n] for n in names],
                [saved[n] for n in names],
                capacity,
            )
            kept = {names[i] for i in kept_idx}
            plan = CheckpointPlan(frozenset(names) - frozenset(kept), "checkmate")
            peak = predict_peak_bytes(
                profiles,
                plan,
                static_bytes=static,
                input_nbytes=batch.nbytes,
                checkpointable=view.checkpointable,
            )
            if peak <= usable:
                return plan
            capacity -= peak - usable
        return all_plan

    def plan(self, batch: BatchInput) -> PlanDecision:
        if self._plan is None:
            raise RuntimeError("setup() must run before plan()")
        return PlanDecision(self._plan, planning_time=1e-6)
