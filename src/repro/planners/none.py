"""The paper's *baseline*: plain training without any memory planning."""

from __future__ import annotations

from repro.models.base import BatchInput
from repro.planners.base import (
    CheckpointPlan,
    PlanDecision,
    Planner,
    PlannerCapabilities,
)


class NoCheckpointPlanner(Planner):
    """Never checkpoints; runs with the full physical memory.

    Fig 10 normalises every planner's time to this baseline (its "*" upper
    bound marker is this planner's peak memory).
    """

    name = "baseline"
    capabilities = PlannerCapabilities(
        checkpointing=False,
        dynamic_input=True,
        plan_timing="none",
        search_space="none",
        search_algorithm="none",
    )
    #: baseline runs unconstrained, so the executor uses physical capacity
    requires_physical_capacity = True

    def plan(self, batch: BatchInput) -> PlanDecision:
        return PlanDecision(CheckpointPlan.none())
