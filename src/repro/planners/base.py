"""Planner protocol shared by Mimose and all baselines.

The executor drives a planner through three hooks:

* :meth:`Planner.setup` — once per run, with a :class:`ModelView`.  Static
  planners may pre-analyse the model here (their papers allow it); Mimose,
  by design, only reads unit names and learns the rest online.
* :meth:`Planner.plan` — once per iteration, before the forward pass, with
  the incoming batch.  Returns a :class:`PlanDecision`.
* :meth:`Planner.observe` — once per iteration, after execution, with the
  measured :class:`~repro.engine.stats.IterationStats`.

Reactive planners (DTR) additionally implement :meth:`Planner.on_oom`,
invoked from inside the allocator when an allocation fails.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Optional, Sequence

from repro.models.base import BatchInput, SegmentedModel, StaticMemory

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.stats import IterationStats
    from repro.graph.module import ModuleProfile


class MemoryAction(enum.Enum):
    """What happens to one unit's saved activations after its forward.

    The per-unit vocabulary every planner speaks and every execution
    strategy interprets (docs/architecture.md, "The action layer"):

    * ``KEEP`` — activations stay resident until their backward (the
      default; also everything a plan does not mention).
    * ``RECOMPUTE`` — dropped after forward, rematerialised by re-running
      the unit's forward just before its backward (checkpointing).
    * ``SWAP`` — offloaded to host memory over PCIe after forward and
      prefetched back before the backward (the hybrid planners of
      Table I); memory is released when the copy engine finishes.
    * ``SEGMENT`` — member of a Chen-et-al. segment: interior boundaries
      drop too and the backward replays the whole segment front-to-back.
      Membership is derived from :attr:`ActionAssignment.segments`, never
      assigned directly, because the *grouping* (which units recompute
      together) is part of the action.
    """

    KEEP = "keep"
    RECOMPUTE = "recompute"
    SWAP = "swap"
    SEGMENT = "segment"


@dataclass(frozen=True, slots=True)
class ActionAssignment:
    """Immutable, canonical mapping of unit name → :class:`MemoryAction`.

    The single source of truth a :class:`CheckpointPlan` is a view over.
    ``actions`` holds only the non-KEEP, non-SEGMENT entries as a tuple of
    ``(unit, action)`` pairs sorted by unit name — the *canonical form*,
    so two assignments describing the same per-unit decisions are equal
    and hash equal no matter how they were built.  ``segments`` keeps its
    given group order (the grouping and intra-segment order are semantic:
    the backward replays each group front-to-back).

    The constructor canonicalises: KEEP entries are dropped, duplicate
    pairs collapse, and conflicting assignments raise ``ValueError`` with
    the same messages the legacy three-set plan validation used.  Lookup
    is O(1) via a private index built once at construction.
    """

    actions: tuple[tuple[str, MemoryAction], ...] = ()
    segments: tuple[tuple[str, ...], ...] = ()
    _index: dict[str, MemoryAction] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        by_unit: dict[str, MemoryAction] = {}
        both: set[str] = set()
        for name, action in self.actions:
            if action is MemoryAction.KEEP:
                continue
            if action is MemoryAction.SEGMENT:
                raise ValueError(
                    "SEGMENT membership is derived from `segments`; "
                    f"unit {name!r} cannot be assigned it directly"
                )
            prev = by_unit.get(name)
            if prev is not None and prev is not action:
                both.add(name)
            by_unit[name] = action
        if both:
            raise ValueError(
                f"units cannot be both dropped and swapped: {sorted(both)}"
            )
        segments = tuple(tuple(seg) for seg in self.segments)
        for segment in segments:
            if not segment:
                raise ValueError("segments must be non-empty")
            for name in segment:
                if name in by_unit:
                    raise ValueError(
                        f"unit {name!r} has conflicting plan assignments"
                    )
                by_unit[name] = MemoryAction.SEGMENT
        object.__setattr__(
            self,
            "actions",
            tuple(
                sorted(
                    (n, a)
                    for n, a in by_unit.items()
                    if a is not MemoryAction.SEGMENT
                )
            ),
        )
        object.__setattr__(self, "segments", segments)
        self._index.update(by_unit)

    # ------------------------------------------------------------- factories

    @classmethod
    def empty(cls) -> "ActionAssignment":
        return cls()

    @classmethod
    def from_sets(
        cls,
        *,
        recompute: Iterable[str] = (),
        swap: Iterable[str] = (),
        segments: tuple[tuple[str, ...], ...] = (),
    ) -> "ActionAssignment":
        """Build from the legacy three-structure vocabulary."""
        pairs = [(n, MemoryAction.RECOMPUTE) for n in recompute]
        pairs += [(n, MemoryAction.SWAP) for n in swap]
        return cls(tuple(pairs), segments)

    # --------------------------------------------------------------- lookups

    def action_for(self, unit_name: str) -> MemoryAction:
        """The action assigned to a unit (KEEP when unmentioned)."""
        return self._index.get(unit_name, MemoryAction.KEEP)

    def units_with(self, action: MemoryAction) -> frozenset[str]:
        if action is MemoryAction.SEGMENT:
            return frozenset(n for seg in self.segments for n in seg)
        return frozenset(n for n, a in self.actions if a is action)

    @property
    def units(self) -> frozenset[str]:
        """Every unit with a non-KEEP action."""
        return frozenset(self._index)

    @property
    def checkpoint_units(self) -> frozenset[str]:
        return self.units_with(MemoryAction.RECOMPUTE)

    @property
    def swap_units(self) -> frozenset[str]:
        return self.units_with(MemoryAction.SWAP)

    @property
    def segment_units(self) -> frozenset[str]:
        return self.units_with(MemoryAction.SEGMENT)

    @property
    def is_empty(self) -> bool:
        return not self._index


@dataclass(frozen=True, slots=True, init=False)
class CheckpointPlan:
    """Per-unit memory actions for one iteration.

    A thin frozen view over an :class:`ActionAssignment`: the legacy
    ``checkpoint_units`` (dropped after forward, recomputed during
    backward), ``swap_units`` (offloaded to host memory over PCIe, the
    hybrid planners of Table I) and ``segments`` (Chen et al. groups of
    consecutive units checkpointed together — interior boundaries drop
    too, and the backward recomputes the whole segment front-to-back)
    are all derived from the assignment, which is the canonical identity
    the plan cache and the replay key hash on.  The legacy positional
    constructor is preserved so hand-built plans keep working.

    A unit carries at most one action (the assignment validates this).

    ``predicted_peak_bytes`` is the peak memory the issuing planner
    predicted for this plan (None when the planner made no prediction).
    It travels *with* the plan — through the plan cache and into the
    iteration stats — so post-hoc residual tracking always compares an
    observation against the prediction that actually produced the plan,
    including on cache-served iterations.
    """

    assignment: ActionAssignment
    label: str
    predicted_peak_bytes: Optional[int]

    def __init__(
        self,
        checkpoint_units: frozenset[str] = frozenset(),
        label: str = "",
        swap_units: frozenset[str] = frozenset(),
        segments: tuple[tuple[str, ...], ...] = (),
        predicted_peak_bytes: Optional[int] = None,
        *,
        assignment: Optional[ActionAssignment] = None,
    ) -> None:
        if assignment is None:
            assignment = ActionAssignment.from_sets(
                recompute=checkpoint_units,
                swap=swap_units,
                segments=segments,
            )
        elif checkpoint_units or swap_units or segments:
            raise ValueError(
                "pass either an assignment or the legacy unit sets, not both"
            )
        object.__setattr__(self, "assignment", assignment)
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "predicted_peak_bytes", predicted_peak_bytes)

    # ------------------------------------------------------- action dispatch

    def action_for(self, unit_name: str) -> MemoryAction:
        return self.assignment.action_for(unit_name)

    # --------------------------------------------------- derived legacy view

    @property
    def checkpoint_units(self) -> frozenset[str]:
        return self.assignment.checkpoint_units

    @property
    def swap_units(self) -> frozenset[str]:
        return self.assignment.swap_units

    @property
    def segments(self) -> tuple[tuple[str, ...], ...]:
        return self.assignment.segments

    @property
    def segment_units(self) -> frozenset[str]:
        return self.assignment.segment_units

    @classmethod
    def none(cls) -> "CheckpointPlan":
        return cls(frozenset(), "none")

    @classmethod
    def of(cls, names: Sequence[str], label: str = "") -> "CheckpointPlan":
        return cls(frozenset(names), label)

    @classmethod
    def from_assignment(
        cls,
        assignment: ActionAssignment,
        label: str = "",
        predicted_peak_bytes: Optional[int] = None,
    ) -> "CheckpointPlan":
        return cls(
            label=label,
            predicted_peak_bytes=predicted_peak_bytes,
            assignment=assignment,
        )

    def __contains__(self, unit_name: str) -> bool:
        return unit_name in self.checkpoint_units

    def __len__(self) -> int:
        return len(self.checkpoint_units)


class ExecutionMode(enum.Enum):
    """How the executor should run the iteration.

    The mode selects an :class:`~repro.engine.strategies.ExecutionStrategy`
    via the strategy registry (``strategy_for(decision)``) — the executor
    itself never branches on it.  New modes are added by registering a
    strategy class (``@register_strategy``), not by editing the executor.
    """

    NORMAL = "normal"
    #: Mimose sheltered execution: shuttling double-forward on every
    #: checkpointable unit, per-unit measurements returned in the stats.
    COLLECT = "collect"
    #: DTR-style: start with everything resident, evict via on_oom.
    REACTIVE = "reactive"


@dataclass(frozen=True, slots=True)
class PlanDecision:
    """A planner's answer for one iteration.

    ``planning_time`` is the time the planner itself spent (or would spend
    on the real system) producing this decision; the executor charges it to
    the iteration, which is how planner overhead shows up in Fig 5 and
    Table III.

    ``recovery_mode`` is non-empty only for decisions produced by
    :meth:`Planner.recover` and names the escalation rung taken
    (e.g. ``"replan"``, ``"widen-reserve"``, ``"full-checkpoint"``).

    The decision is the whole interface between planner and executor:
    ``mode`` picks the execution strategy, ``plan`` parameterises it, and
    ``recovery_mode`` additionally disqualifies the iteration from the
    replay cache (recovery rungs mutate planner state).
    """

    plan: CheckpointPlan
    mode: ExecutionMode = ExecutionMode.NORMAL
    planning_time: float = 0.0
    recovery_mode: str = ""


class ModelView:
    """What a planner may know about the model.

    ``unit_names``/``checkpointable`` describe the structure (visible to
    everyone — it is in the user's training script).  ``profiles`` is the
    offline analysis oracle: static planners call it with their assumed
    worst-case batch; Mimose never calls it.
    """

    def __init__(self, model: SegmentedModel) -> None:
        self._model = model
        self.unit_names: tuple[str, ...] = tuple(model.unit_names())
        self.checkpointable: frozenset[str] = frozenset(
            u.name for u in model.checkpointable_units()
        )
        self.static_memory: StaticMemory = model.static_memory()

    def profiles(self, batch: BatchInput) -> list["ModuleProfile"]:
        """Offline model analysis (static planners only)."""
        return self._model.profiles(batch)

    def unit_index(self, name: str) -> int:
        return self.unit_names.index(name)


@dataclass(frozen=True, slots=True)
class PlannerCapabilities:
    """Table I feature matrix row for a planner."""

    swapping: bool = False
    checkpointing: bool = True
    dynamic_input: bool = False
    dynamic_graph: bool = False
    #: survives a *shifting* input-size distribution (drift monitors +
    #: online replanning) — beyond per-iteration dynamic_input handling
    nonstationary_input: bool = False
    fragmentation_avoidance: str = "none"
    granularity: str = "layer"
    plan_timing: str = "offline"
    search_space: str = "holistic"
    search_algorithm: str = "greedy"


class Planner:
    """Base class; subclasses override the hooks they need."""

    name: str = "planner"
    capabilities: PlannerCapabilities = PlannerCapabilities()
    #: Per-tracked-tensor bookkeeping time charged on every unit execution
    #: (non-zero only for DTR, which maintains per-tensor cost metadata).
    upkeep_time_per_tensor: float = 0.0
    #: Whether the executor should be given physical device capacity rather
    #: than the budget as a hard cap.  True for planners that only enforce
    #: the budget logically (baseline, DTR) or that can overshoot it on
    #: inputs larger than their static assumption (Checkmate, MONeT).
    requires_physical_capacity: bool = False
    #: Allocator coalescing; False models CUDA-caching-allocator
    #: fragmentation under eviction churn (DTR).
    allocator_coalescing: bool = True
    #: One-off offline solve time in seconds (reported, never charged to
    #: iterations) — hours for the MILP planners, ~0 otherwise.
    solve_time_s: float = 0.0
    #: Whether :meth:`recover` can produce retry decisions after an OOM
    #: iteration.  When False the executor treats an OOM as final, exactly
    #: as before the recovery subsystem existed.
    supports_recovery: bool = False

    def __init__(self, budget_bytes: int) -> None:
        if budget_bytes <= 0:
            raise ValueError("memory budget must be positive")
        self.budget_bytes = int(budget_bytes)
        self.view: Optional[ModelView] = None

    # ------------------------------------------------------------- lifecycle

    def setup(self, view: ModelView) -> None:
        """Called once before training starts."""
        self.view = view

    def plan(self, batch: BatchInput) -> PlanDecision:
        raise NotImplementedError

    def observe(self, stats: "IterationStats") -> None:
        """Called after each iteration with the measured stats."""

    # -------------------------------------------------------------- recovery

    def recover(
        self, batch: BatchInput, failed: "IterationStats", attempt: int
    ) -> Optional[PlanDecision]:
        """Propose a retry decision after an OOM iteration.

        Called by the executor with the failed attempt's stats and a
        0-based attempt counter; returning ``None`` gives up (the OOM
        becomes final).  Only consulted when :attr:`supports_recovery`
        is True.
        """
        return None

    # -------------------------------------------------------------- reactive

    def on_oom(
        self,
        requested_bytes: int,
        evictable: Mapping[str, "EvictableGroup"],
        now: float,
    ) -> tuple[Optional[str], float]:
        """Pick a victim unit to evict (reactive planners only).

        Returns ``(unit_name, search_time_seconds)``; ``(None, t)`` means
        give up (the iteration will fail with OOM).
        """
        raise NotImplementedError(f"{self.name} is not a reactive planner")

    def _require_view(self) -> ModelView:
        if self.view is None:
            raise RuntimeError(f"{self.name}.setup() was never called")
        return self.view


@dataclass(slots=True)
class EvictableGroup:
    """A materialised unit's activations, as seen by a reactive planner."""

    unit_name: str
    nbytes: int
    compute_time: float  # cost to rematerialise (the unit's forward time)
    last_access: float  # simulated timestamp of last use
    num_tensors: int = 1

    def h_value(self, now: float) -> float:
        """DTR's eviction heuristic: cost / (size * staleness) — small is good."""
        staleness = max(now - self.last_access, 1e-9)
        return self.compute_time / (max(self.nbytes, 1) * staleness)
