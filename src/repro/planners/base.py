"""Planner protocol shared by Mimose and all baselines.

The executor drives a planner through three hooks:

* :meth:`Planner.setup` — once per run, with a :class:`ModelView`.  Static
  planners may pre-analyse the model here (their papers allow it); Mimose,
  by design, only reads unit names and learns the rest online.
* :meth:`Planner.plan` — once per iteration, before the forward pass, with
  the incoming batch.  Returns a :class:`PlanDecision`.
* :meth:`Planner.observe` — once per iteration, after execution, with the
  measured :class:`~repro.engine.stats.IterationStats`.

Reactive planners (DTR) additionally implement :meth:`Planner.on_oom`,
invoked from inside the allocator when an allocation fails.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

from repro.models.base import BatchInput, SegmentedModel, StaticMemory

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.stats import IterationStats
    from repro.graph.module import ModuleProfile


@dataclass(frozen=True, slots=True)
class CheckpointPlan:
    """Per-unit memory actions for one iteration.

    ``checkpoint_units`` are dropped after forward and recomputed during
    backward; ``swap_units`` are offloaded to host memory over PCIe after
    forward and prefetched back before their backward (the hybrid
    planners of Table I); ``segments`` are *groups* of consecutive units
    checkpointed together in the original Chen et al. sense — interior
    boundaries between a segment's units are dropped too (only the
    segment's input and output survive the forward), and the backward
    recomputes the whole segment front-to-back before unwinding it.
    Segment checkpointing reaches a lower memory floor than per-unit
    checkpointing at the same recompute cost, at the price of a larger
    working set during the segment's backward window.

    A unit may appear in at most one of the three structures.

    ``predicted_peak_bytes`` is the peak memory the issuing planner
    predicted for this plan (None when the planner made no prediction).
    It travels *with* the plan — through the plan cache and into the
    iteration stats — so post-hoc residual tracking always compares an
    observation against the prediction that actually produced the plan,
    including on cache-served iterations.
    """

    checkpoint_units: frozenset[str] = frozenset()
    label: str = ""
    swap_units: frozenset[str] = frozenset()
    segments: tuple[tuple[str, ...], ...] = ()
    predicted_peak_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        overlap = self.checkpoint_units & self.swap_units
        if overlap:
            raise ValueError(
                f"units cannot be both dropped and swapped: {sorted(overlap)}"
            )
        seen: set[str] = set()
        for segment in self.segments:
            if not segment:
                raise ValueError("segments must be non-empty")
            for name in segment:
                if name in seen or name in self.checkpoint_units or name in self.swap_units:
                    raise ValueError(
                        f"unit {name!r} has conflicting plan assignments"
                    )
                seen.add(name)

    @property
    def segment_units(self) -> frozenset[str]:
        return frozenset(n for seg in self.segments for n in seg)

    @classmethod
    def none(cls) -> "CheckpointPlan":
        return cls(frozenset(), "none")

    @classmethod
    def of(cls, names: Sequence[str], label: str = "") -> "CheckpointPlan":
        return cls(frozenset(names), label)

    def __contains__(self, unit_name: str) -> bool:
        return unit_name in self.checkpoint_units

    def __len__(self) -> int:
        return len(self.checkpoint_units)


class ExecutionMode(enum.Enum):
    """How the executor should run the iteration.

    The mode selects an :class:`~repro.engine.strategies.ExecutionStrategy`
    via the strategy registry (``strategy_for(decision)``) — the executor
    itself never branches on it.  New modes are added by registering a
    strategy class (``@register_strategy``), not by editing the executor.
    """

    NORMAL = "normal"
    #: Mimose sheltered execution: shuttling double-forward on every
    #: checkpointable unit, per-unit measurements returned in the stats.
    COLLECT = "collect"
    #: DTR-style: start with everything resident, evict via on_oom.
    REACTIVE = "reactive"


@dataclass(frozen=True, slots=True)
class PlanDecision:
    """A planner's answer for one iteration.

    ``planning_time`` is the time the planner itself spent (or would spend
    on the real system) producing this decision; the executor charges it to
    the iteration, which is how planner overhead shows up in Fig 5 and
    Table III.

    ``recovery_mode`` is non-empty only for decisions produced by
    :meth:`Planner.recover` and names the escalation rung taken
    (e.g. ``"replan"``, ``"widen-reserve"``, ``"full-checkpoint"``).

    The decision is the whole interface between planner and executor:
    ``mode`` picks the execution strategy, ``plan`` parameterises it, and
    ``recovery_mode`` additionally disqualifies the iteration from the
    replay cache (recovery rungs mutate planner state).
    """

    plan: CheckpointPlan
    mode: ExecutionMode = ExecutionMode.NORMAL
    planning_time: float = 0.0
    recovery_mode: str = ""


class ModelView:
    """What a planner may know about the model.

    ``unit_names``/``checkpointable`` describe the structure (visible to
    everyone — it is in the user's training script).  ``profiles`` is the
    offline analysis oracle: static planners call it with their assumed
    worst-case batch; Mimose never calls it.
    """

    def __init__(self, model: SegmentedModel) -> None:
        self._model = model
        self.unit_names: tuple[str, ...] = tuple(model.unit_names())
        self.checkpointable: frozenset[str] = frozenset(
            u.name for u in model.checkpointable_units()
        )
        self.static_memory: StaticMemory = model.static_memory()

    def profiles(self, batch: BatchInput) -> list["ModuleProfile"]:
        """Offline model analysis (static planners only)."""
        return self._model.profiles(batch)

    def unit_index(self, name: str) -> int:
        return self.unit_names.index(name)


@dataclass(frozen=True, slots=True)
class PlannerCapabilities:
    """Table I feature matrix row for a planner."""

    swapping: bool = False
    checkpointing: bool = True
    dynamic_input: bool = False
    dynamic_graph: bool = False
    fragmentation_avoidance: str = "none"
    granularity: str = "layer"
    plan_timing: str = "offline"
    search_space: str = "holistic"
    search_algorithm: str = "greedy"


class Planner:
    """Base class; subclasses override the hooks they need."""

    name: str = "planner"
    capabilities: PlannerCapabilities = PlannerCapabilities()
    #: Per-tracked-tensor bookkeeping time charged on every unit execution
    #: (non-zero only for DTR, which maintains per-tensor cost metadata).
    upkeep_time_per_tensor: float = 0.0
    #: Whether the executor should be given physical device capacity rather
    #: than the budget as a hard cap.  True for planners that only enforce
    #: the budget logically (baseline, DTR) or that can overshoot it on
    #: inputs larger than their static assumption (Checkmate, MONeT).
    requires_physical_capacity: bool = False
    #: Allocator coalescing; False models CUDA-caching-allocator
    #: fragmentation under eviction churn (DTR).
    allocator_coalescing: bool = True
    #: One-off offline solve time in seconds (reported, never charged to
    #: iterations) — hours for the MILP planners, ~0 otherwise.
    solve_time_s: float = 0.0
    #: Whether :meth:`recover` can produce retry decisions after an OOM
    #: iteration.  When False the executor treats an OOM as final, exactly
    #: as before the recovery subsystem existed.
    supports_recovery: bool = False

    def __init__(self, budget_bytes: int) -> None:
        if budget_bytes <= 0:
            raise ValueError("memory budget must be positive")
        self.budget_bytes = int(budget_bytes)
        self.view: Optional[ModelView] = None

    # ------------------------------------------------------------- lifecycle

    def setup(self, view: ModelView) -> None:
        """Called once before training starts."""
        self.view = view

    def plan(self, batch: BatchInput) -> PlanDecision:
        raise NotImplementedError

    def observe(self, stats: "IterationStats") -> None:
        """Called after each iteration with the measured stats."""

    # -------------------------------------------------------------- recovery

    def recover(
        self, batch: BatchInput, failed: "IterationStats", attempt: int
    ) -> Optional[PlanDecision]:
        """Propose a retry decision after an OOM iteration.

        Called by the executor with the failed attempt's stats and a
        0-based attempt counter; returning ``None`` gives up (the OOM
        becomes final).  Only consulted when :attr:`supports_recovery`
        is True.
        """
        return None

    # -------------------------------------------------------------- reactive

    def on_oom(
        self,
        requested_bytes: int,
        evictable: Mapping[str, "EvictableGroup"],
        now: float,
    ) -> tuple[Optional[str], float]:
        """Pick a victim unit to evict (reactive planners only).

        Returns ``(unit_name, search_time_seconds)``; ``(None, t)`` means
        give up (the iteration will fail with OOM).
        """
        raise NotImplementedError(f"{self.name} is not a reactive planner")

    def _require_view(self) -> ModelView:
        if self.view is None:
            raise RuntimeError(f"{self.name}.setup() was never called")
        return self.view


@dataclass(slots=True)
class EvictableGroup:
    """A materialised unit's activations, as seen by a reactive planner."""

    unit_name: str
    nbytes: int
    compute_time: float  # cost to rematerialise (the unit's forward time)
    last_access: float  # simulated timestamp of last use
    num_tensors: int = 1

    def h_value(self, now: float) -> float:
        """DTR's eviction heuristic: cost / (size * staleness) — small is good."""
        staleness = max(now - self.last_access, 1e-9)
        return self.compute_time / (max(self.nbytes, 1) * staleness)
