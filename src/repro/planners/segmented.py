"""Segment-level checkpointing: the original Chen et al. √n scheme.

Per-unit checkpointing (everything else in this reproduction) always
keeps every inter-unit boundary, so its memory floor is
``static + Σ boundaries + max unit working set``.  Chen et al.'s actual
algorithm checkpoints *segments*: only one boundary per segment survives
the forward, and the backward replays a whole segment before unwinding
it.  With k balanced segments over n units the floor becomes roughly

    static + k boundaries + (n/k) segment working set

minimised around k ≈ √n — strictly below the per-unit floor whenever
boundaries are a significant share of activations (CNNs especially).

:class:`SegmentedSublinearPlanner` extends the static Sublinear baseline
with this capability: it first tries per-unit plans (cheaper backward
working set) and falls back to segment plans when the budget sits below
the per-unit floor, extending trainability into budgets no per-unit
planner can satisfy.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.models.base import BatchInput
from repro.planners.analysis import predict_peak_bytes
from repro.planners.base import (
    CheckpointPlan,
    ModelView,
    PlanDecision,
    Planner,
    PlannerCapabilities,
)
from repro.planners.sublinear import SublinearPlanner, evenly_spaced_keep


def checkpointable_runs(view: ModelView) -> list[list[str]]:
    """Maximal consecutive runs of checkpointable units, in model order."""
    runs: list[list[str]] = []
    current: list[str] = []
    for name in view.unit_names:
        if name in view.checkpointable:
            current.append(name)
        elif current:
            runs.append(current)
            current = []
    if current:
        runs.append(current)
    return runs


def balanced_segments(
    runs: Sequence[Sequence[str]], k: int
) -> tuple[tuple[str, ...], ...]:
    """Partition the units of ``runs`` into ~k contiguous segments.

    Segment boundaries never cross a non-checkpointable unit; each run
    receives a share of segments proportional to its length (at least
    one), split as evenly as possible.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    total = sum(len(r) for r in runs)
    if total == 0:
        return ()
    segments: list[tuple[str, ...]] = []
    remaining_k = min(k, total)
    remaining_units = total
    for run in runs:
        share = max(1, round(remaining_k * len(run) / max(remaining_units, 1)))
        share = min(share, len(run), remaining_k) or 1
        base, extra = divmod(len(run), share)
        start = 0
        for i in range(share):
            size = base + (1 if i < extra else 0)
            segments.append(tuple(run[start:start + size]))
            start += size
        remaining_k = max(1, remaining_k - share)
        remaining_units -= len(run)
    return tuple(s for s in segments if s)


def segment_plan(view: ModelView, k: int, label: str = "segmented") -> CheckpointPlan:
    """A plan with every checkpointable unit in one of ~k segments."""
    return CheckpointPlan(
        frozenset(), label, frozenset(), balanced_segments(checkpointable_runs(view), k)
    )


def minimum_memory_plan(
    view: ModelView, batch: BatchInput
) -> tuple[CheckpointPlan, int]:
    """The segmentation with the lowest predicted peak for this input.

    Returns ``(plan, predicted_peak_bytes)`` after scanning every segment
    count from 1 to the number of checkpointable units.
    """
    profiles = view.profiles(batch)
    n = len(view.checkpointable)
    best_plan: Optional[CheckpointPlan] = None
    best_peak = 0
    for k in range(1, max(n, 1) + 1):
        plan = segment_plan(view, k, f"segmented-k{k}")
        peak = predict_peak_bytes(
            profiles,
            plan,
            static_bytes=view.static_memory.total,
            input_nbytes=batch.nbytes,
            checkpointable=view.checkpointable,
        )
        if best_plan is None or peak < best_peak:
            best_plan, best_peak = plan, peak
    assert best_plan is not None
    return best_plan, best_peak


class SegmentedSublinearPlanner(Planner):
    """Static planner with the segment-level fallback.

    Args:
        budget_bytes: GPU memory budget.
        worst_case_batch: the largest batch the pipeline can emit.
    """

    name = "sublinear-seg"
    capabilities = PlannerCapabilities(
        granularity="segment",
        plan_timing="offline",
        search_space="segments",
        search_algorithm="greedy",
    )
    FRAG_RESERVE = SublinearPlanner.FRAG_RESERVE

    def __init__(self, budget_bytes: int, worst_case_batch: BatchInput) -> None:
        super().__init__(budget_bytes)
        self.worst_case_batch = worst_case_batch
        self._plan: Optional[CheckpointPlan] = None

    def setup(self, view: ModelView) -> None:
        super().setup(view)
        self._plan = self._solve(view)

    def _peak(self, view: ModelView, plan: CheckpointPlan) -> int:
        return predict_peak_bytes(
            view.profiles(self.worst_case_batch),
            plan,
            static_bytes=view.static_memory.total,
            input_nbytes=self.worst_case_batch.nbytes,
            checkpointable=view.checkpointable,
        )

    def _solve(self, view: ModelView) -> CheckpointPlan:
        usable = self.budget_bytes - self.FRAG_RESERVE
        names = [n for n in view.unit_names if n in view.checkpointable]
        # 1) per-unit plans, keeping as much as possible (cheapest backward)
        for keep in range(len(names), -1, -1):
            kept = evenly_spaced_keep(names, keep)
            plan = CheckpointPlan(frozenset(names) - kept, "sublinear-seg")
            if self._peak(view, plan) <= usable:
                return plan
        # 2) segment fallback: the coarsest segmentation that fits (fewer
        # retained boundaries; finer would fit too but k is scanned from
        # sqrt-ish outward for the smallest backward working set)
        n = len(names)
        candidates = sorted(range(1, n + 1), key=lambda k: abs(k - int(n**0.5)))
        fitting = [
            k for k in candidates
            if self._peak(view, segment_plan(view, k)) <= usable
        ]
        if fitting:
            return segment_plan(view, fitting[0], "sublinear-seg")
        # 3) nothing fits: the minimum-memory segmentation (may still OOM)
        plan, _ = minimum_memory_plan(view, self.worst_case_batch)
        return plan

    def plan(self, batch: BatchInput) -> PlanDecision:
        if self._plan is None:
            raise RuntimeError("setup() must run before plan()")
        return PlanDecision(self._plan, planning_time=1e-6)
