"""Analytic peak-memory prediction for candidate checkpoint plans.

Mirrors the executor's liveness behaviour exactly (minus allocator
alignment rounding):

* boundaries live from their producing unit's forward until their
  consuming unit's backward completes;
* a unit's *saved* internals live from its forward (or recompute) until
  its backward;
* *transient* internals live only from their allocation until the next
  record of the same unit is allocated (pipeline liveness — the executor
  frees each transient once its consumer has run), with the trailing
  transient surviving until the unit's forward cleanup.

Static planners use this to validate candidate plans offline; the tests
cross-check it against executor-measured peaks to sub-KB precision.
"""

from __future__ import annotations

from typing import Sequence

from repro.graph.module import ActivationRecord, ModuleProfile
from repro.planners.base import CheckpointPlan


def _trimmed_records(profile: ModuleProfile) -> tuple[tuple[ActivationRecord, ...], bool]:
    """Records minus the final one when it is promoted to the boundary."""
    acts = profile.activations
    if acts and acts[-1].spec == profile.output:
        return acts[:-1], True
    return acts, False


def unit_saved_bytes(profile: ModuleProfile) -> int:
    """Bytes a unit pins until backward when *not* checkpointed."""
    recs, _ = _trimmed_records(profile)
    return sum(a.nbytes for a in recs if a.saved)


def unit_transient_bytes(profile: ModuleProfile) -> int:
    """Total forward-only working bytes of a unit (not all co-resident)."""
    recs, _ = _trimmed_records(profile)
    return sum(a.nbytes for a in recs if not a.saved)


def boundary_bytes(profile: ModuleProfile) -> int:
    return profile.output.nbytes


def _simulate_unit_alloc(
    seq: Sequence[tuple[int, bool]],
) -> tuple[int, int, int]:
    """Replay the executor's per-unit allocation pipeline.

    Args:
        seq: (nbytes, saved) per record, in allocation order.

    Returns:
        ``(peak_extra, saved_total, trailing_transient)`` — the maximum
        extra bytes live at any point, the saved bytes resident at the
        end, and the trailing transient still live at unit exit.
    """
    peak = 0
    saved_acc = 0
    prev_transient = 0
    for nbytes, saved in seq:
        # the new tensor is allocated while the previous transient lives
        peak = max(peak, saved_acc + prev_transient + nbytes)
        if saved:
            saved_acc += nbytes
            prev_transient = 0
        else:
            prev_transient = nbytes
    return peak, saved_acc, prev_transient


def _unit_forward_footprint(profile: ModuleProfile) -> tuple[int, int]:
    """(peak extra bytes during forward, saved bytes resident afterwards).

    The boundary output is included in the peak (it is live at unit exit)
    but excluded from the resident-saved figure (it has its own lifetime).
    """
    recs, promoted = _trimmed_records(profile)
    seq = [(r.nbytes, r.saved) for r in recs]
    bound = boundary_bytes(profile)
    if promoted:
        seq.append((bound, True))
        peak, saved_acc, trailing = _simulate_unit_alloc(seq)
        return max(peak, saved_acc + trailing), saved_acc - bound
    peak, saved_acc, trailing = _simulate_unit_alloc(seq)
    # separate boundary allocated while the trailing transient still lives
    peak = max(peak, saved_acc + trailing + bound)
    return peak, saved_acc


def _unit_recompute_footprint(profile: ModuleProfile) -> tuple[int, int]:
    """Same as forward, but the boundary already exists (backward replay)."""
    recs, _ = _trimmed_records(profile)
    seq = [(r.nbytes, r.saved) for r in recs]
    peak, saved_acc, trailing = _simulate_unit_alloc(seq)
    return max(peak, saved_acc + trailing), saved_acc


def predict_peak_bytes(
    profiles: Sequence[ModuleProfile],
    plan: CheckpointPlan,
    *,
    static_bytes: int,
    input_nbytes: int,
    checkpointable: frozenset[str] | None = None,
) -> int:
    """Peak bytes of one iteration under ``plan`` (allocator rounding aside).

    Args:
        profiles: per-unit profiles for the input size being planned.
        plan: units whose internals are dropped after forward.
        static_bytes: parameters + gradients + optimizer + workspace.
        input_nbytes: the collated batch tensor size.
        checkpointable: units eligible for checkpointing; plan entries for
            other units are ignored (mirrors the executor).
    """
    n = len(profiles)
    index_of = {p.module_name: i for i, p in enumerate(profiles)}
    seg_of: dict[int, int] = {}
    seg_members: dict[int, list[int]] = {}
    for sid, segment in enumerate(plan.segments):
        for name in segment:
            i = index_of[name]
            seg_of[i] = sid
            seg_members.setdefault(sid, []).append(i)
    seg_last = {members[-1]: sid for sid, members in seg_members.items()}

    ckpt = [False] * n
    for i, p in enumerate(profiles):
        eligible = checkpointable is None or p.module_name in checkpointable
        ckpt[i] = eligible and p.module_name in plan and i not in seg_of

    saved = [unit_saved_bytes(p) for p in profiles]
    bound = [boundary_bytes(p) for p in profiles]
    fwd_peak = [0] * n
    re_peak = [0] * n
    for i, p in enumerate(profiles):
        fwd_peak[i], _ = _unit_forward_footprint(p)
        re_peak[i], _ = _unit_recompute_footprint(p)

    live = static_bytes + input_nbytes
    peak = live
    # ---- forward ----
    for i in range(n):
        peak = max(peak, live + fwd_peak[i])
        live += bound[i]
        if not ckpt[i] and i not in seg_of:
            live += saved[i]
        # an interior segment boundary drops once its consumer has run
        if i in seg_of and seg_of.get(i - 1) == seg_of[i]:
            live -= bound[i - 1]
    # ---- backward ----
    for i in reversed(range(n)):
        if i in seg_last:
            # group recompute replays the segment front-to-back, keeping
            # every member's saved set and interior boundaries resident
            for u in seg_members[seg_last[i]]:
                interior_bound = bound[u] if u != i else 0
                peak = max(
                    peak,
                    live + re_peak[u],
                    live + saved[u] + interior_bound,
                )
                live += saved[u] + interior_bound
        if ckpt[i]:
            peak = max(peak, live + re_peak[i])
            live += saved[i]  # transients freed right after the replay
        peak = max(peak, live)  # during the unit's backward
        live -= saved[i] + bound[i]
    return peak


def no_checkpoint_peak(
    profiles: Sequence[ModuleProfile], *, static_bytes: int, input_nbytes: int
) -> int:
    """Peak with nothing checkpointed (the baseline / memory upper bound)."""
    return predict_peak_bytes(
        profiles,
        CheckpointPlan.none(),
        static_bytes=static_bytes,
        input_nbytes=input_nbytes,
    )


def full_checkpoint_peak(
    profiles: Sequence[ModuleProfile],
    *,
    static_bytes: int,
    input_nbytes: int,
    checkpointable: frozenset[str],
) -> int:
    """Peak with every eligible unit checkpointed (the memory lower bound)."""
    plan = CheckpointPlan.of(sorted(checkpointable), "all")
    return predict_peak_bytes(
        profiles,
        plan,
        static_bytes=static_bytes,
        input_nbytes=input_nbytes,
        checkpointable=checkpointable,
    )
