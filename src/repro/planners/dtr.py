"""DTR — Dynamic Tensor Rematerialization (Kirisame et al. 2021).

DTR keeps everything resident and reacts to out-of-memory events by
evicting the tensor minimising the ``h`` heuristic

    h(t) = cost(t) / (size(t) * staleness(t))

i.e. prefer victims that are cheap to recompute, large, and long unused.
Because it is purely reactive, it pays two overheads the paper quantifies
in Fig 5:

* *cost upkeep* — metadata maintenance for every tracked tensor on every
  operation (26 % of iteration time on average, up to 40.1 % under tight
  budgets), modelled as ``upkeep_time_per_tensor`` charged per activation
  record on each unit execution;
* *planning* — scanning the evictable pool on every OOM event (up to
  11.9 %), modelled as ``search_time_per_item * pool size`` per event.

DTR also churns the allocator (evict/rematerialise cycles with varying
sizes), which under a non-coalescing caching allocator produces the
fragmentation that makes its *actual* memory exceed the logical budget
(6.7 GB used for a 4.2 GB budget in Fig 5); the runner therefore executes
DTR with ``allocator_coalescing = False`` and physical capacity.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.models.base import BatchInput
from repro.planners.base import (
    CheckpointPlan,
    EvictableGroup,
    ExecutionMode,
    PlanDecision,
    Planner,
    PlannerCapabilities,
)


class DTRPlanner(Planner):
    """Reactive eviction planner with the DTR h-heuristic.

    Args:
        budget_bytes: the *logical* budget DTR tries to respect (actual
            usage exceeds it through fragmentation).
        upkeep_time_per_tensor: seconds of metadata maintenance per tracked
            tensor per executed unit.  The default reproduces the paper's
            ~26 % average upkeep share on transformer iteration times.
        search_time_per_item: seconds per evictable-pool entry scanned on
            each OOM event.
    """

    name = "dtr"
    capabilities = PlannerCapabilities(
        granularity="tensor",
        dynamic_input=True,
        dynamic_graph=True,
        plan_timing="runtime",
        search_space="currently traced tensors",
        search_algorithm="greedy",
    )
    requires_physical_capacity = True
    # Within-segment coalescing stays on (the CUDA allocator has it); the
    # fragmentation DTR suffers comes from eviction churn stranding free
    # space across segments, which the segmented allocator reproduces.
    allocator_coalescing = True

    def __init__(
        self,
        budget_bytes: int,
        *,
        upkeep_time_per_tensor: float = 2.5e-4,
        search_time_per_item: float = 2.0e-5,
    ) -> None:
        super().__init__(budget_bytes)
        self.upkeep_time_per_tensor = upkeep_time_per_tensor
        self.search_time_per_item = search_time_per_item
        self.oom_events = 0

    def plan(self, batch: BatchInput) -> PlanDecision:
        # DTR never plans ahead; it reacts during execution.
        return PlanDecision(
            CheckpointPlan(frozenset(), "dtr-reactive"),
            mode=ExecutionMode.REACTIVE,
        )

    def on_oom(
        self,
        requested_bytes: int,
        evictable: Mapping[str, EvictableGroup],
        now: float,
    ) -> tuple[Optional[str], float]:
        # DTR scans its per-tensor metadata on every eviction pass.
        tracked = sum(g.num_tensors for g in evictable.values())
        search_time = self.search_time_per_item * max(tracked, 1)
        if not evictable:
            return None, search_time
        self.oom_events += 1
        victim = min(evictable.values(), key=lambda g: g.h_value(now))
        return victim.unit_name, search_time
