"""Checkpointing planners: the Mimose baselines and the planner protocol.

All planners implement :class:`~repro.planners.base.Planner` and are driven
by :class:`~repro.engine.executor.TrainingExecutor`:

* :class:`~repro.planners.none.NoCheckpointPlanner` — the paper's *baseline*
  (plain PyTorch, no memory planning);
* :class:`~repro.planners.sublinear.SublinearPlanner` — Chen et al. 2016
  static √n segmenting, planned for the worst-case input;
* :class:`~repro.planners.checkmate.CheckmatePlanner` — optimal static
  rematerialisation (exact DP over unit subsets, standing in for the MILP);
* :class:`~repro.planners.monet.MonetPlanner` — MONeT-style per-budget
  offline joint solve with bounded solve time;
* :class:`~repro.planners.dtr.DTRPlanner` — Dynamic Tensor
  Rematerialisation: reactive eviction on OOM with the h-heuristic.

Mimose itself lives in :mod:`repro.core`.
"""

from repro.planners.base import (
    ActionAssignment,
    CheckpointPlan,
    ExecutionMode,
    MemoryAction,
    ModelView,
    PlanDecision,
    Planner,
    PlannerCapabilities,
)
from repro.planners.none import NoCheckpointPlanner
from repro.planners.sublinear import SublinearPlanner
from repro.planners.checkmate import CheckmatePlanner
from repro.planners.monet import MonetPlanner
from repro.planners.dtr import DTRPlanner
from repro.planners.capuchin import CapuchinPlanner
from repro.planners.segmented import SegmentedSublinearPlanner

__all__ = [
    "ActionAssignment",
    "CheckpointPlan",
    "ExecutionMode",
    "MemoryAction",
    "ModelView",
    "PlanDecision",
    "Planner",
    "PlannerCapabilities",
    "NoCheckpointPlanner",
    "SublinearPlanner",
    "CheckmatePlanner",
    "MonetPlanner",
    "DTRPlanner",
    "CapuchinPlanner",
    "SegmentedSublinearPlanner",
]
