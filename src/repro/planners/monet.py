"""MONeT (Shah et al. 2021): joint operator/checkpointing offline solve.

MONeT solves a MILP jointly choosing operator implementations and a
checkpointing schedule, taking hours per (model, budget) pair — §VI-A
allocates 8/12 h for the ResNet-50/101 backbones and cites the authors'
statement that 8 h reaches within 5 % of optimal.

Differences from :class:`~repro.planners.checkmate.CheckmatePlanner` in
this reproduction:

* MONeT's static graph is traced at the *nominal* (median) input shape —
  its conversion pipeline is even less tolerant of dynamic shapes than
  Checkmate's, so it overshoots the budget more often on large inputs;
* its joint operator selection is modelled as a small headroom bonus on
  the memory constraint (output-activated / in-place implementations
  shave working memory), bounded by its 5 %-of-optimal guarantee.
"""

from __future__ import annotations


from repro.models.base import BatchInput
from repro.planners.base import (
    CheckpointPlan,
    ModelView,
    PlanDecision,
    PlannerCapabilities,
)
from repro.planners.checkmate import CheckmatePlanner


class MonetPlanner(CheckmatePlanner):
    """MONeT-style offline planner (nominal-shape static solve)."""

    name = "monet"
    capabilities = PlannerCapabilities(
        granularity="tensor",
        plan_timing="offline",
        search_space="holistic",
        search_algorithm="MILP",
    )
    requires_physical_capacity = True

    #: fraction of working memory the joint op selection saves
    OPERATOR_HEADROOM = 0.05

    def __init__(
        self,
        budget_bytes: int,
        assumed_batch: BatchInput,
        *,
        solve_time_s: float = 8 * 3600.0,
        enforce_budget: bool = False,
    ) -> None:
        # The operator-implementation freedom effectively loosens the
        # memory constraint slightly relative to a pure-checkpointing
        # solve.  Under hard budget enforcement the executor cannot model
        # those alternative implementations, so the loosening is only
        # applied when the budget is enforced logically.
        if enforce_budget:
            self._effective_budget = budget_bytes
        else:
            self._effective_budget = int(budget_bytes * (1 + self.OPERATOR_HEADROOM))
        super().__init__(
            budget_bytes,
            assumed_batch,
            solve_time_s=solve_time_s,
            enforce_budget=enforce_budget,
        )

    def _solve(self, view: ModelView) -> CheckpointPlan:
        # Solve against the slightly loosened budget, then relabel.
        original = self.budget_bytes
        try:
            self.budget_bytes = self._effective_budget
            plan = super()._solve(view)
        finally:
            self.budget_bytes = original
        return CheckpointPlan(plan.checkpoint_units, "monet")

    def plan(self, batch: BatchInput) -> PlanDecision:
        decision = super().plan(batch)
        return PlanDecision(decision.plan, planning_time=1e-6)
