"""Row generators for the paper's tables (I, III, IV, V)."""

from __future__ import annotations

import dataclasses
import time

from repro.core.collector import ShuttlingCollector
from repro.core.estimator import LightningMemoryEstimator
from repro.core.estimators import make_regressor
from repro.core.planner import MimosePlanner
from repro.engine.executor import TrainingExecutor
from repro.experiments.runner import run_task
from repro.experiments.tasks import GB, TaskContext, load_task
from repro.planners.base import ModelView
from repro.planners.capuchin import CapuchinPlanner
from repro.planners.checkmate import CheckmatePlanner
from repro.planners.dtr import DTRPlanner
from repro.planners.monet import MonetPlanner
from repro.planners.none import NoCheckpointPlanner
from repro.planners.sublinear import SublinearPlanner


# ---------------------------------------------------------------------------
# Table I — qualitative planner comparison
# ---------------------------------------------------------------------------

def _capability_row(name: str, caps) -> dict[str, object]:
    return {
        "planner": name,
        "swapping": caps.swapping,
        "checkpointing": caps.checkpointing,
        "dynamic_input": caps.dynamic_input,
        "dynamic_graph": caps.dynamic_graph,
        "nonstationary_input": caps.nonstationary_input,
        "frag_avoidance": caps.fragmentation_avoidance,
        "granularity": caps.granularity,
        "plan_timing": caps.plan_timing,
        "search_space": caps.search_space,
        "search_algorithm": caps.search_algorithm,
    }


def table1_rows(
    with_gaps: bool = False,
    gap_task: str = "TC-Bert",
    gap_sizes: int = 3,
) -> list[dict[str, object]]:
    """The capability matrix for the planners implemented here.

    ``mimose-hybrid`` is Mimose under ``--solver hybrid``: the same
    planner with the excess-covering step swapped for the shared PCIe
    cost model, which adds Capuchin's swapping column while keeping
    every input-dynamics capability.  ``mimose-knapsack`` and
    ``mimose-exact`` are likewise Mimose under ``--solver knapsack`` /
    ``--solver exact``.

    ``mimose-lifecycle`` is Mimose with the lifecycle drift monitors
    armed (``--drift-scenario`` / ``drift_detection=True``): the same
    planner surviving *non-stationary* input-size distributions via
    online detection, partial re-collection and refitting — OOM
    survival under drift is what ``benchmarks/bench_drift.py`` gates.

    Every row carries an ``optimality_gap`` column: "—" by default, and
    with ``with_gaps=True`` the per-input-size relative gaps of the
    row's solver against the exact optimum on ``gap_task``, at
    ``gap_sizes`` evenly spaced input sizes from one fitted estimator
    (see :mod:`repro.experiments.optimality`).  Opt-in because it costs
    a short mini-run; the qualitative matrix stays instant.
    """
    classes = [MimosePlanner, DTRPlanner, SublinearPlanner, CheckmatePlanner,
               MonetPlanner, CapuchinPlanner, NoCheckpointPlanner]
    rows = [_capability_row(cls.name, cls.capabilities) for cls in classes]
    rows.insert(
        1,
        _capability_row(
            "mimose-hybrid",
            dataclasses.replace(
                MimosePlanner.capabilities,
                swapping=True,
                search_algorithm="hybrid-greedy",
            ),
        ),
    )
    rows.insert(
        2,
        _capability_row(
            "mimose-lifecycle",
            dataclasses.replace(
                MimosePlanner.capabilities,
                nonstationary_input=True,
                plan_timing="runtime+replan",
            ),
        ),
    )
    rows.insert(
        3,
        _capability_row(
            "mimose-knapsack",
            dataclasses.replace(
                MimosePlanner.capabilities, search_algorithm="knapsack"
            ),
        ),
    )
    rows.insert(
        4,
        _capability_row(
            "mimose-exact",
            dataclasses.replace(
                MimosePlanner.capabilities,
                swapping=True,
                search_algorithm="exact B&B",
            ),
        ),
    )
    for row in rows:
        row["optimality_gap"] = "—"
    if with_gaps:
        from repro.experiments.optimality import (
            TABLE1_SOLVERS,
            fitted_inputs,
            format_gaps,
            gap_report,
        )

        inputs = fitted_inputs(gap_task, num_sizes=gap_sizes)
        report = gap_report(sorted(set(TABLE1_SOLVERS.values())), inputs)
        for row in rows:
            solver = TABLE1_SOLVERS.get(str(row["planner"]))
            if solver is not None and report.get(solver):
                row["optimality_gap"] = format_gaps(report[solver])
    return rows


# ---------------------------------------------------------------------------
# Table III — Mimose overhead breakdown at a 6 GB budget
# ---------------------------------------------------------------------------

def table3_rows(
    tasks: tuple[str, ...] = (
        "MC-Roberta", "TR-T5", "QA-Bert", "TC-Bert", "OD-R50", "OD-R101"
    ),
    budget_gb: float = 6.0,
    iterations: int = 150,
    seed: int = 0,
) -> list[dict[str, object]]:
    """Collector / estimator+scheduler / total overhead per task.

    Matches the paper's normalisation: total overhead expressed in units
    of one mean iteration time.  OD tasks use a 14 GB-class budget like
    §VI-B (6 GB is below their full-checkpoint floor).
    """
    rows = []
    for abbr in tasks:
        task = load_task(abbr, iterations=iterations, seed=seed)
        budget = int(budget_gb * GB)
        lb, _ = task.memory_bounds()
        if budget < lb * 1.05:  # OD tasks cannot fit a 6 GB budget
            budget = int(lb * 1.15)
        result = run_task(task, "mimose", budget)
        collects = [s for s in result.iterations if s.is_collect]
        responsive = [s for s in result.iterations if not s.is_collect]
        collector_time = sum(s.collect_time for s in collects)
        # Two kinds of planning_time are *not* steady-state per-plan
        # estimator/scheduler cost and are excluded from the min/max
        # columns (the quantity the paper bounds at 0.26-1.25 ms and the
        # bench gates below 10 ms):
        #  * the first responsive iteration carries the one-time estimator
        #    fit (MimosePlanner fits lazily inside plan()) — wall-clock
        #    proportional to model size and host speed, reported
        #    separately as fit_ms;
        #  * recovered iterations (retries > 0) carry the simulated time
        #    burnt on their OOM'd attempts, folded into planning_time by
        #    the executor's recovery accounting.
        fit_ms = 1e3 * responsive[0].planning_time if responsive else 0.0
        plan_times = [
            s.planning_time
            for s in responsive[1:]
            if s.planning_time > 0 and s.retries == 0
        ]
        mean_iter = result.mean_iteration_time()
        # Mimose's own overhead: the shuttling double-forwards plus the
        # estimator/scheduler planning time.  (Recompute is the price of
        # checkpointing itself, paid by every planner, and is therefore
        # not part of the paper's Table III.)  The one-time estimator fit
        # is *excluded* here too, not just from the min/max columns: it is
        # host wall-clock, so leaving it in made total_overhead_iters (and
        # the bench gating it) machine-dependent.  It stays visible in the
        # separate fit_ms column.
        overhead = (
            collector_time
            + sum(s.planning_time for s in result.iterations)
            - (responsive[0].planning_time if responsive else 0.0)
        )
        rows.append(
            {
                "task": abbr,
                "budget_gb": budget / GB,
                "mean_iter_ms": 1e3 * mean_iter,
                "collector_ms": 1e3 * collector_time,
                "collector_iters": len(collects),
                "fit_ms": fit_ms,
                "estimator_scheduler_ms_min": 1e3 * min(plan_times, default=0.0),
                "estimator_scheduler_ms_max": 1e3 * max(plan_times, default=0.0),
                # One plan generation per plan-cache miss — a structural
                # count, not the old "planning_time > 0.1 ms" wall-clock
                # threshold (which undercounted on fast hosts and
                # overcounted on slow ones).
                "plans_generated": result.plan_cache_misses,
                "total_overhead_ms": 1e3 * overhead,
                "total_overhead_iters": overhead / mean_iter if mean_iter else 0.0,
                # Cache effectiveness: how much of the planning column was
                # absorbed by the plan cache, and how many whole
                # iterations the executor served from the replay and
                # compiled tiers instead of simulating.
                "plan_cache_hit_pct": 100.0 * result.plan_cache_hit_rate,
                "replay_hit_pct": 100.0 * result.replay_hit_rate,
                "compiled_hit_pct": 100.0 * result.compiled_hit_rate,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Tables IV and V — memory-estimator regression comparison
# ---------------------------------------------------------------------------

def _collect_samples(
    task: TaskContext,
    num_sizes: int,
    seed: int = 0,
    measurement_noise: float = 0.003,
) -> tuple[ShuttlingCollector, dict[int, dict[str, int]]]:
    """Run sheltered iterations over ``num_sizes`` distinct input sizes and
    also produce held-out ground truth for error evaluation.

    ``measurement_noise`` models real profiling jitter (timer resolution,
    allocator races) at the few-per-mille level — without it the
    simulated memory law is exactly quadratic and every regressor's error
    collapses to rounding, which the paper's Tables IV/V do not show.
    """
    model = task.fresh_model()
    planner = MimosePlanner(
        budget_bytes=64 * GB, collect_iterations=num_sizes
    )
    planner.collector.min_iterations = num_sizes
    view = ModelView(model)
    planner.setup(view)
    executor = TrainingExecutor(
        model,
        planner,
        capacity_bytes=64 * GB,
        measurement_noise=measurement_noise,
        noise_seed=seed,
    )
    seen = 0
    for batch in task.loader:
        if seen >= num_sizes:
            break
        stats = executor.step(batch)
        if stats.is_collect:
            seen += 1
    # Held-out truth from analytic per-unit saved bytes at unseen sizes
    from repro.planners.analysis import unit_saved_bytes

    truth: dict[int, dict[str, int]] = {}
    for batch in task.loader.peek_sizes(16, seed_offset=555):
        per_unit = {
            p.module_name: unit_saved_bytes(p)
            for p in view.profiles(batch)
            if p.module_name in view.checkpointable
        }
        truth[batch.input_size] = per_unit
    return planner.collector, truth


def table4_rows(
    regressors: tuple[tuple[str, int], ...] = (
        ("poly1", 10), ("poly2", 10), ("poly3", 10),
        ("svr", 10), ("svr", 50),
        ("tree", 10), ("tree", 50),
        ("gbt", 10), ("gbt", 50),
    ),
    task_abbr: str = "TC-Bert",
    seed: int = 0,
) -> list[dict[str, object]]:
    """Regression-family comparison on TC-Bert (Table IV).

    Reports per-family training time, prediction latency, and relative
    error of the summed per-layer prediction, on collector samples.
    """
    max_samples = max(n for _, n in regressors)
    task = load_task(task_abbr, iterations=4 * max_samples, seed=seed)
    collector, truth = _collect_samples(task, max_samples, seed=seed)
    rows = []
    for name, num_samples in regressors:
        sub = ShuttlingCollector(min_iterations=1, min_distinct_sizes=3)
        # replay only the first num_samples iterations' worth of samples
        data = collector.training_data()
        for unit, (sizes, bytes_, times, bwd_times) in data.items():
            from repro.engine.stats import UnitMeasurement

            sub.ingest(
                UnitMeasurement(unit, s, b, t, bt)
                for s, b, t, bt in list(
                    zip(sizes, bytes_, times, bwd_times)
                )[:num_samples]
            )
        estimator = LightningMemoryEstimator(lambda: make_regressor(name))
        train_time = estimator.fit(sub)
        report = estimator.evaluate(truth)
        rows.append(
            {
                "regressor": name,
                "num_samples": num_samples,
                "train_time_ms": 1e3 * train_time,
                "predict_latency_us": 1e6 * report.predict_latency_s,
                "error_pct": 100.0 * report.relative_error,
            }
        )
    return rows


def table5_rows(
    tasks: tuple[str, ...] = (
        "MC-Roberta", "TR-T5", "QA-Bert", "TC-Bert", "OD-R50", "OD-R101"
    ),
    num_samples: int = 10,
    seed: int = 0,
) -> list[dict[str, object]]:
    """Quadratic-polynomial estimator across all six tasks (Table V)."""
    rows = []
    for abbr in tasks:
        task = load_task(abbr, iterations=4 * num_samples, seed=seed)
        collector, truth = _collect_samples(task, num_samples, seed=seed)
        estimator = LightningMemoryEstimator()  # quadratic default
        train_time = estimator.fit(collector)
        report = estimator.evaluate(truth)
        rows.append(
            {
                "task": abbr,
                "num_samples": num_samples,
                "train_time_ms": 1e3 * train_time,
                "predict_latency_us": 1e6 * report.predict_latency_s,
                "error_pct": 100.0 * report.relative_error,
            }
        )
    return rows
