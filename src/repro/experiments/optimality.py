"""Per-cell optimality gaps: every solver against the exact optimum.

The solver registry gives every planning algorithm the same contract
(:class:`~repro.solvers.base.SolverInput` in,
:class:`~repro.planners.base.ActionAssignment` out) and the same
objective (:func:`~repro.solvers.base.plan_cost` under one shared
:class:`~repro.solvers.base.PcieCostModel`), which makes plan *quality*
directly comparable: for each (solver, input size) cell, price the
solver's plan and the :class:`~repro.solvers.ExactSolver` optimum with
the same model and report the relative gap.

Two consumers:

* ``attach_gaps`` decorates a finished :class:`~repro.engine.stats
  .RunResult` with the gaps of the plans its (fitted, Mimose-family)
  planner would emit at a sample of the run's own input sizes — the
  ``repro run/sweep --gap-sizes N`` column.
* ``fitted_inputs`` + ``gap_report`` build the Table I gap column from a
  short sheltered mini-run: fit Mimose's estimator once, extract solver
  inputs at evenly spaced sizes, and score every registered solver on
  them (``repro gaps`` is the CI gate over the same report).

Gap convention (``relative_gap``): ``(cost - exact) / exact`` when the
optimum is positive; ``0.0`` when both are (near-)zero; ``inf`` when a
solver pays a positive cost where the optimum is free, or emits an
infeasible plan.  The exact solver's own gap is *identically zero* by
construction — ``gap_report`` enforces that and raises if it is not,
which is what the CI smoke job trips on.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

from repro.core.planner import MimosePlanner
from repro.engine.executor import TrainingExecutor
from repro.engine.stats import RunResult
from repro.experiments.tasks import GB, load_task
from repro.planners.base import ModelView, Planner
from repro.solvers import (
    ExactSolver,
    PcieCostModel,
    SolverInput,
    make_solver,
    plan_cost,
    plan_feasible,
)
from repro.tensorsim.device import DeviceModel

#: Table I planner rows mapped to the registered solver that drives their
#: excess-covering decision; rows absent here (MILP planners, baseline,
#: the lifecycle variant) have no one-tier solver analogue and keep "—".
TABLE1_SOLVERS: dict[str, str] = {
    "mimose": "greedy",
    "mimose-knapsack": "knapsack",
    "mimose-hybrid": "hybrid",
    "mimose-exact": "exact",
    "sublinear": "sublinear",
    "checkmate": "checkmate",
    "capuchin": "hybrid",
}


def relative_gap(cost: float, exact_cost: float) -> float:
    """Relative optimality gap of ``cost`` against the exact optimum.

    ``(cost - exact) / exact`` for a positive optimum; ``0.0`` when the
    plan matches a zero-cost optimum; ``inf`` when the optimum is free
    but the plan is not.  Never negative for a true optimum — the
    property suite asserts exactly that for every registered solver.
    """
    if exact_cost > 0.0:
        return (cost - exact_cost) / exact_cost
    return 0.0 if cost <= 0.0 else math.inf


def format_gaps(gaps: dict[int, float]) -> str:
    """Render per-size gaps as ``"12.5%/0.0%/3.1%"`` in size order."""
    from repro.engine.stats import _format_gaps

    return _format_gaps(gaps)


# --------------------------------------------------------------- run results


def _sample_sizes(sizes: Sequence[int], limit: int) -> list[int]:
    """Evenly spaced sample of ``limit`` distinct sizes (ascending)."""
    distinct = sorted(set(sizes))
    if limit <= 0 or len(distinct) <= limit:
        return distinct
    if limit == 1:
        return [distinct[-1]]
    step = (len(distinct) - 1) / (limit - 1)
    return sorted({distinct[round(i * step)] for i in range(limit)})


def attach_gaps(
    planner: Planner,
    result: RunResult,
    *,
    sizes_limit: int = 3,
    device: Optional[DeviceModel] = None,
) -> RunResult:
    """Fill ``result.optimality_gaps`` from the planner's own solver.

    Samples up to ``sizes_limit`` distinct responsive input sizes from
    the run, rebuilds the solver input the planner's estimator predicts
    for each, and records the relative gap of the planner's solver
    against :class:`~repro.solvers.ExactSolver` under the solver's own
    cost model (or a default :class:`PcieCostModel` for coverage-only
    solvers).

    Best-effort by design: planners without a pluggable solver
    (``scheduler``/``scheduler_input`` attributes — the Mimose family)
    and cells the exact search refuses (unit count or node cap) are
    skipped, never fatal.  The run's digest ignores
    ``optimality_gaps``, so attaching gaps preserves digest parity.
    """
    solver = getattr(planner, "scheduler", None)
    scheduler_input = getattr(planner, "scheduler_input", None)
    if solver is None or scheduler_input is None:
        return result
    model = getattr(solver, "cost_model", None) or PcieCostModel(device)
    exact = ExactSolver(model)
    sizes = _sample_sizes(
        [s.input_size for s in result.iterations if not s.is_collect],
        sizes_limit,
    )
    for size in sizes:
        try:
            inp = scheduler_input(size)
            optimum = plan_cost(model, exact.assign(inp), inp)
            own = solver.assign(inp)
        except (KeyError, RuntimeError, ValueError):
            continue  # unfitted estimator, unknown unit, or search cap
        if not plan_feasible(model, own, inp):
            result.optimality_gaps[size] = math.inf
            continue
        result.optimality_gaps[size] = relative_gap(
            plan_cost(model, own, inp), optimum
        )
    return result


# ------------------------------------------------------------ table harness


def fitted_inputs(
    task_abbr: str = "TC-Bert",
    *,
    num_sizes: int = 3,
    budget_gb: Optional[float] = None,
    seed: int = 0,
    device: Optional[DeviceModel] = None,
) -> list[tuple[int, SolverInput]]:
    """Solver inputs from one fitted estimator, at evenly spaced sizes.

    Runs a short Mimose mini-run (sheltered collection plus a few
    responsive iterations, enough to fit the estimator), then rebuilds
    the :class:`SolverInput` the planner would hand its solver at
    ``num_sizes`` evenly spaced input sizes the run actually saw.  Every
    solver scored by :func:`gap_report` sees these same inputs, so the
    per-cell comparison isolates plan quality from estimation quality.

    ``budget_gb=None`` (the default) places the budget 30 % of the way
    between the task's full-checkpoint floor and its no-checkpoint peak
    — inside the memory-constrained regime, so the inputs carry positive
    excess and the gap cells are non-trivial.  An ample explicit budget
    makes every gap trivially zero (nothing to cover).
    """
    task = load_task(task_abbr, iterations=64, seed=seed)
    lb, ub = task.memory_bounds()
    if budget_gb is None:
        budget = int(lb + 0.30 * (ub - lb))
    else:
        budget = max(int(budget_gb * GB), int(lb * 1.15))
    planner = MimosePlanner(budget)
    iterations = planner.collector.min_iterations + 6
    model = task.fresh_model()
    planner.setup(ModelView(model))
    executor = TrainingExecutor(
        model,
        planner,
        device=device,
        capacity_bytes=budget,
    )
    sizes: list[int] = []
    for i, batch in enumerate(task.loader):
        if i >= iterations:
            break
        stats = executor.step(batch)
        if not stats.is_collect:
            sizes.append(stats.input_size)
    # Candidate sizes span the task's whole input distribution (the
    # estimator extrapolates, so unseen sizes are fair game), preferring
    # sizes whose predicted peak exceeds the budget — cells with zero
    # excess have nothing to solve and gap 0 for everyone.
    candidates = sorted(
        {
            *sizes,
            *(b.input_size for b in task.loader.peek_sizes(24, seed_offset=99)),
            task.worst_case.input_size,
        }
    )
    positive = [
        s for s in candidates if planner.scheduler_input(s).excess_bytes > 0
    ]
    chosen = _sample_sizes(positive, num_sizes)
    if len(chosen) < num_sizes:
        pad = [s for s in reversed(candidates) if s not in chosen]
        chosen = sorted({*chosen, *pad[: num_sizes - len(chosen)]})
    return [(size, planner.scheduler_input(size)) for size in chosen]


def gap_report(
    solver_names: Iterable[str],
    inputs: Sequence[tuple[int, SolverInput]],
    *,
    device: Optional[DeviceModel] = None,
) -> dict[str, dict[int, float]]:
    """Per-(solver, input-size) relative gaps against the exact optimum.

    Every cell is priced with one shared :class:`PcieCostModel` so costs
    are comparable across solvers; infeasible plans and cells a solver
    refuses (the exact solver's caps) score ``inf`` / are skipped.

    Raises:
        RuntimeError: if the exact solver's own gap is not identically
            zero on any cell — the invariant the CI smoke job gates.
    """
    model = PcieCostModel(device)
    exact = ExactSolver(model)
    optima = {
        size: plan_cost(model, exact.assign(inp), inp)
        for size, inp in inputs
    }
    report: dict[str, dict[int, float]] = {}
    for name in solver_names:
        solver = make_solver(name, device=device)
        cells: dict[int, float] = {}
        for size, inp in inputs:
            try:
                assignment = solver.assign(inp)
            except ValueError:
                continue  # solver refused the cell (size caps)
            if not plan_feasible(model, assignment, inp):
                cells[size] = math.inf
                continue
            cells[size] = relative_gap(
                plan_cost(model, assignment, inp), optima[size]
            )
        if name == "exact" and any(g != 0.0 for g in cells.values()):
            raise RuntimeError(
                f"exact solver reported a nonzero gap against itself: {cells}"
            )
        report[name] = cells
    return report
