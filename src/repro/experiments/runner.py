"""Run one (task, planner, budget) combination and sweep grids of them."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.planner import MimosePlanner
from repro.engine.executor import TrainingExecutor
from repro.engine.stats import RunResult
from repro.engine.trace import MemoryTimeline
from repro.experiments.tasks import TaskContext
from repro.planners.base import ModelView, Planner
from repro.planners.capuchin import CapuchinPlanner
from repro.planners.checkmate import CheckmatePlanner
from repro.planners.dtr import DTRPlanner
from repro.planners.monet import MonetPlanner
from repro.planners.none import NoCheckpointPlanner
from repro.planners.sublinear import SublinearPlanner
from repro.tensorsim.device import DeviceModel, V100
from repro.tensorsim.faults import FaultInjector, FaultPlan

PLANNER_NAMES = (
    "baseline", "sublinear", "checkmate", "monet", "dtr", "capuchin", "mimose"
)


def make_planner(name: str, budget_bytes: int, task: TaskContext) -> Planner:
    """Construct a planner by name, wired to the task's offline knowledge.

    Static planners receive the shapes their papers allow them to know
    offline; Mimose receives only the budget.
    """
    if name == "baseline":
        return NoCheckpointPlanner(budget_bytes)
    if name == "sublinear":
        return SublinearPlanner(budget_bytes, worst_case_batch=task.worst_case)
    if name == "checkmate":
        return CheckmatePlanner(
            budget_bytes,
            assumed_batch=task.assumed_static_batch(),
            enforce_budget=task.spec.static_plan_for_worst_case,
        )
    if name == "monet":
        return MonetPlanner(
            budget_bytes,
            assumed_batch=task.assumed_static_batch(),
            enforce_budget=task.spec.static_plan_for_worst_case,
        )
    if name == "dtr":
        return DTRPlanner(budget_bytes)
    if name == "capuchin":
        return CapuchinPlanner(budget_bytes)
    if name == "mimose":
        return MimosePlanner(budget_bytes)
    raise KeyError(f"unknown planner {name!r}; available: {PLANNER_NAMES}")


def run_task(
    task: TaskContext,
    planner_name: str,
    budget_bytes: int,
    *,
    device: Optional[DeviceModel] = None,
    timeline: Optional[MemoryTimeline] = None,
    max_iterations: Optional[int] = None,
    faults: Optional[FaultPlan] = None,
    max_retries: int = 3,
) -> RunResult:
    """Execute the task's loader under one planner and budget.

    The executor capacity follows the planner contract: plan-based
    planners that promise to respect the budget get exactly the budget;
    reactive/static-overshooting ones get physical device memory so their
    overshoot is observable (Fig 5 / Fig 10 annotations).

    ``faults`` injects deterministic memory pressure (see
    :mod:`repro.tensorsim.faults`); each run builds its own injector so
    sweeps stay independent.  ``max_retries`` bounds the OOM recovery
    ladder for planners that support it (Mimose).
    """
    device = device or DeviceModel(V100)
    model = task.fresh_model()
    planner = make_planner(planner_name, budget_bytes, task)
    planner.setup(ModelView(model))
    capacity = (
        device.memory_capacity
        if planner.requires_physical_capacity
        else budget_bytes
    )
    executor = TrainingExecutor(
        model,
        planner,
        device=device,
        capacity_bytes=capacity,
        coalescing=planner.allocator_coalescing,
        timeline=timeline,
        faults=FaultInjector(faults) if faults is not None else None,
        max_recovery_retries=max_retries,
    )
    result = RunResult(task.spec.abbr, planner_name, budget_bytes)
    for i, batch in enumerate(task.loader):
        if max_iterations is not None and i >= max_iterations:
            break
        result.append(executor.step(batch))
    return result


def sweep(
    task: TaskContext,
    planner_names: Iterable[str],
    budgets: Iterable[int],
    *,
    device: Optional[DeviceModel] = None,
    max_iterations: Optional[int] = None,
    faults: Optional[FaultPlan] = None,
    max_retries: int = 3,
) -> list[RunResult]:
    """Grid of runs; the baseline (budget-independent) runs once.

    Faults are injected into every non-baseline run; the baseline stays
    fault-free so it remains a clean normalisation reference.
    """
    results: list[RunResult] = []
    budgets = list(budgets)
    for name in planner_names:
        if name == "baseline":
            results.append(
                run_task(task, name, budgets[0], device=device,
                         max_iterations=max_iterations)
            )
            continue
        for budget in budgets:
            results.append(
                run_task(task, name, budget, device=device,
                         max_iterations=max_iterations,
                         faults=faults, max_retries=max_retries)
            )
    return results
